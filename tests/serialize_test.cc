#include <gtest/gtest.h>

#include <sstream>

#include "core/enumerate.h"
#include "core/ground.h"
#include "core/ops.h"
#include "core/serialize.h"
#include "storage/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

FRep RoundTrip(const FRep& rep) {
  std::ostringstream out;
  WriteFRep(out, rep);
  std::istringstream in(out.str());
  return ReadFRep(in);
}

void ExpectSame(const FRep& a, const FRep& b) {
  EXPECT_EQ(a.empty(), b.empty());
  EXPECT_EQ(a.tree().CanonicalKey(), b.tree().CanonicalKey());
  EXPECT_EQ(a.NumSingletons(), b.NumSingletons());
  EXPECT_EQ(a.CountTuples(), b.CountTuples());
  if (!a.empty()) {
    EXPECT_TRUE(MaterializeVisible(a) == MaterializeVisible(b));
  }
}

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(Serialize, RoundTripSimple) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  ExpectSame(rep, RoundTrip(rep));
}

TEST(Serialize, RoundTripEmpty) {
  FRep rep{PathFTree({0, 1}, 0)};
  FRep back = RoundTrip(rep);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.tree().CanonicalKey(), rep.tree().CanonicalKey());
}

TEST(Serialize, RoundTripNullary) {
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  FRep back = RoundTrip(rep);
  EXPECT_FALSE(back.empty());
  EXPECT_EQ(back.CountTuples(), 1.0);
}

TEST(Serialize, RoundTripAfterOperators) {
  // A representation with dead tree nodes (merge kills one) and a constant
  // node must survive the round trip.
  Relation r = MakeRel({0}, {{1}, {2}, {3}});
  Relation s = MakeRel({1, 2}, {{1, 7}, {2, 8}, {3, 9}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep joined = Merge(prod, 0, 1);
  FRep selected = SelectConst(joined, 2, CmpOp::kNe, 8);
  ExpectSame(selected, RoundTrip(selected));
}

TEST(Serialize, RoundTripGrocery) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  ExpectSame(res.rep, RoundTrip(res.rep));
}

TEST(Serialize, RoundTripRandomWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    WorkloadSpec spec;
    spec.num_rels = 3;
    spec.num_attrs = 7;
    spec.tuples_per_rel = 30;
    spec.domain = 6;
    spec.num_equalities = 2;
    spec.seed = seed;
    GeneratedWorkload w = GenerateWorkload(spec);
    std::vector<const Relation*> rels;
    for (const Relation& rel : w.relations) rels.push_back(&rel);
    QueryInfo info = AnalyzeQuery(w.catalog, w.query);
    EdgeCoverSolver solver;
    FRep rep = GroundQuery(FindOptimalFTree(info, solver).tree, rels);
    ExpectSame(rep, RoundTrip(rep));
  }
}

TEST(Serialize, FileRoundTrip) {
  Relation r = MakeRel({0, 1}, {{5, 6}});
  FRep rep = GroundRelation(r, 0);
  const std::string path = "/tmp/fdb_serialize_test.frep";
  WriteFRepFile(path, rep);
  ExpectSame(rep, ReadFRepFile(path));
}

TEST(Serialize, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return ReadFRep(in);
  };
  EXPECT_THROW(parse(""), FdbError);
  EXPECT_THROW(parse("bogus header\nend\n"), FdbError);
  EXPECT_THROW(parse("fdb-frep 1\nnonempty\n"), FdbError);  // missing end
  EXPECT_THROW(parse("fdb-frep 1\nwhatisthis 3\nend\n"), FdbError);
  // Dangling child reference.
  EXPECT_THROW(
      parse("fdb-frep 1\n"
            "node 0 attrs=1 visible=1 cover=1 dep=1 const=0 parent=-1\n"
            "troot 0\nnonempty\n"
            "union 0 node=0 values=1 children=5\n"
            "uroot 0\nend\n"),
      FdbError);
  // Inconsistent representation (child count mismatch) must fail Validate.
  EXPECT_THROW(
      parse("fdb-frep 1\n"
            "node 0 attrs=1 visible=1 cover=1 dep=1 const=0 parent=-1\n"
            "node 1 attrs=2 visible=2 cover=1 dep=1 const=0 parent=0\n"
            "troot 0\nnonempty\n"
            "union 0 node=0 values=1 children=\n"
            "uroot 0\nend\n"),
      FdbError);
}

// Fuzz-found crash classes (fuzz/corpus/frep_read/): each of these inputs
// used to reach an abort, undefined behaviour or an unbounded allocation
// instead of the header's promised FdbError.
TEST(Serialize, RejectsFuzzFoundCrashClasses) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return ReadFRep(in);
  };
  const std::string node0 =
      "node 0 attrs=1 visible=1 cover=1 dep=1 const=0 parent=-1\n";
  // Hex with trailing garbage was silently truncated ("1zz" -> 0x1).
  EXPECT_THROW(parse("fdb-frep 1\n"
                     "node 0 attrs=1zz visible=1 cover=1 dep=1 const=0 "
                     "parent=-1\ntroot 0\nempty\nend\n"),
               FdbError);
  // More than 16 hex digits overflows uint64; a sign must not negate-wrap.
  EXPECT_THROW(parse("fdb-frep 1\n"
                     "node 0 attrs=ffffffffffffffffff visible=1 cover=1 "
                     "dep=1 const=0 parent=-1\ntroot 0\nempty\nend\n"),
               FdbError);
  EXPECT_THROW(parse("fdb-frep 1\n"
                     "node 0 attrs=-1 visible=1 cover=1 dep=1 const=0 "
                     "parent=-1\ntroot 0\nempty\nend\n"),
               FdbError);
  // A huge node id must be refused up front, not drive the pool rebuild
  // into a multi-gigabyte allocation before validation runs.
  EXPECT_THROW(parse("fdb-frep 1\n"
                     "node 999999999 attrs=1 visible=1 cover=1 dep=1 "
                     "const=0 parent=-1\ntroot 999999999\nempty\nend\n"),
               FdbError);
  // Out-of-pool troot dereferenced FTree::node() out of bounds.
  EXPECT_THROW(parse("fdb-frep 1\n" + node0 + "troot 7\nempty\nend\n"),
               FdbError);
  // Out-of-pool union node binding dereferenced the tree during Validate.
  EXPECT_THROW(parse("fdb-frep 1\n" + node0 +
                     "troot 0\nnonempty\n"
                     "union 0 node=9 values=1 children=\nuroot 0\nend\n"),
               FdbError);
  // Duplicate node records doubled children lists; duplicate troots
  // duplicated roots.
  EXPECT_THROW(parse("fdb-frep 1\n" + node0 + node0 + "troot 0\nempty\nend\n"),
               FdbError);
  EXPECT_THROW(
      parse("fdb-frep 1\n" + node0 + "troot 0\ntroot 0\nempty\nend\n"),
      FdbError);
  // A self-parent cycle passed the shallow tree Validate() and then hung
  // the CountTuples DP.
  EXPECT_THROW(parse("fdb-frep 1\n" + node0 +
                     "node 1 attrs=2 visible=2 cover=1 dep=1 const=0 "
                     "parent=1\ntroot 0\nempty\nend\n"),
               FdbError);
  // Parent reference to a node the file never declares.
  EXPECT_THROW(parse("fdb-frep 1\n" + node0 +
                     "node 1 attrs=2 visible=2 cover=1 dep=1 const=0 "
                     "parent=30000\ntroot 0\nempty\nend\n"),
               FdbError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  Relation r = MakeRel({0}, {{1}, {2}});
  FRep rep = GroundRelation(r, 0);
  std::ostringstream out;
  WriteFRep(out, rep);
  std::string text = "# compiled database\n\n" + out.str();
  std::istringstream in(text);
  ExpectSame(rep, ReadFRep(in));
}

}  // namespace
}  // namespace fdb
