#include <gtest/gtest.h>

#include <fstream>

#include "core/aggregate.h"
#include "core/enumerate.h"
#include "test_util.h"

namespace fdb {
namespace {

TEST(Database, CreateAndInsert) {
  Database db;
  RelId r = db.CreateRelation("R", {"a", "name:str"});
  db.Insert(r, {int64_t{1}, "x"});
  db.Insert(r, {int64_t{2}, "y"});
  EXPECT_EQ(db.relation(r).size(), 2u);
  EXPECT_TRUE(db.catalog().attr(db.Attr("name")).is_string);
  EXPECT_EQ(db.dict().Decode(db.relation(r).At(0, 1)), "x");
}

TEST(Database, InsertTypeMismatch) {
  Database db;
  RelId r = db.CreateRelation("R", {"a", "name:str"});
  EXPECT_THROW(db.Insert(r, {int64_t{1}, int64_t{2}}), FdbError);
  EXPECT_THROW(db.Insert(r, {"x", "y"}), FdbError);
  EXPECT_THROW(db.Insert(r, {int64_t{1}}), FdbError);  // arity
}

TEST(Database, DuplicateRelationName) {
  Database db;
  db.CreateRelation("R", {"a"});
  EXPECT_THROW(db.CreateRelation("R", {"b"}), FdbError);
}

TEST(Database, SharedAttributeAcrossRelations) {
  // Reusing an attribute name binds to the same attribute id; such
  // relations cannot appear together in one query.
  Database db;
  RelId r = db.CreateRelation("R", {"a"});
  RelId s = db.CreateRelation("S", {"a"});
  Query q;
  q.rels = {r, s};
  Engine engine(&db);
  EXPECT_THROW(engine.EvaluateFlat(q), FdbError);
}

TEST(Database, UnknownAttrThrows) {
  Database db;
  EXPECT_THROW(db.Attr("nope"), FdbError);
}

TEST(Database, LoadCsvIntegratesWithCatalog) {
  const std::string path = "/tmp/fdb_api_test.csv";
  {
    std::ofstream out(path);
    out << "k,v:str\n1,alpha\n2,beta\n";
  }
  Database db;
  RelId r = db.LoadCsv(path, "KV");
  EXPECT_EQ(db.catalog().FindRelation("KV"), static_cast<int>(r));
  EXPECT_EQ(db.relation(r).size(), 2u);
  Engine engine(&db);
  FdbResult res = engine.Execute("SELECT * FROM KV WHERE v = 'beta'");
  EXPECT_EQ(res.FlatTuples(), 1.0);
}

TEST(Engine, JoinFactorisedMatchesFlatJoin) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult r1 = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  FdbResult r2 = engine.EvaluateFlat(testing_util::GroceryQ2(*db));

  FdbResult joined = engine.JoinFactorised(
      r1.rep, r2.rep, {{db->Attr("o_item"), db->Attr("p_item")}});

  // Flat reference.
  Query big;
  for (const char* n : {"Orders", "Store", "Disp", "Produce", "Serve"}) {
    big.rels.push_back(static_cast<RelId>(db->catalog().FindRelation(n)));
  }
  big.equalities = {{db->Attr("o_item"), db->Attr("s_item")},
                    {db->Attr("s_location"), db->Attr("d_location")},
                    {db->Attr("supplier"), db->Attr("sv_supplier")},
                    {db->Attr("o_item"), db->Attr("p_item")}};
  RdbResult flat = engine.ExecuteRdb(big);
  EXPECT_TRUE(testing_util::SameRelation(joined.rep, flat.relation));
}

TEST(Engine, JoinFactorisedRejectsOverlappingAttrs) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult r1 = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  EXPECT_THROW(engine.JoinFactorised(r1.rep, r1.rep, {}), FdbError);
}

TEST(Engine, AggregatesOnQueryResult) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  AttrId oid = db->Attr("oid");
  EXPECT_EQ(Count(res.rep), 14.0);
  EXPECT_EQ(Min(res.rep, oid), 1);
  EXPECT_EQ(Max(res.rep, oid), 3);
  EXPECT_EQ(CountDistinct(res.rep, db->Attr("dispatcher")), 3u);
}

TEST(Engine, TimingFieldsPopulated) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  EXPECT_GE(res.optimize_seconds, 0.0);
  EXPECT_GE(res.evaluate_seconds, 0.0);
}

TEST(Engine, EmptyDatabaseQuery) {
  Database db;
  RelId r = db.CreateRelation("R", {"a", "b"});
  Engine engine(&db);
  Query q;
  q.rels = {r};
  FdbResult res = engine.EvaluateFlat(q);
  EXPECT_TRUE(res.rep.empty());
  EXPECT_EQ(res.FlatTuples(), 0.0);
  TupleEnumerator en(res.rep);
  EXPECT_FALSE(en.Next());
}

TEST(Engine, SelfJoinViaAliasedRelation) {
  // Self-joins need an aliased copy with fresh attribute ids (the paper's
  // query model gives every query relation its own attributes).
  Database db;
  RelId e1 = db.CreateRelation("Edge", {"src", "dst"});
  RelId e2 = db.CreateRelation("Edge2", {"src2", "dst2"});
  for (auto [s, d] : std::initializer_list<std::pair<int64_t, int64_t>>{
           {1, 2}, {2, 3}, {3, 1}, {2, 4}}) {
    db.Insert(e1, {s, d});
    db.Insert(e2, {s, d});
  }
  Engine engine(&db);
  // Two-hop paths: Edge(src,dst) |x|_{dst=src2} Edge2(src2,dst2).
  FdbResult res = engine.Execute(
      "SELECT * FROM Edge, Edge2 WHERE dst = src2");
  RdbResult flat = engine.ExecuteRdb(engine.Parse(
      "SELECT * FROM Edge, Edge2 WHERE dst = src2"));
  EXPECT_EQ(res.FlatTuples(), static_cast<double>(flat.NumTuples()));
  EXPECT_EQ(res.FlatTuples(), 4.0);  // 1-2-3, 1-2-4, 2-3-1, 3-1-2
}

}  // namespace
}  // namespace fdb
