#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "core/fplan.h"
#include "core/ground.h"
#include "core/ops.h"
#include "core/print.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::SameRelation;

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

// Reference equi-join of two relations on one attribute pair, keeping all
// columns of both (used as ground truth for merge/absorb).
Relation RefJoin(const Relation& l, const Relation& r, AttrId la, AttrId ra) {
  std::vector<AttrId> schema = l.schema();
  schema.insert(schema.end(), r.schema().begin(), r.schema().end());
  Relation out(schema);
  size_t lc = l.ColumnOf(la), rc = r.ColumnOf(ra);
  std::vector<Value> t(schema.size());
  for (size_t i = 0; i < l.size(); ++i) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (l.At(i, lc) != r.At(j, rc)) continue;
      for (size_t c = 0; c < l.arity(); ++c) t[c] = l.At(i, c);
      for (size_t c = 0; c < r.arity(); ++c) t[l.arity() + c] = r.At(j, c);
      out.AddTuple(t);
    }
  }
  out.SortLex();
  return out;
}

Relation RefSelect(const Relation& in, AttrId attr, CmpOp op, Value c) {
  Relation out = in;
  size_t col = out.ColumnOf(attr);
  out.Filter([&](size_t row) { return EvalCmp(out.At(row, col), op, c); });
  out.SortLex();
  return out;
}

// ---------- Product ----------

TEST(Product, CombinesForests) {
  Relation r = MakeRel({0, 1}, {{1, 2}, {3, 4}});
  Relation s = MakeRel({2}, {{7}, {8}, {9}});
  FRep e1 = GroundRelation(r, 0);
  FRep e2 = GroundRelation(s, 1);
  FRep prod = Product(e1, e2);
  prod.Validate();
  EXPECT_EQ(prod.CountTuples(), 6.0);
  EXPECT_EQ(prod.tree().roots().size(), 2u);
  // Linear size: 4 + 3 singletons, not 6 x 3.
  EXPECT_EQ(prod.NumSingletons(), 7u);
}

TEST(Product, EmptyAnnihilates) {
  Relation r = MakeRel({0}, {{1}});
  FRep e1 = GroundRelation(r, 0);
  FRep e2{PathFTree({1}, 1)};  // empty
  FRep prod = Product(e1, e2);
  EXPECT_TRUE(prod.empty());
}

TEST(Product, RejectsOverlappingAttrs) {
  Relation r = MakeRel({0}, {{1}});
  FRep e1 = GroundRelation(r, 0);
  FRep e2 = GroundRelation(r, 1);
  EXPECT_THROW(Product(e1, e2), FdbError);
}

TEST(Product, RejectsOverlappingRelIndices) {
  Relation r = MakeRel({0}, {{1}});
  Relation s = MakeRel({1}, {{1}});
  FRep e1 = GroundRelation(r, 0);
  FRep e2 = GroundRelation(s, 0);  // same query-local index
  EXPECT_THROW(Product(e1, e2), FdbError);
}

// ---------- SelectConst ----------

TEST(SelectConst, FiltersAndCascades) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  FRep sel = SelectConst(rep, 1, CmpOp::kGt, 1);  // B > 1
  sel.Validate();
  EXPECT_TRUE(SameRelation(sel, RefSelect(r, 1, CmpOp::kGt, 1)));
}

TEST(SelectConst, EmptyingSelection) {
  Relation r = MakeRel({0, 1}, {{1, 1}});
  FRep rep = GroundRelation(r, 0);
  FRep sel = SelectConst(rep, 0, CmpOp::kGt, 10);
  EXPECT_TRUE(sel.empty());
}

TEST(SelectConst, EqualityMakesNodeConstantAndFloats) {
  // B = 2 on A -> B: afterwards the B node is constant and pushed to the
  // top level (it no longer contributes to the cost).
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}, {3, 1}});
  FRep rep = GroundRelation(r, 0);
  FRep sel = SelectConst(rep, 1, CmpOp::kEq, 2);
  sel.Validate();
  EXPECT_TRUE(SameRelation(sel, RefSelect(r, 1, CmpOp::kEq, 2)));
  int nb = sel.tree().FindAttr(1);
  EXPECT_TRUE(sel.tree().node(nb).constant);
  EXPECT_EQ(sel.tree().node(nb).parent, -1);  // floated to the roots
}

TEST(SelectConst, OnDeepNode) {
  Relation r = MakeRel({0, 1, 2}, {{1, 1, 5}, {1, 2, 6}, {2, 2, 7}});
  FRep rep = GroundRelation(r, 0);
  FRep sel = SelectConst(rep, 2, CmpOp::kLe, 6);
  sel.Validate();
  EXPECT_TRUE(SameRelation(sel, RefSelect(r, 2, CmpOp::kLe, 6)));
}

// ---------- PushUp / Normalize ----------

TEST(PushUp, HoistsIndependentChild) {
  // Product-shaped data re-expressed over a chain tree, then normalised
  // back apart: A x B with B nested under A.
  Relation r = MakeRel({0}, {{1}, {2}});
  Relation s = MakeRel({1}, {{5}, {6}});
  // Ground over the tree A -> B (B's relation is independent of A's).
  FTree t;
  int na = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nb = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(na);
  t.AttachChild(na, nb);
  FRep rep = GroundQuery(t, {&r, &s});
  rep.Validate();
  EXPECT_EQ(rep.NumSingletons(), 6u);  // B repeated under each A value

  FRep up = PushUp(rep, 1);
  up.Validate();
  EXPECT_EQ(up.tree().roots().size(), 2u);
  EXPECT_EQ(up.NumSingletons(), 4u);  // factored out
  EXPECT_EQ(up.CountTuples(), rep.CountTuples());
  EXPECT_TRUE(SameRelation(up, MaterializeVisible(rep)));
}

TEST(PushUp, RejectsDependentChild) {
  Relation r = MakeRel({0, 1}, {{1, 1}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_THROW(PushUp(rep, 1), FdbError);  // B shares the relation with A
}

TEST(Normalize, ReachesNormalFormAndPreservesRelation) {
  // Three independent unary relations grounded over a chain; normalising
  // splits them into a forest of three roots.
  Relation r = MakeRel({0}, {{1}, {2}});
  Relation s = MakeRel({1}, {{3}, {4}});
  Relation u = MakeRel({2}, {{5}});
  FTree t;
  int n0 = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int n1 = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({1}),
                     RelSet::Of({1}));
  int n2 = t.NewNode(AttrSet::Of({2}), AttrSet::Of({2}), RelSet::Of({2}),
                     RelSet::Of({2}));
  t.AttachRoot(n0);
  t.AttachChild(n0, n1);
  t.AttachChild(n1, n2);
  FRep rep = GroundQuery(t, {&r, &s, &u});
  FRep norm = Normalize(rep);
  norm.Validate();
  EXPECT_TRUE(norm.tree().IsNormalized());
  EXPECT_EQ(norm.tree().roots().size(), 3u);
  EXPECT_TRUE(SameRelation(norm, MaterializeVisible(rep)));
  EXPECT_LE(norm.NumSingletons(), rep.NumSingletons());
}

// ---------- Swap ----------

TEST(Swap, RegroupsByChildFirst) {
  // R(A,B): regrouping by B then A preserves the relation.
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}, {3, 1}});
  FRep rep = GroundRelation(r, 0);
  FRep sw = Swap(rep, 0, 1);
  sw.Validate();
  int na = sw.tree().FindAttr(0), nb = sw.tree().FindAttr(1);
  EXPECT_EQ(sw.tree().node(na).parent, nb);
  EXPECT_TRUE(SameRelation(sw, r));
}

TEST(Swap, RoundTripRestoresGrouping) {
  Relation r = MakeRel({0, 1}, {{1, 5}, {2, 5}, {2, 6}});
  FRep rep = GroundRelation(r, 0);
  FRep back = Swap(Swap(rep, 0, 1), 1, 0);
  back.Validate();
  EXPECT_TRUE(SameRelation(back, r));
  EXPECT_EQ(back.NumSingletons(), rep.NumSingletons());
}

TEST(Swap, DeepSwapInContext) {
  // R(A,B,C): swap B and C under each A-group.
  Relation r =
      MakeRel({0, 1, 2}, {{1, 1, 9}, {1, 2, 9}, {2, 1, 8}, {2, 1, 9}});
  FRep rep = GroundRelation(r, 0);
  FRep sw = Swap(rep, 1, 2);
  sw.Validate();
  EXPECT_TRUE(SameRelation(sw, r));
  // C is now B's parent inside each A context.
  int nb = sw.tree().FindAttr(1), nc = sw.tree().FindAttr(2);
  EXPECT_EQ(sw.tree().node(nb).parent, nc);
}

TEST(Swap, PaperExampleT1ToT2) {
  // Example 8: T1 -> T2 via chi_{item, location}, on the real Q1 result.
  auto db = testing_util::MakeGroceryDb();
  AttrId item = db->Attr("o_item"), sitem = db->Attr("s_item");
  AttrId loc = db->Attr("s_location"), dloc = db->Attr("d_location");
  AttrId oid = db->Attr("oid"), disp = db->Attr("dispatcher");

  // Build T1 over the classes {item}, {oid}, {location}, {dispatcher}.
  FTree t1;
  AttrSet c_item = AttrSet::Of({item, sitem});
  AttrSet c_loc = AttrSet::Of({loc, dloc});
  int n_item = t1.NewNode(c_item, c_item, RelSet::Of({0, 1}),
                          RelSet::Of({0, 1}));
  int n_oid = t1.NewNode(AttrSet::Of({oid}), AttrSet::Of({oid}),
                         RelSet::Of({0}), RelSet::Of({0}));
  int n_loc = t1.NewNode(c_loc, c_loc, RelSet::Of({1, 2}),
                         RelSet::Of({1, 2}));
  int n_disp = t1.NewNode(AttrSet::Of({disp}), AttrSet::Of({disp}),
                          RelSet::Of({2}), RelSet::Of({2}));
  t1.AttachRoot(n_item);
  t1.AttachChild(n_item, n_oid);
  t1.AttachChild(n_item, n_loc);
  t1.AttachChild(n_loc, n_disp);

  std::vector<const Relation*> rels = {
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Orders"))),
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Store"))),
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Disp")))};
  FRep over_t1 = GroundQuery(t1, rels);
  over_t1.Validate();

  FRep over_t2 = Swap(over_t1, item, loc);
  over_t2.Validate();
  // location now roots the tree; item below it; dispatcher beside item.
  int loc_node = over_t2.tree().FindAttr(loc);
  EXPECT_EQ(over_t2.tree().node(loc_node).parent, -1);
  EXPECT_TRUE(SameRelation(over_t2, MaterializeVisible(over_t1)));
}

// ---------- Merge ----------

TEST(Merge, TwoRootUnions) {
  // R(A) |x|_{A=B} S(B,C) via product + merge at the top level.
  Relation r = MakeRel({0}, {{1}, {2}, {4}});
  Relation s = MakeRel({1, 2}, {{1, 7}, {2, 8}, {2, 9}, {3, 7}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep joined = Merge(prod, 0, 1);
  joined.Validate();
  EXPECT_TRUE(SameRelation(joined, RefJoin(r, s, 0, 1)));
  // The merged class holds both attributes.
  int n = joined.tree().FindAttr(0);
  EXPECT_EQ(n, joined.tree().FindAttr(1));
  EXPECT_EQ(joined.tree().node(n).attrs, AttrSet::Of({0, 1}));
}

TEST(Merge, EmptyIntersection) {
  Relation r = MakeRel({0}, {{1}});
  Relation s = MakeRel({1}, {{2}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep joined = Merge(prod, 0, 1);
  EXPECT_TRUE(joined.empty());
}

TEST(Merge, InteriorSiblingsWithCascade) {
  // R(A,B,C): tree A -> {B, C} built by grounding a relation where B and C
  // come from different relations sharing A.
  Relation r = MakeRel({0, 1}, {{1, 5}, {2, 6}});   // A, B
  Relation s = MakeRel({2, 3}, {{1, 5}, {2, 7}});   // A', C with A=A'
  // Tree: class {A,A'} root, children B and C.
  FTree t;
  AttrSet ca = AttrSet::Of({0, 2});
  int na = t.NewNode(ca, ca, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int nb = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nc = t.NewNode(AttrSet::Of({3}), AttrSet::Of({3}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(na);
  t.AttachChild(na, nb);
  t.AttachChild(na, nc);
  FRep rep = GroundQuery(t, {&r, &s});
  // Now merge B and C (selection B = C): A=1 keeps (5,5); A=2 dies (6!=7).
  FRep merged = Merge(rep, 1, 3);
  merged.Validate();
  EXPECT_EQ(merged.CountTuples(), 1.0);
  TupleEnumerator en(merged);
  ASSERT_TRUE(en.Next());
  EXPECT_EQ(en.ValueOf(0), 1);
  EXPECT_EQ(en.ValueOf(1), 5);
  EXPECT_EQ(en.ValueOf(3), 5);
}

TEST(Merge, SameClassIsNoOp) {
  Relation r = MakeRel({0, 1}, {{1, 1}});
  FRep rep = GroundRelation(r, 0);
  FRep m = Merge(rep, 0, 0);
  EXPECT_TRUE(SameRelation(m, r));
}

// ---------- Absorb ----------

TEST(Absorb, AncestorDescendantSelection) {
  // R(A,B): selection A = B via absorb on the path tree A -> B.
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}, {3, 1}});
  FRep rep = GroundRelation(r, 0);
  FRep ab = Absorb(rep, 0, 1);
  ab.Validate();
  Relation expect = r;
  expect.Filter([&](size_t row) { return expect.At(row, 0) == expect.At(row, 1); });
  expect.SortLex();
  EXPECT_TRUE(SameRelation(ab, expect));
  int n = ab.tree().FindAttr(0);
  EXPECT_EQ(n, ab.tree().FindAttr(1));  // classes merged
}

TEST(Absorb, DeepDescendantWithNormalisation) {
  // Example 10: A -> {B,B'} -> {C,C'} -> D with R0{A,B}, R1{B',C},
  // R2{C',D}; absorb A = C. Afterwards D hangs directly under {A,C,C'}.
  Relation r0 = MakeRel({0, 1}, {{1, 10}, {2, 20}});        // A, B
  Relation r1 = MakeRel({2, 3}, {{10, 1}, {10, 2}, {20, 2}});  // B', C
  Relation r2 = MakeRel({4, 5}, {{1, 100}, {2, 200}});      // C', D

  FTree t;
  AttrSet cb = AttrSet::Of({1, 2}), cc = AttrSet::Of({3, 4});
  int na = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nb = t.NewNode(cb, cb, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int nc = t.NewNode(cc, cc, RelSet::Of({1, 2}), RelSet::Of({1, 2}));
  int nd = t.NewNode(AttrSet::Of({5}), AttrSet::Of({5}), RelSet::Of({2}),
                     RelSet::Of({2}));
  t.AttachRoot(na);
  t.AttachChild(na, nb);
  t.AttachChild(nb, nc);
  t.AttachChild(nc, nd);
  FRep rep = GroundQuery(t, {&r0, &r1, &r2});
  rep.Validate();

  FRep ab = Absorb(rep, 0, 3);  // A = C
  ab.Validate();
  // Reference: join all three then filter A = C.
  Relation j = RefJoin(RefJoin(r0, r1, 1, 2), r2, 3, 4);
  j.Filter([&](size_t row) { return j.At(row, 0) == j.At(row, j.ColumnOf(3)); });
  j.SortLex();
  EXPECT_TRUE(SameRelation(ab, j));
  // Tree shape per Example 10: {A,C,C'} root; {B,B'} and D its children.
  int root = ab.tree().FindAttr(0);
  EXPECT_EQ(ab.tree().node(root).attrs, AttrSet::Of({0, 3, 4}));
  EXPECT_EQ(ab.tree().node(ab.tree().FindAttr(5)).parent, root);
  EXPECT_EQ(ab.tree().node(ab.tree().FindAttr(1)).parent, root);
}

TEST(Absorb, OrientationIsAutomatic) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {2, 3}});
  FRep rep = GroundRelation(r, 0);
  FRep ab = Absorb(rep, 1, 0);  // reversed argument order
  ab.Validate();
  EXPECT_EQ(ab.CountTuples(), 1.0);
}

// ---------- Project ----------

TEST(Project, DropsLeafAttribute) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  FRep proj = Project(rep, AttrSet::Of({0}));
  proj.Validate();
  EXPECT_EQ(proj.CountTuples(), 2.0);  // A values {1, 2}
  EXPECT_EQ(proj.tree().VisibleAttrs(), AttrSet::Of({0}));
}

TEST(Project, InnerNodeSinksAndKeepsTransitiveDependence) {
  // Section 3.4: A - B - C with R0{A,B}, R1{B,C}; project away B. The
  // result must stay a chain A - C (A and C remain dependent through B).
  Relation r0 = MakeRel({0, 1}, {{1, 5}, {2, 5}, {2, 6}});
  Relation r1 = MakeRel({2, 3}, {{5, 7}, {6, 8}});
  FTree t;
  AttrSet cb = AttrSet::Of({1, 2});
  int na = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nb = t.NewNode(cb, cb, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int nc = t.NewNode(AttrSet::Of({3}), AttrSet::Of({3}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(na);
  t.AttachChild(na, nb);
  t.AttachChild(nb, nc);
  FRep rep = GroundQuery(t, {&r0, &r1});

  FRep proj = Project(rep, AttrSet::Of({0, 3}));
  proj.Validate();
  // Reference: projection of the join.
  Relation j = RefJoin(r0, r1, 1, 2);
  Relation expect({0, 3});
  for (size_t row = 0; row < j.size(); ++row) {
    expect.AddTuple({j.At(row, 0), j.At(row, j.ColumnOf(3))});
  }
  expect.SortLex();
  EXPECT_TRUE(SameRelation(proj, expect));
  // C stays below A: pushing it up would wrongly declare independence.
  int pa = proj.tree().FindAttr(0);
  int pc = proj.tree().FindAttr(3);
  EXPECT_EQ(proj.tree().node(pc).parent, pa);
}

TEST(Project, EverythingAwayYieldsNullaryWitness) {
  Relation r = MakeRel({0}, {{1}, {2}});
  FRep rep = GroundRelation(r, 0);
  FRep proj = Project(rep, AttrSet{});
  proj.Validate();
  EXPECT_FALSE(proj.empty());
  EXPECT_EQ(proj.CountTuples(), 1.0);  // the nullary tuple: R non-empty

  FRep none{PathFTree({0}, 0)};
  FRep proj2 = Project(none, AttrSet{});
  EXPECT_TRUE(proj2.empty());  // empty input stays empty
}

TEST(Project, NoOpKeepsEverything) {
  Relation r = MakeRel({0, 1}, {{1, 2}});
  FRep rep = GroundRelation(r, 0);
  FRep proj = Project(rep, AttrSet::Of({0, 1}));
  proj.Validate();
  EXPECT_TRUE(SameRelation(proj, r));
}

TEST(Project, PartialClassProjection) {
  // Class {A,B} (A=B join baked in): projecting away B keeps the node with
  // attribute A only.
  Relation r = MakeRel({0, 1}, {{1, 1}, {2, 2}});
  FTree t;
  AttrSet cls = AttrSet::Of({0, 1});
  int n = t.NewNode(cls, cls, RelSet::Of({0}), RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep = GroundQuery(t, {&r});
  FRep proj = Project(rep, AttrSet::Of({0}));
  proj.Validate();
  EXPECT_EQ(proj.NumSingletons(), 2u);  // one per value, single attribute
  Relation expect = MakeRel({0}, {{1}, {2}});
  EXPECT_TRUE(SameRelation(proj, expect));
}

// ---------- Plans ----------

TEST(Plan, ExecuteMatchesSimulation) {
  Relation r = MakeRel({0, 1}, {{1, 4}, {2, 5}});
  Relation s = MakeRel({2, 3}, {{4, 7}, {5, 8}, {5, 9}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));

  FPlan plan;
  plan.steps = {PlanStep::MakeSwap(0, 1), PlanStep::MakeMerge(1, 2)};
  FRep out = ExecutePlan(prod, plan);
  out.Validate();

  FTree sim = prod.tree();
  for (const PlanStep& st : plan.steps) sim = SimulateStepOnTree(sim, st);
  EXPECT_EQ(out.tree().CanonicalKey(), sim.CanonicalKey());
  EXPECT_TRUE(SameRelation(out, RefJoin(r, s, 1, 2)));
}

TEST(Plan, StepToString) {
  EXPECT_EQ(PlanStep::MakeSwap(1, 2).ToString(), "swap(a1,a2)");
  EXPECT_EQ(PlanStep::MakeMerge(1, 2).ToString(), "merge(a1=a2)");
  EXPECT_EQ(PlanStep::MakeAbsorb(1, 2).ToString(), "absorb(a1=a2)");
  EXPECT_EQ(PlanStep::MakeSelectConst(3, CmpOp::kGe, 7).ToString(),
            "select(a3>=7)");
}

}  // namespace
}  // namespace fdb
