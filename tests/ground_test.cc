#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "core/ground.h"
#include "rdb/rdb.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::SameRelation;

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(Ground, SingleRelationTrie) {
  Relation r = MakeRel({0, 1}, {{2, 1}, {1, 1}, {1, 2}});
  FRep rep = GroundRelation(r, 0);
  rep.Validate();
  r.SortLex();
  EXPECT_TRUE(SameRelation(rep, r));
}

TEST(Ground, DeduplicatesInputTuples) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 1}, {1, 1}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_EQ(rep.CountTuples(), 1.0);
}

TEST(Ground, TwoWayJoinOverMergedClass) {
  // R(A,B) |x|_{B=C} S(C,D) over the tree {B,C} -> A, {B,C} -> D.
  Relation r = MakeRel({0, 1}, {{1, 5}, {2, 5}, {3, 6}, {4, 9}});
  Relation s = MakeRel({2, 3}, {{5, 70}, {5, 71}, {6, 72}, {8, 73}});
  FTree t;
  AttrSet cls = AttrSet::Of({1, 2});
  int nj = t.NewNode(cls, cls, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int na = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nd = t.NewNode(AttrSet::Of({3}), AttrSet::Of({3}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(nj);
  t.AttachChild(nj, na);
  t.AttachChild(nj, nd);
  FRep rep = GroundQuery(t, {&r, &s});
  rep.Validate();
  // B=5: A in {1,2} x D in {70,71}; B=6: {3} x {72}. 5 join tuples.
  EXPECT_EQ(rep.CountTuples(), 5.0);
  // Factorised: 2 join values + 3 A values + 3 D values = 8 singletons
  // (x2 for the two-attribute class).
  EXPECT_EQ(rep.NumSingletons(), 2u * 2u + 3u + 3u);
}

TEST(Ground, AppliesConstPredicates) {
  Relation r = MakeRel({0, 1}, {{1, 5}, {2, 6}, {3, 7}});
  FTree t = PathFTree({0, 1}, 0);
  FRep rep = GroundQuery(t, {&r}, {ConstPred{1, CmpOp::kGe, 6}});
  rep.Validate();
  EXPECT_EQ(rep.CountTuples(), 2.0);
}

TEST(Ground, EmptyJoinResult) {
  Relation r = MakeRel({0}, {{1}});
  Relation s = MakeRel({1}, {{2}});
  FTree t;
  AttrSet cls = AttrSet::Of({0, 1});
  int n = t.NewNode(cls, cls, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  t.AttachRoot(n);
  FRep rep = GroundQuery(t, {&r, &s});
  EXPECT_TRUE(rep.empty());
}

TEST(Ground, EmptyInputRelation) {
  Relation r({0});
  FRep rep = GroundRelation(r, 0);
  EXPECT_TRUE(rep.empty());
}

TEST(Ground, RejectsPathConstraintViolation) {
  // R(A,B)'s attributes on two branches of a fork.
  Relation r = MakeRel({0, 1}, {{1, 2}});
  Relation s = MakeRel({2}, {{1}});
  FTree t;
  int root = t.NewNode(AttrSet::Of({2}), AttrSet::Of({2}), RelSet::Of({1}),
                       RelSet::Of({1}));
  int na = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nb = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({0}),
                     RelSet::Of({0}));
  t.AttachRoot(root);
  t.AttachChild(root, na);
  t.AttachChild(root, nb);
  EXPECT_THROW(GroundQuery(t, {&r, &s}), FdbError);
}

TEST(Ground, IntraRelationClassEquality) {
  // Class {A,B} within one relation keeps only tuples with A = B.
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {3, 3}});
  FTree t;
  AttrSet cls = AttrSet::Of({0, 1});
  int n = t.NewNode(cls, cls, RelSet::Of({0}), RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep = GroundQuery(t, {&r});
  EXPECT_EQ(rep.CountTuples(), 2.0);
}

TEST(Ground, GroceryQ1OverT1MatchesPaper) {
  // The factorised Q1 result of Example 1, over T1.
  auto db = testing_util::MakeGroceryDb();
  AttrId item = db->Attr("o_item"), sitem = db->Attr("s_item");
  AttrId loc = db->Attr("s_location"), dloc = db->Attr("d_location");
  AttrId oid = db->Attr("oid"), disp = db->Attr("dispatcher");

  FTree t1;
  AttrSet c_item = AttrSet::Of({item, sitem});
  AttrSet c_loc = AttrSet::Of({loc, dloc});
  int n_item =
      t1.NewNode(c_item, c_item, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int n_oid = t1.NewNode(AttrSet::Of({oid}), AttrSet::Of({oid}),
                         RelSet::Of({0}), RelSet::Of({0}));
  int n_loc =
      t1.NewNode(c_loc, c_loc, RelSet::Of({1, 2}), RelSet::Of({1, 2}));
  int n_disp = t1.NewNode(AttrSet::Of({disp}), AttrSet::Of({disp}),
                          RelSet::Of({2}), RelSet::Of({2}));
  t1.AttachRoot(n_item);
  t1.AttachChild(n_item, n_oid);
  t1.AttachChild(n_item, n_loc);
  t1.AttachChild(n_loc, n_disp);

  std::vector<const Relation*> rels = {
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Orders"))),
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Store"))),
      &db->relation(static_cast<RelId>(db->catalog().FindRelation("Disp")))};
  FRep rep = GroundQuery(t1, rels);
  rep.Validate();

  // Cross-check against RDB's flat evaluation of Q1.
  Query q1 = testing_util::GroceryQ1(*db);
  RdbResult flat = RdbEvaluate(db->catalog(), rels, q1);
  EXPECT_TRUE(SameRelation(rep, flat.relation));
  // 14 tuples flat (4 Milk + 6 Cheese + 4 Melon combinations); factorised
  // over T1 the result is strictly smaller than the 14 x 6 data elements.
  EXPECT_EQ(rep.CountTuples(), static_cast<double>(flat.NumTuples()));
  EXPECT_LT(rep.NumSingletons(), flat.NumTuples() * 6);
}

}  // namespace
}  // namespace fdb
