#include <gtest/gtest.h>

#include <sstream>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {
namespace {

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(Relation, BasicAccess) {
  Relation r = MakeRel({0, 1}, {{1, 2}, {3, 4}});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.At(1, 0), 3);
  EXPECT_EQ(r.ColumnOf(1), 1u);
  EXPECT_TRUE(r.HasAttr(0));
  EXPECT_FALSE(r.HasAttr(5));
  EXPECT_THROW(r.ColumnOf(5), FdbError);
}

TEST(Relation, RejectsDuplicateSchema) {
  EXPECT_THROW(Relation({1, 1}), FdbError);
}

TEST(Relation, RejectsWrongArityTuple) {
  Relation r({0, 1});
  EXPECT_THROW(r.AddTuple({1}), FdbError);
}

TEST(Relation, SortLexAndDedup) {
  Relation r = MakeRel({0, 1}, {{2, 1}, {1, 2}, {2, 1}, {1, 1}});
  r.SortLex();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(0, 1), 1);
  EXPECT_EQ(r.At(2, 0), 2);
}

TEST(Relation, SortBySelectedColumnWithTieBreak) {
  Relation r = MakeRel({0, 1}, {{2, 9}, {1, 5}, {2, 3}});
  r.SortByColumns({1});
  EXPECT_EQ(r.At(0, 1), 3);
  EXPECT_EQ(r.At(1, 1), 5);
  EXPECT_EQ(r.At(2, 1), 9);
  EXPECT_EQ(r.sort_order()[0], 1u);
}

TEST(Relation, LowerBoundAndEqualRange) {
  // Note SortLex removes the duplicate {3}: rows become 1, 3, 5, 9.
  Relation r = MakeRel({0}, {{1}, {3}, {3}, {5}, {9}});
  r.SortLex();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.LowerBound(0, r.size(), 0, 3), 1u);
  EXPECT_EQ(r.LowerBound(0, r.size(), 0, 4), 2u);
  auto [b, e] = r.EqualRange(0, r.size(), 0, 3);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(e, 2u);
  auto [b2, e2] = r.EqualRange(0, r.size(), 0, 7);
  EXPECT_EQ(b2, e2);
}

TEST(Relation, EqualRangeWithDuplicateKeyColumn) {
  Relation r = MakeRel({0, 1}, {{3, 1}, {3, 2}, {3, 3}, {5, 1}});
  r.SortLex();
  auto [b, e] = r.EqualRange(0, r.size(), 0, 3);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 3u);
}

TEST(Relation, DistinctCount) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  EXPECT_EQ(r.DistinctCount(0), 2u);
  EXPECT_EQ(r.DistinctCount(1), 2u);
}

TEST(Relation, Filter) {
  Relation r = MakeRel({0}, {{1}, {2}, {3}, {4}});
  r.Filter([&](size_t row) { return r.At(row, 0) % 2 == 0; });
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.At(0, 0), 2);
  EXPECT_EQ(r.At(1, 0), 4);
}

TEST(Catalog, RegistersAndLooksUp) {
  Catalog c;
  AttrId a = c.AddAttribute("x");
  AttrId b = c.AddAttribute("y", /*is_string=*/true);
  RelId r = c.AddRelation("R", {a, b});
  EXPECT_EQ(c.FindAttribute("x"), static_cast<int>(a));
  EXPECT_EQ(c.FindAttribute("z"), -1);
  EXPECT_EQ(c.FindRelation("R"), static_cast<int>(r));
  EXPECT_TRUE(c.attr(b).is_string);
  EXPECT_EQ(c.RelAttrSet(r), AttrSet::Of({a, b}));
}

TEST(Catalog, RejectsDuplicatesAndOverflow) {
  Catalog c;
  c.AddAttribute("x");
  EXPECT_THROW(c.AddAttribute("x"), FdbError);
  EXPECT_THROW(c.AddRelation("R", {42}), FdbError);
  Catalog full;
  for (int i = 0; i < 64; ++i) full.AddAttribute("a" + std::to_string(i));
  EXPECT_THROW(full.AddAttribute("overflow"), FdbError);
}

TEST(Catalog, ClassName) {
  Catalog c;
  AttrId a = c.AddAttribute("item");
  AttrId b = c.AddAttribute("pitem");
  EXPECT_EQ(c.ClassName(AttrSet::Of({a, b})), "item=pitem");
}

TEST(Query, EqualityClasses) {
  AttrSet universe = AttrSet::FirstN(5);
  auto classes = EqualityClasses(universe, {{0, 1}, {1, 2}});
  // {0,1,2}, {3}, {4}.
  EXPECT_EQ(classes.size(), 3u);
  bool found = false;
  for (const auto& cls : classes) found |= cls == AttrSet::Of({0, 1, 2});
  EXPECT_TRUE(found);
}

TEST(Query, AnalyzeResolvesRelationsAndClasses) {
  Catalog c;
  AttrId a0 = c.AddAttribute("a0"), a1 = c.AddAttribute("a1");
  AttrId b0 = c.AddAttribute("b0"), b1 = c.AddAttribute("b1");
  RelId r0 = c.AddRelation("R", {a0, a1});
  RelId r1 = c.AddRelation("S", {b0, b1});
  Query q;
  q.rels = {r0, r1};
  q.equalities = {{a1, b0}};
  QueryInfo info = AnalyzeQuery(c, q);
  EXPECT_EQ(info.num_rels, 2);
  EXPECT_EQ(info.attr_rel[a0], 0);
  EXPECT_EQ(info.attr_rel[b1], 1);
  EXPECT_EQ(info.ClassOf(a1), AttrSet::Of({a1, b0}));
  EXPECT_EQ(info.RelsCovering(AttrSet::Of({a1, b0})), RelSet::Of({0, 1}));
  EXPECT_EQ(info.projection, info.all_attrs);
}

TEST(Query, AnalyzeRejectsMalformed) {
  Catalog c;
  AttrId a0 = c.AddAttribute("a0");
  AttrId x = c.AddAttribute("x");
  RelId r0 = c.AddRelation("R", {a0});
  c.AddRelation("S", {a0});  // shares a0 with R

  Query empty;
  EXPECT_THROW(AnalyzeQuery(c, empty), FdbError);

  Query shared;
  shared.rels = {r0, 1};
  EXPECT_THROW(AnalyzeQuery(c, shared), FdbError);  // a0 in two rels

  Query bad_eq;
  bad_eq.rels = {r0};
  bad_eq.equalities = {{a0, x}};  // x not in the query
  EXPECT_THROW(AnalyzeQuery(c, bad_eq), FdbError);

  Query bad_proj;
  bad_proj.rels = {r0};
  bad_proj.projection = AttrSet::Of({x});
  EXPECT_THROW(AnalyzeQuery(c, bad_proj), FdbError);
}

TEST(Cmp, EvalAllOps) {
  EXPECT_TRUE(EvalCmp(1, CmpOp::kEq, 1));
  EXPECT_TRUE(EvalCmp(1, CmpOp::kNe, 2));
  EXPECT_TRUE(EvalCmp(1, CmpOp::kLt, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kLe, 2));
  EXPECT_TRUE(EvalCmp(3, CmpOp::kGt, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kGe, 2));
  EXPECT_FALSE(EvalCmp(2, CmpOp::kLt, 2));
}

TEST(Csv, RoundTrip) {
  Catalog cat;
  Dictionary dict;
  std::istringstream in("oid,item:str\n1,Milk\n2,Cheese\n");
  Relation rel = ReadCsv(in, "Orders", ',', &cat, &dict);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(cat.FindRelation("Orders"), 0);
  EXPECT_TRUE(cat.attr(rel.schema()[1]).is_string);
  EXPECT_EQ(dict.Decode(rel.At(0, 1)), "Milk");

  std::ostringstream out;
  WriteCsv(out, rel, cat, dict, ',');
  EXPECT_EQ(out.str(), "oid,item:str\n1,Milk\n2,Cheese\n");
}

TEST(Csv, MalformedInputs) {
  Catalog cat;
  Dictionary dict;
  std::istringstream empty("");
  EXPECT_THROW(ReadCsv(empty, "R", ',', &cat, &dict), FdbError);

  std::istringstream bad_arity("a,b\n1\n");
  EXPECT_THROW(ReadCsv(bad_arity, "R2", ',', &cat, &dict), FdbError);

  Catalog cat2;
  std::istringstream bad_int("a\nxyz\n");
  EXPECT_THROW(ReadCsv(bad_int, "R3", ',', &cat2, &dict), FdbError);
}

TEST(Csv, SkipsBlankLines) {
  Catalog cat;
  Dictionary dict;
  std::istringstream in("a\n1\n\n2\n");
  Relation rel = ReadCsv(in, "R", ',', &cat, &dict);
  EXPECT_EQ(rel.size(), 2u);
}

}  // namespace
}  // namespace fdb
