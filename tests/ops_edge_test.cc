// Edge cases and composed-operator sequences that the main operator tests
// do not cover: forests with several roots, cascaded emptiness, repeated
// selections on merged classes, operator chains, and failure injection.
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/enumerate.h"
#include "core/fplan.h"
#include "core/ground.h"
#include "core/ops.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::SameRelation;

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(OpsEdge, ProductOfThreeForests) {
  Relation r = MakeRel({0}, {{1}, {2}});
  Relation s = MakeRel({1}, {{5}});
  Relation u = MakeRel({2}, {{7}, {8}, {9}});
  FRep p = Product(Product(GroundRelation(r, 0), GroundRelation(s, 1)),
                   GroundRelation(u, 2));
  p.Validate();
  EXPECT_EQ(p.tree().roots().size(), 3u);
  EXPECT_EQ(p.CountTuples(), 6.0);
  EXPECT_EQ(p.NumSingletons(), 6u);
}

TEST(OpsEdge, SwapRootWithinForest) {
  // Swap inside one tree of a multi-root forest; the other root must be
  // untouched.
  Relation r = MakeRel({0, 1}, {{1, 4}, {2, 5}});
  Relation s = MakeRel({2}, {{9}});
  FRep p = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep sw = Swap(p, 0, 1);
  sw.Validate();
  EXPECT_EQ(sw.tree().roots().size(), 2u);
  Relation joined({0, 1, 2});
  joined.AddTuple({1, 4, 9});
  joined.AddTuple({2, 5, 9});
  EXPECT_TRUE(SameRelation(sw, joined));
}

TEST(OpsEdge, MergeCascadeEmptiesDeepBranch) {
  // Sibling merge under a grouping node where only one group survives, and
  // the survivor's other branches must be preserved intact.
  Relation r = MakeRel({0, 1, 2}, {{1, 3, 10}, {2, 4, 20}});   // A,B,X
  Relation s = MakeRel({3, 4}, {{1, 3}, {2, 5}});              // A',C
  FTree t;
  AttrSet ca = AttrSet::Of({0, 3});
  int na = t.NewNode(ca, ca, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int nb = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nx = t.NewNode(AttrSet::Of({2}), AttrSet::Of({2}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nc = t.NewNode(AttrSet::Of({4}), AttrSet::Of({4}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(na);
  t.AttachChild(na, nb);
  t.AttachChild(nb, nx);
  t.AttachChild(na, nc);
  FRep rep = GroundQuery(t, {&r, &s});
  // Selection B = C: A=1 has B=3,C=3 (keep); A=2 has B=4,C=5 (dies).
  FRep merged = Merge(rep, 1, 4);
  merged.Validate();
  EXPECT_EQ(merged.CountTuples(), 1.0);
  TupleEnumerator en(merged);
  ASSERT_TRUE(en.Next());
  EXPECT_EQ(en.ValueOf(2), 10);  // X of the surviving group intact
}

TEST(OpsEdge, AbsorbThenAbsorbOnSamePath) {
  // R(A,B,C): enforce A=B then A=C by two absorbs; equals the diagonal.
  Relation r = MakeRel({0, 1, 2}, {{1, 1, 1}, {1, 1, 2}, {2, 2, 2}, {3, 2, 3}});
  FRep rep = GroundRelation(r, 0);
  FRep once = Absorb(rep, 0, 1);
  FRep twice = Absorb(once, 0, 2);
  twice.Validate();
  EXPECT_EQ(twice.CountTuples(), 2.0);  // (1,1,1) and (2,2,2)
  int n = twice.tree().FindAttr(0);
  EXPECT_EQ(twice.tree().node(n).attrs, AttrSet::Of({0, 1, 2}));
}

TEST(OpsEdge, SelectOnMergedClassFiltersAllAttrs) {
  Relation r = MakeRel({0}, {{1}, {2}, {3}});
  Relation s = MakeRel({1}, {{2}, {3}, {4}});
  FRep joined = Merge(Product(GroundRelation(r, 0), GroundRelation(s, 1)),
                      0, 1);
  // The class {0,1} holds {2,3}; select on attr 1 must constrain attr 0.
  FRep sel = SelectConst(joined, 1, CmpOp::kGt, 2);
  sel.Validate();
  EXPECT_EQ(sel.CountTuples(), 1.0);
  EXPECT_EQ(Min(sel, 0), 3);
}

TEST(OpsEdge, SelectConstEqualityOnRootOfForest) {
  Relation r = MakeRel({0}, {{1}, {2}});
  Relation s = MakeRel({1}, {{5}, {6}});
  FRep p = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep sel = SelectConst(p, 0, CmpOp::kEq, 2);
  sel.Validate();
  EXPECT_EQ(sel.CountTuples(), 2.0);
  int n = sel.tree().FindAttr(0);
  EXPECT_TRUE(sel.tree().node(n).constant);
}

TEST(OpsEdge, ProjectAfterSwapKeepsSemantics) {
  Relation r = MakeRel({0, 1, 2}, {{1, 4, 7}, {1, 5, 8}, {2, 4, 9}});
  FRep rep = GroundRelation(r, 0);
  FRep sw = Swap(rep, 1, 2);       // regroup C above B
  FRep proj = Project(sw, AttrSet::Of({0, 2}));
  proj.Validate();
  Relation expect({0, 2});
  expect.AddTuple({1, 7});
  expect.AddTuple({1, 8});
  expect.AddTuple({2, 9});
  EXPECT_TRUE(SameRelation(proj, expect));
}

TEST(OpsEdge, NormalizeAfterProjectSplitsIndependentParts) {
  // R(A,B) x S(C): project away nothing; then project away B — A stays a
  // separate root from C.
  Relation r = MakeRel({0, 1}, {{1, 5}, {2, 6}});
  Relation s = MakeRel({2}, {{7}});
  FRep p = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  FRep proj = Project(p, AttrSet::Of({0, 2}));
  proj.Validate();
  EXPECT_EQ(proj.tree().roots().size(), 2u);
  EXPECT_TRUE(proj.tree().IsNormalized());
}

TEST(OpsEdge, OperatorsOnEmptyRepresentations) {
  FRep empty{PathFTree({0, 1}, 0)};
  EXPECT_TRUE(Swap(empty, 0, 1).empty());
  EXPECT_TRUE(Absorb(empty, 0, 1).empty());
  EXPECT_TRUE(SelectConst(empty, 0, CmpOp::kEq, 3).empty());
  EXPECT_TRUE(Project(empty, AttrSet::Of({0})).empty());
  EXPECT_TRUE(Normalize(empty).empty());
}

TEST(OpsEdge, PreconditionViolationsThrow) {
  Relation r = MakeRel({0, 1}, {{1, 2}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_THROW(Swap(rep, 1, 0), FdbError);   // 0 is the parent, not child
  EXPECT_THROW(Swap(rep, 0, 42), FdbError);  // unknown attribute
  EXPECT_THROW(Merge(rep, 0, 1), FdbError);  // parent/child, not siblings
  EXPECT_THROW(SelectConst(rep, 42, CmpOp::kEq, 1), FdbError);
  EXPECT_THROW(PushUp(rep, 0), FdbError);    // root cannot be pushed up
}

TEST(OpsEdge, LongOperatorChainPreservesRelation) {
  // A realistic plan: ground, swap, merge, select, swap back, project.
  Relation r = MakeRel({0, 1}, {{1, 5}, {1, 6}, {2, 5}, {3, 7}});
  Relation s = MakeRel({2, 3}, {{5, 100}, {6, 200}, {7, 100}});
  FRep cur = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  cur = Swap(cur, 0, 1);           // B above A
  cur = Merge(cur, 1, 2);          // B = C
  cur = SelectConst(cur, 3, CmpOp::kEq, 100);
  cur = Project(cur, AttrSet::Of({0, 1}));
  cur.Validate();

  // Reference by brute force.
  Relation expect({0, 1});
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      if (r.At(i, 1) == s.At(j, 0) && s.At(j, 1) == 100) {
        expect.AddTuple({r.At(i, 0), r.At(i, 1)});
      }
    }
  }
  expect.SortLex();
  EXPECT_TRUE(SameRelation(cur, expect));
}

TEST(OpsEdge, MergeIdenticalSubtreesDoesNotShareState) {
  // After merging, mutating semantics via a further selection on one
  // branch must not leak into sibling copies (operators deep-copy).
  Relation r = MakeRel({0}, {{1}, {2}});
  Relation s = MakeRel({1, 2}, {{1, 5}, {2, 5}});
  FRep joined = Merge(Product(GroundRelation(r, 0), GroundRelation(s, 1)),
                      0, 1);
  FRep sel = SelectConst(joined, 2, CmpOp::kEq, 5);
  sel.Validate();
  EXPECT_EQ(sel.CountTuples(), joined.CountTuples());
}

}  // namespace
}  // namespace fdb
