// Grouped aggregation inside the factorisation (core/aggregate.h), cross-
// checked against the flat enumerate-then-hash baseline (rdb/HashGroupBy)
// on hand-built reps, the grocery database, and randomized workloads.
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/enumerate.h"
#include "core/ground.h"
#include "core/ops.h"
#include "opt/ftree_search.h"
#include "rdb/rdb.h"
#include "storage/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

// The join result over *all* attributes of the f-tree (the relation the
// aggregates range over), via full-tuple enumeration.
Relation FullRelation(const FRep& rep) {
  std::vector<AttrId> schema = rep.tree().AllAttrs().ToVector();
  Relation out(schema);
  TupleEnumerator en(rep);
  std::vector<Value> tuple(schema.size());
  while (en.Next()) {
    for (size_t c = 0; c < schema.size(); ++c) tuple[c] = en.ValueOf(schema[c]);
    out.AddTuple(tuple);
  }
  out.SortLex();
  return out;
}

GroupedTable Reference(const FRep& rep, AttrSet group_by,
                       const std::vector<AggSpec>& specs) {
  return HashGroupBy(FullRelation(rep), group_by, specs);
}

GroupedTable Factorised(const FRep& rep, AttrSet group_by,
                        const std::vector<AggSpec>& specs,
                        FPlan* plan = nullptr) {
  GroupedRep g = GroupByAggregate(rep, group_by, specs, nullptr, plan);
  GroupedTable t = g.Materialize();
  t.SortByKey();
  return t;
}

void ExpectSameTable(const GroupedTable& got, const GroupedTable& want) {
  ASSERT_EQ(got.group_schema, want.group_schema);
  ASSERT_EQ(got.num_rows, want.num_rows);
  for (size_t r = 0; r < got.num_rows; ++r) {
    for (size_t c = 0; c < got.group_schema.size(); ++c) {
      ASSERT_EQ(got.KeyAt(r, c), want.KeyAt(r, c)) << "row " << r;
    }
    for (size_t c = 0; c < got.specs.size(); ++c) {
      EXPECT_DOUBLE_EQ(got.AggAt(r, c), want.AggAt(r, c))
          << "row " << r << " spec " << c;
    }
  }
}

void CrossCheck(const FRep& rep, AttrSet group_by,
                const std::vector<AggSpec>& specs) {
  ExpectSameTable(Factorised(rep, group_by, specs),
                  Reference(rep, group_by, specs));
}

// All five functions over `attr` plus COUNT(*).
std::vector<AggSpec> AllSpecs(AttrId attr) {
  return {{AggFn::kCount, 0}, {AggFn::kSum, attr}, {AggFn::kAvg, attr},
          {AggFn::kMin, attr}, {AggFn::kMax, attr}};
}

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(GroupByAggregate, SingleRelation) {
  Relation r = MakeRel({0, 1}, {{1, 10}, {1, 20}, {2, 30}});
  FRep rep = GroundRelation(r, 0);
  GroupedTable t = Factorised(rep, AttrSet::Of({0}), AllSpecs(1));
  ASSERT_EQ(t.num_rows, 2u);
  EXPECT_EQ(t.KeyAt(0, 0), 1);
  EXPECT_EQ(t.AggAt(0, 0), 2.0);   // COUNT
  EXPECT_EQ(t.AggAt(0, 1), 30.0);  // SUM
  EXPECT_EQ(t.AggAt(0, 2), 15.0);  // AVG
  EXPECT_EQ(t.AggAt(0, 3), 10.0);  // MIN
  EXPECT_EQ(t.AggAt(0, 4), 20.0);  // MAX
  EXPECT_EQ(t.KeyAt(1, 0), 2);
  EXPECT_EQ(t.AggAt(1, 0), 1.0);
  EXPECT_EQ(t.AggAt(1, 1), 30.0);
  CrossCheck(rep, AttrSet::Of({0}), AllSpecs(1));
}

TEST(GroupByAggregate, GroupAttrAggregates) {
  // SUM/MIN/MAX of a grouping attribute (kGroup placement).
  Relation r = MakeRel({0, 1}, {{1, 10}, {1, 20}, {2, 30}});
  FRep rep = GroundRelation(r, 0);
  CrossCheck(rep, AttrSet::Of({0}), AllSpecs(0));
}

TEST(GroupByAggregate, RestructureLiftsDeepGroup) {
  // Path f-tree A -> B -> C; grouping by C needs two swaps.
  Relation r = MakeRel({0, 1, 2},
                       {{1, 10, 5}, {1, 10, 6}, {1, 20, 5}, {2, 30, 6}});
  FRep rep = GroundRelation(r, 0);
  FPlan plan;
  GroupedTable got = Factorised(rep, AttrSet::Of({2}), AllSpecs(1), &plan);
  EXPECT_GE(plan.steps.size(), 2u);
  for (const PlanStep& s : plan.steps) {
    EXPECT_EQ(s.kind, PlanStep::Kind::kSwap);
  }
  ExpectSameTable(got, Reference(rep, AttrSet::Of({2}), AllSpecs(1)));
}

TEST(GroupByAggregate, GroupByMiddleOfPath) {
  Relation r = MakeRel({0, 1, 2},
                       {{1, 10, 5}, {1, 10, 6}, {1, 20, 5}, {2, 30, 6}});
  FRep rep = GroundRelation(r, 0);
  CrossCheck(rep, AttrSet::Of({1}), AllSpecs(0));
  CrossCheck(rep, AttrSet::Of({1}), AllSpecs(2));
  CrossCheck(rep, AttrSet::Of({0, 2}), AllSpecs(1));
}

TEST(GroupByAggregate, GlobalTreesMultiplyEveryGroup) {
  // R(A) x S(B,C): grouping by A leaves S's tree without a grouping class;
  // its aggregates become global multipliers.
  Relation r = MakeRel({0}, {{1}, {2}, {3}});
  Relation s = MakeRel({1, 2}, {{10, 7}, {20, 9}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  GroupedTable t = Factorised(prod, AttrSet::Of({0}), AllSpecs(2));
  ASSERT_EQ(t.num_rows, 3u);
  EXPECT_EQ(t.AggAt(0, 0), 2.0);   // COUNT = |S|
  EXPECT_EQ(t.AggAt(0, 1), 16.0);  // SUM(C) over S
  EXPECT_EQ(t.AggAt(0, 3), 7.0);   // MIN(C)
  EXPECT_EQ(t.AggAt(0, 4), 9.0);   // MAX(C)
  CrossCheck(prod, AttrSet::Of({0}), AllSpecs(2));
  CrossCheck(prod, AttrSet::Of({2}), AllSpecs(0));
}

TEST(GroupByAggregate, EmptyGroupSetIsGlobalAggregate) {
  Relation r = MakeRel({0, 1}, {{1, 10}, {1, 20}, {2, 30}});
  FRep rep = GroundRelation(r, 0);
  GroupedTable t = Factorised(rep, {}, AllSpecs(1));
  ASSERT_EQ(t.num_rows, 1u);
  EXPECT_EQ(t.AggAt(0, 0), Count(rep));
  EXPECT_EQ(t.AggAt(0, 1), Sum(rep, 1));
  EXPECT_EQ(t.AggAt(0, 3), static_cast<double>(Min(rep, 1)));
  EXPECT_EQ(t.AggAt(0, 4), static_cast<double>(Max(rep, 1)));
  CrossCheck(rep, {}, AllSpecs(1));
}

TEST(GroupByAggregate, EmptyRelationYieldsNoGroups) {
  FRep rep{PathFTree({0, 1}, 0)};
  GroupedTable t = Factorised(rep, AttrSet::Of({0}), AllSpecs(1));
  EXPECT_EQ(t.num_rows, 0u);
  EXPECT_EQ(GroupByAggregate(rep, AttrSet::Of({0}), AllSpecs(1)).NumGroups(),
            0u);
}

TEST(GroupByAggregate, NullaryRelation) {
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  GroupedTable t = Factorised(rep, {}, {{AggFn::kCount, 0}});
  ASSERT_EQ(t.num_rows, 1u);
  EXPECT_EQ(t.AggAt(0, 0), 1.0);  // COUNT of <> is 1
  EXPECT_THROW(GroupByAggregate(rep, {}, {{AggFn::kSum, 0}}), FdbError);
  EXPECT_THROW(GroupByAggregate(rep, AttrSet::Of({0}), {}), FdbError);
}

TEST(GroupByAggregate, UnknownAttributesThrow) {
  Relation r = MakeRel({0}, {{1}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_THROW(GroupByAggregate(rep, AttrSet::Of({42}), {}), FdbError);
  EXPECT_THROW(GroupByAggregate(rep, {}, {{AggFn::kSum, 42}}), FdbError);
}

TEST(GroupByAggregate, SharedSubtreesCollapseOnce) {
  // Hand-built rep where both A-entries share one B-union (the shape
  // push-up hoisting produces); the collapse must memoise it and the
  // grouped rep must still match the enumeration baseline.
  FTree t = PathFTree({0, 1}, 0);
  const int a_node = t.FindAttr(0), b_node = t.FindAttr(1);
  FRep rep{t};
  UnionBuilder bb = rep.StartUnion(b_node);
  bb.AddValue(10);
  bb.AddValue(20);
  uint32_t bid = bb.Finish();
  UnionBuilder ba = rep.StartUnion(a_node);
  ba.AddValue(1);
  ba.AddChild(bid);
  ba.AddValue(2);
  ba.AddChild(bid);  // shared
  uint32_t aid = ba.Finish();
  rep.roots().push_back(aid);
  rep.MarkNonEmpty();
  rep.Validate();

  GroupedRep g = GroupByAggregate(rep, AttrSet::Of({0}), AllSpecs(1));
  ExpectSameTable(Factorised(rep, AttrSet::Of({0}), AllSpecs(1)),
                  Reference(rep, AttrSet::Of({0}), AllSpecs(1)));
  EXPECT_EQ(g.NumGroups(), 2u);
  // Grouping by the shared node forces a swap over the shared subtree.
  CrossCheck(rep, AttrSet::Of({1}), AllSpecs(0));
}

TEST(GroupByAggregate, GroceryJoin) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  AttrId disp = db->Attr("dispatcher"), oid = db->Attr("oid");
  AttrId item = db->Attr("o_item"), sitem = db->Attr("s_item");
  CrossCheck(res.rep, AttrSet::Of({disp}), AllSpecs(oid));
  CrossCheck(res.rep, AttrSet::Of({oid}), AllSpecs(disp));
  // Grouping by one attribute of a merged class {o_item, s_item}.
  CrossCheck(res.rep, AttrSet::Of({item}), AllSpecs(oid));
  CrossCheck(res.rep, AttrSet::Of({sitem, disp}), AllSpecs(oid));
}

TEST(GroupByAggregate, PerGroupCountOverflowThrows) {
  // 9-way product of 300-value relations: 300^8 > 2^64 tuples per group.
  Relation r({0});
  for (Value v = 1; v <= 300; ++v) r.AddTuple({v});
  FRep rep = GroundRelation(r, 0);
  for (AttrId a = 1; a < 9; ++a) {
    Relation s({a});
    for (Value v = 1; v <= 300; ++v) s.AddTuple({v});
    rep = Product(rep, GroundRelation(s, static_cast<int>(a)));
  }
  EXPECT_THROW(GroupByAggregate(rep, AttrSet::Of({0}), {{AggFn::kCount, 0}}),
               FdbError);
}

TEST(GroupByAggregate, EngineExecuteAggregateSql) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  AggregateResult res = engine.ExecuteAggregate(
      "SELECT dispatcher, COUNT(*), SUM(oid), MIN(oid), MAX(oid), AVG(oid) "
      "FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location "
      "GROUP BY dispatcher");
  ASSERT_EQ(res.table.specs.size(), 5u);

  FdbResult base = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  GroupedTable want =
      Reference(base.rep, AttrSet::Of({db->Attr("dispatcher")}),
                res.table.specs);
  ExpectSameTable(res.table, want);
  EXPECT_EQ(res.grouped.NumGroups(), want.num_rows);

  // Execute() dispatches aggregate queries and carries the table along.
  FdbResult via_execute = engine.Execute(
      "SELECT dispatcher, COUNT(*) FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location "
      "GROUP BY dispatcher");
  ASSERT_TRUE(via_execute.aggregate.has_value());
  EXPECT_EQ(via_execute.aggregate->num_rows, want.num_rows);

  // GROUP BY without aggregates computes the distinct groups.
  AggregateResult distinct = engine.ExecuteAggregate(
      "SELECT dispatcher FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location "
      "GROUP BY dispatcher");
  EXPECT_EQ(distinct.table.num_rows, want.num_rows);
  EXPECT_TRUE(distinct.table.specs.empty());

  // Plain SELECT attribute outside GROUP BY is rejected.
  EXPECT_THROW(engine.ExecuteAggregate(
                   "SELECT oid, COUNT(*) FROM Orders, Store, Disp "
                   "WHERE o_item = s_item AND s_location = d_location "
                   "GROUP BY dispatcher"),
               FdbError);

  // Aggregating a dictionary-encoded string attribute would silently
  // aggregate intern codes; AnalyzeQuery rejects it (COUNT(*) and string
  // GROUP BY keys stay fine).
  EXPECT_THROW(engine.ExecuteAggregate(
                   "SELECT SUM(o_item) FROM Orders GROUP BY oid"),
               FdbError);
  EXPECT_THROW(engine.ExecuteAggregate("SELECT MIN(dispatcher) FROM Disp"),
               FdbError);
}

TEST(GroupByAggregate, MatchesRdbHashBaselineOnSql) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  Query q = engine.Parse(
      "SELECT dispatcher, COUNT(*), SUM(oid) FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location "
      "GROUP BY dispatcher");
  AggregateResult fact = engine.ExecuteAggregate(q);

  RdbResult flat = engine.ExecuteRdb(q.SpjCore());
  ExpectSameTable(fact.table, HashGroupBy(flat.relation, q.group_by,
                                          q.aggregates));
}

// Property test: randomized workloads, every attribute as a grouping key,
// plus post-operator reps (further equality selections on the factorised
// result).
class GroupAggregateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupAggregateProperty, MatchesEnumerateThenHash) {
  WorkloadSpec spec;
  spec.num_rels = 3;
  spec.num_attrs = 7;
  spec.tuples_per_rel = 30;
  spec.domain = 6;
  spec.num_equalities = 2;
  spec.seed = GetParam();
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);
  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  FRep rep = GroundQuery(FindOptimalFTree(info, solver).tree, rels);
  if (rep.empty()) GTEST_SKIP();

  std::vector<AttrId> attrs = info.all_attrs.ToVector();
  AttrId agg_attr = attrs.back();
  for (AttrId a : attrs) {
    CrossCheck(rep, AttrSet::Of({a}), AllSpecs(agg_attr));
  }
  // Two-attribute keys across relations, and a whole equivalence class.
  CrossCheck(rep, AttrSet::Of({attrs.front(), attrs.back()}),
             AllSpecs(attrs.front()));
  CrossCheck(rep, info.classes.front(), AllSpecs(agg_attr));

  // Post-operator rep: apply one more equality selection factorised.
  Rng rng(spec.seed * 31 + 7);
  auto extra = DrawExtraEqualities(info.classes, 1, rng);
  if (!extra.empty()) {
    EdgeCoverSolver s2;
    FPlanSearchResult plan =
        FindOptimalFPlan(rep.tree(), extra, s2, FPlanSearchOptions{});
    FRep post = ExecutePlan(rep, plan.plan);
    if (!post.empty()) {
      CrossCheck(post, AttrSet::Of({attrs.front()}), AllSpecs(agg_attr));
      CrossCheck(post, AttrSet::Of({attrs.back()}), AllSpecs(attrs.front()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupAggregateProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fdb
