// Compiled enumeration kernels and the SIMD arena-scan primitives.
//
// The kernel contract is byte-identity: for every representation shape,
// visibility mode and morsel restriction, EnumKernel::Emit must reproduce
// the interpreted TupleEnumerator stream value for value, and the
// kernel-aware MaterializeVisible must equal the interpreted overload for
// every thread count. The SIMD primitives are checked against their
// std:: reference implementations on randomised windows. Runs under
// ASan/TSan/UBSan in CI alongside the serve suite.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "api/engine.h"
#include "common/rng.h"
#include "core/enumerate.h"
#include "core/ground.h"
#include "core/kernel.h"
#include "core/ops.h"
#include "core/parallel_enumerate.h"
#include "core/simd.h"
#include "serve/query_server.h"
#include "test_util.h"

namespace fdb {
namespace {

// ---------------------------------------------------------------------------
// SIMD primitives vs std:: references.
// ---------------------------------------------------------------------------

std::vector<Value> SortedUnique(Rng& rng, size_t n, int64_t domain) {
  std::vector<Value> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) v.push_back(rng.Uniform(1, domain));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(Simd, LowerBoundMatchesStd) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Value> v = SortedUnique(rng, 1 + trial * 7u, 200);
    std::vector<Value> keys = v;
    for (Value x : v) {
      keys.push_back(x - 1);
      keys.push_back(x + 1);
    }
    keys.push_back(-1000);
    keys.push_back(1000);
    for (Value key : keys) {
      const size_t expect = static_cast<size_t>(
          std::lower_bound(v.begin(), v.end(), key) - v.begin());
      EXPECT_EQ(simd::LowerBound(v.data(), v.size(), key), expect) << key;
    }
  }
  EXPECT_EQ(simd::LowerBound(nullptr, 0, 5), 0u);
}

TEST(Simd, FindValueMatchesStd) {
  Rng rng(7);
  std::vector<Value> v = SortedUnique(rng, 100, 300);
  for (Value key = 0; key <= 301; ++key) {
    const size_t got = simd::FindValue(v.data(), v.size(), key);
    const bool present = std::binary_search(v.begin(), v.end(), key);
    if (present) {
      ASSERT_LT(got, v.size());
      EXPECT_EQ(v[got], key);
    } else {
      EXPECT_EQ(got, v.size());
    }
  }
  EXPECT_EQ(simd::FindValue(nullptr, 0, 1), 0u);
}

TEST(Simd, CmpMaskMatchesEvalCmp) {
  Rng rng(13);
  std::vector<Value> vals;
  for (int i = 0; i < 257; ++i) vals.push_back(rng.Uniform(-5, 5));
  std::vector<uint8_t> mask(vals.size());
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (Value c : {-6, -1, 0, 3, 6}) {
      simd::CmpMask(vals.data(), vals.size(), op, c, mask.data());
      for (size_t i = 0; i < vals.size(); ++i) {
        EXPECT_EQ(mask[i] != 0, EvalCmp(vals[i], op, c))
            << "i=" << i << " v=" << vals[i] << " c=" << c;
      }
    }
  }
  simd::CmpMask(nullptr, 0, CmpOp::kEq, 0, nullptr);  // empty window is a no-op
}

// Reference intersection by nested lookup.
std::vector<std::pair<uint32_t, uint32_t>> RefIntersect(
    const std::vector<Value>& a, const std::vector<Value>& b) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t i = 0; i < a.size(); ++i) {
    auto it = std::lower_bound(b.begin(), b.end(), a[i]);
    if (it != b.end() && *it == a[i]) {
      out.emplace_back(i, static_cast<uint32_t>(it - b.begin()));
    }
  }
  return out;
}

TEST(Simd, IntersectSortedMatchesReference) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Value> a = SortedUnique(rng, 1 + trial * 5u, 120);
    std::vector<Value> b = SortedUnique(rng, 1 + trial * 3u, 120);
    std::vector<std::pair<uint32_t, uint32_t>> got;
    const size_t n =
        simd::IntersectSorted(a.data(), a.size(), b.data(), b.size(), &got);
    EXPECT_EQ(n, got.size());
    EXPECT_EQ(got, RefIntersect(a, b));
  }
}

TEST(Simd, IntersectSortedGallopsBothWays) {
  // One side >= kGallopRatio times the other exercises the galloping path
  // (and its swapped variant); matches must be identical either way.
  Rng rng(5);
  std::vector<Value> small = SortedUnique(rng, 4, 4000);
  std::vector<Value> large = SortedUnique(rng, 2000, 4000);
  ASSERT_GE(large.size(), simd::kGallopRatio * small.size());
  std::vector<std::pair<uint32_t, uint32_t>> got;
  simd::IntersectSorted(small.data(), small.size(), large.data(), large.size(),
                        &got);
  EXPECT_EQ(got, RefIntersect(small, large));
  got.clear();
  simd::IntersectSorted(large.data(), large.size(), small.data(), small.size(),
                        &got);
  EXPECT_EQ(got, RefIntersect(large, small));
  // Empty windows.
  got.clear();
  EXPECT_EQ(simd::IntersectSorted(nullptr, 0, large.data(), large.size(), &got),
            0u);
  EXPECT_TRUE(got.empty());
}

// ---------------------------------------------------------------------------
// Kernel differential tests: compiled output == interpreted output.
// ---------------------------------------------------------------------------

Relation RandomRelation(std::vector<AttrId> schema, size_t rows,
                        int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Relation r(std::move(schema));
  std::vector<Value> t(r.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (Value& v : t) v = rng.Uniform(1, domain);
    r.AddTuple(t);
  }
  return r;
}

// The interpreted stream flattened in the kernel's schema order — the
// byte-identity reference for Emit.
std::vector<Value> InterpretedFlat(const FRep& rep, const EnumKernel& k) {
  TupleEnumerator en(rep, k.visible_only());
  std::vector<Value> out;
  while (en.Next()) {
    for (AttrId a : k.schema()) out.push_back(en.ValueOf(a));
  }
  return out;
}

uint64_t InterpretedRows(const FRep& rep, bool visible_only) {
  TupleEnumerator en(rep, visible_only);
  uint64_t n = 0;
  while (en.Next()) ++n;
  return n;
}

// Full matrix on one rep: both visibility modes, whole-stream and
// morsel-restricted runs, count mode, and the kernel-aware materialiser
// across thread counts. Everything must equal the interpreted reference.
void CheckKernel(const FRep& rep) {
  for (bool visible_only : {false, true}) {
    EnumKernel k = EnumKernel::Compile(rep.tree(), visible_only);
    EXPECT_TRUE(k.Matches(rep.tree()));
    const std::vector<Value> expect = InterpretedFlat(rep, k);
    const uint64_t expect_rows = InterpretedRows(rep, visible_only);

    std::vector<Value> got;
    EXPECT_EQ(k.Emit(rep, {}, &got), expect_rows) << visible_only;
    EXPECT_EQ(got, expect) << visible_only;
    EXPECT_EQ(k.CountRows(rep, {}), expect_rows) << visible_only;

    // Morsel-restricted runs, concatenated in plan order, must reproduce
    // the whole stream — the shape ParallelEnumerator executes.
    for (double target : {1.0, 16.0}) {
      MorselPlan plan = PlanMorsels(rep, visible_only, target);
      std::vector<Value> chunked;
      uint64_t rows = 0;
      for (const Morsel& m : plan.morsels) {
        const uint64_t r = k.Emit(rep, m.bounds, &chunked);
        EXPECT_EQ(k.CountRows(rep, m.bounds), r);  // count mode agrees
        rows += r;
      }
      EXPECT_EQ(chunked, expect)
          << "visible_only=" << visible_only << " target=" << target;
      EXPECT_EQ(rows, expect_rows);
    }
  }
  // The kernel-aware materialiser equals the interpreted one for every
  // thread count (and for the null-kernel fallback).
  EnumKernel vk = EnumKernel::Compile(rep.tree(), /*visible_only=*/true);
  const Relation seq = MaterializeVisible(rep);
  for (int threads : {1, 2, 8}) {
    EnumerateOptions opts;
    opts.threads = threads;
    opts.parallel_cutoff = 0;
    opts.target_morsel_tuples = 16;
    EXPECT_TRUE(MaterializeVisible(rep, opts, &vk) == seq) << threads;
    EXPECT_TRUE(MaterializeVisible(rep, opts, nullptr) == seq) << threads;
  }
}

TEST(Kernel, PathTreeRandomised) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    FRep rep = GroundRelation(RandomRelation({0, 1, 2}, 200, 8, seed), 0);
    CheckKernel(rep);
  }
}

TEST(Kernel, HighFanoutStarJoin) {
  Database db;
  RelId s = db.CreateRelation("S", {"a", "b"});
  RelId t = db.CreateRelation("T", {"b2", "c"});
  Rng rng(99);
  Relation& rs = db.relation(s);
  Relation& rt = db.relation(t);
  for (int64_t i = 1; i <= 160; ++i) {
    rs.AddTuple({i, rng.Uniform(1, 4)});
    rt.AddTuple({rng.Uniform(1, 4), i});
  }
  Engine engine(&db);
  Query q;
  q.rels = {s, t};
  q.equalities = {{db.Attr("b"), db.Attr("b2")}};
  FdbResult res = engine.EvaluateFlat(q);
  ASSERT_FALSE(res.rep.empty());
  CheckKernel(res.rep);
}

TEST(Kernel, MultiRootProductForest) {
  Relation r = RandomRelation({0, 1}, 40, 16, 7);
  Relation s = RandomRelation({2, 3}, 30, 16, 8);
  FRep rep = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  CheckKernel(rep);
}

TEST(Kernel, SingleEntryTopUnion) {
  Rng rng(11);
  Relation r({0, 1, 2});
  for (int64_t i = 0; i < 120; ++i) {
    r.AddTuple({Value{7}, rng.Uniform(1, 30), rng.Uniform(1, 6)});
  }
  FRep rep = GroundRelation(r, 0);
  ASSERT_EQ(rep.u(rep.roots()[0]).size(), 1u);
  CheckKernel(rep);
}

TEST(Kernel, DeferredProjectionVisibleOnly) {
  // Invisible nodes change the visible_only frame set; the kernel must
  // lower against the same skipped frames the enumerator walks.
  Relation r = RandomRelation({0, 1, 2}, 150, 6, 21);
  FRep rep = GroundRelation(r, 0);
  rep.tree().node(rep.tree().FindAttr(1)).visible = {};
  rep.Validate();
  CheckKernel(rep);
}

TEST(Kernel, EmptyRep) {
  FRep rep{PathFTree({0, 1}, 0)};
  CheckKernel(rep);
  EnumKernel k = EnumKernel::Compile(rep.tree(), false);
  std::vector<Value> out;
  EXPECT_EQ(k.Emit(rep, {}, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Kernel, NullaryRep) {
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  CheckKernel(rep);
  EnumKernel k = EnumKernel::Compile(rep.tree(), true);
  std::vector<Value> out;
  EXPECT_EQ(k.Emit(rep, {}, &out), 1u);  // one empty row, nothing appended
  EXPECT_TRUE(out.empty());
}

TEST(Kernel, FullyInvisibleRepVisibleOnly) {
  Relation r = RandomRelation({0, 1}, 20, 5, 33);
  FRep rep = GroundRelation(r, 0);
  for (int n : rep.tree().AliveNodes()) rep.tree().node(n).visible = {};
  CheckKernel(rep);
  // The collapsed visible stream is the single empty tuple.
  EnumKernel k = EnumKernel::Compile(rep.tree(), true);
  EXPECT_TRUE(k.schema().empty());
  EXPECT_EQ(k.CountRows(rep, {}), 1u);
  EnumerateOptions opts;
  opts.threads = 8;
  opts.parallel_cutoff = 0;
  EXPECT_EQ(MaterializeVisible(rep, opts, &k).size(), 1u);
}

TEST(Kernel, MismatchedShapeFallsBack) {
  FRep rep = GroundRelation(RandomRelation({0, 1, 2}, 80, 9, 17), 0);
  FRep other = GroundRelation(RandomRelation({0, 1}, 10, 4, 5), 0);
  EnumKernel wrong = EnumKernel::Compile(other.tree(), /*visible_only=*/true);
  EXPECT_FALSE(wrong.Matches(rep.tree()));
  // A full-tuple kernel is also rejected by the visible-only materialiser.
  EnumKernel full = EnumKernel::Compile(rep.tree(), /*visible_only=*/false);
  const Relation seq = MaterializeVisible(rep);
  EnumerateOptions opts;
  opts.threads = 2;
  opts.parallel_cutoff = 0;
  EXPECT_TRUE(MaterializeVisible(rep, opts, &wrong) == seq);
  EXPECT_TRUE(MaterializeVisible(rep, opts, &full) == seq);
}

TEST(Kernel, BoundsContract) {
  FRep rep = GroundRelation(RandomRelation({0, 1}, 10, 4, 5), 0);
  EnumKernel k = EnumKernel::Compile(rep.tree(), false);
  std::vector<Value> out;
  // Same rejection rules as the TupleEnumerator bounds constructor.
  EXPECT_THROW(k.Emit(rep, std::vector<EntryBound>{{0, 2}, {0, 1}}, &out),
               FdbError);
  EXPECT_THROW(k.Emit(rep, std::vector<EntryBound>{{1, 1}}, &out), FdbError);
  EXPECT_THROW(
      k.Emit(rep, std::vector<EntryBound>{{0, 1}, {0, 1}, {0, 1}}, &out),
      FdbError);
  // A bound past the union's entries yields the empty stream.
  out.clear();
  EXPECT_EQ(k.Emit(rep, std::vector<EntryBound>{{1000, 1001}}, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Kernel, EngineMaterializeResultKernel) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res =
      engine.Execute("SELECT * FROM Orders, Store WHERE o_item = s_item");
  EnumKernel k = EnumKernel::Compile(res.rep.tree(), /*visible_only=*/true);
  EXPECT_TRUE(engine.MaterializeResult(res, &k) ==
              engine.MaterializeResult(res));
  EXPECT_TRUE(engine.MaterializeResult(res, nullptr) ==
              engine.MaterializeResult(res));
}

TEST(Kernel, ServerCompilesOncePerPlanMiss) {
  auto db = testing_util::MakeGroceryDb();
  ServeOptions opts;
  opts.num_workers = 2;
  QueryServer server(db.get(), opts);
  const std::string sql = "SELECT * FROM Orders, Store WHERE o_item = s_item";
  ServeResponse first = server.Query(sql);
  EXPECT_EQ(first.status, ServeStatus::kOk);
  ServeResponse second = server.Query(sql);
  EXPECT_EQ(second.status, ServeStatus::kOk);
  EXPECT_TRUE(second.cache_hit);
  ServerStats s = server.stats();
  EXPECT_EQ(s.executed, 2u);
  // One kernel per plan-cache miss; the warm repeat must not recompile.
  EXPECT_EQ(s.kernels_built, 1u);
}

}  // namespace
}  // namespace fdb
