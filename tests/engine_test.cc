#include <gtest/gtest.h>

#include "core/print.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::GroceryQ1;
using testing_util::GroceryQ2;
using testing_util::MakeGroceryDb;
using testing_util::SameRelation;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_(MakeGroceryDb()), engine_(db_.get()) {}
  std::unique_ptr<Database> db_;
  Engine engine_;
};

TEST_F(EngineTest, Q1FlatEvaluationMatchesRdb) {
  Query q1 = GroceryQ1(*db_);
  FdbResult fdb = engine_.EvaluateFlat(q1);
  RdbResult rdb = engine_.ExecuteRdb(q1);
  fdb.rep.Validate();
  EXPECT_TRUE(SameRelation(fdb.rep, rdb.relation));
  EXPECT_EQ(fdb.FlatTuples(), 14.0);
  // Factorised result is smaller than the flat one (many-to-many joins).
  EXPECT_LT(fdb.NumSingletons(), rdb.NumDataElements());
}

TEST_F(EngineTest, Q2HasLinearFactorisation) {
  Query q2 = GroceryQ2(*db_);
  FTreeSearchResult t = engine_.OptimizeFlat(q2);
  EXPECT_NEAR(t.cost, 1.0, 1e-6);  // s(Q2) = 1 (Example 5)
  FdbResult fdb = engine_.EvaluateFlat(q2);
  RdbResult rdb = engine_.ExecuteRdb(q2);
  EXPECT_TRUE(SameRelation(fdb.rep, rdb.relation));
}

TEST_F(EngineTest, Example2JoinOfFactorisedResults) {
  // Q1 |x|_{location, item} Q2: evaluate both queries factorised, take the
  // product, then run an f-plan for the two extra equalities.
  FdbResult r1 = engine_.EvaluateFlat(GroceryQ1(*db_));
  Query q2 = GroceryQ2(*db_);
  FRep rep2 = engine_.EvaluateFlat(q2).rep;

  AttrId item = db_->Attr("o_item"), pitem = db_->Attr("p_item");
  AttrId loc = db_->Attr("s_location"), svloc = db_->Attr("sv_location");
  FdbResult joined =
      engine_.JoinFactorised(r1.rep, rep2, {{item, pitem}, {loc, svloc}});
  joined.rep.Validate();

  // Reference: the five-way flat join.
  Query big;
  big.rels = {static_cast<RelId>(db_->catalog().FindRelation("Orders")),
              static_cast<RelId>(db_->catalog().FindRelation("Store")),
              static_cast<RelId>(db_->catalog().FindRelation("Disp")),
              static_cast<RelId>(db_->catalog().FindRelation("Produce")),
              static_cast<RelId>(db_->catalog().FindRelation("Serve"))};
  big.equalities = {{db_->Attr("o_item"), db_->Attr("s_item")},
                    {db_->Attr("s_location"), db_->Attr("d_location")},
                    {db_->Attr("supplier"), db_->Attr("sv_supplier")},
                    {item, pitem},
                    {loc, svloc}};
  RdbResult flat = engine_.ExecuteRdb(big);
  EXPECT_TRUE(SameRelation(joined.rep, flat.relation));
}

TEST_F(EngineTest, SqlEndToEnd) {
  FdbResult res = engine_.Execute(
      "SELECT * FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location");
  EXPECT_EQ(res.FlatTuples(), 14.0);
}

TEST_F(EngineTest, SqlWithConstantAndProjection) {
  FdbResult res = engine_.Execute(
      "SELECT oid, s_location FROM Orders, Store "
      "WHERE o_item = s_item AND o_item = 'Milk'");
  res.rep.Validate();
  // Milk is ordered once (oid 1) and stocked in 3 locations.
  EXPECT_EQ(res.FlatTuples(), 3.0);
  EXPECT_EQ(res.rep.tree().VisibleAttrs(),
            AttrSet::Of({db_->Attr("oid"), db_->Attr("s_location")}));
}

TEST_F(EngineTest, ProjectionMatchesRdb) {
  Query q1 = GroceryQ1(*db_);
  q1.projection = AttrSet::Of({db_->Attr("oid"), db_->Attr("dispatcher")});
  FdbResult fdb = engine_.EvaluateFlat(q1);
  RdbResult rdb = engine_.ExecuteRdb(q1);
  fdb.rep.Validate();
  EXPECT_TRUE(SameRelation(fdb.rep, rdb.relation));
}

TEST_F(EngineTest, ConstPredicatesMatchRdb) {
  Query q1 = GroceryQ1(*db_);
  q1.const_preds = {
      {db_->Attr("oid"), CmpOp::kGe, 2},
      {db_->Attr("dispatcher"), CmpOp::kEq,
       db_->dict().Lookup("Adnan")}};
  FdbResult fdb = engine_.EvaluateFlat(q1);
  RdbResult rdb = engine_.ExecuteRdb(q1);
  fdb.rep.Validate();
  EXPECT_TRUE(SameRelation(fdb.rep, rdb.relation));
}

TEST_F(EngineTest, GreedyEngineSameResult) {
  EngineOptions opts;
  opts.greedy_optimizer = true;
  Engine greedy(db_.get(), opts);
  FdbResult r1 = engine_.EvaluateFlat(GroceryQ1(*db_));
  // Run an extra join on the factorised result with both optimisers.
  AttrId oid = db_->Attr("oid"), disp = db_->Attr("dispatcher");
  (void)disp;
  FdbResult a = engine_.EvaluateOnFRep(r1.rep, {{oid, oid}});
  FdbResult b = greedy.EvaluateOnFRep(r1.rep, {{oid, oid}});
  EXPECT_EQ(MaterializeVisible(a.rep) == MaterializeVisible(b.rep), true);
}

TEST_F(EngineTest, EvaluateOnFRepWithConstAndProjection) {
  FdbResult r1 = engine_.EvaluateFlat(GroceryQ1(*db_));
  AttrId oid = db_->Attr("oid");
  AttrSet keep = AttrSet::Of({db_->Attr("o_item"), oid});
  FdbResult res = engine_.EvaluateOnFRep(
      r1.rep, {}, {{oid, CmpOp::kLe, 2}}, keep);
  res.rep.Validate();

  Query q1 = GroceryQ1(*db_);
  q1.const_preds = {{oid, CmpOp::kLe, 2}};
  q1.projection = keep;
  RdbResult rdb = engine_.ExecuteRdb(q1);
  EXPECT_TRUE(SameRelation(res.rep, rdb.relation));
}

TEST_F(EngineTest, VdbAgreesOnGrocery) {
  Query q1 = GroceryQ1(*db_);
  VdbResult vdb = engine_.ExecuteVdb(q1);
  RdbResult rdb = engine_.ExecuteRdb(q1);
  EXPECT_EQ(vdb.NumTuples(), rdb.NumTuples());
}

TEST_F(EngineTest, PrintedFactorisationMentionsGroceries) {
  FdbResult res = engine_.EvaluateFlat(GroceryQ2(*db_));
  PrintOptions popts;
  popts.catalog = &db_->catalog();
  popts.dict = &db_->dict();
  popts.unicode = false;
  std::string s = ToExpressionString(res.rep, popts);
  EXPECT_NE(s.find("Guney"), std::string::npos);
  EXPECT_NE(s.find("Antalya"), std::string::npos);
}

}  // namespace
}  // namespace fdb
