#include <gtest/gtest.h>

#include "opt/estimates.h"
#include "opt/fplan_search.h"
#include "opt/ftree_search.h"
#include "opt/greedy.h"
#include "storage/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

// Builds a QueryInfo for a synthetic catalog-free setting: relation r
// covers the attributes in rel_attrs[r].
QueryInfo MakeInfo(std::vector<AttrSet> rel_attrs,
                   std::vector<std::pair<AttrId, AttrId>> eqs) {
  QueryInfo info;
  info.num_rels = static_cast<int>(rel_attrs.size());
  info.rel_attrs = std::move(rel_attrs);
  info.attr_rel.assign(kMaxAttrs, -1);
  for (int r = 0; r < info.num_rels; ++r) {
    for (AttrId a : info.rel_attrs[static_cast<size_t>(r)]) {
      info.attr_rel[a] = r;
      info.all_attrs.Add(a);
    }
  }
  info.classes = EqualityClasses(info.all_attrs, eqs);
  info.projection = info.all_attrs;
  return info;
}

TEST(FTreeSearch, GroceryQ2HasCostOne) {
  // Q2 = Produce(supplier,item) |x| Serve(supplier',location):
  // s(Q2) = 1 via T3 (Example 4/5).
  QueryInfo info = MakeInfo({AttrSet::Of({0, 1}), AttrSet::Of({2, 3})},
                            {{0, 2}});
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_NEAR(res.cost, 1.0, 1e-6);
  res.tree.Validate();
  EXPECT_TRUE(res.tree.SatisfiesPathConstraint());
  EXPECT_TRUE(res.tree.IsNormalized());
}

TEST(FTreeSearch, GroceryQ1HasCostTwo) {
  // Q1 = Orders(oid,item) |x| Store(loc,item') |x| Disp(disp,loc'):
  // s(Q1) = 2 (Example 5).
  QueryInfo info = MakeInfo({AttrSet::Of({0, 1}), AttrSet::Of({2, 3}),
                             AttrSet::Of({4, 5})},
                            {{1, 3}, {2, 5}});
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_NEAR(res.cost, 2.0, 1e-6);
}

TEST(FTreeSearch, SingleRelationIsPath) {
  QueryInfo info = MakeInfo({AttrSet::Of({0, 1, 2})}, {});
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_NEAR(res.cost, 1.0, 1e-6);
  EXPECT_EQ(res.tree.NumAlive(), 3);
  EXPECT_EQ(res.tree.roots().size(), 1u);  // all attrs dependent: a path
}

TEST(FTreeSearch, CartesianProductIsForest) {
  QueryInfo info = MakeInfo({AttrSet::Of({0}), AttrSet::Of({1})}, {});
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_NEAR(res.cost, 1.0, 1e-6);
  EXPECT_EQ(res.tree.roots().size(), 2u);
}

TEST(FTreeSearch, TriangleQueryFractionalCost) {
  // R(A,B), S(B',C), T(C',A'): the triangle join has s = 1.5.
  QueryInfo info = MakeInfo(
      {AttrSet::Of({0, 1}), AttrSet::Of({2, 3}), AttrSet::Of({4, 5})},
      {{1, 2}, {3, 4}, {5, 0}});
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_NEAR(res.cost, 1.5, 1e-6);
}

TEST(FTreeSearch, ChainQueryCosts) {
  // Example 6: chain of equality joins R1(A1,B1) |x| ... with B_i = A_{i+1}.
  auto chain_info = [](int n) {
    std::vector<AttrSet> rels;
    std::vector<std::pair<AttrId, AttrId>> eqs;
    for (int i = 0; i < n; ++i) {
      AttrId a = static_cast<AttrId>(2 * i), b = static_cast<AttrId>(2 * i + 1);
      rels.push_back(AttrSet::Of({a, b}));
      if (i > 0) eqs.emplace_back(static_cast<AttrId>(2 * i - 1), a);
    }
    return MakeInfo(rels, eqs);
  };
  EdgeCoverSolver solver;
  EXPECT_NEAR(FindOptimalFTree(chain_info(2), solver).cost, 1.0, 1e-6);
  EXPECT_NEAR(FindOptimalFTree(chain_info(3), solver).cost, 2.0, 1e-6);
  EXPECT_NEAR(FindOptimalFTree(chain_info(4), solver).cost, 2.0, 1e-6);
  // Logarithmic growth: n = 8 stays well below the path bound of 5.
  double c8 = FindOptimalFTree(chain_info(8), solver).cost;
  EXPECT_LE(c8, 3.0 + 1e-6);
  EXPECT_GE(c8, 2.0 - 1e-6);
}

TEST(FTreeSearch, PaperScaleSmokeTest) {
  // R = 8 relations, A = 40 attributes, K = 6 equalities (Fig. 5 scale).
  WorkloadSpec spec;
  spec.num_rels = 8;
  spec.num_attrs = 40;
  spec.tuples_per_rel = 1;  // data irrelevant for optimisation
  spec.num_equalities = 6;
  spec.seed = 11;
  GeneratedWorkload w = GenerateWorkload(spec);
  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  auto res = FindOptimalFTree(info, solver);
  EXPECT_GE(res.cost, 1.0 - 1e-6);
  EXPECT_LE(res.cost, 3.0 + 1e-6);  // "rarely above 2" per the paper
  res.tree.Validate();
  EXPECT_TRUE(res.tree.SatisfiesPathConstraint());
}

// ---------- F-plan search ----------

// Example 11's input: root {A,D} (classes of two ternary relations),
// children B (child C) and E (child F); R0 = {A,B,C}, R1 = {D,E,F}.
FTree Example11Tree() {
  FTree t;
  AttrSet cad = AttrSet::Of({0, 3});
  int nad = t.NewNode(cad, cad, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  int nb = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int nc = t.NewNode(AttrSet::Of({2}), AttrSet::Of({2}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int ne = t.NewNode(AttrSet::Of({4}), AttrSet::Of({4}), RelSet::Of({1}),
                     RelSet::Of({1}));
  int nf = t.NewNode(AttrSet::Of({5}), AttrSet::Of({5}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(nad);
  t.AttachChild(nad, nb);
  t.AttachChild(nb, nc);
  t.AttachChild(nad, ne);
  t.AttachChild(ne, nf);
  t.Validate();
  return t;
}

TEST(FPlanSearch, Example11FindsCostOnePlan) {
  FTree t = Example11Tree();
  EdgeCoverSolver solver;
  EXPECT_NEAR(t.Cost(solver), 1.0, 1e-6);

  auto res = FindOptimalFPlan(t, {{1, 5}}, solver);  // B = F
  EXPECT_TRUE(res.complete);
  // The naive absorb-based plan costs 2; the optimal plan (swap chi_{E,F}
  // then merge mu_{B,F}) stays at cost 1.
  EXPECT_NEAR(res.plan.cost_max_s, 1.0, 1e-6);
  EXPECT_NEAR(res.plan.result_s, 1.0, 1e-6);
  // Equality satisfied in the final tree.
  EXPECT_EQ(res.final_tree.FindAttr(1), res.final_tree.FindAttr(5));
  res.final_tree.Validate();
  EXPECT_TRUE(res.final_tree.SatisfiesPathConstraint());
}

TEST(FPlanSearch, AlreadySatisfiedIsEmptyPlan) {
  FTree t = Example11Tree();
  EdgeCoverSolver solver;
  auto res = FindOptimalFPlan(t, {{0, 3}}, solver);  // A = D already merged
  EXPECT_TRUE(res.plan.steps.empty());
}

TEST(FPlanSearch, MultipleEqualities) {
  FTree t = Example11Tree();
  EdgeCoverSolver solver;
  auto res = FindOptimalFPlan(t, {{1, 4}, {2, 5}}, solver);  // B=E, C=F
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.final_tree.FindAttr(1), res.final_tree.FindAttr(4));
  EXPECT_EQ(res.final_tree.FindAttr(2), res.final_tree.FindAttr(5));
  EXPECT_TRUE(res.final_tree.SatisfiesPathConstraint());
}

TEST(Greedy, MatchesSearchOnExample11) {
  FTree t = Example11Tree();
  EdgeCoverSolver solver;
  auto full = FindOptimalFPlan(t, {{1, 5}}, solver);
  auto greedy = GreedyFPlan(t, {{1, 5}}, solver);
  EXPECT_EQ(greedy.final_tree.FindAttr(1), greedy.final_tree.FindAttr(5));
  // Greedy is never better than full search; here it matches it.
  EXPECT_GE(greedy.plan.cost_max_s + 1e-6, full.plan.cost_max_s);
  EXPECT_NEAR(greedy.plan.cost_max_s, 1.0, 1e-6);
}

TEST(Greedy, NeverBeatsFullSearchOnRandomTrees) {
  EdgeCoverSolver solver;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    WorkloadSpec spec;
    spec.num_rels = 3;
    spec.num_attrs = 8;
    spec.tuples_per_rel = 1;
    spec.num_equalities = 2;
    spec.seed = seed;
    GeneratedWorkload w = GenerateWorkload(spec);
    QueryInfo info = AnalyzeQuery(w.catalog, w.query);
    auto t = FindOptimalFTree(info, solver);

    Rng rng(seed * 99);
    auto extra = DrawExtraEqualities(info.classes, 2, rng);
    if (extra.empty()) continue;

    auto full = FindOptimalFPlan(t.tree, extra, solver);
    auto greedy = GreedyFPlan(t.tree, extra, solver);
    EXPECT_GE(greedy.plan.cost_max_s + 1e-6, full.plan.cost_max_s)
        << "seed " << seed;
    // Both must satisfy all equalities.
    for (const auto& [a, b] : extra) {
      EXPECT_EQ(full.final_tree.FindAttr(a), full.final_tree.FindAttr(b));
      EXPECT_EQ(greedy.final_tree.FindAttr(a), greedy.final_tree.FindAttr(b));
    }
  }
}

TEST(Estimates, StatsAndPathCardinality) {
  Relation r({0, 1});
  for (Value v = 1; v <= 10; ++v) r.AddTuple({v, v % 3});
  Relation s({2});
  for (Value v = 1; v <= 4; ++v) s.AddTuple({v});
  DatabaseStats stats = DatabaseStats::Compute({&r, &s});
  EXPECT_EQ(stats.rel_size[0], 10.0);
  EXPECT_EQ(stats.attr_distinct[0], 10.0);
  EXPECT_EQ(stats.attr_distinct[1], 3.0);

  // Join of R and S on a class {1,2}: est = |R|*|S| / max(d1,d2) = 10.
  FTree t;
  AttrSet cls = AttrSet::Of({1, 2});
  int n = t.NewNode(cls, cls, RelSet::Of({0, 1}), RelSet::Of({0, 1}));
  t.AttachRoot(n);
  std::vector<int> path{n};
  double est = EstimatePathCardinality(stats, t, path);
  // Capped by the distinct bound min(3,4) = 3.
  EXPECT_NEAR(est, 3.0, 1e-9);
}

TEST(Estimates, FRepSizeSumsOverNodes) {
  Relation r({0, 1});
  for (Value v = 0; v < 6; ++v) r.AddTuple({v / 2, v});
  DatabaseStats stats = DatabaseStats::Compute({&r});
  FTree t = PathFTree({0, 1}, 0);
  double est = EstimateFRepSize(stats, t);
  EXPECT_GT(est, 0.0);
  // Root contributes ~3 (distinct of attr 0), leaf ~6.
  EXPECT_NEAR(est, 9.0, 1.0);
}

TEST(FPlanSearch, EstimateModeProducesValidPlan) {
  FTree t = Example11Tree();
  // Fake stats: two ternary relations of 100 tuples, 10 distinct per attr.
  DatabaseStats stats;
  stats.rel_size = {100.0, 100.0};
  stats.attr_distinct.assign(kMaxAttrs, 10.0);
  EdgeCoverSolver solver;
  FPlanSearchOptions opts;
  opts.mode = CostMode::kEstimates;
  opts.stats = &stats;
  auto res = FindOptimalFPlan(t, {{1, 5}}, solver, opts);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.final_tree.FindAttr(1), res.final_tree.FindAttr(5));
}

}  // namespace
}  // namespace fdb
