#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/enumerate.h"
#include "core/ground.h"
#include "core/ops.h"
#include "opt/ftree_search.h"
#include "storage/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

// Reference aggregates by enumeration.
struct Ref {
  double count = 0, sum = 0;
  Value min = std::numeric_limits<Value>::max();
  Value max = std::numeric_limits<Value>::min();
  std::set<Value> distinct;
};

Ref Enumerated(const FRep& rep, AttrId attr) {
  Ref ref;
  TupleEnumerator en(rep);
  while (en.Next()) {
    Value v = en.ValueOf(attr);
    ref.count += 1;
    ref.sum += static_cast<double>(v);
    ref.min = std::min(ref.min, v);
    ref.max = std::max(ref.max, v);
    ref.distinct.insert(v);
  }
  return ref;
}

TEST(Aggregate, SingleRelation) {
  Relation r = MakeRel({0, 1}, {{1, 10}, {1, 20}, {2, 30}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_EQ(Count(rep), 3.0);
  EXPECT_EQ(Sum(rep, 1), 60.0);
  EXPECT_EQ(Sum(rep, 0), 4.0);
  EXPECT_EQ(Min(rep, 1), 10);
  EXPECT_EQ(Max(rep, 1), 30);
  EXPECT_NEAR(Avg(rep, 1), 20.0, 1e-9);
  EXPECT_EQ(CountDistinct(rep, 0), 2u);
  EXPECT_EQ(CountDistinct(rep, 1), 3u);
}

TEST(Aggregate, SumDistributesOverProduct) {
  // R(A) x S(B): SUM(A) = sum_A(R) * |S|, computed without expanding the
  // product.
  Relation r = MakeRel({0}, {{1}, {2}, {3}});
  Relation s = MakeRel({1}, {{10}, {20}});
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  EXPECT_EQ(Count(prod), 6.0);
  EXPECT_EQ(Sum(prod, 0), 6.0 * 2.0 / 1.0);  // (1+2+3) * |S|
  EXPECT_EQ(Sum(prod, 1), 30.0 * 3.0 / 1.0); // (10+20) * |R|
  EXPECT_EQ(Min(prod, 1), 10);
  EXPECT_EQ(Max(prod, 0), 3);
}

TEST(Aggregate, NestedFactorisation) {
  // Grouped structure: A -> B; sums must weight B-sums by group sizes.
  Relation r = MakeRel({0, 1}, {{1, 5}, {1, 7}, {2, 9}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_EQ(Sum(rep, 1), 21.0);
  EXPECT_EQ(Sum(rep, 0), 1.0 + 1.0 + 2.0);
}

TEST(Aggregate, EmptyRelation) {
  FRep rep{PathFTree({0}, 0)};
  EXPECT_EQ(Count(rep), 0.0);
  EXPECT_EQ(Sum(rep, 0), 0.0);
  EXPECT_EQ(CountDistinct(rep, 0), 0u);
  EXPECT_THROW(Min(rep, 0), FdbError);
  EXPECT_THROW(Max(rep, 0), FdbError);
  EXPECT_THROW(Avg(rep, 0), FdbError);
}

TEST(Aggregate, NullaryRelation) {
  // The nullary relation <> (non-empty rep over the empty forest): COUNT
  // is 1; attribute aggregates throw because no attribute labels a node.
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  EXPECT_EQ(Count(rep), 1.0);
  EXPECT_EQ(rep.CountTuplesExact(), 1u);
  EXPECT_THROW(Sum(rep, 0), FdbError);
  EXPECT_THROW(Avg(rep, 0), FdbError);
  EXPECT_THROW(Min(rep, 0), FdbError);
  EXPECT_THROW(Max(rep, 0), FdbError);
  EXPECT_THROW(CountDistinct(rep, 0), FdbError);
}

// Product of `n` single-attribute relations with `vals` distinct values
// each: an adversarial rep with vals^n tuples in O(n * vals) space.
FRep BigProduct(int n, Value vals) {
  Relation r({0});
  for (Value v = 1; v <= vals; ++v) r.AddTuple({v});
  FRep rep = GroundRelation(r, 0);
  for (AttrId a = 1; a < static_cast<AttrId>(n); ++a) {
    Relation s({a});
    for (Value v = 1; v <= vals; ++v) s.AddTuple({v});
    rep = Product(rep, GroundRelation(s, static_cast<int>(a)));
  }
  return rep;
}

TEST(Aggregate, CountStaysExactPastDoublePrecision) {
  // 40^10 = 10485760000000000 > 2^53: the uint64 DP keeps it exact where
  // double accumulation could round.
  FRep rep = BigProduct(10, 40);
  EXPECT_EQ(rep.CountTuplesExact(), 10485760000000000ull);
  bool exact = false;
  EXPECT_EQ(rep.CountTuples(&exact), 1.048576e16);
  EXPECT_TRUE(exact);  // this count round-trips through double
  // SUM(attr0) = (1+...+40) * 40^9 — still a doubles-exact product here.
  EXPECT_EQ(Sum(rep, 0), 820.0 * 262144000000000.0);
}

TEST(Aggregate, CountSaturationIsDetected) {
  // 300^8 = 6.561e19 > 2^64: the count saturates uint64. CountTuples
  // flags the approximation, CountTuplesExact and the weighted SUM/AVG
  // DP throw instead of returning subtly wrong values.
  FRep rep = BigProduct(8, 300);
  bool exact = true;
  double approx = rep.CountTuples(&exact);
  EXPECT_FALSE(exact);
  EXPECT_NEAR(approx, 6.561e19, 1e6);
  EXPECT_THROW(rep.CountTuplesExact(), FdbError);
  EXPECT_THROW(Sum(rep, 0), FdbError);
  EXPECT_THROW(Avg(rep, 0), FdbError);
  // MIN/MAX/COUNT DISTINCT need no counting and keep working.
  EXPECT_EQ(Min(rep, 0), 1);
  EXPECT_EQ(Max(rep, 0), 300);
  EXPECT_EQ(CountDistinct(rep, 0), 300u);
}

TEST(Aggregate, UnknownAttributeThrows) {
  Relation r = MakeRel({0}, {{1}});
  FRep rep = GroundRelation(r, 0);
  EXPECT_THROW(Sum(rep, 42), FdbError);
  EXPECT_THROW(Min(rep, 42), FdbError);
}

TEST(Aggregate, ClassAttributesShareValues) {
  // Class {A,B}: SUM(A) = SUM(B).
  Relation r = MakeRel({0, 1}, {{3, 3}, {4, 4}});
  FTree t;
  AttrSet cls = AttrSet::Of({0, 1});
  int n = t.NewNode(cls, cls, RelSet::Of({0}), RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep = GroundQuery(t, {&r});
  EXPECT_EQ(Sum(rep, 0), 7.0);
  EXPECT_EQ(Sum(rep, 1), 7.0);
}

TEST(Aggregate, MatchesEnumerationOnGrocery) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(testing_util::GroceryQ1(*db));
  for (const char* name : {"oid", "o_item", "dispatcher"}) {
    AttrId a = db->Attr(name);
    Ref ref = Enumerated(res.rep, a);
    EXPECT_EQ(Count(res.rep), ref.count);
    EXPECT_NEAR(Sum(res.rep, a), ref.sum, 1e-9) << name;
    EXPECT_EQ(Min(res.rep, a), ref.min) << name;
    EXPECT_EQ(Max(res.rep, a), ref.max) << name;
    EXPECT_EQ(CountDistinct(res.rep, a), ref.distinct.size()) << name;
  }
}

class AggregateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateProperty, MatchesEnumerationOnRandomJoins) {
  WorkloadSpec spec;
  spec.num_rels = 3;
  spec.num_attrs = 7;
  spec.tuples_per_rel = 30;
  spec.domain = 6;
  spec.num_equalities = 2;
  spec.seed = GetParam();
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);
  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  FRep rep = GroundQuery(FindOptimalFTree(info, solver).tree, rels);
  if (rep.empty()) GTEST_SKIP();
  for (AttrId a : info.all_attrs) {
    Ref ref = Enumerated(rep, a);
    EXPECT_NEAR(Sum(rep, a), ref.sum, 1e-6) << "attr " << a;
    EXPECT_EQ(Min(rep, a), ref.min) << "attr " << a;
    EXPECT_EQ(Max(rep, a), ref.max) << "attr " << a;
    EXPECT_EQ(CountDistinct(rep, a), ref.distinct.size()) << "attr " << a;
    EXPECT_EQ(Count(rep), ref.count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fdb
