#include <gtest/gtest.h>

#include "storage/generator.h"

namespace fdb {
namespace {

TEST(Generator, DistributeAttrsEvenly) {
  EXPECT_EQ(DistributeAttrs(10, 4), (std::vector<int>{3, 3, 2, 2}));
  EXPECT_EQ(DistributeAttrs(40, 8), std::vector<int>(8, 5));
  EXPECT_EQ(DistributeAttrs(3, 3), (std::vector<int>{1, 1, 1}));
  EXPECT_THROW(DistributeAttrs(2, 3), FdbError);
}

TEST(Generator, RelationWithinDomain) {
  Rng rng(1);
  Relation r = GenerateRelation({0, 1, 2}, 500, 20, Distribution::kUniform,
                                1.0, rng);
  EXPECT_EQ(r.size(), 500u);
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GE(r.At(i, c), 1);
      EXPECT_LE(r.At(i, c), 20);
    }
  }
}

TEST(Generator, ZipfSkew) {
  Rng rng(2);
  Relation r =
      GenerateRelation({0}, 5000, 100, Distribution::kZipf, 1.0, rng);
  size_t ones = 0;
  for (size_t i = 0; i < r.size(); ++i) ones += r.At(i, 0) == 1 ? 1 : 0;
  EXPECT_GT(ones, r.size() / 12);  // far above the uniform 1%
}

TEST(Generator, WorkloadShape) {
  WorkloadSpec spec;
  spec.num_rels = 4;
  spec.num_attrs = 10;
  spec.tuples_per_rel = 50;
  spec.num_equalities = 3;
  GeneratedWorkload w = GenerateWorkload(spec);
  EXPECT_EQ(w.relations.size(), 4u);
  EXPECT_EQ(w.catalog.num_attrs(), 10u);
  EXPECT_EQ(w.query.rels.size(), 4u);
  EXPECT_EQ(w.query.equalities.size(), 3u);
  // Non-redundant: K equalities leave exactly A - K classes.
  auto classes = EqualityClasses(AttrSet::FirstN(10), w.query.equalities);
  EXPECT_EQ(classes.size(), 7u);
}

TEST(Generator, WorkloadDeterministicPerSeed) {
  WorkloadSpec spec;
  spec.tuples_per_rel = 20;
  spec.seed = 9;
  GeneratedWorkload w1 = GenerateWorkload(spec);
  GeneratedWorkload w2 = GenerateWorkload(spec);
  EXPECT_EQ(w1.query.equalities, w2.query.equalities);
  EXPECT_TRUE(w1.relations[0] == w2.relations[0]);
}

TEST(Generator, RejectsTooManyEqualities) {
  WorkloadSpec spec;
  spec.num_attrs = 4;
  spec.num_rels = 2;
  spec.num_equalities = 4;  // >= A
  EXPECT_THROW(GenerateWorkload(spec), FdbError);
}

TEST(Generator, ExtraEqualitiesMergeDistinctGroups) {
  Rng rng(5);
  std::vector<AttrSet> classes = {AttrSet::Of({0}), AttrSet::Of({1, 2}),
                                  AttrSet::Of({3}), AttrSet::Of({4})};
  auto eqs = DrawExtraEqualities(classes, 3, rng);
  EXPECT_EQ(eqs.size(), 3u);
  // After 3 merges of 4 groups exactly one group remains; a fourth draw is
  // impossible.
  auto more = DrawExtraEqualities(classes, 4, rng);
  EXPECT_EQ(more.size(), 3u);
}

}  // namespace
}  // namespace fdb
