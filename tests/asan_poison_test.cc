// Poisoning semantics of the FRep arena slack (common/asan.h).
//
// Two directions, mirroring the cmake/CheckThreadSafety.cmake probe idea:
//   * every legal arena lifecycle — growth across reallocations, builder
//     scratch recycling, copy/move, MarkEmpty() and rebuild, serialize
//     round-trips — must stay clean under ASan (these tests run in every
//     build, and the ASan CI job runs them with poisoning armed);
//   * a deliberate read past a union's live window into the arena's spare
//     capacity must be *caught* as use-after-poison when ASan is on. That
//     read is exactly the class of bug ASan alone cannot see: the bytes
//     are inside a valid heap chunk, so only the manual slack poisoning
//     turns it into a fault. The death test proves the poisoning is armed,
//     not silently compiled out.
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/asan.h"
#include "core/frep.h"
#include "core/serialize.h"
#include "core/validate.h"

namespace fdb {
namespace {

// One visible node over attribute 0, relation 0 — the smallest tree that
// admits non-empty representations.
FTree OneNodeTree() {
  FTree t;
  int n = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));
  t.AttachRoot(n);
  return t;
}

// A parent/child tree (attribute 0 over attribute 1) for nested builders.
FTree TwoNodeTree() {
  FTree t;
  int a = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));
  int b = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({0}),
                    RelSet::Of({0}));
  t.AttachRoot(a);
  t.AttachChild(a, b);
  return t;
}

TEST(AsanPoison, HelpersAreNoOpsWithoutAsan) {
  if (asan::kEnabled) GTEST_SKIP() << "helpers are live under ASan";
  int64_t buf[4] = {1, 2, 3, 4};
  asan::Poison(buf, sizeof(buf));
  EXPECT_EQ(buf[2], 3);  // poisoning compiled to nothing
  asan::Unpoison(buf, sizeof(buf));
  std::vector<int64_t> v;
  v.reserve(8);
  v.push_back(7);
  asan::PoisonTail(v);
  asan::UnpoisonTail(v);
  EXPECT_EQ(v[0], 7);
}

// Growth across many reallocations: every committed window must stay
// readable while the slack beyond it moves and gets re-poisoned.
TEST(AsanPoison, ArenaGrowthKeepsLiveWindowsReadable) {
  FRep rep(OneNodeTree());
  rep.MarkNonEmpty();
  uint32_t last = 0;
  for (int u = 0; u < 64; ++u) {
    UnionBuilder b = rep.StartUnion(0);
    for (int i = 0; i <= u; ++i) b.AddValue(i);
    last = b.Finish();
  }
  rep.roots().push_back(last);
  rep.Validate();
  // Read every committed value through the views (unreachable stubs too —
  // their windows are live arena, only the slack is poisoned).
  int64_t sum = 0;
  for (uint32_t id = 0; id < rep.NumUnions(); ++id) {
    UnionRef un = rep.u(id);
    for (size_t i = 0; i < un.size(); ++i) sum += un.value(i);
  }
  EXPECT_GT(sum, 0);
}

TEST(AsanPoison, MarkEmptyAndRebuild) {
  FRep rep(OneNodeTree());
  rep.MarkNonEmpty();
  {
    UnionBuilder b = rep.StartUnion(0);
    for (int i = 0; i < 100; ++i) b.AddValue(i);
    rep.roots().push_back(b.Finish());
  }
  rep.Validate();
  rep.MarkEmpty();
  EXPECT_TRUE(rep.empty());
  rep.MarkNonEmpty();
  {
    UnionBuilder b = rep.StartUnion(0);
    b.AddValue(42);
    rep.roots().push_back(b.Finish());
  }
  rep.Validate();
  EXPECT_EQ(rep.u(rep.roots()[0]).value(0), 42);
}

TEST(AsanPoison, CopyAndMovePreservePoisonConsistency) {
  FRep rep(OneNodeTree());
  rep.MarkNonEmpty();
  {
    UnionBuilder b = rep.StartUnion(0);
    for (int i = 0; i < 37; ++i) b.AddValue(i * 3);
    rep.roots().push_back(b.Finish());
  }
  FRep copy(rep);
  copy.Validate();
  EXPECT_EQ(copy.u(copy.roots()[0]).value(36 /*last*/), 36 * 3);
  FRep moved(std::move(copy));
  moved.Validate();
  EXPECT_EQ(moved.u(moved.roots()[0]).value(0), 0);
  // Append to the moved-to representation: its arenas must accept growth.
  UnionBuilder b = moved.StartUnion(0);
  b.AddValue(1000);
  b.Finish();
}

// Nested and abandoned builders drive the scratch-recycling poison cycle:
// released buffers are fully poisoned while parked, re-admitted on reuse.
TEST(AsanPoison, BuilderScratchRecycling) {
  FRep rep(TwoNodeTree());
  rep.MarkNonEmpty();
  for (int round = 0; round < 8; ++round) {
    UnionBuilder parent = rep.StartUnion(0);
    for (int e = 0; e < 4; ++e) {
      UnionBuilder child = rep.StartUnion(1);
      for (int i = 0; i < 16; ++i) child.AddValue(i + e);
      parent.AddValue(e);
      parent.AddChild(child.Finish());
    }
    UnionBuilder doomed = rep.StartUnion(1);
    doomed.AddValue(999);
    doomed.Abandon();  // must poison its scratch without faulting
    if (round + 1 == 8) {
      rep.roots().push_back(parent.Finish());
    } else {
      parent.Abandon();
    }
  }
  rep.Validate();
  FDB_VALIDATE_REP(rep);
}

TEST(AsanPoison, SerializeRoundTripUnderPoison) {
  FRep rep(TwoNodeTree());
  rep.MarkNonEmpty();
  UnionBuilder parent = rep.StartUnion(0);
  for (int e = 0; e < 5; ++e) {
    UnionBuilder child = rep.StartUnion(1);
    for (int i = 0; i < 3; ++i) child.AddValue(10 * e + i);
    parent.AddValue(e);
    parent.AddChild(child.Finish());
  }
  rep.roots().push_back(parent.Finish());

  std::ostringstream o1;
  WriteFRep(o1, rep);
  std::istringstream i1(o1.str());
  FRep back = ReadFRep(i1);
  std::ostringstream o2;
  WriteFRep(o2, back);
  EXPECT_EQ(o1.str(), o2.str());
}

// The armed probe: a read one past a union's live window, inside the value
// arena's spare capacity. Without the manual poisoning this read is
// invisible to ASan (the address is a valid heap byte); with it, ASan must
// kill the process with a use-after-poison report.
TEST(AsanPoisonDeathTest, SlackReadIsCaught) {
  if (!asan::kEnabled) {
    GTEST_SKIP() << "probe needs AddressSanitizer (FDB_SANITIZE=ON)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FRep rep(OneNodeTree());
  rep.MarkNonEmpty();
  {
    // First union fills the initial allocation exactly; the second forces a
    // geometric growth, leaving real slack behind its one-value window.
    UnionBuilder a = rep.StartUnion(0);
    for (int i = 0; i < 5; ++i) a.AddValue(i);
    a.Finish();  // unreachable stub — reachability is irrelevant here
    UnionBuilder b = rep.StartUnion(0);
    b.AddValue(99);
    rep.roots().push_back(b.Finish());
  }
  rep.Validate();
  ASSERT_GT(rep.ValueArenaCapacity(), rep.ValueArenaSize())
      << "probe needs spare capacity behind the live arena";
  UnionRef last = rep.u(rep.roots()[0]);
  EXPECT_DEATH(
      {
        const Value* beyond = last.values() + last.size();
        volatile Value leaked = *beyond;  // first byte of poisoned slack
        (void)leaked;
      },
      "use-after-poison");
}

}  // namespace
}  // namespace fdb
