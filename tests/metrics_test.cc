// Tests for common/metrics.h: counters, gauges, histogram recording and
// quantile extraction, registry get-or-create semantics, the Prometheus
// text exposition, and lock-free concurrent recording.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace fdb {
namespace {

TEST(Counter, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Increment(0);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Set(0);
  EXPECT_EQ(g.Value(), 0);
}

TEST(Histogram, BoundsAreStrictlyAscending) {
  const auto& bounds = Histogram::Bounds();
  ASSERT_EQ(bounds.size(), Histogram::kNumBounds);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at " << i;
  }
  EXPECT_GT(bounds.front(), 0.0);
}

TEST(Histogram, EmptySnapshot) {
  Histogram h;
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum_seconds, 0.0);
  EXPECT_EQ(s.max_seconds, 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  for (uint64_t b : s.buckets) EXPECT_EQ(b, 0u);
}

TEST(Histogram, RecordFillsCountSumMax) {
  Histogram h;
  h.Record(0.001);
  h.Record(0.002);
  h.Record(0.004);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum_seconds, 0.007, 1e-6);
  EXPECT_NEAR(s.max_seconds, 0.004, 1e-6);
  uint64_t total = 0;
  for (uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
}

TEST(Histogram, BucketAssignmentMatchesLeSemantics) {
  const auto& bounds = Histogram::Bounds();
  Histogram h;
  // A sample exactly on a boundary counts into that boundary's bucket
  // (Prometheus `le` = less-or-equal).
  h.Record(bounds[3]);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[3], 1u);
  // Just past the boundary lands one bucket later.
  Histogram h2;
  h2.Record(bounds[3] * 1.0001);
  Histogram::Snapshot s2 = h2.snapshot();
  EXPECT_EQ(s2.buckets[4], 1u);
}

TEST(Histogram, OverflowBucketAndMax) {
  Histogram h;
  h.Record(1e6);  // way past the last bound
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[Histogram::kNumBounds], 1u);
  EXPECT_NEAR(s.max_seconds, 1e6, 1.0);
  // A rank landing in the overflow bucket reports the max.
  EXPECT_NEAR(s.Percentile(0.99), 1e6, 1.0);
}

TEST(Histogram, NegativeAndNanClampToZero) {
  Histogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[0], 2u);  // clamped samples fall in the first bucket
  EXPECT_EQ(s.sum_seconds, 0.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBracketed) {
  Histogram h;
  // 100 samples spread over four decades.
  for (int i = 0; i < 25; ++i) h.Record(5e-6);
  for (int i = 0; i < 25; ++i) h.Record(5e-5);
  for (int i = 0; i < 25; ++i) h.Record(5e-4);
  for (int i = 0; i < 25; ++i) h.Record(5e-3);
  Histogram::Snapshot s = h.snapshot();
  double p50 = s.Percentile(0.5);
  double p95 = s.Percentile(0.95);
  double p99 = s.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max_seconds);
  // p50 must fall within the second quarter's bucket range.
  EXPECT_GE(p50, 2.5e-5);
  EXPECT_LE(p50, 5e-5);
  // p99 lies in the top quarter.
  EXPECT_GE(p99, 2.5e-3);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("fdb_test_total");
  Counter& b = reg.GetCounter("fdb_test_total");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  // Distinct kinds share a namespace without colliding.
  Gauge& g = reg.GetGauge("fdb_test_total");
  g.Set(5);
  EXPECT_EQ(a.Value(), 1u);
  Histogram& h1 = reg.GetHistogram("fdb_test_seconds");
  Histogram& h2 = reg.GetHistogram("fdb_test_seconds");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// Minimal exposition parser: fills metric-line values keyed by the full
// name-with-labels, skipping # comments. Fails the test on malformed lines
// (void return because gtest ASSERT_* requires it).
void ParseExposition(const std::string& text,
                     std::map<std::string, double>* out) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    (*out)[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
  }
}

TEST(MetricsRegistry, ExpositionParsesAndMatchesValues) {
  MetricsRegistry reg;
  reg.GetCounter("fdb_a_total").Increment(3);
  reg.GetGauge("fdb_b_entries").Set(-2);
  Histogram& h = reg.GetHistogram("fdb_c_seconds");
  h.Record(0.5);
  h.Record(2.0);

  std::string text = reg.RenderPrometheus();
  std::map<std::string, double> vals;
  ParseExposition(text, &vals);

  EXPECT_EQ(vals.at("fdb_a_total"), 3.0);
  EXPECT_EQ(vals.at("fdb_b_entries"), -2.0);
  EXPECT_EQ(vals.at("fdb_c_seconds_count"), 2.0);
  EXPECT_NEAR(vals.at("fdb_c_seconds_sum"), 2.5, 1e-6);
  EXPECT_NEAR(vals.at("fdb_c_seconds_max"), 2.0, 1e-6);
  EXPECT_EQ(vals.at("fdb_c_seconds_bucket{le=\"+Inf\"}"), 2.0);
  EXPECT_TRUE(vals.count("fdb_c_seconds_p50"));
  EXPECT_TRUE(vals.count("fdb_c_seconds_p95"));
  EXPECT_TRUE(vals.count("fdb_c_seconds_p99"));
  // # TYPE declarations present for each kind.
  EXPECT_NE(text.find("# TYPE fdb_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fdb_b_entries gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fdb_c_seconds histogram"), std::string::npos);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("fdb_lat_seconds");
  h.Record(1e-6);
  h.Record(1e-3);
  h.Record(1.0);

  std::map<std::string, double> vals;
  ParseExposition(reg.RenderPrometheus(), &vals);
  // Cumulative: each bucket's value is >= its predecessor's, ending at the
  // total count in +Inf.
  double prev = 0.0;
  for (double bound : Histogram::Bounds()) {
    char le[32];
    std::snprintf(le, sizeof(le), "%g", bound);  // exposition label format
    std::string key = "fdb_lat_seconds_bucket{le=\"" + std::string(le) + "\"}";
    auto it = vals.find(key);
    ASSERT_NE(it, vals.end()) << key;
    EXPECT_GE(it->second, prev);
    prev = it->second;
  }
  EXPECT_EQ(vals.at("fdb_lat_seconds_bucket{le=\"+Inf\"}"), 3.0);
}

TEST(MetricsRegistry, ConcurrentRecordingLosesNothing) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("fdb_conc_total");
  Histogram& h = reg.GetHistogram("fdb_conc_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(1e-6 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t total = 0;
  for (uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

}  // namespace
}  // namespace fdb
