#include <gtest/gtest.h>

#include "lp/edge_cover.h"
#include "lp/simplex.h"

namespace fdb {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialSingleConstraint) {
  // min x s.t. x >= 1.
  auto res = SolveCoveringLp({{1.0}}, {1.0}, {1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
}

TEST(Simplex, PicksCheaperVariable) {
  // min 3x + y s.t. x + y >= 1: put all weight on y.
  auto res = SolveCoveringLp({{1.0, 1.0}}, {1.0}, {3.0, 1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
  EXPECT_NEAR(res.x[1], 1.0, kTol);
}

TEST(Simplex, TwoConstraintsShareVariable) {
  // min x1+x2+x3, x1+x2>=1, x2+x3>=1: x2=1 suffices.
  auto res = SolveCoveringLp({{1, 1, 0}, {0, 1, 1}}, {1, 1}, {1, 1, 1});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
}

TEST(Simplex, FractionalOptimum) {
  // The triangle: three constraints, each covered by two of three
  // variables; the optimum is 3 * 1/2 = 1.5, strictly below the integral 2.
  auto res = SolveCoveringLp({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}}, {1, 1, 1},
                             {1, 1, 1});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.5, kTol);
}

TEST(Simplex, InfeasibleWhenNoCover) {
  // min x s.t. 0*x >= 1 is infeasible.
  auto res = SolveCoveringLp({{0.0}}, {1.0}, {1.0});
  EXPECT_FALSE(res.feasible);
}

TEST(Simplex, RejectsNegativeRhs) {
  EXPECT_THROW(SolveCoveringLp({{1.0}}, {-1.0}, {1.0}), FdbError);
}

TEST(EdgeCover, SingleRelationCoversPath) {
  // Both classes covered by relation 0 (mask 0b1): one relation suffices.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b1, 0b1}), 1.0, kTol);
}

TEST(EdgeCover, PaperExample4) {
  // T1's path item - location - dispatcher over Orders(1), Store(2),
  // Disp(4): item covered by {Orders,Store} = 0b011, location by
  // {Store,Disp} = 0b110, dispatcher by {Disp} = 0b100 -> cost 2.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b011, 0b110, 0b100}), 2.0, kTol);
  // T3's path supplier - item over Produce(1), Serve(2): supplier covered
  // by both (0b11), item by Produce (0b01) -> cost 1.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b11, 0b01}), 1.0, kTol);
}

TEST(EdgeCover, TriangleQueryIsFractional) {
  // Classes AB, BC, CA over R(A,B)=1, S(B,C)=2, T(C,A)=4: each class
  // covered by two relations; rho* = 1.5 (Grohe-Marx).
  EXPECT_NEAR(FractionalEdgeCoverValue({0b011, 0b110, 0b101}), 1.5, kTol);
}

TEST(EdgeCover, EmptyPathIsFree) {
  EXPECT_NEAR(FractionalEdgeCoverValue({}), 0.0, kTol);
}

TEST(EdgeCover, ThrowsOnUncoveredClass) {
  EXPECT_THROW(FractionalEdgeCoverValue({0b0}), FdbError);
}

TEST(EdgeCoverSolver, CachesCanonicalInstances) {
  EdgeCoverSolver solver;
  double v1 = solver.Solve({0b011, 0b110, 0b100});
  // Permuted and duplicated masks canonicalise to the same key.
  double v2 = solver.Solve({0b100, 0b011, 0b110, 0b110});
  EXPECT_NEAR(v1, v2, kTol);
  EXPECT_EQ(solver.solve_count(), 1u);
  EXPECT_GE(solver.hit_count(), 1u);
}

TEST(EdgeCoverSolver, DominatedMasksDropped) {
  EdgeCoverSolver solver;
  // {0b1} subsumes {0b11}: covering the first class forces x0 = 1 which
  // covers the second.
  EXPECT_NEAR(solver.Solve({0b1, 0b11}), 1.0, kTol);
  EXPECT_NEAR(solver.Solve({0b1}), 1.0, kTol);
  // Both collapse to the same canonical instance.
  EXPECT_EQ(solver.solve_count(), 1u);
}

TEST(EdgeCover, LongChainAlternating) {
  // Chain of 4 classes covered by consecutive relation pairs; optimum picks
  // every other relation: 2.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b0011, 0b0110, 0b1100, 0b1000}),
              2.0, kTol);
}

}  // namespace
}  // namespace fdb
