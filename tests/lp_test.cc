#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "lp/edge_cover.h"
#include "lp/simplex.h"

namespace fdb {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialSingleConstraint) {
  // min x s.t. x >= 1.
  auto res = SolveCoveringLp({{1.0}}, {1.0}, {1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
}

TEST(Simplex, PicksCheaperVariable) {
  // min 3x + y s.t. x + y >= 1: put all weight on y.
  auto res = SolveCoveringLp({{1.0, 1.0}}, {1.0}, {3.0, 1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
  EXPECT_NEAR(res.x[1], 1.0, kTol);
}

TEST(Simplex, TwoConstraintsShareVariable) {
  // min x1+x2+x3, x1+x2>=1, x2+x3>=1: x2=1 suffices.
  auto res = SolveCoveringLp({{1, 1, 0}, {0, 1, 1}}, {1, 1}, {1, 1, 1});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, kTol);
}

TEST(Simplex, FractionalOptimum) {
  // The triangle: three constraints, each covered by two of three
  // variables; the optimum is 3 * 1/2 = 1.5, strictly below the integral 2.
  auto res = SolveCoveringLp({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}}, {1, 1, 1},
                             {1, 1, 1});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.5, kTol);
}

TEST(Simplex, InfeasibleWhenNoCover) {
  // min x s.t. 0*x >= 1 is infeasible.
  auto res = SolveCoveringLp({{0.0}}, {1.0}, {1.0});
  EXPECT_FALSE(res.feasible);
}

TEST(Simplex, RejectsNegativeRhs) {
  EXPECT_THROW(SolveCoveringLp({{1.0}}, {-1.0}, {1.0}), FdbError);
}

TEST(EdgeCover, SingleRelationCoversPath) {
  // Both classes covered by relation 0 (mask 0b1): one relation suffices.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b1, 0b1}), 1.0, kTol);
}

TEST(EdgeCover, PaperExample4) {
  // T1's path item - location - dispatcher over Orders(1), Store(2),
  // Disp(4): item covered by {Orders,Store} = 0b011, location by
  // {Store,Disp} = 0b110, dispatcher by {Disp} = 0b100 -> cost 2.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b011, 0b110, 0b100}), 2.0, kTol);
  // T3's path supplier - item over Produce(1), Serve(2): supplier covered
  // by both (0b11), item by Produce (0b01) -> cost 1.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b11, 0b01}), 1.0, kTol);
}

TEST(EdgeCover, TriangleQueryIsFractional) {
  // Classes AB, BC, CA over R(A,B)=1, S(B,C)=2, T(C,A)=4: each class
  // covered by two relations; rho* = 1.5 (Grohe-Marx).
  EXPECT_NEAR(FractionalEdgeCoverValue({0b011, 0b110, 0b101}), 1.5, kTol);
}

TEST(EdgeCover, EmptyPathIsFree) {
  EXPECT_NEAR(FractionalEdgeCoverValue({}), 0.0, kTol);
}

TEST(EdgeCover, ThrowsOnUncoveredClass) {
  EXPECT_THROW(FractionalEdgeCoverValue({0b0}), FdbError);
}

TEST(EdgeCoverSolver, CachesCanonicalInstances) {
  EdgeCoverSolver solver;
  double v1 = solver.Solve({0b011, 0b110, 0b100});
  // Permuted and duplicated masks canonicalise to the same key.
  double v2 = solver.Solve({0b100, 0b011, 0b110, 0b110});
  EXPECT_NEAR(v1, v2, kTol);
  EXPECT_EQ(solver.solve_count(), 1u);
  EXPECT_GE(solver.hit_count(), 1u);
}

TEST(EdgeCoverSolver, DominatedMasksDropped) {
  EdgeCoverSolver solver;
  // {0b1} subsumes {0b11}: covering the first class forces x0 = 1 which
  // covers the second.
  EXPECT_NEAR(solver.Solve({0b1, 0b11}), 1.0, kTol);
  EXPECT_NEAR(solver.Solve({0b1}), 1.0, kTol);
  // Both collapse to the same canonical instance.
  EXPECT_EQ(solver.solve_count(), 1u);
}

TEST(EdgeCover, LongChainAlternating) {
  // Chain of 4 classes covered by consecutive relation pairs; optimum picks
  // every other relation: 2.
  EXPECT_NEAR(FractionalEdgeCoverValue({0b0011, 0b0110, 0b1100, 0b1000}),
              2.0, kTol);
}

// Counters regression under concurrency: the serve path shares one solver
// across all workers (see the thread-safety note in lp/edge_cover.h). Every
// Solve call is either a hit or a solve — never lost, never double-counted
// — and concurrent solves of the same instance agree on the value.
TEST(EdgeCoverSolver, ConcurrentSolvesKeepCountersConsistent) {
  EdgeCoverSolver solver;
  // A few distinct canonical instances plus permuted aliases of each.
  const std::vector<std::vector<uint64_t>> instances = {
      {0b011, 0b110, 0b100}, {0b100, 0b011, 0b110},  // alias of the first
      {0b0011, 0b0110, 0b1100, 0b1000},
      {0b1, 0b10, 0b100},
      {0b111},
      {0b101, 0b011},
  };
  // Single-threaded reference values.
  EdgeCoverSolver reference;
  std::vector<double> expect;
  expect.reserve(instances.size());
  for (const auto& inst : instances) expect.push_back(reference.Solve(inst));

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        size_t i = static_cast<size_t>(t + r) % instances.size();
        if (std::abs(solver.Solve(instances[i]) - expect[i]) > kTol) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const uint64_t total = static_cast<uint64_t>(kThreads) * kRounds;
  // The invariant from the header: solve_count + hit_count == calls. Racing
  // threads may duplicate a solve (both miss before either inserts) but no
  // call may go uncounted.
  EXPECT_EQ(solver.solve_count() + solver.hit_count(), total);
  // 5 distinct canonical instances; duplicated first-solves are bounded by
  // the thread count per instance.
  EXPECT_GE(solver.solve_count(), 5u);
  EXPECT_LE(solver.solve_count(), 5u * kThreads);
  EXPECT_EQ(solver.cache_size(), 5u);
}

}  // namespace
}  // namespace fdb
