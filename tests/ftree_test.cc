#include <gtest/gtest.h>

#include "core/ftree.h"
#include "lp/edge_cover.h"

namespace fdb {
namespace {

// Builds a tree node-by-node: spec[i] = {attrs, cover_rels, parent index}.
struct NodeSpec {
  AttrSet attrs;
  RelSet rels;
  int parent;
};

FTree Build(const std::vector<NodeSpec>& spec) {
  FTree t;
  std::vector<int> ids;
  for (const NodeSpec& s : spec) {
    ids.push_back(t.NewNode(s.attrs, s.attrs, s.rels, s.rels));
  }
  for (size_t i = 0; i < spec.size(); ++i) {
    if (spec[i].parent < 0) {
      t.AttachRoot(ids[i]);
    } else {
      t.AttachChild(ids[static_cast<size_t>(spec[i].parent)], ids[i]);
    }
  }
  t.Validate();
  return t;
}

// The f-tree T1 of Fig. 2: item root; children oid and location; location
// has child dispatcher. Relations: Orders=0 {oid,item}, Store=1
// {location,item}, Disp=2 {dispatcher,location}. Attributes: item=0, oid=1,
// location=2, dispatcher=3.
FTree GroceryT1() {
  return Build({
      {AttrSet::Of({0}), RelSet::Of({0, 1}), -1},  // item
      {AttrSet::Of({1}), RelSet::Of({0}), 0},      // oid
      {AttrSet::Of({2}), RelSet::Of({1, 2}), 0},   // location
      {AttrSet::Of({3}), RelSet::Of({2}), 2},      // dispatcher
  });
}

TEST(FTree, BasicNavigation) {
  FTree t = GroceryT1();
  EXPECT_EQ(t.NumAlive(), 4);
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.FindAttr(3), 3);
  EXPECT_EQ(t.FindAttr(42), -1);
  EXPECT_TRUE(t.IsAncestor(0, 3));
  EXPECT_FALSE(t.IsAncestor(1, 3));
  EXPECT_EQ(t.Depth(3), 2);
  EXPECT_EQ(t.Lca(1, 3), 0);
  EXPECT_EQ(t.Lca(3, 2), 2);  // ancestor itself
}

TEST(FTree, PreOrder) {
  FTree t = GroceryT1();
  EXPECT_EQ(t.PreOrder(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(FTree, PathConstraintHolds) {
  EXPECT_TRUE(GroceryT1().SatisfiesPathConstraint());
}

TEST(FTree, PathConstraintViolated) {
  // Orders' attributes oid and item on different branches.
  FTree t = Build({
      {AttrSet::Of({2}), RelSet::Of({1, 2}), -1},  // location root
      {AttrSet::Of({0}), RelSet::Of({0, 1}), 0},   // item under location
      {AttrSet::Of({1}), RelSet::Of({0}), 0},      // oid as sibling of item
  });
  EXPECT_FALSE(t.SatisfiesPathConstraint());
}

TEST(FTree, CostOfT1IsTwo) {
  EdgeCoverSolver solver;
  EXPECT_NEAR(GroceryT1().Cost(solver), 2.0, 1e-6);
}

TEST(FTree, CostOfT3IsOne) {
  // T3: supplier root with children item and location; Produce=0, Serve=1.
  FTree t3 = Build({
      {AttrSet::Of({0}), RelSet::Of({0, 1}), -1},  // supplier
      {AttrSet::Of({1}), RelSet::Of({0}), 0},      // item
      {AttrSet::Of({2}), RelSet::Of({1}), 0},      // location
  });
  EdgeCoverSolver solver;
  EXPECT_NEAR(t3.Cost(solver), 1.0, 1e-6);  // Example 4
}

TEST(FTree, ConstantNodesAreFreeAndIndependent) {
  FTree t = GroceryT1();
  t.node(3).constant = true;  // dispatcher fixed by a selection
  EdgeCoverSolver solver;
  // Path item-location-dispatcher now costs as item-location: still 2 via
  // the item-oid path? item:{0,1}, oid:{0} -> cost 1; item-location:
  // {0,1},{1,2} -> cost 1. So overall 1.
  EXPECT_NEAR(t.Cost(solver), 1.0, 1e-6);
  EXPECT_TRUE(t.CanPushUp(3));  // constants may float anywhere
}

TEST(FTree, PushUpLegality) {
  FTree t = GroceryT1();
  // dispatcher under location shares Disp: cannot push.
  EXPECT_FALSE(t.CanPushUp(3));
  EXPECT_FALSE(t.CanPushUp(1));  // oid under item shares Orders
  EXPECT_TRUE(t.IsNormalized());
}

TEST(FTree, PushUpMovesNode) {
  // A root with independent child B (no shared relation).
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({1}), 0},
  });
  EXPECT_TRUE(t.CanPushUp(1));
  t.PushUpTree(1);
  t.Validate();
  EXPECT_EQ(t.roots().size(), 2u);
  EXPECT_EQ(t.node(1).parent, -1);
}

TEST(FTree, NormalizeExample7) {
  // Example 7: relations R0{A,B}, R1{B',C}, R2{C',D}, R3{D',E}.
  // Left tree: {B,B'} -> A -> {D,D'} -> {C,C'} -> E.
  // Attrs: A=0, BB'=1 (class), CC'=2, DD'=3, E=4.
  FTree t = Build({
      {AttrSet::Of({1}), RelSet::Of({0, 1}), -1},  // 0: B,B'
      {AttrSet::Of({0}), RelSet::Of({0}), 0},      // 1: A
      {AttrSet::Of({3}), RelSet::Of({2, 3}), 1},   // 2: D,D'
      {AttrSet::Of({2}), RelSet::Of({1, 2}), 2},   // 3: C,C'
      {AttrSet::Of({4}), RelSet::Of({3}), 3},      // 4: E
  });
  EXPECT_FALSE(t.IsNormalized());
  int pushes = t.NormalizeTree();
  EXPECT_GE(pushes, 2);  // psi_E then psi_{D,D'}
  EXPECT_TRUE(t.IsNormalized());
  t.Validate();
  EXPECT_TRUE(t.SatisfiesPathConstraint());
  // Final shape: {B,B'} root with children A and {D,D'}; {D,D'} has
  // children E and {C,C'}.
  EXPECT_EQ(t.node(0).parent, -1);
  EXPECT_EQ(t.node(1).parent, 0);
  EXPECT_EQ(t.node(2).parent, 0);
  EXPECT_EQ(t.node(3).parent, 2);
  EXPECT_EQ(t.node(4).parent, 2);
}

TEST(FTree, SwapPartitionsChildren) {
  // a {R0} with child b {R1}; b has children: c {R0,R1} (dependent on a)
  // and d {R1} (independent of a). After swap(a, b): b on top with child d
  // and child a; a has child c.
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},     // 0: a
      {AttrSet::Of({1}), RelSet::Of({1}), 0},      // 1: b
      {AttrSet::Of({2}), RelSet::Of({0, 1}), 1},   // 2: c
      {AttrSet::Of({3}), RelSet::Of({1}), 1},      // 3: d
  });
  t.SwapTree(0, 1);
  t.Validate();
  EXPECT_EQ(t.node(1).parent, -1);
  EXPECT_EQ(t.node(0).parent, 1);
  EXPECT_EQ(t.node(2).parent, 0);  // T_AB moved under a
  EXPECT_EQ(t.node(3).parent, 1);  // T_B stayed under b
}

TEST(FTree, SwapPreservesNormalization) {
  // a{R0} -> b{R1} -> c{R0,R1}: normalised; swap keeps it normalised.
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({1}), 0},
      {AttrSet::Of({2}), RelSet::Of({0, 1}), 1},
  });
  EXPECT_TRUE(t.IsNormalized());
  t.SwapTree(0, 1);
  t.Validate();
  EXPECT_TRUE(t.IsNormalized());
}

TEST(FTree, MergeSiblings) {
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({0}), 0},
      {AttrSet::Of({2}), RelSet::Of({1}), 0},
  });
  int merged = t.MergeTree(1, 2);
  t.Validate();
  EXPECT_EQ(merged, 1);
  EXPECT_FALSE(t.node(2).alive);
  EXPECT_EQ(t.node(1).attrs, AttrSet::Of({1, 2}));
  EXPECT_EQ(t.node(1).cover_rels, RelSet::Of({0, 1}));
  EXPECT_EQ(t.NumAlive(), 2);
}

TEST(FTree, MergeTwoRoots) {
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({1}), -1},
  });
  t.MergeTree(0, 1);
  t.Validate();
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.node(0).attrs, AttrSet::Of({0, 1}));
}

TEST(FTree, MergeRequiresSiblings) {
  FTree t = GroceryT1();
  EXPECT_THROW(t.MergeTree(0, 3), FdbError);  // item vs dispatcher: not sib
}

TEST(FTree, FuseSplicesNodeOut) {
  // Example 10 structure: A -> {B,B'} -> {C,C'} -> D with R0{A,B},
  // R1{B',C}, R2{C',D}; fuse C into A.
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},     // 0: A
      {AttrSet::Of({1}), RelSet::Of({0, 1}), 0},   // 1: B,B'
      {AttrSet::Of({2}), RelSet::Of({1, 2}), 1},   // 2: C,C'
      {AttrSet::Of({3}), RelSet::Of({2}), 2},      // 3: D
  });
  t.FuseTree(0, 2);
  t.Validate();
  EXPECT_FALSE(t.node(2).alive);
  EXPECT_EQ(t.node(0).attrs, AttrSet::Of({0, 2}));
  EXPECT_EQ(t.node(3).parent, 1);  // D took C's place under B
  // Normalisation lifts D next to B (Example 10's final tree).
  t.NormalizeTree();
  EXPECT_EQ(t.node(3).parent, 0);
  EXPECT_EQ(t.node(1).parent, 0);
}

TEST(FTree, RemoveLeafInheritsDeps) {
  // Section 3.4: path A - B - C with R0{A,B}, R1{B,C}; removing leaf B
  // must keep A and C transitively dependent.
  FTree t = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},     // A
      {AttrSet::Of({2}), RelSet::Of({1}), 0},      // C (B already sunk)
      {AttrSet::Of({1}), RelSet::Of({0, 1}), 1},   // B as leaf under C
  });
  t.RemoveLeaf(2);
  t.Validate();
  EXPECT_EQ(t.NumAlive(), 2);
  // C inherited B's rels: still dependent on A; no push-up possible.
  EXPECT_TRUE(t.node(1).dep_rels.Contains(0));
  EXPECT_TRUE(t.IsNormalized());
}

TEST(FTree, CanonicalKeyIgnoresSiblingOrder) {
  FTree t1 = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({0}), 0},
      {AttrSet::Of({2}), RelSet::Of({0}), 0},
  });
  FTree t2 = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({2}), RelSet::Of({0}), 0},
      {AttrSet::Of({1}), RelSet::Of({0}), 0},
  });
  EXPECT_EQ(t1.CanonicalKey(), t2.CanonicalKey());
  FTree t3 = Build({
      {AttrSet::Of({0}), RelSet::Of({0}), -1},
      {AttrSet::Of({1}), RelSet::Of({0}), 0},
      {AttrSet::Of({2}), RelSet::Of({0}), 1},  // chain instead of fork
  });
  EXPECT_NE(t1.CanonicalKey(), t3.CanonicalKey());
}

TEST(FTree, ValidateCatchesBrokenTrees) {
  FTree t;
  int a = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));
  t.AttachRoot(a);
  int b = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));  // duplicate attribute 0
  t.AttachChild(a, b);
  EXPECT_THROW(t.Validate(), FdbError);
}

TEST(FTree, PathFTreeIsChain) {
  FTree t = PathFTree({5, 2, 9}, 3);
  t.Validate();
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.NumAlive(), 3);
  EXPECT_EQ(t.FindAttr(5), 0);
  EXPECT_EQ(t.node(1).parent, 0);
  EXPECT_EQ(t.node(2).parent, 1);
  EXPECT_TRUE(t.node(0).cover_rels.Contains(3));
  EXPECT_TRUE(t.SatisfiesPathConstraint());
}

TEST(FTree, ChainQueryCostsGrowLogarithmically) {
  // Example 6: Q_n over R_i(A_i, B_i) with B_i = A_{i+1}. Classes:
  // {A_1}, {B_1 A_2}, ..., {B_n}. We check s for small n.
  EdgeCoverSolver solver;
  auto chain_cost = [&](int n) {
    // Build the path-shaped f-tree A1 - B1A2 - ... - Bn and return its
    // cost (the optimal tree does better; see opt_test).
    FTree t;
    int prev = -1;
    for (int i = 0; i <= n; ++i) {
      RelSet rels;
      if (i > 0) rels.Add(static_cast<AttrId>(i - 1));
      if (i < n) rels.Add(static_cast<AttrId>(i));
      int id = t.NewNode(AttrSet::Of({static_cast<AttrId>(i)}),
                         AttrSet::Of({static_cast<AttrId>(i)}), rels, rels);
      if (prev == -1) {
        t.AttachRoot(id);
      } else {
        t.AttachChild(prev, id);
      }
      prev = id;
    }
    return t.Cost(solver);
  };
  // A path f-tree over the whole chain: the end classes force their only
  // relation, and every second interior class needs half/one more unit.
  EXPECT_NEAR(chain_cost(2), 2.0, 1e-6);
  EXPECT_NEAR(chain_cost(4), 3.0, 1e-6);
}

}  // namespace
}  // namespace fdb
