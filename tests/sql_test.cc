#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace fdb {
namespace {

using sql::Lex;
using sql::TokenKind;

TEST(Lexer, TokenKinds) {
  auto toks = Lex("SELECT a, b FROM R WHERE x >= -3 AND y != 'hi'");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "SELECT");
  bool saw_ge = false, saw_ne = false, saw_str = false, saw_neg = false;
  for (const auto& t : toks) {
    saw_ge |= t.kind == TokenKind::kGe;
    saw_ne |= t.kind == TokenKind::kNe;
    saw_str |= t.kind == TokenKind::kString && t.text == "hi";
    saw_neg |= t.kind == TokenKind::kInt && t.value == -3;
  }
  EXPECT_TRUE(saw_ge && saw_ne && saw_str && saw_neg);
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(Lex("a ; b"), FdbError);
  EXPECT_THROW(Lex("'unterminated"), FdbError);
  EXPECT_THROW(Lex("a ! b"), FdbError);
}

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : db_(testing_util::MakeGroceryDb()) {}
  Query Parse(const std::string& s) {
    return ParseSql(s, db_->catalog(), &db_->dict());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(ParserTest, SelectStar) {
  Query q = Parse("SELECT * FROM Orders");
  EXPECT_EQ(q.rels.size(), 1u);
  EXPECT_TRUE(q.projection.Empty());  // empty = keep everything
  EXPECT_TRUE(q.equalities.empty());
}

TEST_F(ParserTest, JoinWithEqualities) {
  Query q = Parse(
      "SELECT * FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location");
  EXPECT_EQ(q.rels.size(), 3u);
  ASSERT_EQ(q.equalities.size(), 2u);
  EXPECT_EQ(q.equalities[0].first, db_->Attr("o_item"));
  EXPECT_EQ(q.equalities[0].second, db_->Attr("s_item"));
}

TEST_F(ParserTest, ProjectionList) {
  Query q = Parse("SELECT oid, dispatcher FROM Orders, Disp");
  EXPECT_EQ(q.projection,
            AttrSet::Of({db_->Attr("oid"), db_->Attr("dispatcher")}));
}

TEST_F(ParserTest, ConstantPredicates) {
  Query q = Parse("SELECT * FROM Orders WHERE oid >= 2 AND o_item = 'Milk'");
  ASSERT_EQ(q.const_preds.size(), 2u);
  EXPECT_EQ(q.const_preds[0].op, CmpOp::kGe);
  EXPECT_EQ(q.const_preds[0].value, 2);
  EXPECT_EQ(q.const_preds[1].op, CmpOp::kEq);
  EXPECT_EQ(db_->dict().Decode(q.const_preds[1].value), "Milk");
}

TEST_F(ParserTest, FlippedConstant) {
  Query q = Parse("SELECT * FROM Orders WHERE 2 < oid");
  ASSERT_EQ(q.const_preds.size(), 1u);
  EXPECT_EQ(q.const_preds[0].op, CmpOp::kGt);  // oid > 2
}

TEST_F(ParserTest, QualifiedAttributes) {
  Query q = Parse("SELECT Orders.oid FROM Orders");
  EXPECT_EQ(q.projection, AttrSet::Of({db_->Attr("oid")}));
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  Query q = Parse("select * from Orders where oid = 1");
  EXPECT_EQ(q.const_preds.size(), 1u);
}

TEST_F(ParserTest, Errors) {
  EXPECT_THROW(Parse("SELECT"), FdbError);
  EXPECT_THROW(Parse("SELECT * FROM Nowhere"), FdbError);
  EXPECT_THROW(Parse("SELECT * FROM Orders WHERE bogus = 1"), FdbError);
  EXPECT_THROW(Parse("SELECT * FROM Orders WHERE oid < o_item AND"),
               FdbError);
  EXPECT_THROW(Parse("SELECT * FROM Orders extra"), FdbError);
  EXPECT_THROW(Parse("SELECT * FROM Orders WHERE oid < s_item"), FdbError);
  EXPECT_THROW(Parse("SELECT Disp.oid FROM Orders, Disp"), FdbError);
}

TEST_F(ParserTest, NonEqualityJoinRejected) {
  EXPECT_THROW(Parse("SELECT * FROM Orders, Store WHERE o_item < s_item"),
               FdbError);
}

TEST_F(ParserTest, ExplainAnalyzePrefix) {
  Query q = Parse("EXPLAIN ANALYZE SELECT * FROM Orders WHERE oid >= 2");
  EXPECT_TRUE(q.explain_analyze);
  // The wrapped statement parses identically to its plain form.
  EXPECT_EQ(q.rels.size(), 1u);
  EXPECT_EQ(q.const_preds.size(), 1u);
  EXPECT_FALSE(Parse("SELECT * FROM Orders").explain_analyze);
  // Keyword case folds like every other keyword.
  EXPECT_TRUE(Parse("explain analyze select * from Orders").explain_analyze);
  // EXPLAIN without ANALYZE (or bare) is not a statement.
  EXPECT_THROW(Parse("EXPLAIN SELECT * FROM Orders"), FdbError);
  EXPECT_THROW(Parse("EXPLAIN ANALYZE"), FdbError);
}

TEST(SqlText, IsExplainAnalyzeScan) {
  EXPECT_TRUE(IsExplainAnalyze("EXPLAIN ANALYZE SELECT 1"));
  EXPECT_TRUE(IsExplainAnalyze("  explain\n\tAnalyze select * from T"));
  EXPECT_FALSE(IsExplainAnalyze("SELECT * FROM T"));
  EXPECT_FALSE(IsExplainAnalyze("EXPLAIN SELECT 1"));
  EXPECT_FALSE(IsExplainAnalyze("explainanalyze select"));
  EXPECT_FALSE(IsExplainAnalyze("explained analyze"));
  EXPECT_FALSE(IsExplainAnalyze(""));
}

TEST(Lexer, Parentheses) {
  auto toks = Lex("COUNT(*)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[2].kind, TokenKind::kStar);
  EXPECT_EQ(toks[3].kind, TokenKind::kRParen);
}

TEST_F(ParserTest, GroupByWithAggregates) {
  Query q = Parse(
      "SELECT dispatcher, COUNT(*), SUM(oid), AVG(oid), MIN(oid), MAX(oid) "
      "FROM Orders, Store, Disp "
      "WHERE o_item = s_item AND s_location = d_location "
      "GROUP BY dispatcher");
  EXPECT_TRUE(q.IsAggregate());
  EXPECT_EQ(q.group_by, AttrSet::Of({db_->Attr("dispatcher")}));
  EXPECT_EQ(q.projection, AttrSet::Of({db_->Attr("dispatcher")}));
  ASSERT_EQ(q.aggregates.size(), 5u);
  EXPECT_EQ(q.aggregates[0].fn, AggFn::kCount);
  EXPECT_EQ(q.aggregates[1].fn, AggFn::kSum);
  EXPECT_EQ(q.aggregates[1].attr, db_->Attr("oid"));
  EXPECT_EQ(q.aggregates[2].fn, AggFn::kAvg);
  EXPECT_EQ(q.aggregates[3].fn, AggFn::kMin);
  EXPECT_EQ(q.aggregates[4].fn, AggFn::kMax);
}

TEST_F(ParserTest, GroupByMultipleAttrs) {
  Query q = Parse(
      "SELECT COUNT(*) FROM Orders, Store WHERE o_item = s_item "
      "GROUP BY oid, s_location");
  EXPECT_EQ(q.group_by,
            AttrSet::Of({db_->Attr("oid"), db_->Attr("s_location")}));
  EXPECT_TRUE(q.projection.Empty());
}

TEST_F(ParserTest, AggregateWithoutGroupBy) {
  Query q = Parse("SELECT COUNT(*), SUM(oid) FROM Orders");
  EXPECT_TRUE(q.IsAggregate());
  EXPECT_TRUE(q.group_by.Empty());
  ASSERT_EQ(q.aggregates.size(), 2u);
}

TEST_F(ParserTest, AttributeNamedLikeFunctionStillParses) {
  // Only `ident(` is treated as a call; a bare attribute is untouched.
  Query q = Parse("SELECT oid FROM Orders GROUP BY oid");
  EXPECT_TRUE(q.aggregates.empty());
  EXPECT_TRUE(q.IsAggregate());  // GROUP BY alone = distinct groups
}

TEST_F(ParserTest, AggregateErrors) {
  EXPECT_THROW(Parse("SELECT * FROM Orders GROUP BY oid"), FdbError);
  EXPECT_THROW(Parse("SELECT COUNT(*), * FROM Orders"), FdbError);
  EXPECT_THROW(Parse("SELECT COUNT(oid) FROM Orders"), FdbError);
  EXPECT_THROW(Parse("SELECT SUM(*) FROM Orders"), FdbError);
  EXPECT_THROW(Parse("SELECT MEDIAN(oid) FROM Orders"), FdbError);
  EXPECT_THROW(Parse("SELECT SUM(oid FROM Orders"), FdbError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM Orders GROUP oid"), FdbError);
  EXPECT_THROW(Parse("SELECT SUM(bogus) FROM Orders"), FdbError);
}

// Untrusted-input bounds (fuzz regression class, fuzz/corpus/sql/): hostile
// statements must come back as FdbError, never as std::out_of_range, a
// stack overflow or unbounded allocation.
TEST(LexerLimits, OversizedTokensAndLiterals) {
  // An identifier over kMaxTokenBytes is refused...
  std::string huge_ident(sql::kMaxTokenBytes + 1, 'a');
  EXPECT_THROW(Lex(huge_ident), FdbError);
  // ...one at the cap is accepted.
  std::string max_ident(sql::kMaxTokenBytes, 'a');
  EXPECT_EQ(Lex(max_ident)[0].text.size(), sql::kMaxTokenBytes);
  // Same cap for string-literal bodies.
  EXPECT_THROW(Lex("'" + std::string(sql::kMaxTokenBytes + 1, 'x') + "'"),
               FdbError);
  // Out-of-int64-range literals were a crash class: std::stoll threw
  // std::out_of_range through the serve path.
  EXPECT_THROW(Lex("select a from r where a = 99999999999999999999999"),
               FdbError);
  EXPECT_THROW(Lex("-99999999999999999999999"), FdbError);
  // INT64_MIN/MAX still lex.
  EXPECT_EQ(Lex("9223372036854775807")[0].value, INT64_MAX);
  EXPECT_EQ(Lex("-9223372036854775808")[0].value, INT64_MIN);
}

TEST(LexerLimits, OversizedStatement) {
  std::string big(sql::kMaxSqlBytes + 1, ' ');
  EXPECT_THROW(Lex(big), FdbError);
}

TEST_F(ParserTest, DeeplyNestedParensIsAParseErrorNotAStackOverflow) {
  std::string parens(100000, '(');
  EXPECT_THROW(Parse("SELECT * FROM Orders WHERE " + parens + "oid = 1"),
               FdbError);
  EXPECT_THROW(Parse("SELECT COUNT" + parens + "*" + std::string(100000, ')') +
                     " FROM Orders"),
               FdbError);
}

}  // namespace
}  // namespace fdb
