// Property-based tests: on random databases and random SPJ queries, FDB's
// factorised evaluation must agree tuple-for-tuple with the flat baselines,
// restructuring operators must preserve the represented relation, and the
// size bound |E| = O(|D|^{s(T)}) must hold on observed data.
#include <gtest/gtest.h>

#include <cmath>

#include "core/enumerate.h"
#include "core/ops.h"
#include "opt/ftree_search.h"
#include "opt/fplan_search.h"
#include "opt/greedy.h"
#include "rdb/rdb.h"
#include "storage/generator.h"
#include "test_util.h"
#include "vdb/vdb.h"

namespace fdb {
namespace {

struct Params {
  int rels;
  int attrs;
  int eqs;
  Distribution dist;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "R" + std::to_string(p.rels) + "A" + std::to_string(p.attrs) + "K" +
         std::to_string(p.eqs) +
         (p.dist == Distribution::kZipf ? "zipf" : "uni") + "s" +
         std::to_string(p.seed);
}

Relation Reorder(const Relation& src, const std::vector<AttrId>& schema) {
  Relation out(schema);
  std::vector<size_t> cols;
  for (AttrId a : schema) cols.push_back(src.ColumnOf(a));
  std::vector<Value> t(schema.size());
  for (size_t r = 0; r < src.size(); ++r) {
    for (size_t c = 0; c < cols.size(); ++c) t[c] = src.At(r, cols[c]);
    out.AddTuple(t);
  }
  out.SortLex();
  return out;
}

class FlatEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(FlatEquivalence, FdbMatchesRdbAndVdb) {
  const Params& p = GetParam();
  WorkloadSpec spec;
  spec.num_rels = p.rels;
  spec.num_attrs = p.attrs;
  spec.tuples_per_rel = 40;
  spec.domain = 8;  // small domain: joins actually hit
  spec.dist = p.dist;
  spec.num_equalities = p.eqs;
  spec.seed = p.seed;
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);

  // FDB: optimal f-tree + grounding.
  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  FTreeSearchResult t = FindOptimalFTree(info, solver);
  FRep rep = GroundQuery(t.tree, rels, w.query.const_preds);
  rep.Validate();

  RdbResult rdb = RdbEvaluate(w.catalog, rels, w.query);
  ASSERT_FALSE(rdb.timed_out);
  EXPECT_TRUE(testing_util::SameRelation(rep, rdb.relation));

  VdbResult vdb = VdbEvaluate(w.catalog, rels, w.query);
  ASSERT_FALSE(vdb.timed_out);
  Relation v = Reorder(vdb.relation, rdb.relation.schema());
  EXPECT_TRUE(v == rdb.relation);

  // Observed size respects the bound |E| <= c * |D|^{s(T)} with a modest
  // constant (here: number of f-tree nodes as the per-node multiplier).
  double d = 0;
  for (const Relation& r : w.relations) d += static_cast<double>(r.size());
  double bound = (static_cast<double>(t.tree.NumAlive()) + 1.0) * 2.0 *
                 std::pow(d, t.cost);
  EXPECT_LE(static_cast<double>(rep.NumSingletons()), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlatEquivalence,
    ::testing::Values(
        Params{1, 3, 1, Distribution::kUniform, 1},
        Params{2, 5, 1, Distribution::kUniform, 2},
        Params{2, 5, 2, Distribution::kUniform, 3},
        Params{3, 7, 2, Distribution::kUniform, 4},
        Params{3, 7, 3, Distribution::kZipf, 5},
        Params{3, 9, 4, Distribution::kUniform, 6},
        Params{4, 9, 3, Distribution::kUniform, 7},
        Params{4, 10, 4, Distribution::kZipf, 8},
        Params{4, 10, 5, Distribution::kUniform, 9},
        Params{5, 11, 4, Distribution::kZipf, 10},
        Params{5, 12, 5, Distribution::kUniform, 11},
        Params{2, 6, 3, Distribution::kZipf, 12}),
    ParamName);

class RestructureInvariance : public ::testing::TestWithParam<Params> {};

TEST_P(RestructureInvariance, RandomSwapsPreserveRelation) {
  const Params& p = GetParam();
  WorkloadSpec spec;
  spec.num_rels = p.rels;
  spec.num_attrs = p.attrs;
  spec.tuples_per_rel = 25;
  spec.domain = 5;
  spec.dist = p.dist;
  spec.num_equalities = p.eqs;
  spec.seed = p.seed;
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);

  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  FRep rep = GroundQuery(FindOptimalFTree(info, solver).tree, rels);
  if (rep.empty()) GTEST_SKIP() << "empty join result";
  Relation reference = MaterializeVisible(rep);

  Rng rng(p.seed * 1337);
  for (int step = 0; step < 12; ++step) {
    // Pick a random tree edge and swap it.
    std::vector<std::pair<AttrId, AttrId>> edges;
    const FTree& t = rep.tree();
    for (int n : t.AliveNodes()) {
      if (t.node(n).parent != -1) {
        edges.emplace_back(t.node(t.node(n).parent).attrs.Min(),
                           t.node(n).attrs.Min());
      }
    }
    if (edges.empty()) break;
    auto [pa, ch] =
        edges[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(edges.size()) - 1))];
    rep = Swap(rep, pa, ch);
    rep.Validate();
    EXPECT_TRUE(rep.tree().IsNormalized()) << "swap broke normalisation";
    Relation now = MaterializeVisible(rep);
    ASSERT_TRUE(now == reference) << "swap changed the relation at step "
                                  << step;
  }
  // Normalising at the end changes nothing semantically.
  FRep norm = Normalize(rep);
  EXPECT_TRUE(MaterializeVisible(norm) == reference);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RestructureInvariance,
    ::testing::Values(Params{2, 5, 2, Distribution::kUniform, 21},
                      Params{3, 7, 2, Distribution::kUniform, 22},
                      Params{3, 8, 3, Distribution::kZipf, 23},
                      Params{4, 9, 3, Distribution::kUniform, 24},
                      Params{4, 10, 4, Distribution::kZipf, 25}),
    ParamName);

class FactorisedQueries : public ::testing::TestWithParam<Params> {};

TEST_P(FactorisedQueries, ExtraEqualitiesMatchFlatSelection) {
  // Experiment 4's semantics: L extra equalities evaluated on the
  // factorised result of the first query must equal the flat selection on
  // the materialised result.
  const Params& p = GetParam();
  WorkloadSpec spec;
  spec.num_rels = p.rels;
  spec.num_attrs = p.attrs;
  spec.tuples_per_rel = 30;
  spec.domain = 5;
  spec.dist = p.dist;
  spec.num_equalities = p.eqs;
  spec.seed = p.seed;
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);

  QueryInfo info = AnalyzeQuery(w.catalog, w.query);
  EdgeCoverSolver solver;
  FTreeSearchResult t = FindOptimalFTree(info, solver);
  FRep rep = GroundQuery(t.tree, rels);
  if (rep.empty()) GTEST_SKIP() << "empty join result";

  Rng rng(p.seed * 7 + 1);
  auto extra = DrawExtraEqualities(info.classes, 2, rng);
  if (extra.empty()) GTEST_SKIP() << "no classes left to equate";

  auto plan = FindOptimalFPlan(rep.tree(), extra, solver);
  FRep out = ExecutePlan(rep, plan.plan);
  out.Validate();
  // Predicted tree equals executed tree.
  EXPECT_EQ(out.tree().CanonicalKey(), plan.final_tree.CanonicalKey());

  // Reference: filter the materialised first result.
  Relation flat = MaterializeVisible(rep);
  for (const auto& [a, b] : extra) {
    size_t ca = flat.ColumnOf(a), cb = flat.ColumnOf(b);
    flat.Filter([&](size_t row) { return flat.At(row, ca) == flat.At(row, cb); });
  }
  flat.SortLex();
  EXPECT_TRUE(testing_util::SameRelation(out, flat));

  // Greedy must produce the same relation.
  auto gplan = GreedyFPlan(rep.tree(), extra, solver);
  FRep gout = ExecutePlan(rep, gplan.plan);
  EXPECT_TRUE(testing_util::SameRelation(gout, flat));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FactorisedQueries,
    ::testing::Values(Params{3, 7, 2, Distribution::kUniform, 31},
                      Params{3, 8, 3, Distribution::kUniform, 32},
                      Params{4, 9, 2, Distribution::kZipf, 33},
                      Params{4, 10, 4, Distribution::kUniform, 34},
                      Params{4, 10, 5, Distribution::kZipf, 35},
                      Params{5, 11, 3, Distribution::kUniform, 36}),
    ParamName);

class ProjectionEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(ProjectionEquivalence, RandomProjectionsMatchRdb) {
  const Params& p = GetParam();
  WorkloadSpec spec;
  spec.num_rels = p.rels;
  spec.num_attrs = p.attrs;
  spec.tuples_per_rel = 30;
  spec.domain = 5;
  spec.dist = p.dist;
  spec.num_equalities = p.eqs;
  spec.seed = p.seed;
  GeneratedWorkload w = GenerateWorkload(spec);
  std::vector<const Relation*> rels;
  for (const Relation& r : w.relations) rels.push_back(&r);

  // Keep a random half of the attributes.
  Rng rng(p.seed + 99);
  AttrSet keep;
  for (int a = 0; a < p.attrs; ++a) {
    if (rng.Uniform(0, 1) == 0) keep.Add(static_cast<AttrId>(a));
  }
  if (keep.Empty()) keep.Add(0);
  Query q = w.query;
  q.projection = keep;

  QueryInfo info = AnalyzeQuery(w.catalog, q);
  EdgeCoverSolver solver;
  FRep rep = GroundQuery(FindOptimalFTree(info, solver).tree, rels);
  FRep proj = Project(rep, keep);
  proj.Validate();

  RdbResult rdb = RdbEvaluate(w.catalog, rels, q);
  ASSERT_FALSE(rdb.timed_out);
  EXPECT_TRUE(testing_util::SameRelation(proj, rdb.relation));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProjectionEquivalence,
    ::testing::Values(Params{2, 5, 2, Distribution::kUniform, 41},
                      Params{3, 7, 3, Distribution::kUniform, 42},
                      Params{3, 8, 2, Distribution::kZipf, 43},
                      Params{4, 9, 3, Distribution::kUniform, 44},
                      Params{4, 10, 4, Distribution::kZipf, 45}),
    ParamName);

}  // namespace
}  // namespace fdb
