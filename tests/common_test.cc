#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/attrset.h"
#include "common/dictionary.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "common/str.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace fdb {
namespace {

TEST(AttrSet, BasicOps) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  s.Add(3);
  s.Add(7);
  s.Add(63);
  EXPECT_EQ(s.Size(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Min(), 7u);
}

TEST(AttrSet, SetAlgebra) {
  AttrSet a = AttrSet::Of({1, 2, 3});
  AttrSet b = AttrSet::Of({3, 4});
  EXPECT_EQ(a.Union(b), AttrSet::Of({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), AttrSet::Of({3}));
  EXPECT_EQ(a.Minus(b), AttrSet::Of({1, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet::Of({5})));
  EXPECT_TRUE(a.ContainsAll(AttrSet::Of({1, 3})));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(AttrSet, FirstN) {
  EXPECT_EQ(AttrSet::FirstN(0).Size(), 0);
  EXPECT_EQ(AttrSet::FirstN(5), AttrSet::Of({0, 1, 2, 3, 4}));
  EXPECT_EQ(AttrSet::FirstN(64).Size(), 64);
}

TEST(AttrSet, IterationAscending) {
  AttrSet s = AttrSet::Of({9, 1, 33});
  std::vector<AttrId> got = s.ToVector();
  EXPECT_EQ(got, (std::vector<AttrId>{1, 9, 33}));
}

TEST(AttrSet, OutOfRangeThrows) {
  AttrSet s;
  EXPECT_THROW(s.Add(64), FdbError);
  EXPECT_THROW(AttrSet().Min(), FdbError);
}

TEST(Dictionary, InternAndDecode) {
  Dictionary d;
  Value milk = d.Intern("Milk");
  Value cheese = d.Intern("Cheese");
  EXPECT_NE(milk, cheese);
  EXPECT_EQ(d.Intern("Milk"), milk);  // idempotent
  EXPECT_EQ(d.Decode(milk), "Milk");
  EXPECT_EQ(d.Lookup("Cheese"), cheese);
  EXPECT_EQ(d.Lookup("absent"), -1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_THROW(d.Decode(99), FdbError);
}

// Interning is synchronised and append-only (the serve path parses SQL —
// which interns literals — concurrently with readers decoding result
// values; see common/dictionary.h). Codes must be consistent: one code per
// string, Decode(code) round-trips, and references returned by Decode stay
// valid while other threads intern.
TEST(Dictionary, ConcurrentInternIsConsistent) {
  Dictionary d;
  // Pre-intern a few strings so readers have stable targets.
  const Value pre0 = d.Intern("base0");
  const Value pre1 = d.Intern("base1");
  const std::string& ref0 = d.Decode(pre0);  // must survive growth

  constexpr int kThreads = 8;
  constexpr int kStrings = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<Value>> codes(
      kThreads, std::vector<Value>(kStrings, -1));
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kStrings; ++i) {
        // All threads intern the same kStrings strings, racing on firsts.
        std::string s = "shared" + std::to_string(i);
        Value c = d.Intern(s);
        codes[static_cast<size_t>(t)][static_cast<size_t>(i)] = c;
        if (d.Decode(c) != s) failures.fetch_add(1);
        if (d.Lookup(s) != c) failures.fetch_add(1);
        if (d.Decode(pre1) != "base1") failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Every thread agreed on every code.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(codes[static_cast<size_t>(t)], codes[0]);
  }
  EXPECT_EQ(d.size(), 2u + kStrings);
  EXPECT_EQ(ref0, "base0");  // reference from before the growth still valid
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(1, 20);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 20);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(1, 10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, SkewsTowardsSmallValues) {
  Rng rng(4);
  ZipfSampler zipf(100, 1.0);
  size_t ones = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    int64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) ++ones;
  }
  // H(100) ~ 5.19, so P(1) ~ 19%; uniform would be 1%.
  EXPECT_GT(ones, total / 10);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), FdbError);
  EXPECT_THROW(ZipfSampler(10, 0.0), FdbError);
}

TEST(Str, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(Str, TrimAndLower) {
  EXPECT_EQ(Trim("  x y\t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
}

TEST(Str, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
}

TEST(Check, ThrowsWithMessage) {
  try {
    FDB_CHECK_MSG(false, "broken invariant");
    FAIL() << "expected FdbError";
  } catch (const FdbError& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool (runs under ThreadSanitizer in CI alongside this suite)
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForSmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForMaxThreadsOneRunsOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  pool.ParallelFor(
      100,
      [&](size_t) {
        if (std::this_thread::get_id() != caller) off_caller.fetch_add(1);
      },
      /*max_threads=*/1);
  EXPECT_EQ(off_caller.load(), 0);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 37) throw FdbError("boom");
                                }),
               FdbError);
  // The pool survives and stays usable.
  std::atomic<int> calls{0};
  pool.ParallelFor(10, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  EXPECT_GE(ThreadPool::Shared().size(), 1);
  std::atomic<int> calls{0};
  ThreadPool::Shared().ParallelFor(64, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, ConcurrentParallelForsFromManyThreads) {
  // Several caller threads sharing one pool: every loop must still cover
  // its own range exactly (the claim state is per-call).
  ThreadPool pool(3);
  constexpr int kCallers = 6;
  std::vector<std::thread> callers;
  std::vector<std::atomic<size_t>> sums(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(100, [&](size_t i) { sums[c].fetch_add(i + 1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), 20u * (100u * 101u / 2u));
  }
}

TEST(ExecContext, AmbientScopeBindsAndRestores) {
  EXPECT_EQ(ExecContext::Current(), nullptr);
  ExecContext outer;
  {
    ExecContext::Scope s1(&outer);
    EXPECT_EQ(ExecContext::Current(), &outer);
    ExecContext inner;
    {
      ExecContext::Scope s2(&inner);
      EXPECT_EQ(ExecContext::Current(), &inner);
    }
    EXPECT_EQ(ExecContext::Current(), &outer);
  }
  EXPECT_EQ(ExecContext::Current(), nullptr);
}

TEST(ExecContext, CancelUnwindsAndFirstReasonWins) {
  ExecContext ctx;
  EXPECT_NO_THROW(ctx.CheckCancelled());
  EXPECT_FALSE(ctx.StopRequested());
  ctx.Cancel();
  ctx.Cancel(ExecContext::StopReason::kResource);  // loses the race
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), ExecContext::StopReason::kCancelled);
  EXPECT_THROW(ctx.CheckCancelled(), FdbCancelled);
  EXPECT_THROW(ctx.CheckCancelled(), FdbError);  // subclass of FdbError
}

TEST(ExecContext, ExpiredDeadlineTripsWithinOneStride) {
  ExecContext ctx;
  ctx.SetDeadline(1e-9);
  // The deadline clock is consulted every kDeadlineStride-th probe per
  // thread, so an expired deadline must surface within one full stride.
  EXPECT_THROW(
      {
        for (int i = 0; i < 600; ++i) ctx.CheckCancelled();
      },
      FdbTimeout);
  EXPECT_EQ(ctx.stop_reason(), ExecContext::StopReason::kTimeout);
  // Once tripped, every subsequent probe throws immediately.
  EXPECT_THROW(ctx.CheckCancelled(), FdbTimeout);
}

TEST(ExecContext, MemoryBudgetIsCumulative) {
  ExecContext ctx;
  ctx.budget().set_limit(100);
  ctx.ChargeMemory(60);
  EXPECT_EQ(ctx.budget().charged(), 60u);
  EXPECT_THROW(ctx.ChargeMemory(60), FdbResourceExhausted);
  // The over-budget charge also flags the context so sibling threads of
  // the same evaluation stop at their next probe.
  EXPECT_EQ(ctx.stop_reason(), ExecContext::StopReason::kResource);
  EXPECT_THROW(ctx.CheckCancelled(), FdbResourceExhausted);
}

TEST(ExecContext, UnlimitedBudgetNeverThrows) {
  ExecContext ctx;  // limit 0 = unlimited
  for (int i = 0; i < 1000; ++i) ctx.ChargeMemory(1 << 20);
  EXPECT_NO_THROW(ctx.CheckCancelled());
}

TEST(ExecContext, AmbientHelpersAreNoOpsWithoutContext) {
  EXPECT_EQ(ExecContext::Current(), nullptr);
  EXPECT_NO_THROW(CheckAmbientCancelled());
  EXPECT_NO_THROW(ChargeAmbientMemory(size_t{1} << 40));
}

TEST(ExecContext, TranslateBadAllocMapsToResourceExhausted) {
  EXPECT_THROW(
      TranslateBadAlloc([] { throw std::bad_alloc(); }, "unit test"),
      FdbResourceExhausted);
  EXPECT_EQ(TranslateBadAlloc([] { return 41 + 1; }, "unit test"), 42);
}

}  // namespace
}  // namespace fdb
