// Deep invariant validation (core/validate.h): real representations,
// trees, grouped aggregates and morsel plans must pass; hand-corrupted
// fixtures — built through the public FRep/FTree API, no friend access —
// must each be rejected with a diagnostic naming the broken invariant.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "api/engine.h"
#include "core/aggregate.h"
#include "core/enumerate.h"
#include "core/parallel_enumerate.h"
#include "core/validate.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::GroceryQ1;
using testing_util::MakeGroceryDb;

// Runs `f`, returns the FdbError message it throws ("" when it doesn't).
template <typename F>
std::string ErrorOf(F&& f) {
  try {
    f();
  } catch (const FdbError& e) {
    return e.what();
  }
  return {};
}

void ExpectRejected(const std::string& msg, const std::string& needle) {
  EXPECT_FALSE(msg.empty()) << "validator accepted a corrupted fixture";
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "diagnostic \"" << msg << "\" does not mention \"" << needle << "\"";
}

// Single-node f-tree (one root, attribute 0, relation 0).
FTree LeafTree() {
  FTree t;
  AttrSet cls = AttrSet::Of({0});
  RelSet rs = RelSet::Of({0});
  int n = t.NewNode(cls, cls, rs, rs);
  t.AttachRoot(n);
  return t;
}

// Two-node chain: root (attribute 0) over a leaf (attribute 1).
FTree ChainTree() {
  FTree t;
  RelSet rs = RelSet::Of({0});
  int n = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), rs, rs);
  int m = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), rs, rs);
  t.AttachRoot(n);
  t.AttachChild(n, m);
  return t;
}

// Leaf rep with the given root-union values.
FRep LeafRep(std::vector<Value> values) {
  FRep rep(LeafTree());
  rep.MarkNonEmpty();
  UnionBuilder b = rep.StartUnion(rep.tree().roots()[0]);
  for (Value v : values) b.AddValue(v);
  rep.roots().push_back(b.Finish());
  return rep;
}

// ---- positive: real structures pass -------------------------------------

TEST(ValidateDeepTest, AcceptsRealQueryResult) {
  auto db = MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.EvaluateFlat(GroceryQ1(*db));
  ASSERT_FALSE(res.rep.empty());
  EXPECT_NO_THROW(ValidateDeep(res.rep));
  EXPECT_NO_THROW(ValidateFTree(res.rep.tree()));
}

TEST(ValidateDeepTest, AcceptsEmptyAndNullaryReps) {
  EXPECT_NO_THROW(ValidateDeep(FRep(LeafTree())));  // empty relation
  FRep nullary{FTree{}};                            // the relation <>
  nullary.MarkNonEmpty();
  EXPECT_NO_THROW(ValidateDeep(nullary));
}

TEST(ValidateMorselPlanTest, AcceptsPlannerOutput) {
  auto db = MakeGroceryDb();
  Engine engine(db.get());
  FRep rep = engine.EvaluateFlat(GroceryQ1(*db)).rep;
  for (bool visible_only : {false, true}) {
    for (double target : {1.0, 4.0, 1e18}) {
      MorselPlan plan = PlanMorsels(rep, visible_only, target);
      EXPECT_NO_THROW(ValidateMorselPlan(rep, visible_only, plan))
          << "visible_only=" << visible_only << " target=" << target;
    }
  }
}

TEST(ValidateGroupedRepTest, AcceptsGroupByResult) {
  auto db = MakeGroceryDb();
  Engine engine(db.get());
  FRep rep = engine.EvaluateFlat(GroceryQ1(*db)).rep;
  AttrSet by = AttrSet::Of({db->Attr("dispatcher")});
  GroupedRep g = GroupByAggregate(
      rep, by, {AggSpec{AggFn::kCount, 0}, AggSpec{AggFn::kSum, db->Attr("oid")}});
  EXPECT_NO_THROW(ValidateGroupedRep(g));
}

// ---- corrupted f-representations ----------------------------------------

TEST(ValidateDeepTest, RejectsOutOfRangeChildId) {
  FRep rep(ChainTree());
  rep.MarkNonEmpty();
  UnionBuilder b = rep.StartUnion(rep.tree().roots()[0]);
  b.AddValue(1);
  b.AddChild(9999);  // no such union
  rep.roots().push_back(b.Finish());
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }), "out-of-range child");
}

TEST(ValidateDeepTest, RejectsCyclicReference) {
  FRep rep(ChainTree());
  rep.MarkNonEmpty();
  UnionBuilder b = rep.StartUnion(rep.tree().roots()[0]);
  b.AddValue(1);
  b.AddChild(b.id());  // ids are assigned at StartUnion: a self-cycle
  rep.roots().push_back(b.Finish());
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }), "cyclic reference");
}

TEST(ValidateDeepTest, RejectsChildSlotCountMismatch) {
  FRep rep(ChainTree());
  rep.MarkNonEmpty();
  const int root = rep.tree().roots()[0];
  const int leaf = rep.tree().node(root).children[0];
  UnionBuilder lb = rep.StartUnion(leaf);
  lb.AddValue(7);
  const uint32_t leaf_id = lb.Finish();
  UnionBuilder b = rep.StartUnion(root);
  b.AddValue(1);
  b.AddValue(2);
  b.AddChild(leaf_id);  // one child slot for two entries
  rep.roots().push_back(b.Finish());
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }), "child slots");
}

TEST(ValidateDeepTest, RejectsUnsortedValues) {
  FRep rep = LeafRep({2, 1});
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }),
                 "not strictly increasing");
}

TEST(ValidateDeepTest, RejectsEmptyUnion) {
  FRep rep = LeafRep({});
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }), "empty");
}

TEST(ValidateDeepTest, RejectsMultiEntryConstantUnion) {
  FRep rep = LeafRep({1, 2});
  rep.tree().node(rep.tree().roots()[0]).constant = true;
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }), "constant");
}

TEST(ValidateDeepTest, RejectsEmptyRepWithLeftoverUnions) {
  FRep rep(LeafTree());  // stays marked empty
  UnionBuilder b = rep.StartUnion(rep.tree().roots()[0]);
  b.AddValue(1);
  rep.roots().push_back(b.Finish());
  ExpectRejected(ErrorOf([&] { ValidateDeep(rep); }),
                 "empty representation");
}

// ---- corrupted f-trees ---------------------------------------------------

// NewNode enforces both invariants at construction, so the corrupted
// states are reached the way a buggy operator would: by mutating an
// existing node through the non-const accessor.

TEST(ValidateFTreeTest, RejectsVisibleOutsideClass) {
  FTree t = LeafTree();
  t.node(t.roots()[0]).visible = AttrSet::Of({1});  // class is {0}
  ExpectRejected(ErrorOf([&] { ValidateFTree(t); }),
                 "visible attributes outside its class");
}

TEST(ValidateFTreeTest, RejectsCoverRelsMissingFromDepRels) {
  FTree t = LeafTree();
  t.node(t.roots()[0]).dep_rels = RelSet{};  // cover_rels is {0}
  ExpectRejected(ErrorOf([&] { ValidateFTree(t); }),
                 "missing from dep_rels");
}

// ---- corrupted morsel plans ----------------------------------------------

MorselPlan PlanOf(std::vector<Morsel> morsels, double total) {
  MorselPlan p;
  p.morsels = std::move(morsels);
  p.est_total = total;
  return p;
}

TEST(ValidateMorselPlanTest, RejectsOverlappingBounds) {
  FRep rep = LeafRep({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  MorselPlan plan = PlanOf({Morsel{{EntryBound{0, 6}}, 6.0},
                            Morsel{{EntryBound{4, 10}}, 6.0}},
                           10.0);
  ExpectRejected(ErrorOf([&] { ValidateMorselPlan(rep, false, plan); }),
                 "not adjacent");
}

TEST(ValidateMorselPlanTest, RejectsGapBetweenMorsels) {
  FRep rep = LeafRep({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  MorselPlan plan = PlanOf({Morsel{{EntryBound{0, 4}}, 4.0},
                            Morsel{{EntryBound{6, 10}}, 4.0}},
                           10.0);
  ExpectRejected(ErrorOf([&] { ValidateMorselPlan(rep, false, plan); }),
                 "not adjacent");
}

TEST(ValidateMorselPlanTest, RejectsStreamNotCoveredFromStart) {
  FRep rep = LeafRep({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  MorselPlan plan = PlanOf({Morsel{{EntryBound{1, 10}}, 9.0}}, 10.0);
  ExpectRejected(ErrorOf([&] { ValidateMorselPlan(rep, false, plan); }),
                 "stream start");
}

TEST(ValidateMorselPlanTest, RejectsBoundPastUnionLength) {
  FRep rep = LeafRep({1, 2, 3});
  MorselPlan plan = PlanOf({Morsel{{EntryBound{0, 4}}, 4.0}}, 3.0);
  ExpectRejected(ErrorOf([&] { ValidateMorselPlan(rep, false, plan); }),
                 "exceeds the union length");
}

TEST(ValidateMorselPlanTest, RejectsUnpinnedInnerBound) {
  FRep rep(ChainTree());
  rep.MarkNonEmpty();
  const int root = rep.tree().roots()[0];
  const int leaf = rep.tree().node(root).children[0];
  UnionBuilder l1 = rep.StartUnion(leaf);
  l1.AddValue(10);
  const uint32_t lid1 = l1.Finish();
  UnionBuilder l2 = rep.StartUnion(leaf);
  l2.AddValue(20);
  const uint32_t lid2 = l2.Finish();
  UnionBuilder b = rep.StartUnion(root);
  b.AddValue(1);
  b.AddValue(2);
  b.AddChild(lid1);
  b.AddChild(lid2);
  rep.roots().push_back(b.Finish());
  ASSERT_NO_THROW(ValidateDeep(rep));
  // An inner bound spanning two entries: the restricted frames below it
  // would not form a fixed chain.
  MorselPlan plan = PlanOf(
      {Morsel{{EntryBound{0, 2}, EntryBound{0, 1}}, 2.0}}, 2.0);
  ExpectRejected(ErrorOf([&] { ValidateMorselPlan(rep, false, plan); }),
                 "pin");
}

// ---- corrupted grouped aggregates ----------------------------------------

GroupedRep GroceryGrouped() {
  auto db = MakeGroceryDb();
  Engine engine(db.get());
  FRep rep = engine.EvaluateFlat(GroceryQ1(*db)).rep;
  return GroupByAggregate(rep, AttrSet::Of({db->Attr("dispatcher")}),
                          {AggSpec{AggFn::kCount, 0}});
}

TEST(ValidateGroupedRepTest, RejectsPayloadArityMismatch) {
  GroupedRep g = GroceryGrouped();
  ASSERT_FALSE(g.entry_count.empty());
  g.entry_count.pop_back();
  ExpectRejected(ErrorOf([&] { ValidateGroupedRep(g); }), "entry_count");
}

TEST(ValidateGroupedRepTest, RejectsZeroEntryCount) {
  GroupedRep g = GroceryGrouped();
  ASSERT_FALSE(g.entry_count.empty());
  g.entry_count[0] = 0;
  ExpectRejected(ErrorOf([&] { ValidateGroupedRep(g); }),
                 "zero collapsed tuples");
}

TEST(ValidateGroupedRepTest, RejectsZeroGlobalCount) {
  GroupedRep g = GroceryGrouped();
  g.global_count = 0;
  ExpectRejected(ErrorOf([&] { ValidateGroupedRep(g); }), "global_count");
}

}  // namespace
}  // namespace fdb
