// Tests for common/trace.h (span tree construction, RAII scopes, render
// format) and the engine integration: ExecuteTraced / EXPLAIN ANALYZE span
// structure. Durations are asserted only structurally (children sum to at
// most the parent; totals are positive) — never against wall-clock
// expectations, so the suite cannot flake on slow machines.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/engine.h"
#include "common/trace.h"
#include "common/types.h"
#include "sql/parser.h"

namespace fdb {
namespace {

TEST(QueryTrace, OpenCloseBuildsTree) {
  QueryTrace t;
  int root = t.OpenSpan("query");
  int a = t.OpenSpan("parse");
  t.CloseSpan(a, 0.25);
  int b = t.OpenSpan("ground");
  int c = t.OpenSpan("kernel-compile");
  t.CloseSpan(c, 0.0625);
  t.CloseSpan(b, 0.5);
  t.CloseSpan(root, 1.0);

  const std::vector<QueryTrace::Span>& spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[root].name, "query");
  EXPECT_EQ(spans[root].parent, -1);
  EXPECT_EQ(spans[root].depth, 0);
  EXPECT_EQ(spans[a].parent, root);
  EXPECT_EQ(spans[a].depth, 1);
  EXPECT_EQ(spans[b].parent, root);
  EXPECT_EQ(spans[c].parent, b);
  EXPECT_EQ(spans[c].depth, 2);
  EXPECT_EQ(spans[root].seconds, 1.0);
  EXPECT_EQ(spans[c].seconds, 0.0625);
  EXPECT_EQ(t.TotalSeconds(), 1.0);
}

TEST(QueryTrace, CloseMustBeLifo) {
  QueryTrace t;
  int root = t.OpenSpan("query");
  t.OpenSpan("inner");
  EXPECT_THROW(t.CloseSpan(root, 1.0), FdbError);
}

TEST(QueryTrace, RecordSpanAddsClosedLeaf) {
  QueryTrace t;
  int root = t.OpenSpan("query");
  t.RecordSpan("render", 0.125);
  t.CloseSpan(root, 1.0);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[1].name, "render");
  EXPECT_EQ(t.spans()[1].parent, root);
  EXPECT_EQ(t.spans()[1].seconds, 0.125);
}

TEST(QueryTrace, RowsAndBytesPayloads) {
  QueryTrace t;
  int s = t.OpenSpan("enumerate");
  t.SetRows(s, 42);
  t.SetBytes(s, 1024);
  t.CloseSpan(s, 0.5);
  EXPECT_TRUE(t.spans()[s].has_rows);
  EXPECT_EQ(t.spans()[s].rows, 42u);
  EXPECT_TRUE(t.spans()[s].has_bytes);
  EXPECT_EQ(t.spans()[s].bytes, 1024u);
}

TEST(QueryTrace, ScopeIsRaii) {
  QueryTrace t;
  {
    QueryTrace::Scope root(&t, "query");
    {
      QueryTrace::Scope child(&t, "ground");
      child.SetBytes(99);
    }
  }
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].name, "query");
  EXPECT_EQ(t.spans()[1].name, "ground");
  EXPECT_EQ(t.spans()[1].parent, 0);
  EXPECT_TRUE(t.spans()[1].has_bytes);
  EXPECT_GE(t.spans()[0].seconds, 0.0);
  // The parent's wall time covers the child's.
  EXPECT_GE(t.spans()[0].seconds, t.spans()[1].seconds);
}

TEST(QueryTrace, NullTraceScopeIsANoOp) {
  QueryTrace::Scope scope(nullptr, "query");
  scope.SetRows(1);
  scope.SetBytes(2);
  // Nothing to assert beyond "does not crash": the scope never touches a
  // trace and never reads the clock.
}

TEST(QueryTrace, ChildrenSumAtMostParent) {
  QueryTrace t;
  {
    QueryTrace::Scope root(&t, "query");
    for (int i = 0; i < 3; ++i) {
      QueryTrace::Scope child(&t, "phase");
      // Do a little real work so child durations are non-trivial.
      volatile uint64_t x = 0;
      for (int j = 0; j < 10000; ++j) x = x + static_cast<uint64_t>(j);
    }
  }
  const auto& spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  double child_sum = 0.0;
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, 0);
    child_sum += spans[i].seconds;
  }
  EXPECT_LE(child_sum, spans[0].seconds);
}

// Masks "time=<value>" fields so render output can be compared exactly
// without depending on wall times.
std::string MaskTimes(const std::string& rendered) {
  std::string out;
  std::istringstream is(rendered);
  std::string line;
  while (std::getline(is, line)) {
    size_t pos;
    while ((pos = line.find("time=")) != std::string::npos) {
      size_t end = line.find_first_of(" \n", pos);
      if (end == std::string::npos) end = line.size();
      line.replace(pos, end - pos, "T");
    }
    // The total line carries a time too.
    if (line.rfind("-- total", 0) == 0) line = "-- total";
    out += line;
    out += '\n';
  }
  return out;
}

TEST(QueryTrace, RenderFormat) {
  QueryTrace t;
  int root = t.OpenSpan("query");
  int g = t.OpenSpan("ground");
  t.SetBytes(g, 2048);
  t.CloseSpan(g, 0.002);
  int e = t.OpenSpan("enumerate");
  t.SetRows(e, 7);
  t.CloseSpan(e, 0.001);
  t.CloseSpan(root, 0.004);

  EXPECT_EQ(MaskTimes(t.Render()),
            "EXPLAIN ANALYZE\n"
            "query  T\n"
            "  ground  T bytes=2048\n"
            "  enumerate  T rows=7\n"
            "-- total\n");
}

// ---------------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------------

void LoadDemo(Database* db) {
  RelId orders = db->CreateRelation("orders", {"oid", "item:str"});
  RelId stock = db->CreateRelation("stock", {"sitem:str", "warehouse:str"});
  db->Insert(orders, {int64_t{1}, "Milk"});
  db->Insert(orders, {int64_t{1}, "Cheese"});
  db->Insert(orders, {int64_t{2}, "Melon"});
  db->Insert(stock, {"Milk", "North"});
  db->Insert(stock, {"Milk", "South"});
  db->Insert(stock, {"Cheese", "South"});
  db->Insert(stock, {"Melon", "North"});
}

// name -> index of its first occurrence.
std::map<std::string, int> IndexByName(const QueryTrace& t) {
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < t.spans().size(); ++i) {
    by_name.emplace(t.spans()[i].name, static_cast<int>(i));
  }
  return by_name;
}

TEST(EngineTrace, ExecuteTracedSpjSpanStructure) {
  Database db;
  LoadDemo(&db);
  Engine engine(&db);
  QueryTrace trace;
  {
    QueryTrace::Scope root(&trace, "query");
    Query q = engine.Parse("SELECT * FROM orders, stock WHERE item = sitem");
    engine.ExecuteTraced(q, &trace);
  }

  std::map<std::string, int> spans = IndexByName(trace);
  ASSERT_TRUE(spans.count("query"));
  ASSERT_TRUE(spans.count("f-tree-search"));
  ASSERT_TRUE(spans.count("ground"));
  ASSERT_TRUE(spans.count("morsel-plan"));
  ASSERT_TRUE(spans.count("enumerate"));
  const auto& all = trace.spans();
  int root = spans["query"];
  EXPECT_EQ(all[root].parent, -1);
  EXPECT_EQ(all[spans["ground"]].parent, root);
  EXPECT_TRUE(all[spans["ground"]].has_bytes);
  EXPECT_GT(all[spans["ground"]].bytes, 0u);
  EXPECT_TRUE(all[spans["enumerate"]].has_rows);
  EXPECT_EQ(all[spans["enumerate"]].rows, 4u);  // the demo join has 4 rows

  // Direct children of the root account for at most its wall time.
  double child_sum = 0.0;
  for (const auto& s : all) {
    if (s.parent == root) child_sum += s.seconds;
  }
  EXPECT_LE(child_sum, all[root].seconds);
  EXPECT_GT(trace.TotalSeconds(), 0.0);
}

TEST(EngineTrace, ExecuteTracedAggregateSpanStructure) {
  Database db;
  LoadDemo(&db);
  Engine engine(&db);
  QueryTrace trace;
  {
    QueryTrace::Scope root(&trace, "query");
    Query q = engine.Parse(
        "SELECT warehouse, COUNT(*) FROM orders, stock "
        "WHERE item = sitem GROUP BY warehouse");
    engine.ExecuteTraced(q, &trace);
  }
  std::map<std::string, int> spans = IndexByName(trace);
  ASSERT_TRUE(spans.count("restructure-aggregate"));
  ASSERT_TRUE(spans.count("materialize-groups"));
  EXPECT_TRUE(trace.spans()[spans["materialize-groups"]].has_rows);
  EXPECT_EQ(trace.spans()[spans["materialize-groups"]].rows, 2u);
  // No enumeration spans: aggregate output is a grouped table.
  EXPECT_FALSE(spans.count("enumerate"));
}

TEST(EngineTrace, PretreeSkipsSearchSpan) {
  Database db;
  LoadDemo(&db);
  Engine engine(&db);
  Query q = engine.Parse("SELECT * FROM orders, stock WHERE item = sitem");
  FTreeSearchResult pre = engine.OptimizeFlat(q);
  QueryTrace trace;
  engine.EvaluateFlat(q, &pre, &trace);
  std::map<std::string, int> spans = IndexByName(trace);
  EXPECT_FALSE(spans.count("f-tree-search"));
  EXPECT_TRUE(spans.count("ground"));
}

TEST(EngineTrace, ExplainAnalyzeExecute) {
  Database db;
  LoadDemo(&db);
  Engine engine(&db);
  FdbResult res = engine.Execute(
      "EXPLAIN ANALYZE SELECT * FROM orders, stock WHERE item = sitem");
  ASSERT_TRUE(res.explain.has_value());
  const std::string& body = *res.explain;
  EXPECT_EQ(body.rfind("EXPLAIN ANALYZE\n", 0), 0u);
  EXPECT_NE(body.find("query"), std::string::npos);
  EXPECT_NE(body.find("parse"), std::string::npos);
  EXPECT_NE(body.find("f-tree-search"), std::string::npos);
  EXPECT_NE(body.find("ground"), std::string::npos);
  EXPECT_NE(body.find("enumerate"), std::string::npos);
  EXPECT_NE(body.find("-- total"), std::string::npos);
  // The factorised result still rides along.
  EXPECT_GT(res.FlatTuples(), 0.0);
}

TEST(EngineTrace, PlainExecuteHasNoExplain) {
  Database db;
  LoadDemo(&db);
  Engine engine(&db);
  FdbResult res =
      engine.Execute("SELECT * FROM orders, stock WHERE item = sitem");
  EXPECT_FALSE(res.explain.has_value());
}

TEST(SqlParse, IsExplainAnalyzeTextScan) {
  EXPECT_TRUE(IsExplainAnalyze("EXPLAIN ANALYZE SELECT 1"));
  EXPECT_TRUE(IsExplainAnalyze("  explain   Analyze select *"));
  EXPECT_TRUE(IsExplainAnalyze("\texplain analyze"));
  EXPECT_FALSE(IsExplainAnalyze("SELECT * FROM t"));
  EXPECT_FALSE(IsExplainAnalyze("explainanalyze select"));
  EXPECT_FALSE(IsExplainAnalyze("explain select"));
  EXPECT_FALSE(IsExplainAnalyze("explained analyze"));
  EXPECT_FALSE(IsExplainAnalyze(""));
}

}  // namespace
}  // namespace fdb
