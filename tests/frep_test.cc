#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "core/frep.h"
#include "core/ground.h"
#include "core/print.h"
#include "test_util.h"

namespace fdb {
namespace {

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(FRep, EmptyRepresentation) {
  FRep rep{PathFTree({0, 1}, 0)};
  EXPECT_TRUE(rep.empty());
  EXPECT_EQ(rep.NumSingletons(), 0u);
  EXPECT_EQ(rep.CountTuples(), 0.0);
  rep.Validate();
}

TEST(FRep, Example3Factorisation) {
  // R = {(1,1),(1,2),(2,2)} over the f-tree A -> B:
  // <A:1> x (<B:1> u <B:2>) u <A:2> x <B:2>  — 5 singletons.
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  rep.Validate();
  EXPECT_FALSE(rep.empty());
  EXPECT_EQ(rep.NumSingletons(), 5u);
  EXPECT_EQ(rep.CountTuples(), 3.0);
  EXPECT_EQ(rep.NumValues(), 5u);
}

TEST(FRep, SingletonCountsClassAttributes) {
  // A node labelled by a 2-attribute class counts each value twice.
  Relation r = MakeRel({0, 1}, {{1, 1}, {2, 2}});
  FTree t;
  AttrSet cls = AttrSet::Of({0, 1});
  int n = t.NewNode(cls, cls, RelSet::Of({0}), RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep = GroundQuery(t, {&r});
  rep.Validate();
  EXPECT_EQ(rep.CountTuples(), 2.0);
  EXPECT_EQ(rep.NumValues(), 2u);
  EXPECT_EQ(rep.NumSingletons(), 4u);  // 2 values x 2 attributes
}

TEST(FRep, EnumerationMatchesRelation) {
  Relation r = MakeRel({3, 7}, {{1, 1}, {1, 2}, {2, 2}, {5, 9}});
  r.SortLex();
  FRep rep = GroundRelation(r, 0);
  EXPECT_TRUE(testing_util::SameRelation(rep, r));
}

TEST(FRep, EnumerationOrderAndDelay) {
  Relation r = MakeRel({0, 1}, {{2, 5}, {1, 7}, {1, 4}});
  FRep rep = GroundRelation(r, 0);
  TupleEnumerator en(rep);
  std::vector<std::pair<Value, Value>> got;
  while (en.Next()) got.emplace_back(en.ValueOf(0), en.ValueOf(1));
  // Lexicographic by the path f-tree order.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(int64_t{1}, int64_t{4}));
  EXPECT_EQ(got[1], std::make_pair(int64_t{1}, int64_t{7}));
  EXPECT_EQ(got[2], std::make_pair(int64_t{2}, int64_t{5}));
}

TEST(FRep, EnumeratorOnEmptyRep) {
  FRep rep{PathFTree({0}, 0)};
  TupleEnumerator en(rep);
  EXPECT_FALSE(en.Next());
}

TEST(FRep, NullaryRelation) {
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  rep.Validate();
  EXPECT_EQ(rep.CountTuples(), 1.0);
  TupleEnumerator en(rep);
  EXPECT_TRUE(en.Next());   // the single nullary tuple
  EXPECT_FALSE(en.Next());
}

// A deferred-projection f-tree: the node of `invisible` stays in the tree
// but contributes nothing to the output schema.
FTree DeferredProjectionTree(AttrId visible, AttrId invisible, bool inv_root) {
  FTree t;
  int v = t.NewNode(AttrSet::Of({visible}), AttrSet::Of({visible}),
                    RelSet::Of({0}), RelSet::Of({0}));
  int i = t.NewNode(AttrSet::Of({invisible}), {}, RelSet::Of({0}),
                    RelSet::Of({0}));
  if (inv_root) {
    t.AttachRoot(i);
    t.AttachChild(i, v);
  } else {
    t.AttachRoot(v);
    t.AttachChild(v, i);
  }
  return t;
}

TEST(FRep, VisibleOnlyEnumerationSkipsInvisibleSubtrees) {
  // A (visible) -> B (invisible): full enumeration yields all 3 tuples,
  // so projecting to A repeats the value 1; visible-only enumeration
  // collapses positions that differ only below the invisible leaf.
  Relation r = MakeRel({0, 1}, {{1, 10}, {1, 20}, {2, 30}});
  FRep rep = GroundQuery(DeferredProjectionTree(0, 1, false), {&r});
  rep.Validate();

  TupleEnumerator full(rep);
  size_t full_count = 0;
  while (full.Next()) ++full_count;
  EXPECT_EQ(full_count, 3u);  // distinct tuples over all attributes

  TupleEnumerator vis(rep, /*visible_only=*/true);
  std::vector<Value> got;
  while (vis.Next()) got.push_back(vis.ValueOf(0));
  EXPECT_EQ(got, (std::vector<Value>{1, 2}));  // no duplicate visible tuple

  Relation m = MaterializeVisible(rep);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FRep, VisibleOnlyEnumerationKeepsVisibleDescendants) {
  // A (invisible) -> B (visible): the invisible node has a visible
  // descendant, so its frames must stay in the odometer; duplicates that
  // are a property of the data (both A-values lead to B=10) remain and
  // MaterializeVisible removes them by sort+dedup.
  Relation r = MakeRel({0, 1}, {{1, 10}, {2, 10}, {2, 20}});
  FRep rep = GroundQuery(DeferredProjectionTree(1, 0, true), {&r});
  rep.Validate();

  TupleEnumerator vis(rep, /*visible_only=*/true);
  std::vector<Value> got;
  while (vis.Next()) got.push_back(vis.ValueOf(1));
  EXPECT_EQ(got.size(), 3u);  // data duplicate B=10 still streams twice

  Relation m = MaterializeVisible(rep);
  EXPECT_EQ(m.size(), 2u);  // {10, 20}
}

TEST(FRep, VisibleOnlyEnumerationOfFullyInvisibleRep) {
  // Everything projected away (deferred): exactly one empty visible tuple.
  Relation r = MakeRel({0, 1}, {{1, 10}, {2, 20}});
  FTree t = DeferredProjectionTree(0, 1, false);
  t.node(t.FindAttr(0)).visible = {};
  FRep rep = GroundQuery(t, {&r});

  TupleEnumerator vis(rep, /*visible_only=*/true);
  EXPECT_TRUE(vis.Next());
  EXPECT_FALSE(vis.Next());
  EXPECT_EQ(MaterializeVisible(rep).size(), 1u);
}

TEST(FRep, ValidateRejectsUnsortedUnion) {
  FTree t = PathFTree({0}, 0);
  FRep rep{t};
  UnionBuilder b = rep.StartUnion(0);
  b.AddValue(3);
  b.AddValue(1);  // not ascending
  rep.roots().push_back(b.Finish());
  rep.MarkNonEmpty();
  EXPECT_THROW(rep.Validate(), FdbError);
}

TEST(FRep, ValidateRejectsChildCountMismatch) {
  FTree t = PathFTree({0, 1}, 0);
  FRep rep{t};
  UnionBuilder b = rep.StartUnion(0);
  b.AddValue(1);  // missing the child slot for node 1
  rep.roots().push_back(b.Finish());
  rep.MarkNonEmpty();
  EXPECT_THROW(rep.Validate(), FdbError);
}

TEST(FRep, CountTuplesMultipliesForest) {
  // Two independent root unions of 2 and 3 values: 6 tuples.
  Relation r1 = MakeRel({0}, {{1}, {2}});
  Relation r2 = MakeRel({1}, {{1}, {2}, {3}});
  FTree t;
  int n0 = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int n1 = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(n0);
  t.AttachRoot(n1);
  FRep rep = GroundQuery(t, {&r1, &r2});
  rep.Validate();
  EXPECT_EQ(rep.CountTuples(), 6.0);
  EXPECT_EQ(rep.NumSingletons(), 5u);  // exponential gap in miniature
}

TEST(Print, PaperNotation) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  PrintOptions opts;
  opts.unicode = false;
  EXPECT_EQ(ToExpressionString(rep, opts),
            "<1> x (<1> u <2>) u <2> x <2>");
}

TEST(Print, EmptyAndNullary) {
  FRep empty{PathFTree({0}, 0)};
  PrintOptions opts;
  opts.unicode = false;
  EXPECT_EQ(ToExpressionString(empty, opts), "{}");
  FRep nullary{FTree{}};
  nullary.MarkNonEmpty();
  EXPECT_EQ(ToExpressionString(nullary, opts), "<>");
}

TEST(Print, TruncatesLongOutput) {
  Relation r({0});
  for (Value v = 0; v < 100; ++v) r.AddTuple({v});
  FRep rep = GroundRelation(r, 0);
  PrintOptions opts;
  opts.unicode = false;
  opts.max_chars = 20;
  std::string s = ToExpressionString(rep, opts);
  EXPECT_LE(s.size(), 24u);  // 20 + "..."
}

TEST(Print, DictionaryDecoding) {
  auto db = testing_util::MakeGroceryDb();
  FRep rep = GroundRelation(
      db->relation(static_cast<RelId>(db->catalog().FindRelation("Produce"))),
      0);
  PrintOptions opts;
  opts.unicode = false;
  opts.catalog = &db->catalog();
  opts.dict = &db->dict();
  std::string s = ToExpressionString(rep, opts);
  EXPECT_NE(s.find("Guney"), std::string::npos);
  EXPECT_NE(s.find("Milk"), std::string::npos);
}

}  // namespace
}  // namespace fdb
