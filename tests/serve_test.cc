// Serve-path tests: SQL normalisation, the shared plan cache, and the
// concurrent QueryServer — every concurrent response must be byte-identical
// to a single-threaded Engine::Execute reference. The whole suite runs
// under ThreadSanitizer in CI (the tsan CMake preset).
#include <algorithm>
#include <atomic>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/query_server.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::MakeGroceryDb;

ServeOptions Workers(int n) {
  ServeOptions o;
  o.num_workers = n;
  return o;
}

// ---------------------------------------------------------------------------
// NormalizeSql
// ---------------------------------------------------------------------------

TEST(NormalizeSql, WhitespaceAndKeywordCaseCoincide) {
  auto db = MakeGroceryDb();
  const Catalog& cat = db->catalog();
  std::string base = NormalizeSql(
      "SELECT * FROM Orders, Store WHERE o_item = s_item", cat);
  EXPECT_EQ(base, NormalizeSql(
                      "select *\n  from Orders,\tStore\n where o_item=s_item",
                      cat));
  EXPECT_EQ(base, NormalizeSql(
                      "Select * From Orders , Store Where o_item = s_item",
                      cat));
}

TEST(NormalizeSql, IdentifierCaseIsPreserved) {
  auto db = MakeGroceryDb();
  const Catalog& cat = db->catalog();
  // Relation/attribute names are case-sensitive: folding them would
  // conflate distinct (and differently-valid) queries.
  EXPECT_NE(NormalizeSql("SELECT * FROM Orders", cat),
            NormalizeSql("SELECT * FROM orders", cat));
  // String literal bodies are significant.
  EXPECT_NE(NormalizeSql("SELECT * FROM Orders WHERE o_item = 'Milk'", cat),
            NormalizeSql("SELECT * FROM Orders WHERE o_item = 'milk'", cat));
}

TEST(NormalizeSql, OperatorAndLiteralCanonicalisation) {
  auto db = MakeGroceryDb();
  const Catalog& cat = db->catalog();
  EXPECT_EQ(NormalizeSql("SELECT * FROM Orders WHERE oid <> 007", cat),
            NormalizeSql("select * from Orders where oid != 7", cat));
}

TEST(NormalizeSql, AggregateQueriesNormalise) {
  auto db = MakeGroceryDb();
  const Catalog& cat = db->catalog();
  EXPECT_EQ(
      NormalizeSql("SELECT s_location, COUNT(*) FROM Orders, Store WHERE "
                   "o_item = s_item GROUP BY s_location",
                   cat),
      NormalizeSql("select s_location , Count( * ) from Orders,Store where "
                   "o_item=s_item group by s_location",
                   cat));
}

TEST(NormalizeSql, ExplainAnalyzeFoldsToLowercasePrefix) {
  auto db = MakeGroceryDb();
  const Catalog& cat = db->catalog();
  // The serve path detects explain statements by this normalised prefix
  // (see QueryServer::ExecuteGroup), so the fold must be exact.
  std::string sig = NormalizeSql(
      "EXPLAIN  Analyze SELECT * FROM Orders, Store WHERE o_item = s_item",
      cat);
  EXPECT_EQ(sig.rfind("explain analyze ", 0), 0u);
  EXPECT_EQ(sig, NormalizeSql("explain analyze select * from Orders , Store "
                              "where o_item = s_item",
                              cat));
}

TEST(NormalizeSql, RejectsUnlexableInput) {
  auto db = MakeGroceryDb();
  EXPECT_THROW(NormalizeSql("SELECT ? FROM Orders", db->catalog()), FdbError);
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedPlan> DummyPlan() {
  return std::make_shared<CachedPlan>();
}

TEST(PlanCache, HitMissAndStats) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Lookup("q1", 1), nullptr);
  cache.Insert("q1", 1, DummyPlan());
  EXPECT_NE(cache.Lookup("q1", 1), nullptr);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.capacity, 4u);
}

TEST(PlanCache, VersionBumpInvalidates) {
  PlanCache cache(4);
  cache.Insert("q1", 1, DummyPlan());
  EXPECT_NE(cache.Lookup("q1", 1), nullptr);
  // Same signature against a newer database version: stale entry dropped.
  EXPECT_EQ(cache.Lookup("q1", 2), nullptr);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.size, 0u);
  // Re-inserted under the new version it hits again.
  cache.Insert("q1", 2, DummyPlan());
  EXPECT_NE(cache.Lookup("q1", 2), nullptr);
}

TEST(PlanCache, LruEvictionBoundedByCapacity) {
  PlanCache cache(3);
  cache.Insert("a", 1, DummyPlan());
  cache.Insert("b", 1, DummyPlan());
  cache.Insert("c", 1, DummyPlan());
  // Touch "a" so "b" is the least recently used.
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  cache.Insert("d", 1, DummyPlan());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup("a", 1), nullptr);  // survived (recently used)
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
  EXPECT_NE(cache.Lookup("d", 1), nullptr);
  // Filling far past capacity never grows the cache.
  for (int i = 0; i < 100; ++i) {
    cache.Insert("x" + std::to_string(i), 1, DummyPlan());
  }
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCache, ReinsertReplacesWithoutEviction) {
  PlanCache cache(2);
  cache.Insert("a", 1, DummyPlan());
  cache.Insert("b", 1, DummyPlan());
  cache.Insert("a", 2, DummyPlan());  // replace, not evict
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_NE(cache.Lookup("a", 2), nullptr);
  EXPECT_NE(cache.Lookup("b", 1), nullptr);
}

// ---------------------------------------------------------------------------
// QueryServer
// ---------------------------------------------------------------------------

// The reference: single-threaded Engine::Execute rendered through the same
// canonical renderer the server uses.
ServeResponse Reference(Engine& engine, const Database& db,
                        const std::string& sql) {
  try {
    FdbResult res = engine.Execute(sql);
    return ServeResponse{ServeStatus::kOk, RenderResult(db, res), false,
                         false};
  } catch (const FdbError& e) {
    return ServeResponse{ServeStatus::kError, e.what(), false, false};
  }
}

std::vector<std::string> GroceryQueries() {
  return {
      "SELECT * FROM Orders, Store WHERE o_item = s_item",
      // Same query modulo whitespace and keyword case: one cache entry.
      "select  *  from Orders, Store  where o_item = s_item",
      "SELECT oid, s_location FROM Orders, Store WHERE o_item = s_item",
      "SELECT * FROM Orders, Store WHERE o_item = s_item AND o_item = 'Milk'",
      "SELECT * FROM Orders, Store WHERE o_item = s_item AND oid >= 2",
      "SELECT * FROM Orders, Store, Disp WHERE o_item = s_item AND "
      "s_location = d_location",
      "SELECT s_location, COUNT(*), SUM(oid) FROM Orders, Store WHERE "
      "o_item = s_item GROUP BY s_location",
      "SELECT COUNT(*) FROM Orders, Store WHERE o_item = s_item",
      // Literal absent from the data: fresh dictionary code, empty result.
      "SELECT * FROM Orders, Store WHERE o_item = s_item AND "
      "o_item = 'Durian'",
      // Errors must be served identically too.
      "SELECT * FROM Nowhere",
      "SELECT oid FROM Orders WHERE oid = nonexistent_attr",
  };
}

TEST(QueryServer, MatchesEngineSingleThreaded) {
  auto db = MakeGroceryDb();
  Engine reference(db.get());
  QueryServer server(db.get(), Workers(1));
  for (const std::string& sql : GroceryQueries()) {
    ServeResponse expect = Reference(reference, *db, sql);
    ServeResponse got = server.Query(sql);
    EXPECT_EQ(static_cast<int>(got.status), static_cast<int>(expect.status))
        << sql;
    EXPECT_EQ(got.body, expect.body) << sql;
  }
}

// The acceptance hammer: >= 8 client threads, every response byte-identical
// to the single-threaded reference.
TEST(QueryServer, ConcurrentHammerByteIdentical) {
  auto db = MakeGroceryDb();
  const std::vector<std::string> queries = GroceryQueries();

  // Compute all references first, single-threaded. (Literals are interned
  // here; the server re-interns the same strings, which is idempotent.)
  Engine reference(db.get());
  std::vector<ServeResponse> expected;
  expected.reserve(queries.size());
  for (const std::string& sql : queries) {
    expected.push_back(Reference(reference, *db, sql));
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 25;
  QueryServer server(db.get(), Workers(4));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(1234 + c));
      std::vector<size_t> order(queries.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (int round = 0; round < kRounds; ++round) {
        std::shuffle(order.begin(), order.end(), rng);
        for (size_t i : order) {
          ServeResponse got = server.Query(queries[i]);
          if (static_cast<int>(got.status) !=
                  static_cast<int>(expected[i].status) ||
              got.body != expected[i].body) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  ServerStats stats = server.stats();
  const uint64_t total =
      static_cast<uint64_t>(kClients) * kRounds * queries.size();
  EXPECT_EQ(stats.received, total);
  // Two of the queries error out; each errored request is counted.
  EXPECT_GE(stats.errors, 2u);
  // Every executed group does exactly one cache lookup.
  EXPECT_EQ(stats.plan_cache.hits + stats.plan_cache.misses, stats.executed);
  EXPECT_GT(stats.plan_cache.hits, 0u);
  // Cacheable signatures miss at most a handful of times (two workers can
  // race on the first optimisation); erroring queries are never cached, so
  // each of their evaluations is a miss — bounded by the errored requests.
  EXPECT_LE(stats.plan_cache.misses,
            static_cast<uint64_t>(queries.size()) * 4 + stats.errors);
}

TEST(QueryServer, DataChangeBumpsVersionAndInvalidatesPlans) {
  auto db = MakeGroceryDb();
  const std::string sql = "SELECT * FROM Orders, Store WHERE o_item = s_item";
  QueryServer server(db.get(), Workers(2));

  ServeResponse before = server.Query(sql);
  ASSERT_EQ(static_cast<int>(before.status),
            static_cast<int>(ServeStatus::kOk));
  EXPECT_NE(server.Query(sql).body, "");  // second hit, warm
  EXPECT_EQ(server.plan_cache().stats().hits, 1u);

  // Mutating the database while the server is quiescent (no in-flight
  // requests) bumps the version; the cached plan must not be reused.
  db->Insert(static_cast<RelId>(db->catalog().FindRelation("Orders")),
             {int64_t{9}, "Milk"});
  ServeResponse after = server.Query(sql);
  EXPECT_EQ(static_cast<int>(after.status),
            static_cast<int>(ServeStatus::kOk));
  EXPECT_NE(after.body, before.body);  // the new row is visible
  EXPECT_EQ(server.plan_cache().stats().invalidations, 1u);

  // And the reference agrees on the new database.
  Engine reference(db.get());
  EXPECT_EQ(after.body, Reference(reference, *db, sql).body);
}

TEST(QueryServer, CoalescesIdenticalQueries) {
  // A database whose join query is slow to ground (two 120k-tuple
  // relations are copied and sorted per evaluation), so a single worker
  // stays busy for tens of milliseconds while a flood of identical cheap
  // requests piles up — they must collapse into one evaluation group.
  Database db;
  RelId a = db.CreateRelation("A", {"x", "y"});
  RelId b = db.CreateRelation("B", {"y2", "z"});
  constexpr int64_t kRows = 120'000;
  Relation& ra = db.relation(a);
  Relation& rb = db.relation(b);
  for (int64_t i = 0; i < kRows; ++i) {
    ra.AddTuple({i, (i * 131) % 50});
    rb.AddTuple({(i * 137) % 50, i});
  }
  const std::string slow = "SELECT COUNT(*) FROM A, B WHERE y = y2";
  const std::string fast = "SELECT * FROM A WHERE x = 17 AND x = 18";

  // The group boundary is inherently racy (a worker may drain the queue
  // between two submissions), so retry the scenario on a fresh server; the
  // counter invariants must hold on every attempt, and with a >= 10ms head
  // query the flood coalesces essentially always.
  bool saw_coalescing = false;
  for (int attempt = 0; attempt < 5 && !saw_coalescing; ++attempt) {
    QueryServer server(&db, Workers(1));
    std::future<ServeResponse> head = server.Submit(slow);
    constexpr int kFlood = 32;
    std::vector<std::future<ServeResponse>> flood;
    flood.reserve(kFlood);
    for (int i = 0; i < kFlood; ++i) flood.push_back(server.Submit(fast));

    EXPECT_EQ(static_cast<int>(head.get().status),
              static_cast<int>(ServeStatus::kOk));
    std::string first_body;
    for (auto& f : flood) {
      ServeResponse r = f.get();
      EXPECT_EQ(static_cast<int>(r.status),
                static_cast<int>(ServeStatus::kOk));
      if (first_body.empty()) {
        first_body = r.body;
      } else {
        EXPECT_EQ(r.body, first_body);  // one evaluation, one body
      }
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.received, static_cast<uint64_t>(kFlood) + 1);
    EXPECT_EQ(stats.coalesced + stats.executed, stats.received);
    if (stats.coalesced > 0) {
      EXPECT_LT(stats.executed, stats.received);
      saw_coalescing = true;
    }
  }
  EXPECT_TRUE(saw_coalescing);
}

TEST(QueryServer, BoundedQueueRejectsOverloadWithBusy) {
  // Same slow-join shape as the coalescing test: one worker is pinned on
  // an expensive head query while distinct requests pile up behind a
  // max_queue=2 bound — the overflow must be shed with BUSY immediately.
  Database db;
  RelId a = db.CreateRelation("A", {"x", "y"});
  RelId b = db.CreateRelation("B", {"y2", "z"});
  constexpr int64_t kRows = 120'000;
  for (int64_t i = 0; i < kRows; ++i) {
    db.relation(a).AddTuple({i, (i * 131) % 50});
    db.relation(b).AddTuple({(i * 137) % 50, i});
  }
  ServeOptions opts = Workers(1);
  opts.max_queue = 2;
  QueryServer server(&db, opts);

  std::future<ServeResponse> head =
      server.Submit("SELECT COUNT(*) FROM A, B WHERE y = y2");
  constexpr int kFlood = 24;
  std::vector<std::future<ServeResponse>> flood;
  flood.reserve(kFlood);
  for (int i = 0; i < kFlood; ++i) {
    // Distinct signatures: each opens its own evaluation group.
    flood.push_back(
        server.Submit("SELECT * FROM A WHERE x = " + std::to_string(i) +
                      " AND x = " + std::to_string(i + 1)));
  }
  // Identical SQL to a queued group coalesces past a full queue: it adds
  // no queue pressure, so admission control must not shed it. One of the
  // first two flood statements is still queued while the worker grinds
  // through the head query.
  std::vector<std::future<ServeResponse>> dup;
  for (int i = 0; i < 2; ++i) {
    dup.push_back(server.Submit("SELECT * FROM A WHERE x = " +
                                std::to_string(i) + " AND x = " +
                                std::to_string(i + 1)));
  }

  EXPECT_EQ(static_cast<int>(head.get().status),
            static_cast<int>(ServeStatus::kOk));
  uint64_t busy = 0;
  for (auto& f : flood) {
    ServeResponse r = f.get();
    if (r.status == ServeStatus::kBusy) {
      ++busy;
      EXPECT_NE(r.body.find("queue is full"), std::string::npos);
    } else {
      EXPECT_EQ(static_cast<int>(r.status),
                static_cast<int>(ServeStatus::kOk));
    }
  }
  uint64_t dup_busy = 0, dup_coalesced = 0;
  for (auto& f : dup) {
    ServeResponse r = f.get();
    if (r.status == ServeStatus::kBusy) ++dup_busy;
    if (r.coalesced) ++dup_coalesced;
  }
  // flood[0] is admitted in every interleaving and stays queued while the
  // worker grinds the head query, so its duplicate must have coalesced
  // rather than been shed.
  EXPECT_GE(dup_coalesced, 1u);
  // The head group may or may not have been dequeued when the flood hit,
  // so at most 3 groups ever fit; everything else must have been shed.
  EXPECT_GE(busy, static_cast<uint64_t>(kFlood) - 3);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, busy + dup_busy);
  EXPECT_EQ(stats.received,
            static_cast<uint64_t>(kFlood) + 1 + dup.size());
  EXPECT_EQ(stats.coalesced, dup_coalesced);
  // Rejected requests are never evaluated or double-counted elsewhere.
  EXPECT_EQ(stats.executed + stats.coalesced + stats.rejected,
            stats.received);
}

TEST(QueryServer, UnboundedQueueNeverRejects) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(2));  // max_queue = 0 (default)
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        server.Submit("SELECT * FROM Orders WHERE oid = " +
                      std::to_string(i)));
  }
  for (auto& f : futures) {
    EXPECT_NE(static_cast<int>(f.get().status),
              static_cast<int>(ServeStatus::kBusy));
  }
  EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(QueryServer, ExpiredDeadlineTimesOutWithoutEvaluation) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  // A deadline of 1ns is in the past by the time a worker dequeues.
  ServeResponse r = server.Query(
      "SELECT * FROM Orders, Store WHERE o_item = s_item", 1e-9);
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kTimeout));
  EXPECT_EQ(server.stats().timeouts, 1u);
}

TEST(QueryServer, ShutdownAnswersQueuedRequests) {
  auto db = MakeGroceryDb();
  auto server = std::make_unique<QueryServer>(
      db.get(), Workers(1));
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        server->Submit("SELECT * FROM Orders, Store WHERE o_item = s_item"));
  }
  server->Shutdown();
  for (auto& f : futures) {
    ServeResponse r = f.get();  // every future resolves: OK or shutdown ERR
    EXPECT_TRUE(r.status == ServeStatus::kOk ||
                r.status == ServeStatus::kError);
  }
  // After shutdown, new requests are refused but still answered.
  ServeResponse refused =
      server->Query("SELECT * FROM Orders, Store WHERE o_item = s_item");
  EXPECT_EQ(static_cast<int>(refused.status),
            static_cast<int>(ServeStatus::kError));
}

// ---------------------------------------------------------------------------
// Observability: STATS exposition, EXPLAIN ANALYZE, consistency contract
// ---------------------------------------------------------------------------

// Extracts one sample value from a Prometheus text exposition; -1 when the
// metric is absent (so tests distinguish "missing" from "zero").
double ExpoValue(const std::string& expo, const std::string& name) {
  std::istringstream is(expo);
  std::string line;
  const std::string needle = name + " ";
  while (std::getline(is, line)) {
    if (line.rfind(needle, 0) == 0) return std::stod(line.substr(needle.size()));
  }
  return -1.0;
}

TEST(QueryServer, StatsExpositionMatchesStructuredStats) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(2));
  for (const std::string& sql : GroceryQueries()) server.Query(sql);

  // Quiescent (every Query() returned), so the two surfaces must agree
  // exactly — they read the same registry.
  ServerStats s = server.stats();
  std::string expo = server.MetricsExposition();
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_requests_total"),
            static_cast<double>(s.received));
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_executed_total"),
            static_cast<double>(s.executed));
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_coalesced_total"),
            static_cast<double>(s.coalesced));
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_errors_total"),
            static_cast<double>(s.errors));
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_timeouts_total"),
            static_cast<double>(s.timeouts));
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_rejected_total"),
            static_cast<double>(s.rejected));
  EXPECT_EQ(ExpoValue(expo, "fdb_plan_cache_hits_total"),
            static_cast<double>(s.plan_cache.hits));
  EXPECT_EQ(ExpoValue(expo, "fdb_plan_cache_misses_total"),
            static_cast<double>(s.plan_cache.misses));
  EXPECT_EQ(ExpoValue(expo, "fdb_plan_cache_entries"),
            static_cast<double>(s.plan_cache.size));
  // The request-phase histograms saw every executed group.
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_execute_seconds_count"),
            static_cast<double>(s.executed));
  EXPECT_GT(ExpoValue(expo, "fdb_serve_execute_seconds_sum"), 0.0);
  EXPECT_EQ(ExpoValue(expo, "fdb_serve_queue_wait_seconds_count"),
            static_cast<double>(s.executed));
  EXPECT_GE(ExpoValue(expo, "fdb_serve_cache_lookup_seconds_count"), 1.0);
}

TEST(QueryServer, StatsCountersAreMonotone) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(2));
  const std::string sql = "SELECT * FROM Orders, Store WHERE o_item = s_item";
  server.Query(sql);
  ServerStats before = server.stats();
  server.Query(sql);
  server.Query("SELECT * FROM Nowhere");  // errors too only ever increase
  ServerStats after = server.stats();
  EXPECT_GE(after.received, before.received + 2);
  EXPECT_GE(after.executed, before.executed);
  EXPECT_GE(after.errors, before.errors + 1);
  EXPECT_GE(after.plan_cache.hits, before.plan_cache.hits + 1);
  EXPECT_GE(after.plan_cache.misses, before.plan_cache.misses);
}

// The documented contract (see ServerStats in serve/query_server.h):
// counters never tear, are not mutually simultaneous, but at quiescence the
// admission identity holds exactly and a client's own request is visible
// once its response is in hand.
TEST(QueryServer, StatsConsistencyContract) {
  auto db = MakeGroceryDb();
  ServeOptions opts = Workers(2);
  QueryServer server(db.get(), opts);
  for (const std::string& sql : GroceryQueries()) server.Query(sql);
  // Own-request visibility: the response is in hand, so received includes it.
  ServerStats s1 = server.stats();
  EXPECT_GE(s1.received, static_cast<uint64_t>(GroceryQueries().size()));
  // Quiescence identity: every received request was executed, coalesced
  // into a group, or shed.
  EXPECT_EQ(s1.executed + s1.coalesced + s1.rejected, s1.received);
  // A request that expires before its group runs is counted once, under
  // timeouts — its group skips evaluation, so executed stays flat and the
  // identity weakens to the documented inequality.
  server.Query("SELECT * FROM Orders, Store WHERE o_item = s_item", 1e-9);
  ServerStats s2 = server.stats();
  EXPECT_EQ(s2.timeouts, s1.timeouts + 1);
  EXPECT_EQ(s2.executed, s1.executed);
  EXPECT_EQ(s2.received, s1.received + 1);
  EXPECT_LE(s2.received,
            s2.executed + s2.coalesced + s2.rejected + s2.timeouts);
}

TEST(QueryServer, ExplainAnalyzeServesSpanTree) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  const std::string sql =
      "EXPLAIN ANALYZE SELECT * FROM Orders, Store WHERE o_item = s_item";

  // Cold: the plan is optimised under the trace, so the tree shows the
  // full lifecycle.
  ServeResponse cold = server.Query(sql);
  ASSERT_EQ(static_cast<int>(cold.status), static_cast<int>(ServeStatus::kOk));
  EXPECT_EQ(cold.body.rfind("EXPLAIN ANALYZE\n", 0), 0u);
  for (const char* span : {"serve", "normalize", "plan-cache-lookup", "parse",
                           "f-tree-search", "ground", "morsel-plan",
                           "enumerate", "-- total"}) {
    EXPECT_NE(cold.body.find(span), std::string::npos) << span;
  }

  // Warm: the cached plan answers, so parse and f-tree-search never run —
  // and their spans must not appear.
  ServeResponse warm = server.Query(sql);
  ASSERT_EQ(static_cast<int>(warm.status), static_cast<int>(ServeStatus::kOk));
  EXPECT_EQ(warm.body.find("f-tree-search"), std::string::npos);
  EXPECT_EQ(warm.body.find("parse"), std::string::npos);
  EXPECT_NE(warm.body.find("ground"), std::string::npos);
  EXPECT_GE(server.stats().plan_cache.hits, 1u);

  // The traced run is a real execution: the plain query still serves
  // correctly afterwards and matches the engine reference.
  Engine reference(db.get());
  const std::string plain = "SELECT * FROM Orders, Store WHERE o_item = s_item";
  EXPECT_EQ(server.Query(plain).body, Reference(reference, *db, plain).body);
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

TEST(Protocol, IsStatsRequest) {
  EXPECT_TRUE(IsStatsRequest("STATS"));
  EXPECT_TRUE(IsStatsRequest("stats"));
  EXPECT_TRUE(IsStatsRequest("  Stats  "));
  EXPECT_FALSE(IsStatsRequest("STATS extra"));
  EXPECT_FALSE(IsStatsRequest("SELECT stats FROM t"));
  EXPECT_FALSE(IsStatsRequest(""));
}

TEST(Protocol, FrameResponse) {
  EXPECT_EQ(FrameResponse(
                ServeResponse{ServeStatus::kOk, "line1\nline2\n", false, false}),
            "OK 2\nline1\nline2\n");
  EXPECT_EQ(FrameResponse(ServeResponse{ServeStatus::kError,
                                        "bad\nthing", false, false}),
            "ERR bad thing\n");
  EXPECT_EQ(FrameResponse(ServeResponse{ServeStatus::kTimeout,
                                        "deadline exceeded", false, false}),
            "TIMEOUT deadline exceeded\n");
  EXPECT_EQ(FrameResponse(ServeResponse{
                ServeStatus::kBusy, "server overloaded: request queue is full",
                false, false}),
            "BUSY server overloaded: request queue is full\n");
  EXPECT_EQ(FrameResponse(ServeResponse{
                ServeStatus::kResource, "query memory budget\nexceeded",
                false, false}),
            "RESOURCE query memory budget exceeded\n");
}

// ---------------------------------------------------------------------------
// Resource governance: deadlines mid-evaluation, memory budgets, size caps
// ---------------------------------------------------------------------------

// A dense random 7-way chain join Chain1 |x| ... |x| Chain7 over a small
// value domain: the factorised representation branches by up to `domain`
// at every chain level, so grounding alone runs for seconds uncancelled
// (~3s release at domain 50) while any single relation stays tiny.
std::unique_ptr<Database> MakeChainDb(int relations, int domain, int rows,
                                      uint64_t seed) {
  auto db = std::make_unique<Database>();
  std::mt19937_64 rng(seed);
  for (int i = 1; i <= relations; ++i) {
    RelId rel = db->CreateRelation(
        "Chain" + std::to_string(i),
        {"k" + std::to_string(i), "k" + std::to_string(i) + "b"});
    for (int r = 0; r < rows; ++r) {
      auto v = [&] {
        return static_cast<int64_t>(rng() % static_cast<uint64_t>(domain));
      };
      db->Insert(rel, {v(), v()});
    }
  }
  return db;
}

const char kChainSql[] =
    "SELECT * FROM Chain1, Chain2, Chain3, Chain4, Chain5, Chain6, Chain7 "
    "WHERE k1b = k2 AND k2b = k3 AND k3b = k4 AND k4b = k5 AND k5b = k6 "
    "AND k6b = k7";

TEST(QueryServer, PathologicalQueryTimesOutAndWorkerSurvives) {
  auto db = MakeChainDb(/*relations=*/7, /*domain=*/50, /*rows=*/10000,
                        /*seed=*/11);
  QueryServer server(db.get(), Workers(1));
  Timer timer;
  ServeResponse r = server.Query(kChainSql, /*deadline_seconds=*/0.01);
  const double elapsed = timer.Seconds();
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kTimeout))
      << r.body;
  // The cooperative probes fire within microseconds of the deadline;
  // release builds answer well under 100ms. The bound leaves headroom for
  // the sanitizer presets, while staying far below the seconds the
  // evaluation takes uncancelled.
  EXPECT_LT(elapsed, 1.0);
  // The worker thread was reclaimed, not wedged: the server still serves.
  EXPECT_EQ(static_cast<int>(server.Query("SELECT * FROM Chain1").status),
            static_cast<int>(ServeStatus::kOk));
  EXPECT_GE(server.stats().timeouts, 1u);
}

// The same pathological evaluation under a memory budget instead of a
// deadline: arena growth charges the budget and unwinds to RESOURCE long
// before the hundreds of MB the query wants.
TEST(QueryServer, MemoryBudgetStopsPathologicalQuery) {
  auto db = MakeChainDb(/*relations=*/7, /*domain=*/50, /*rows=*/10000,
                        /*seed=*/11);
  ServeOptions opts = Workers(1);
  opts.max_memory_bytes = size_t{1} << 20;  // 1 MiB; the query wants ~400 MB
  QueryServer server(db.get(), opts);
  Timer timer;
  ServeResponse r = server.Query(kChainSql);
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kResource))
      << r.body;
  EXPECT_LT(timer.Seconds(), 2.0);  // stopped at ~1 MiB, not after seconds
  // A query that fits the budget still serves on the same server.
  EXPECT_EQ(static_cast<int>(server.Query("SELECT * FROM Chain1").status),
            static_cast<int>(ServeStatus::kOk));
}

TEST(QueryServer, MemoryBudgetAnswersResource) {
  auto db = MakeGroceryDb();
  ServeOptions opts = Workers(1);
  opts.max_memory_bytes = 64;  // any join's arena growth overflows this
  QueryServer server(db.get(), opts);
  ServeResponse r =
      server.Query("SELECT * FROM Orders, Store WHERE o_item = s_item");
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kResource));
  EXPECT_NE(r.body.find("memory budget"), std::string::npos) << r.body;
  ServerStats s = server.stats();
  EXPECT_EQ(s.resource_rejected, 1u);
  EXPECT_EQ(s.cancelled, 1u);
  // The budget is per-query, not per-server: the same query under an
  // unlimited server succeeds.
  QueryServer unlimited(db.get(), Workers(1));
  EXPECT_EQ(static_cast<int>(
                unlimited.Query("SELECT * FROM Orders, Store "
                                "WHERE o_item = s_item")
                    .status),
            static_cast<int>(ServeStatus::kOk));
}

TEST(QueryServer, MaxResultBytesAnswersResource) {
  auto db = MakeGroceryDb();
  ServeOptions opts = Workers(1);
  opts.max_result_bytes = 16;
  QueryServer server(db.get(), opts);
  ServeResponse r =
      server.Query("SELECT * FROM Orders, Store WHERE o_item = s_item");
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kResource));
  EXPECT_NE(r.body.find("result too large"), std::string::npos) << r.body;
  EXPECT_EQ(server.stats().resource_rejected, 1u);
}

TEST(QueryServer, MaxQueryBytesRejectsAtSubmit) {
  auto db = MakeGroceryDb();
  ServeOptions opts = Workers(1);
  opts.max_query_bytes = 32;  // the join below is 50 bytes; a scan is 19
  QueryServer server(db.get(), opts);
  ServeResponse r =
      server.Query("SELECT * FROM Orders, Store WHERE o_item = s_item");
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kResource));
  EXPECT_NE(r.body.find("query too large"), std::string::npos) << r.body;
  ServerStats s = server.stats();
  EXPECT_EQ(s.resource_rejected, 1u);
  EXPECT_EQ(s.received, 1u);
  EXPECT_EQ(s.executed, 0u);  // rejected before ever touching the queue
  // Short statements still serve.
  EXPECT_EQ(static_cast<int>(server.Query("SELECT * FROM Store").status),
            static_cast<int>(ServeStatus::kOk));
}

TEST(QueryServer, SubmitExpiredDeadlineCountsSeparately) {
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  ServeResponse r = server.Query(
      "SELECT * FROM Orders, Store WHERE o_item = s_item", 1e-9);
  EXPECT_EQ(static_cast<int>(r.status),
            static_cast<int>(ServeStatus::kTimeout));
  ServerStats s = server.stats();
  // submit_expired is a subset of timeouts: the request counts under both.
  EXPECT_EQ(s.submit_expired, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.executed, 0u);
}

}  // namespace
}  // namespace fdb
