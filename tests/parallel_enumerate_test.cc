// Parallel chunked enumeration: the morsel planner must partition the
// stream exactly, and ParallelEnumerator's chunks — concatenated in chunk
// order — must reproduce the sequential TupleEnumerator stream tuple for
// tuple, for every thread count, morsel size, visibility mode and rep
// shape (including empty and nullary reps). Runs under ThreadSanitizer in
// CI alongside the serve suite.
#include <algorithm>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "api/engine.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/aggregate.h"
#include "core/enumerate.h"
#include "core/ground.h"
#include "core/ops.h"
#include "core/parallel_enumerate.h"
#include "test_util.h"

namespace fdb {
namespace {

using Tuples = std::vector<std::vector<Value>>;

std::vector<AttrId> StreamAttrs(const FRep& rep, bool visible_only) {
  AttrSet s;
  for (int n : rep.tree().AliveNodes()) {
    const FTreeNode& nd = rep.tree().node(n);
    s = s.Union(visible_only ? nd.visible : nd.attrs);
  }
  return s.ToVector();
}

Tuples Drain(TupleEnumerator& en, const std::vector<AttrId>& attrs) {
  Tuples out;
  while (en.Next()) {
    std::vector<Value> t(attrs.size());
    for (size_t c = 0; c < attrs.size(); ++c) t[c] = en.ValueOf(attrs[c]);
    out.push_back(std::move(t));
  }
  return out;
}

Tuples SequentialStream(const FRep& rep, bool visible_only) {
  TupleEnumerator en(rep, visible_only);
  return Drain(en, StreamAttrs(rep, visible_only));
}

// Runs a ParallelEnumerator and concatenates the per-chunk streams by
// chunk index; `chunks_out` (optional) receives the chunk count.
Tuples ParallelStream(const FRep& rep, bool visible_only,
                      const EnumerateOptions& opts,
                      size_t* chunks_out = nullptr) {
  std::vector<AttrId> attrs = StreamAttrs(rep, visible_only);
  ParallelEnumerator pe(rep, opts, visible_only);
  if (chunks_out != nullptr) *chunks_out = pe.num_chunks();
  std::vector<Tuples> parts(pe.num_chunks());
  pe.Enumerate([&](size_t c, TupleEnumerator& en) {
    parts[c] = Drain(en, attrs);
  });
  Tuples all;
  for (Tuples& p : parts) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

// The acceptance matrix of ISSUE 5: thread counts {1,2,3,8} x morsel
// sizes {1, huge} x visible_only {off, on}, parallel output must equal
// the sequential stream tuple for tuple.
void CheckAllModes(const FRep& rep) {
  for (bool visible_only : {false, true}) {
    const Tuples expect = SequentialStream(rep, visible_only);
    for (int threads : {1, 2, 3, 8}) {
      for (double morsel : {1.0, 1e18}) {
        EnumerateOptions opts;
        opts.threads = threads;
        opts.parallel_cutoff = 0;  // plan even tiny reps
        opts.target_morsel_tuples = morsel;
        size_t chunks = 0;
        Tuples got = ParallelStream(rep, visible_only, opts, &chunks);
        EXPECT_EQ(got, expect)
            << "threads=" << threads << " morsel=" << morsel
            << " visible_only=" << visible_only << " chunks=" << chunks;
        if (threads > 1 && morsel == 1.0 && expect.size() > 1) {
          EXPECT_GT(chunks, 1u);  // tiny morsels must actually split
        }
      }
    }
  }
}

Relation RandomRelation(std::vector<AttrId> schema, size_t rows,
                        int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Relation r(std::move(schema));
  std::vector<Value> t(r.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (Value& v : t) v = rng.Uniform(1, domain);
    r.AddTuple(t);
  }
  return r;
}

TEST(ParallelEnumerate, PathTreeRandomised) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    FRep rep = GroundRelation(RandomRelation({0, 1, 2}, 200, 8, seed), 0);
    CheckAllModes(rep);
  }
}

TEST(ParallelEnumerate, HighFanoutStarJoin) {
  // S(a,b) |x| T(b,c) on a small b-domain: the root union is small and
  // every entry dominates, forcing the planner to pin entries and recurse
  // one level down.
  Database db;
  RelId s = db.CreateRelation("S", {"a", "b"});
  RelId t = db.CreateRelation("T", {"b2", "c"});
  Rng rng(99);
  Relation& rs = db.relation(s);
  Relation& rt = db.relation(t);
  for (int64_t i = 1; i <= 160; ++i) {
    rs.AddTuple({i, rng.Uniform(1, 4)});
    rt.AddTuple({rng.Uniform(1, 4), i});
  }
  Engine engine(&db);
  Query q;
  q.rels = {s, t};
  q.equalities = {{db.Attr("b"), db.Attr("b2")}};
  FdbResult res = engine.EvaluateFlat(q);
  ASSERT_FALSE(res.rep.empty());
  CheckAllModes(res.rep);
}

TEST(ParallelEnumerate, MultiRootProductForest) {
  // Two independent root trees: the first root's union carries only part
  // of the stream weight; morsels over it still cover the cross product.
  Relation r = RandomRelation({0, 1}, 40, 16, 7);
  Relation s = RandomRelation({2, 3}, 30, 16, 8);
  FRep rep = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  CheckAllModes(rep);
}

TEST(ParallelEnumerate, SingleEntryTopUnionRecursesOneLevelDown) {
  // A constant first column gives the top union exactly one entry, so the
  // top frame alone offers nothing to split; the planner must pin it and
  // recurse into the frames below (CheckAllModes asserts that tiny
  // morsels still produce more than one chunk).
  Rng rng(11);
  Relation r({0, 1, 2});
  for (int64_t i = 0; i < 120; ++i) {
    r.AddTuple({Value{7}, rng.Uniform(1, 30), rng.Uniform(1, 6)});
  }
  FRep rep = GroundRelation(r, 0);
  ASSERT_EQ(rep.u(rep.roots()[0]).size(), 1u);
  CheckAllModes(rep);
}

TEST(ParallelEnumerate, DeferredProjectionVisibleOnly) {
  // Invisible nodes (deferred projection) change the visible_only frame
  // set; bounds must be planned against the same frames the enumerator
  // walks.
  Relation r = RandomRelation({0, 1, 2}, 150, 6, 21);
  FRep rep = GroundRelation(r, 0);
  // Project away attribute 1 with deferral: keep the node, clear
  // visibility (mirrors the deferred-projection trees of frep_test).
  rep.tree().node(rep.tree().FindAttr(1)).visible = {};
  rep.Validate();
  CheckAllModes(rep);
}

TEST(ParallelEnumerate, EmptyRep) {
  FRep rep{PathFTree({0, 1}, 0)};
  EXPECT_TRUE(SequentialStream(rep, false).empty());
  for (int threads : {1, 2, 8}) {
    EnumerateOptions opts;
    opts.threads = threads;
    opts.parallel_cutoff = 0;
    size_t chunks = 99;
    EXPECT_TRUE(ParallelStream(rep, false, opts, &chunks).empty());
    EXPECT_EQ(chunks, 0u);
  }
}

TEST(ParallelEnumerate, NullaryRep) {
  FRep rep{FTree{}};
  rep.MarkNonEmpty();
  for (bool visible_only : {false, true}) {
    for (int threads : {1, 3, 8}) {
      EnumerateOptions opts;
      opts.threads = threads;
      opts.parallel_cutoff = 0;
      opts.target_morsel_tuples = 1.0;
      size_t chunks = 0;
      Tuples got = ParallelStream(rep, visible_only, opts, &chunks);
      EXPECT_EQ(got.size(), 1u);  // the single empty tuple
      EXPECT_EQ(chunks, 1u);      // nothing to split over
    }
  }
}

TEST(ParallelEnumerate, FullyInvisibleRepVisibleOnly) {
  // All attributes deferred-projected away: one empty visible tuple, for
  // every thread count.
  Relation r = RandomRelation({0, 1}, 20, 5, 33);
  FRep rep = GroundRelation(r, 0);
  for (int n : rep.tree().AliveNodes()) rep.tree().node(n).visible = {};
  EnumerateOptions opts;
  opts.threads = 8;
  opts.parallel_cutoff = 0;
  EXPECT_EQ(ParallelStream(rep, true, opts).size(), 1u);
}

TEST(ParallelEnumerate, BoundsContract) {
  FRep rep = GroundRelation(RandomRelation({0, 1}, 10, 4, 5), 0);
  // Non-pinned prefix bound is rejected.
  EXPECT_THROW((TupleEnumerator(rep, false, {{0, 2}, {0, 1}})), FdbError);
  // Empty range is rejected.
  EXPECT_THROW((TupleEnumerator(rep, false, {{1, 1}})), FdbError);
  // More bounds than frames is rejected.
  EXPECT_THROW((TupleEnumerator(rep, false, {{0, 1}, {0, 1}, {0, 1}})),
               FdbError);
  // A bound past the union's entries yields the empty stream.
  TupleEnumerator miss(rep, false, {{1000, 1001}});
  EXPECT_FALSE(miss.Next());
}

TEST(ParallelEnumerate, MaterializeVisibleParallelMatchesSequential) {
  Relation r = RandomRelation({0, 1, 2}, 300, 10, 77);
  FRep rep = GroundRelation(r, 0);
  rep.tree().node(rep.tree().FindAttr(2)).visible = {};  // deferred proj
  Relation seq = MaterializeVisible(rep);
  for (int threads : {2, 8}) {
    EnumerateOptions opts;
    opts.threads = threads;
    opts.parallel_cutoff = 0;
    opts.target_morsel_tuples = 16;
    EXPECT_TRUE(MaterializeVisible(rep, opts) == seq) << threads;
  }
}

TEST(ParallelEnumerate, GroupedMaterializeParallelMatchesSequential) {
  // Random star instance, grouped by the join attribute: the parallel
  // grouped materialisation must produce the identical table (same rows,
  // same pre-sort order) as the sequential walk.
  Database db;
  RelId s = db.CreateRelation("S", {"a", "b"});
  RelId t = db.CreateRelation("T", {"b2", "c"});
  Rng rng(1234);
  for (int64_t i = 1; i <= 200; ++i) {
    db.relation(s).AddTuple({i, rng.Uniform(1, 12)});
    db.relation(t).AddTuple({rng.Uniform(1, 12), i});
  }
  Engine engine(&db);
  Query q;
  q.rels = {s, t};
  q.equalities = {{db.Attr("b"), db.Attr("b2")}};
  FdbResult res = engine.EvaluateFlat(q);
  ASSERT_FALSE(res.rep.empty());
  GroupedRep grouped = GroupByAggregate(
      res.rep, AttrSet::Of({db.Attr("b")}),
      {{AggFn::kCount, 0}, {AggFn::kSum, db.Attr("c")},
       {AggFn::kMin, db.Attr("a")}});
  GroupedTable seq = grouped.Materialize();
  for (int threads : {2, 3, 8}) {
    for (double morsel : {1.0, 64.0}) {
      EnumerateOptions opts;
      opts.threads = threads;
      opts.parallel_cutoff = 0;
      opts.target_morsel_tuples = morsel;
      EXPECT_TRUE(grouped.Materialize(opts) == seq)
          << "threads=" << threads << " morsel=" << morsel;
    }
  }
}

TEST(ParallelEnumerate, EngineMaterializeResult) {
  auto db = testing_util::MakeGroceryDb();
  Engine engine(db.get());
  FdbResult res = engine.Execute(
      "SELECT * FROM Orders, Store WHERE o_item = s_item");
  EXPECT_TRUE(engine.MaterializeResult(res) == MaterializeVisible(res.rep));
}

TEST(ParallelEnumerate, PlanMorselsIsOrderedAndSized) {
  // Direct planner checks: morsels come out in lexicographic odometer
  // order (prefix-pinned chains, ranges ascending) and their estimates
  // sum to the stream total.
  FRep rep = GroundRelation(RandomRelation({0, 1}, 120, 9, 3), 0);
  MorselPlan plan = PlanMorsels(rep, /*visible_only=*/false,
                                /*target_tuples=*/8);
  ASSERT_GT(plan.morsels.size(), 1u);
  EXPECT_EQ(plan.est_total, rep.CountTuples());
  double est_sum = 0;
  for (size_t m = 0; m < plan.morsels.size(); ++m) {
    const std::vector<EntryBound>& b = plan.morsels[m].bounds;
    ASSERT_FALSE(b.empty());
    for (size_t i = 0; i + 1 < b.size(); ++i) {
      EXPECT_EQ(b[i].begin + 1, b[i].end);  // pinned chain above the range
    }
    if (m > 0) {
      // Lexicographic: the first diverging bound must increase.
      const std::vector<EntryBound>& prev = plan.morsels[m - 1].bounds;
      size_t i = 0;
      while (i < prev.size() && i < b.size() &&
             prev[i].begin == b[i].begin) {
        ++i;
      }
      ASSERT_TRUE(i < prev.size() && i < b.size());
      EXPECT_GE(b[i].begin, prev[i].end);
    }
    est_sum += plan.morsels[m].est_tuples;
  }
  EXPECT_NEAR(est_sum, plan.est_total, 1e-6 * plan.est_total);
}

TEST(ParallelEnumerate, PlanCoversStreamExactly) {
  // Morsel estimates must add up to the plan total, and the per-chunk
  // streams must be non-overlapping contiguous slices (already implied by
  // the equality checks; here: chunk sizes sum to the stream length).
  FRep rep = GroundRelation(RandomRelation({0, 1, 2}, 400, 12, 55), 0);
  EnumerateOptions opts;
  opts.threads = 4;
  opts.parallel_cutoff = 0;
  opts.target_morsel_tuples = 32;
  ParallelEnumerator pe(rep, opts, false);
  ASSERT_GT(pe.num_chunks(), 1u);
  double est_sum = 0;
  for (const Morsel& m : pe.plan().morsels) est_sum += m.est_tuples;
  EXPECT_NEAR(est_sum, pe.plan().est_total, 1e-6 * pe.plan().est_total);
  EXPECT_EQ(pe.plan().est_total, rep.CountTuples());
  size_t streamed = 0;
  pe.Enumerate([&](size_t, TupleEnumerator& en) {
    size_t local = 0;
    while (en.Next()) ++local;
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    streamed += local;
  });
  EXPECT_EQ(static_cast<double>(streamed), rep.CountTuples());
}

}  // namespace
}  // namespace fdb
