#include <gtest/gtest.h>

#include "rdb/join_plan.h"
#include "rdb/rdb.h"
#include "test_util.h"

namespace fdb {
namespace {

struct Fixture {
  Catalog cat;
  std::vector<Relation> rels;

  RelId Add(const std::string& name, std::vector<std::string> attr_names,
            std::vector<std::vector<Value>> rows) {
    std::vector<AttrId> attrs;
    for (auto& n : attr_names) {
      int id = cat.FindAttribute(n);
      attrs.push_back(id >= 0 ? static_cast<AttrId>(id) : cat.AddAttribute(n));
    }
    RelId rid = cat.AddRelation(name, attrs);
    Relation r(attrs);
    for (auto& row : rows) r.AddTuple(row);
    rels.push_back(std::move(r));
    return rid;
  }

  std::vector<const Relation*> Ptrs(const std::vector<RelId>& ids) const {
    std::vector<const Relation*> out;
    for (RelId i : ids) out.push_back(&rels[i]);
    return out;
  }
};

TEST(Rdb, SimpleEquiJoin) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 5}, {2, 6}});
  RelId s = f.Add("S", {"c", "d"}, {{5, 9}, {5, 8}, {7, 7}});
  Query q;
  q.rels = {r, s};
  q.equalities = {{static_cast<AttrId>(f.cat.FindAttribute("b")),
                   static_cast<AttrId>(f.cat.FindAttribute("c"))}};
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_FALSE(res.timed_out);
  EXPECT_EQ(res.NumTuples(), 2u);  // (1,5) joins both S rows with c=5
  EXPECT_EQ(res.relation.arity(), 4u);
}

TEST(Rdb, CrossProductWhenDisconnected) {
  Fixture f;
  RelId r = f.Add("R", {"a"}, {{1}, {2}});
  RelId s = f.Add("S", {"b"}, {{7}, {8}, {9}});
  Query q;
  q.rels = {r, s};
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_EQ(res.NumTuples(), 6u);
}

TEST(Rdb, ConstPredsPushedDown) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 5}, {2, 6}, {3, 7}});
  Query q;
  q.rels = {r};
  q.const_preds = {{static_cast<AttrId>(f.cat.FindAttribute("a")),
                    CmpOp::kGe, 2}};
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_EQ(res.NumTuples(), 2u);
}

TEST(Rdb, IntraRelationEquality) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 1}, {1, 2}, {3, 3}});
  Query q;
  q.rels = {r};
  q.equalities = {{static_cast<AttrId>(f.cat.FindAttribute("a")),
                   static_cast<AttrId>(f.cat.FindAttribute("b"))}};
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_EQ(res.NumTuples(), 2u);
}

TEST(Rdb, ProjectionDeduplicates) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 5}, {1, 6}, {2, 6}});
  Query q;
  q.rels = {r};
  q.projection = AttrSet::Of({static_cast<AttrId>(f.cat.FindAttribute("a"))});
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_EQ(res.NumTuples(), 2u);
  EXPECT_EQ(res.relation.arity(), 1u);
}

TEST(Rdb, RowLimitTriggersTimeoutFlag) {
  Fixture f;
  RelId r = f.Add("R", {"a"}, {{1}, {2}, {3}});
  RelId s = f.Add("S", {"b"}, {{1}, {2}, {3}});
  Query q;
  q.rels = {r, s};
  RdbOptions opts;
  opts.max_result_tuples = 4;
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q, opts);
  EXPECT_TRUE(res.timed_out);
}

TEST(Rdb, ThreeWayJoinTransitiveClass) {
  // R(a,b), S(c,d), T(e): one class {b,c,e} spanning all three.
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 5}, {2, 6}});
  RelId s = f.Add("S", {"c", "d"}, {{5, 50}, {6, 60}});
  RelId t = f.Add("T", {"e"}, {{5}});
  Query q;
  q.rels = {r, s, t};
  AttrId b = static_cast<AttrId>(f.cat.FindAttribute("b"));
  AttrId c = static_cast<AttrId>(f.cat.FindAttribute("c"));
  AttrId e = static_cast<AttrId>(f.cat.FindAttribute("e"));
  q.equalities = {{b, c}, {c, e}};
  RdbResult res = RdbEvaluate(f.cat, f.Ptrs(q.rels), q);
  EXPECT_EQ(res.NumTuples(), 1u);
  // All three attributes agree in the surviving tuple.
  size_t cb = res.relation.ColumnOf(b), cc = res.relation.ColumnOf(c),
         ce = res.relation.ColumnOf(e);
  EXPECT_EQ(res.relation.At(0, cb), 5);
  EXPECT_EQ(res.relation.At(0, cc), 5);
  EXPECT_EQ(res.relation.At(0, ce), 5);
}

TEST(JoinPlan, PrefersConnectedOrder) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 1}});
  RelId s = f.Add("S", {"c"}, {{1}});                    // disconnected
  RelId t = f.Add("T", {"d", "e"}, {{1, 1}, {2, 2}});    // joins with R
  Query q;
  q.rels = {r, s, t};
  q.equalities = {{static_cast<AttrId>(f.cat.FindAttribute("b")),
                   static_cast<AttrId>(f.cat.FindAttribute("d"))}};
  QueryInfo info = AnalyzeQuery(f.cat, q);
  auto order = PlanJoinOrder(info, f.Ptrs(q.rels));
  // Seed is R or S (both size 1); T must come before or right after its
  // join partner R, never last... specifically: S (disconnected) is joined
  // last.
  EXPECT_EQ(order.back(), 1u);
}

TEST(JoinPlan, JoinKeysOnePerClass) {
  Fixture f;
  RelId r = f.Add("R", {"a", "b"}, {{1, 1}});
  RelId s = f.Add("S", {"c", "d"}, {{1, 1}});
  Query q;
  q.rels = {r, s};
  AttrId a = 0, b = 1, c = 2, d = 3;
  q.equalities = {{a, c}, {b, d}};
  QueryInfo info = AnalyzeQuery(f.cat, q);
  auto keys = JoinKeys(info, info.rel_attrs[0], f.rels[s]);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Rdb, GroceryQ1HasExpectedTuples) {
  auto db = testing_util::MakeGroceryDb();
  Query q1 = testing_util::GroceryQ1(*db);
  RdbResult res = RdbEvaluate(db->catalog(), db->RelationPtrs(q1.rels), q1);
  // Hand count (Example 1): items joined with stores and dispatchers.
  // Milk: oid 1; locations Istanbul{Adnan,Yasemin}, Izmir{Adnan},
  //   Antalya{Volkan} -> 4 combos.
  // Cheese: oids {1,3}; Istanbul{Adnan,Yasemin}, Antalya{Volkan} -> 2*3=6.
  // Melon: oids {2,3}; Istanbul{Adnan,Yasemin} -> 2*2=4.
  EXPECT_EQ(res.NumTuples(), 14u);
}

}  // namespace
}  // namespace fdb
