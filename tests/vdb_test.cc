#include <gtest/gtest.h>

#include "rdb/rdb.h"
#include "storage/generator.h"
#include "vdb/vdb.h"

namespace fdb {
namespace {

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(VdbIterator, ScanYieldsAllRows) {
  Relation r = MakeRel({0, 1}, {{1, 2}, {3, 4}});
  vdb::ScanIterator scan(&r);
  scan.Open();
  Tuple t;
  int n = 0;
  while (scan.Next(&t)) {
    EXPECT_EQ(t.size(), 2u);
    ++n;
  }
  EXPECT_EQ(n, 2);
  scan.Close();
}

TEST(VdbIterator, FilterDropsRows) {
  Relation r = MakeRel({0}, {{1}, {2}, {3}, {4}});
  auto scan = std::make_unique<vdb::ScanIterator>(&r);
  vdb::FilterIterator f(std::move(scan),
                        [](const Tuple& t) { return t[0] % 2 == 0; });
  f.Open();
  Tuple t;
  std::vector<Value> got;
  while (f.Next(&t)) got.push_back(t[0]);
  EXPECT_EQ(got, (std::vector<Value>{2, 4}));
}

TEST(VdbIterator, HashJoinMatchesKeys) {
  Relation l = MakeRel({0, 1}, {{1, 5}, {2, 6}, {3, 5}});
  Relation r = MakeRel({2, 3}, {{5, 50}, {5, 51}, {7, 70}});
  vdb::HashJoinIterator join(std::make_unique<vdb::ScanIterator>(&l),
                             std::make_unique<vdb::ScanIterator>(&r),
                             {{1, 0}});
  join.Open();
  Tuple t;
  int n = 0;
  while (join.Next(&t)) {
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t[1], t[2]);
    ++n;
  }
  EXPECT_EQ(n, 4);  // rows with b=5 join two S rows each
}

TEST(VdbIterator, HashJoinEmptyKeysIsProduct) {
  Relation l = MakeRel({0}, {{1}, {2}});
  Relation r = MakeRel({1}, {{5}, {6}, {7}});
  vdb::HashJoinIterator join(std::make_unique<vdb::ScanIterator>(&l),
                             std::make_unique<vdb::ScanIterator>(&r), {});
  join.Open();
  Tuple t;
  int n = 0;
  while (join.Next(&t)) ++n;
  EXPECT_EQ(n, 6);
}

TEST(VdbIterator, ProjectSelectsColumns) {
  Relation r = MakeRel({0, 1, 2}, {{1, 2, 3}});
  vdb::ProjectIterator proj(std::make_unique<vdb::ScanIterator>(&r), {2, 0});
  proj.Open();
  Tuple t;
  ASSERT_TRUE(proj.Next(&t));
  EXPECT_EQ(t, (Tuple{3, 1}));
}

TEST(Vdb, MatchesRdbOnRandomWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    WorkloadSpec spec;
    spec.num_rels = 3;
    spec.num_attrs = 7;
    spec.tuples_per_rel = 40;
    spec.domain = 6;
    spec.num_equalities = 2;
    spec.seed = seed;
    GeneratedWorkload w = GenerateWorkload(spec);
    std::vector<const Relation*> rels;
    for (const Relation& r : w.relations) rels.push_back(&r);

    RdbResult rdb = RdbEvaluate(w.catalog, rels, w.query);
    VdbResult vdb = VdbEvaluate(w.catalog, rels, w.query);
    ASSERT_FALSE(rdb.timed_out);
    ASSERT_FALSE(vdb.timed_out);
    // Same set of tuples (schemas may order columns differently).
    Relation a = rdb.relation;
    Relation b = vdb.relation;
    ASSERT_EQ(a.attr_set(), b.attr_set());
    std::vector<size_t> cols;
    for (AttrId attr : a.schema()) cols.push_back(b.ColumnOf(attr));
    Relation b2(a.schema());
    std::vector<Value> tuple(cols.size());
    for (size_t row = 0; row < b.size(); ++row) {
      for (size_t c = 0; c < cols.size(); ++c) tuple[c] = b.At(row, cols[c]);
      b2.AddTuple(tuple);
    }
    b2.SortLex();
    EXPECT_TRUE(a == b2) << "seed " << seed;
  }
}

TEST(Vdb, RowLimitStopsEarly) {
  Catalog cat;
  AttrId a = cat.AddAttribute("a");
  AttrId b = cat.AddAttribute("b");
  RelId r = cat.AddRelation("R", {a});
  RelId s = cat.AddRelation("S", {b});
  Relation rr({a}), ss({b});
  for (Value v = 0; v < 100; ++v) {
    rr.AddTuple({v});
    ss.AddTuple({v});
  }
  Query q;
  q.rels = {r, s};
  VdbOptions opts;
  opts.max_result_tuples = 10;
  VdbResult res = VdbEvaluate(cat, {&rr, &ss}, q, opts);
  EXPECT_TRUE(res.timed_out);
  EXPECT_EQ(res.relation.size(), 10u);
}

}  // namespace
}  // namespace fdb
