// Shared fixtures: the grocery retailer database of Fig. 1 and small
// helpers used across the test suite.
#ifndef FDB_TESTS_TEST_UTIL_H_
#define FDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/engine.h"
#include "core/enumerate.h"

namespace fdb {
namespace testing_util {

// The example database of Figure 1. Attribute names are global, so the
// shared column names of the paper (item, location, supplier) are prefixed
// per relation; queries equate them explicitly, exactly like the paper's
// equivalence classes {item, item'} etc.
//
//   Orders(oid, o_item)         Store(s_location, s_item)
//   Disp(dispatcher, d_location)
//   Produce(supplier, p_item)   Serve(sv_supplier, sv_location)
inline std::unique_ptr<Database> MakeGroceryDb() {
  auto db = std::make_unique<Database>();
  RelId orders = db->CreateRelation("Orders", {"oid", "o_item:str"});
  RelId store = db->CreateRelation("Store", {"s_location:str", "s_item:str"});
  RelId disp = db->CreateRelation("Disp", {"dispatcher:str", "d_location:str"});
  RelId produce = db->CreateRelation("Produce", {"supplier:str", "p_item:str"});
  RelId serve =
      db->CreateRelation("Serve", {"sv_supplier:str", "sv_location:str"});

  auto ins = [&db](RelId r, std::vector<Cell> row) { db->Insert(r, row); };
  ins(orders, {int64_t{1}, "Milk"});
  ins(orders, {int64_t{1}, "Cheese"});
  ins(orders, {int64_t{2}, "Melon"});
  ins(orders, {int64_t{3}, "Cheese"});
  ins(orders, {int64_t{3}, "Melon"});

  ins(store, {"Istanbul", "Milk"});
  ins(store, {"Istanbul", "Cheese"});
  ins(store, {"Istanbul", "Melon"});
  ins(store, {"Izmir", "Milk"});
  ins(store, {"Antalya", "Milk"});
  ins(store, {"Antalya", "Cheese"});

  ins(disp, {"Adnan", "Istanbul"});
  ins(disp, {"Adnan", "Izmir"});
  ins(disp, {"Yasemin", "Istanbul"});
  ins(disp, {"Volkan", "Antalya"});

  ins(produce, {"Guney", "Milk"});
  ins(produce, {"Guney", "Cheese"});
  ins(produce, {"Dikici", "Milk"});
  ins(produce, {"Byzantium", "Melon"});

  ins(serve, {"Guney", "Antalya"});
  ins(serve, {"Dikici", "Istanbul"});
  ins(serve, {"Dikici", "Izmir"});
  ins(serve, {"Dikici", "Antalya"});
  ins(serve, {"Byzantium", "Istanbul"});
  return db;
}

// Q1 = Orders |x|_item Store |x|_location Disp (Example 1).
inline Query GroceryQ1(const Database& db) {
  Query q;
  q.rels = {static_cast<RelId>(db.catalog().FindRelation("Orders")),
            static_cast<RelId>(db.catalog().FindRelation("Store")),
            static_cast<RelId>(db.catalog().FindRelation("Disp"))};
  q.equalities = {{db.Attr("o_item"), db.Attr("s_item")},
                  {db.Attr("s_location"), db.Attr("d_location")}};
  return q;
}

// Q2 = Produce |x|_supplier Serve (Example 1).
inline Query GroceryQ2(const Database& db) {
  Query q;
  q.rels = {static_cast<RelId>(db.catalog().FindRelation("Produce")),
            static_cast<RelId>(db.catalog().FindRelation("Serve"))};
  q.equalities = {{db.Attr("supplier"), db.Attr("sv_supplier")}};
  return q;
}

// Materialises an f-representation and a flat relation into comparable
// sorted forms and checks equality of the represented relations. The
// schemas must cover the same attribute sets.
inline bool SameRelation(const FRep& rep, const Relation& flat) {
  Relation lhs = MaterializeVisible(rep);
  Relation rhs = flat;
  if (lhs.attr_set() != rhs.attr_set()) return false;
  // Reorder rhs columns to match lhs schema.
  std::vector<size_t> cols;
  for (AttrId a : lhs.schema()) cols.push_back(rhs.ColumnOf(a));
  Relation rhs2(lhs.schema());
  std::vector<Value> tuple(cols.size());
  for (size_t r = 0; r < rhs.size(); ++r) {
    for (size_t c = 0; c < cols.size(); ++c) tuple[c] = rhs.At(r, cols[c]);
    rhs2.AddTuple(tuple);
  }
  rhs2.SortLex();
  return lhs == rhs2;
}

}  // namespace testing_util
}  // namespace fdb

#endif  // FDB_TESTS_TEST_UTIL_H_
