// Fault-injection suite (common/fault.h): arms each FDB_FAULT_POINT site
// and drives QueryServer through the injected fault, asserting the
// governance contract the rest of the repo assumes —
//
//   * every injected fault surfaces as a graceful protocol outcome
//     (ERR / TIMEOUT / RESOURCE), never a crash or a poisoned server;
//   * a retry after disarming returns a byte-identical body to the
//     clean run (failing plans are never cached);
//   * the server's stats stay consistent across faults;
//   * teardown is clean (the whole suite runs under the ASan and TSan
//     presets in CI with FDB_FAULTS=ON).
//
// Without FDB_FAULTS the sites compile out; every test skips itself via
// fault::kEnabled so the suite builds and passes in all configurations.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "common/fault.h"
#include "core/ground.h"
#include "core/kernel.h"
#include "core/parallel_enumerate.h"
#include "serve/query_server.h"
#include "storage/relation.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing_util::MakeGroceryDb;

#define SKIP_WITHOUT_FAULTS()                                          \
  do {                                                                 \
    if (!fault::kEnabled) {                                            \
      GTEST_SKIP() << "built without FDB_FAULTS; sites compiled out."; \
    }                                                                  \
  } while (0)

const char kSpj[] = "SELECT * FROM Orders, Store WHERE o_item = s_item";
const char kAgg[] =
    "SELECT s_location, COUNT(*) FROM Orders, Store "
    "WHERE o_item = s_item GROUP BY s_location";

ServeOptions Workers(int n) {
  ServeOptions o;
  o.num_workers = n;
  return o;
}

// Every fault site reachable from a cold serve evaluation of kSpj.
const std::vector<std::string>& ServeReachableSites() {
  static const std::vector<std::string> sites = {
      "serve_execute_group",
      "ground_prepare_relation",
      "ground_build_union",
      "frep_arena_commit",
      "serve_render",
  };
  return sites;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(FaultInjectionTest, RegistryCountsHitsAndDisarms) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  const uint64_t before = fault::HitCount("frep_arena_commit");
  ASSERT_EQ(server.Query(kSpj).status, ServeStatus::kOk);
  EXPECT_GT(fault::HitCount("frep_arena_commit"), before)
      << "evaluating a join must commit unions through the fault site";
}

// bad_alloc injected at each engine/serve boundary surfaces as RESOURCE
// (TranslateBadAlloc in the worker), and a disarmed retry is byte-identical
// to the clean run.
TEST_F(FaultInjectionTest, BadAllocSurfacesAsResourceAndRetryIsClean) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  for (const std::string& site : ServeReachableSites()) {
    QueryServer server(db.get(), Workers(1));
    const std::string clean = server.Query(kSpj).body;
    ASSERT_FALSE(clean.empty());

    fault::Arm(site, {fault::Kind::kBadAlloc, 0, 1, 0.0});
    ServeResponse faulted = server.Query(kSpj);
    EXPECT_EQ(faulted.status, ServeStatus::kResource)
        << "site " << site << " answered: " << faulted.body;
    EXPECT_NE(faulted.body.find("out of memory"), std::string::npos);

    fault::DisarmAll();
    ServeResponse retry = server.Query(kSpj);
    EXPECT_EQ(retry.status, ServeStatus::kOk) << "site " << site;
    EXPECT_EQ(retry.body, clean)
        << "retry after fault at " << site << " must be byte-identical";

    ServerStats s = server.stats();
    EXPECT_EQ(s.resource_rejected, 1u) << "site " << site;
    EXPECT_EQ(s.cancelled, 1u) << "site " << site;
    EXPECT_LE(s.received,
              s.executed + s.coalesced + s.rejected + s.timeouts +
                  s.resource_rejected)
        << "site " << site;
  }
}

// The aggregate path commits unions through the same arena site.
TEST_F(FaultInjectionTest, BadAllocOnAggregatePathIsGraceful) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  ServeResponse clean = server.Query(kAgg);
  ASSERT_EQ(clean.status, ServeStatus::kOk) << clean.body;
  fault::Arm("frep_arena_commit", {fault::Kind::kBadAlloc, 0, 1, 0.0});
  ServeResponse faulted = server.Query(kAgg);
  EXPECT_EQ(faulted.status, ServeStatus::kResource) << faulted.body;
  fault::DisarmAll();
  EXPECT_EQ(server.Query(kAgg).body, clean.body);
}

// Latency injected ahead of the evaluation plus a short deadline: the
// worker sleeps through the deadline, and the next cooperative probe
// unwinds to TIMEOUT. The worker survives and serves the retry.
TEST_F(FaultInjectionTest, LatencyPlusDeadlineTimesOutGracefully) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  fault::Arm("serve_execute_group", {fault::Kind::kLatency, 0, 1, 0.25});
  ServeResponse r = server.Query(kSpj, /*deadline_seconds=*/0.05);
  EXPECT_EQ(r.status, ServeStatus::kTimeout) << r.body;
  fault::DisarmAll();
  EXPECT_EQ(server.Query(kSpj).status, ServeStatus::kOk);
  EXPECT_GE(server.stats().timeouts, 1u);
}

// Cancellation injected mid-evaluation: the ambient context flips, the
// site's own probe unwinds as FdbCancelled, and the server answers ERR.
TEST_F(FaultInjectionTest, CancelMidEvaluationAnswersErr) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(1));
  fault::Arm("ground_build_union", {fault::Kind::kCancel, 0, 1, 0.0});
  ServeResponse r = server.Query(kSpj);
  EXPECT_EQ(r.status, ServeStatus::kError);
  EXPECT_NE(r.body.find("cancelled"), std::string::npos) << r.body;
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.Query(kSpj).status, ServeStatus::kOk);
}

// The enumeration sites are not on the serve render path (it renders the
// factorised expression); drive them directly through materialisation.
TEST_F(FaultInjectionTest, EnumerationSitesUnwindCleanly) {
  SKIP_WITHOUT_FAULTS();
  Relation rel({0, 1});
  for (Value a = 0; a < 64; ++a) {
    for (Value b = 0; b < 8; ++b) rel.AddTuple({a, a * 8 + b});
  }
  FRep rep = GroundRelation(rel, 0);
  EnumKernel kernel = EnumKernel::Compile(rep.tree(), /*visible_only=*/true);
  EnumerateOptions opts;
  opts.threads = 2;
  opts.parallel_cutoff = 1;  // force morsel dispatch through the pool
  const Relation clean = MaterializeVisible(rep, opts, &kernel, nullptr);

  for (const char* site : {"enumerate_morsel", "kernel_run"}) {
    fault::Arm(site, {fault::Kind::kBadAlloc, 0, 1, 0.0});
    EXPECT_THROW(MaterializeVisible(rep, opts, &kernel, nullptr),
                 std::bad_alloc)
        << site;
    fault::DisarmAll();
    Relation retry = MaterializeVisible(rep, opts, &kernel, nullptr);
    EXPECT_EQ(retry.size(), clean.size()) << site;
    EXPECT_TRUE(testing_util::SameRelation(rep, retry)) << site;
  }
}

// Repeated faults do not poison the server: alternate faulted and clean
// queries and check the stats identity at quiescence.
TEST_F(FaultInjectionTest, StatsStayConsistentAcrossRepeatedFaults) {
  SKIP_WITHOUT_FAULTS();
  auto db = MakeGroceryDb();
  QueryServer server(db.get(), Workers(2));
  for (int round = 0; round < 4; ++round) {
    fault::Arm("ground_build_union", {fault::Kind::kBadAlloc, 0, 1, 0.0});
    EXPECT_EQ(server.Query(kSpj).status, ServeStatus::kResource);
    fault::DisarmAll();
    EXPECT_EQ(server.Query(kSpj).status, ServeStatus::kOk);
  }
  ServerStats s = server.stats();
  EXPECT_EQ(s.received, 8u);
  EXPECT_EQ(s.executed + s.coalesced + s.rejected, s.received);
  EXPECT_EQ(s.resource_rejected, 4u);
  EXPECT_EQ(s.cancelled, 4u);
}

}  // namespace
}  // namespace fdb
