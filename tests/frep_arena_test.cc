// Tests for the columnar arena storage behind FRep: UnionBuilder staging,
// UnionRef view stability across arena growth, empty-union handling, memory
// accounting, and serialisation round-trips through the arena.
#include <gtest/gtest.h>

#include <sstream>

#include "core/enumerate.h"
#include "core/frep.h"
#include "core/ground.h"
#include "core/ops.h"
#include "core/serialize.h"
#include "test_util.h"

namespace fdb {
namespace {

Relation MakeRel(std::vector<AttrId> schema,
                 std::vector<std::vector<Value>> rows) {
  Relation r(std::move(schema));
  for (auto& row : rows) r.AddTuple(row);
  return r;
}

TEST(FRepArena, BuilderAppendOrder) {
  // A -> B over R = {(1,10),(1,20),(2,30)}: children first for one entry,
  // values in bulk for another — staging tolerates any interleaving, the
  // committed windows come out entry-aligned.
  FTree t = PathFTree({0, 1}, 0);
  FRep rep{t};

  UnionBuilder ua = rep.StartUnion(0);
  {
    UnionBuilder ub = rep.StartUnion(1);  // B-union of A=1, built nested
    ub.AddValue(10);
    ub.AddValue(20);
    ua.AddValue(1);
    ua.AddChild(ub.Finish());
  }
  {
    UnionBuilder ub = rep.StartUnion(1);  // B-union of A=2
    ub.AddValue(30);
    ua.AddChild(ub.Finish());  // child appended before the value this time
    ua.AddValue(2);
  }
  EXPECT_EQ(ua.size(), 2u);
  rep.roots().push_back(ua.Finish());
  rep.MarkNonEmpty();
  rep.Validate();

  UnionRef a = rep.u(rep.roots()[0]);
  EXPECT_EQ(a.node(), 0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.value(0), 1);
  EXPECT_EQ(a.value(1), 2);
  ASSERT_EQ(a.num_children(), 2u);
  UnionRef b1 = rep.u(a.Child(0, 0, 1));
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_EQ(b1.value(0), 10);
  EXPECT_EQ(b1.value(1), 20);
  UnionRef b2 = rep.u(a.Child(1, 0, 1));
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_EQ(b2.value(0), 30);
  EXPECT_EQ(rep.CountTuples(), 3.0);
}

TEST(FRepArena, ViewStableAcrossArenaGrowth) {
  // Take a view of the first committed union, then grow the arena far past
  // any initial capacity; the view must keep reading the same data because
  // it re-resolves offsets through the FRep.
  FTree t;
  int n = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep{t};

  UnionBuilder first = rep.StartUnion(n);
  first.AddValue(7);
  first.AddValue(9);
  UnionRef view = rep.u(first.Finish());
  const Value* raw_before = view.values();

  for (int i = 0; i < 10000; ++i) {
    UnionBuilder filler = rep.StartUnion(n);
    filler.AddValue(i);
    filler.Finish();  // unreachable stubs; they only grow the arena
  }
  // The raw pointer may have moved (reallocation); the view must not care.
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.value(0), 7);
  EXPECT_EQ(view.value(1), 9);
  EXPECT_EQ(view.values()[1], 9);
  (void)raw_before;
}

TEST(FRepArena, BuildersTolerateOutOfOrderFinish) {
  // Operators finish builders LIFO, but the API must not blow up (e.g. in a
  // noexcept destructor) when builders are finished FIFO or via containers.
  FTree t;
  int n = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                    RelSet::Of({0}));
  t.AttachRoot(n);
  FRep rep{t};

  UnionBuilder first = rep.StartUnion(n);
  UnionBuilder second = rep.StartUnion(n);
  first.AddValue(1);
  second.AddValue(2);
  uint32_t id1 = first.Finish();  // FIFO: first out before second
  uint32_t id2 = second.Finish();
  EXPECT_EQ(rep.u(id1).value(0), 1);
  EXPECT_EQ(rep.u(id2).value(0), 2);

  // And a third builder after the shuffle still stages correctly.
  UnionBuilder third = rep.StartUnion(n);
  third.AddValue(3);
  EXPECT_EQ(rep.u(third.Finish()).value(0), 3);
}

TEST(FRepArena, ValidateRejectsCommittedEmptyUnion) {
  FTree t = PathFTree({0}, 0);
  FRep rep{t};
  UnionBuilder b = rep.StartUnion(0);
  EXPECT_TRUE(b.empty());
  rep.roots().push_back(b.Finish());  // zero-length union as a root
  rep.MarkNonEmpty();
  EXPECT_THROW(rep.Validate(), FdbError);
}

TEST(FRepArena, AbandonLeavesUnreachableStub) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  size_t values_before = rep.NumValues();

  UnionBuilder b = rep.StartUnion(0);
  b.AddValue(99);
  b.Abandon();  // staged data is dropped, id stays as an empty stub

  rep.Validate();  // the stub is unreachable, so invariants still hold
  EXPECT_EQ(rep.NumValues(), values_before);
  EXPECT_EQ(rep.u(static_cast<uint32_t>(rep.NumUnions()) - 1).size(), 0u);
}

TEST(FRepArena, MemoryBytesTracksArena) {
  FRep empty{PathFTree({0, 1}, 0)};
  size_t empty_bytes = empty.MemoryBytes();

  Relation r({0, 1, 2});
  for (Value v = 0; v < 500; ++v) r.AddTuple({v, v % 7, v % 11});
  FRep rep = GroundRelation(r, 0);
  // At least the reachable values must be accounted for.
  EXPECT_GE(rep.MemoryBytes(), rep.NumValues() * sizeof(Value));
  EXPECT_GT(rep.MemoryBytes(), empty_bytes);
}

TEST(FRepArena, MarkEmptyReleasesArenaCapacity) {
  Relation r({0, 1});
  for (Value v = 0; v < 1000; ++v) r.AddTuple({v, v + 1});
  FRep rep = GroundRelation(r, 0);
  ASSERT_GT(rep.MemoryBytes(), 0u);

  rep.MarkEmpty();
  EXPECT_TRUE(rep.empty());
  EXPECT_EQ(rep.MemoryBytes(), 0u);  // shrink_to_fit semantics
  rep.Validate();
}

TEST(FRepArena, CopyDuplicatesArenas) {
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}});
  FRep rep = GroundRelation(r, 0);
  FRep copy = rep;  // three buffer memcpys, no per-union allocation
  copy.Validate();
  EXPECT_TRUE(testing_util::SameRelation(copy, r));
  // Emptying the copy must not disturb the original.
  copy.MarkEmpty();
  rep.Validate();
  EXPECT_EQ(rep.CountTuples(), 3.0);
}

TEST(FRepArena, SerializeRoundTripEquality) {
  // Push the rep through an operator first so the arena contains unreachable
  // dropped-entry stubs; the writer compacts ids and the reader rebuilds a
  // dense arena that represents the same relation.
  Relation r = MakeRel({0, 1}, {{1, 1}, {1, 2}, {2, 2}, {5, 9}});
  FRep rep = SelectConst(GroundRelation(r, 0), 1, CmpOp::kLe, 5);

  std::stringstream ss;
  WriteFRep(ss, rep);
  FRep back = ReadFRep(ss);
  back.Validate();

  EXPECT_EQ(back.empty(), rep.empty());
  EXPECT_EQ(back.CountTuples(), rep.CountTuples());
  EXPECT_EQ(back.NumSingletons(), rep.NumSingletons());
  Relation expect = MaterializeVisible(rep);
  EXPECT_TRUE(testing_util::SameRelation(back, expect));
}

TEST(FRepArena, OperatorsKeepArenaValid) {
  // A small end-to-end sweep: ground, product, merge, swap, select, project
  // all construct through UnionBuilder; every intermediate must validate.
  Relation r = MakeRel({0, 1}, {{10, 1}, {20, 1}, {20, 2}});
  Relation s = MakeRel({2, 3}, {{10, 5}, {20, 5}, {30, 7}});
  FRep e1 = GroundRelation(r, 0);
  FRep e2 = GroundRelation(s, 1);
  FRep prod = Product(e1, e2);
  prod.Validate();
  FRep joined = Merge(prod, 0, 2);  // a = c (two root unions)
  joined.Validate();
  FRep swapped = Swap(joined, 0, 1);
  swapped.Validate();
  FRep sel = SelectConst(joined, 3, CmpOp::kEq, 5);
  sel.Validate();
  FRep proj = Project(joined, AttrSet::Of({0, 3}));
  proj.Validate();
  EXPECT_EQ(joined.CountTuples(), 3.0);
}

}  // namespace
}  // namespace fdb
