# Configure-time proof that clang Thread Safety Analysis is actually armed.
#
# Two try_compile probes against src/common/{thread_annotations,mutex}.h:
#   * tsa_probe_ok.cc      locks correctly            -> must compile
#   * tsa_probe_violation.cc reads GUARDED_BY unlocked -> must NOT compile
#
# If the violation probe compiles, the -Werror=thread-safety build would be
# green while checking nothing (wrong compiler, macro expansion broken,
# flags dropped); fail the configure instead of shipping a false green.

set(_tsa_flags "-std=c++20 -Wthread-safety -Werror=thread-safety")
set(_tsa_dir "${CMAKE_CURRENT_SOURCE_DIR}/cmake/tsa_probe")

try_compile(FDB_TSA_OK_COMPILES
            "${CMAKE_BINARY_DIR}/tsa_probe_ok"
            "${_tsa_dir}/tsa_probe_ok.cc"
            COMPILE_DEFINITIONS "${_tsa_flags}"
            CMAKE_FLAGS
              "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src")
if(NOT FDB_TSA_OK_COMPILES)
  message(FATAL_ERROR "Thread-safety probe: the correctly locked program "
          "failed to compile under -Werror=thread-safety — the annotated "
          "mutex wrappers are broken for this compiler.")
endif()

try_compile(FDB_TSA_VIOLATION_COMPILES
            "${CMAKE_BINARY_DIR}/tsa_probe_violation"
            "${_tsa_dir}/tsa_probe_violation.cc"
            COMPILE_DEFINITIONS "${_tsa_flags}"
            CMAKE_FLAGS
              "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src")
if(FDB_TSA_VIOLATION_COMPILES)
  message(FATAL_ERROR "Thread-safety probe: a GUARDED_BY violation "
          "compiled cleanly — Thread Safety Analysis is not armed "
          "(check compiler and flags); refusing a false-green build.")
endif()

message(STATUS "Thread Safety Analysis armed: GUARDED_BY violation probe "
        "correctly rejected")
