// Thread-safety probe (negative): reading a GUARDED_BY field without its
// mutex MUST fail to compile under -Werror=thread-safety — if this file
// builds, the analysis is not armed. See cmake/CheckThreadSafety.cmake.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    fdb::MutexLock lock(mu_);
    ++value_;
  }

  int value_unlocked() {
    return value_;  // GUARDED_BY violation: mu_ not held
  }

 private:
  fdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.value_unlocked();
}
