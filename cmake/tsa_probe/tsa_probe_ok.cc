// Thread-safety probe (positive): correctly locked access to a GUARDED_BY
// field must compile under -Werror=thread-safety. See
// cmake/CheckThreadSafety.cmake.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    fdb::MutexLock lock(mu_);
    ++value_;
  }

  int value() EXCLUDES(mu_) {
    fdb::MutexLock lock(mu_);
    return value_;
  }

 private:
  fdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.value() == 1 ? 0 : 1;
}
