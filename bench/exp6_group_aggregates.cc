// Experiment 6 (PVLDB'13 follow-up, "Aggregation and Ordering in
// Factorised Databases"): GROUP BY evaluated inside the factorisation vs
// the flat enumerate-then-hash baseline.
//
// Three workloads:
//   * the exp5 one-to-many chain (Customer <- Orders <- Lineitem), grouped
//     by the customer nation — restructuring swaps are needed, result
//     sizes stay linear in the input;
//   * a many-to-many star S(a,b) |x| T(b2,c) with a fixed b-domain, grouped
//     by the join attribute: the flat result grows with the fan-out
//     (N^2/domain data elements) while the factorised result and its
//     aggregation stay linear in N — the aggregation speedup grows with
//     the fan-out;
//   * the exp4 factorised-input instances (combinatorial sizes, K = 1..6).
//
// Both sides aggregate the same relation: FDB runs GroupByAggregate on the
// factorised join result; the baseline runs HashGroupBy over the flat join
// result (join cost reported separately for context).
//
// Knobs: FDB_BENCH_SCALE, FDB_BENCH_TIMEOUT (see bench_util/workload.h),
// FDB_EXP6_CAP (flat-result row cap, default 5e6; capped runs report t/o).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"
#include "core/aggregate.h"
#include "rdb/rdb.h"

namespace fdb {
namespace {

struct GroupBenchRow {
  uint64_t groups = 0;
  double fdb_join = 0, fdb_agg = 0, rdb_join = 0, flat_agg = 0;
  size_t fdb_singletons = 0, flat_elements = 0;
  bool flat_ok = true;
};

// Runs both sides on one instance; `group_by`/`specs` drive the grouping.
GroupBenchRow RunInstance(Engine& engine, const Query& q, AttrSet group_by,
                          const std::vector<AggSpec>& specs) {
  GroupBenchRow row;

  Timer tj;
  FdbResult base = engine.EvaluateFlat(q);
  row.fdb_join = tj.Seconds();
  row.fdb_singletons = base.NumSingletons();

  Timer ta;
  GroupedRep grouped =
      GroupByAggregate(base.rep, group_by, specs, &engine.solver());
  GroupedTable fact = grouped.Materialize();
  row.fdb_agg = ta.Seconds();
  row.groups = fact.num_rows;

  RdbOptions opts;
  opts.timeout_seconds = BenchTimeout();
  const char* cap = std::getenv("FDB_EXP6_CAP");
  opts.max_result_tuples =
      cap != nullptr && std::atoll(cap) > 0
          ? static_cast<size_t>(std::atoll(cap))
          : 5'000'000;
  opts.deduplicate = false;  // the full-attribute join result is a set
  Timer tr;
  RdbResult flat = engine.ExecuteRdb(q, opts);
  row.rdb_join = tr.Seconds();
  row.flat_elements = flat.NumDataElements();
  row.flat_ok = !flat.timed_out;
  if (row.flat_ok) {
    Timer th;
    GroupedTable ref = HashGroupBy(flat.relation, group_by, specs);
    row.flat_agg = th.Seconds();
    fact.SortByKey();
    if (!(fact == ref)) {
      std::cout << "!! factorised/flat GROUP BY mismatch\n";
    }
  }
  return row;
}

void AddRow(Table& table, const std::string& label, const GroupBenchRow& r) {
  table.AddRow({label, FmtInt(r.groups), FmtSci(static_cast<double>(r.flat_elements)),
                FmtSci(static_cast<double>(r.fdb_singletons)),
                FmtSecs(r.fdb_join), FmtSecs(r.fdb_agg),
                r.flat_ok ? FmtSecs(r.rdb_join) : "t/o",
                r.flat_ok ? FmtSecs(r.flat_agg) : "t/o",
                r.flat_ok ? FmtDouble(r.flat_agg / r.fdb_agg, 2) : "-"});
}

std::vector<std::string> Headers(const std::string& x) {
  return {x,          "groups",   "flat size", "FDB size", "FDB join",
          "FDB agg",  "RDB join", "flat agg",  "agg speedup"};
}

BenchInstance MakeChain(size_t lineitems, uint64_t seed) {
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);
  RelId c = inst.db->CreateRelation("Customer", {"ck", "cnation"});
  RelId o = inst.db->CreateRelation("Orders", {"ok", "o_ck", "opri"});
  RelId l = inst.db->CreateRelation("Lineitem", {"lk", "l_ok", "qty"});
  const size_t customers = lineitems / 10 + 1, orders = lineitems / 4 + 1;
  Relation& rc = inst.db->relation(c);
  for (size_t i = 1; i <= customers; ++i) {
    rc.AddTuple({static_cast<Value>(i), rng.Uniform(1, 25)});
  }
  Relation& ro = inst.db->relation(o);
  for (size_t i = 1; i <= orders; ++i) {
    ro.AddTuple({static_cast<Value>(i),
                 rng.Uniform(1, static_cast<int64_t>(customers)),
                 rng.Uniform(1, 5)});
  }
  Relation& rl = inst.db->relation(l);
  for (size_t i = 1; i <= lineitems; ++i) {
    rl.AddTuple({static_cast<Value>(i),
                 rng.Uniform(1, static_cast<int64_t>(orders)),
                 rng.Uniform(1, 50)});
  }
  inst.query.rels = {c, o, l};
  inst.query.equalities = {{inst.db->Attr("ck"), inst.db->Attr("o_ck")},
                           {inst.db->Attr("ok"), inst.db->Attr("l_ok")}};
  return inst;
}

BenchInstance MakeStar(size_t n, int64_t b_domain, uint64_t seed) {
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);
  RelId s = inst.db->CreateRelation("S", {"sa", "sb"});
  RelId t = inst.db->CreateRelation("T", {"tb", "tc"});
  Relation& rs = inst.db->relation(s);
  for (size_t i = 1; i <= n; ++i) {
    rs.AddTuple({static_cast<Value>(i), rng.Uniform(1, b_domain)});
  }
  Relation& rt = inst.db->relation(t);
  for (size_t i = 1; i <= n; ++i) {
    rt.AddTuple({rng.Uniform(1, b_domain), static_cast<Value>(i)});
  }
  inst.query.rels = {s, t};
  inst.query.equalities = {{inst.db->Attr("sb"), inst.db->Attr("tb")}};
  return inst;
}

void Run(Report& report) {
  report.BeginSection(
      std::cout,
      "GROUP BY cnation, COUNT(*), SUM(qty) on the one-to-many chain "
      "(exp5 workload)");
  {
    Table table(Headers("N (lineitems)"));
    for (size_t n : {1000u, 10000u, 100000u}) {
      size_t scaled =
          static_cast<size_t>(static_cast<double>(n) * BenchScale());
      BenchInstance inst = MakeChain(scaled, 42 + n);
      Engine engine(inst.db.get());
      AttrSet by = AttrSet::Of({inst.db->Attr("cnation")});
      std::vector<AggSpec> specs = {{AggFn::kCount, 0},
                                    {AggFn::kSum, inst.db->Attr("qty")}};
      AddRow(table, FmtInt(scaled), RunInstance(engine, inst.query, by, specs));
    }
    report.Emit(std::cout, table);
  }

  report.BeginSection(
      std::cout,
      "GROUP BY the join attribute on a many-to-many star (fan-out = "
      "N/32 per side): flat aggregation scans N^2/32 rows, factorised "
      "stays linear");
  {
    Table table(Headers("N (per rel)"));
    for (size_t n : {1000u, 2000u, 4000u, 8000u}) {
      size_t scaled =
          static_cast<size_t>(static_cast<double>(n) * BenchScale());
      BenchInstance inst = MakeStar(scaled, 32, 900 + n);
      Engine engine(inst.db.get());
      AttrSet by = AttrSet::Of({inst.db->Attr("sb")});
      std::vector<AggSpec> specs = {{AggFn::kCount, 0},
                                    {AggFn::kSum, inst.db->Attr("tc")},
                                    {AggFn::kMin, inst.db->Attr("sa")}};
      AddRow(table, FmtInt(scaled), RunInstance(engine, inst.query, by, specs));
    }
    report.Emit(std::cout, table);
  }

  report.BeginSection(
      std::cout,
      "GROUP BY on the exp4 instances (R=4, A=10, combinatorial sizes), "
      "grouped by the first attribute");
  {
    Table table(Headers("K"));
    for (int k = 1; k <= 6; ++k) {
      BenchInstance inst = MakeHeterogeneousInstance(
          {2, 2, 3, 3}, {64, 64, 512, 512}, 20, Distribution::kUniform, 1.0,
          k, static_cast<uint64_t>(9000 + k));
      Engine engine(inst.db.get());
      QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);
      FdbResult probe = engine.EvaluateFlat(inst.query);
      if (probe.rep.empty()) continue;
      std::vector<AttrId> attrs = info.all_attrs.ToVector();
      AttrSet by = AttrSet::Of({attrs.front()});
      std::vector<AggSpec> specs = {{AggFn::kCount, 0},
                                    {AggFn::kSum, attrs.back()},
                                    {AggFn::kMax, attrs[attrs.size() / 2]}};
      AddRow(table, FmtInt(static_cast<uint64_t>(k)),
             RunInstance(engine, inst.query, by, specs));
    }
    report.Emit(std::cout, table);
  }

  std::cout << "\nPaper shape check (PVLDB'13): factorised GROUP BY runs in "
               "time linear in the representation size; on the star "
               "workload the aggregation speedup over the flat hash "
               "baseline grows with the fan-out, while on one-to-many "
               "chains the gap is a constant factor.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp6_group_aggregates", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
