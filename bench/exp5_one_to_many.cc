// Section 5 remark (unplotted in the paper): one-to-many relationships.
//
// "For one-to-many (e.g., key-foreign key) relationships, the performance
//  gap is smaller, since the result sizes for one-to-many joins can only
//  depend linearly on the input size [...] Factorised query results are
//  still more succinct than their relational representations, but only by
//  a factor that is approximately the number of relations in the query."
//
// We reproduce this with a TPC-H-like key/foreign-key chain
// Customer(ck) <- Orders(ok, ck') <- Lineitem(lk, ok', qty): every foreign
// key references an existing key, so each join is one-to-many and the
// result has exactly |Lineitem| tuples. The table reports the flat size,
// the factorised size, and their ratio, which should hover around the
// number of relations (the attribute count per tuple), not grow with N.
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"

namespace fdb {
namespace {

BenchInstance MakeKeyForeignKey(size_t customers, size_t orders,
                                size_t lineitems, uint64_t seed) {
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);

  RelId c = inst.db->CreateRelation("Customer", {"ck", "cnation"});
  RelId o = inst.db->CreateRelation("Orders", {"ok", "o_ck", "opri"});
  RelId l = inst.db->CreateRelation("Lineitem", {"lk", "l_ok", "qty"});

  Relation& rc = inst.db->relation(c);
  for (size_t i = 1; i <= customers; ++i) {
    rc.AddTuple({static_cast<Value>(i), rng.Uniform(1, 25)});
  }
  Relation& ro = inst.db->relation(o);
  for (size_t i = 1; i <= orders; ++i) {
    ro.AddTuple({static_cast<Value>(i),
                 rng.Uniform(1, static_cast<int64_t>(customers)),
                 rng.Uniform(1, 5)});
  }
  Relation& rl = inst.db->relation(l);
  for (size_t i = 1; i <= lineitems; ++i) {
    rl.AddTuple({static_cast<Value>(i),
                 rng.Uniform(1, static_cast<int64_t>(orders)),
                 rng.Uniform(1, 50)});
  }

  inst.query.rels = {c, o, l};
  inst.query.equalities = {{inst.db->Attr("ck"), inst.db->Attr("o_ck")},
                           {inst.db->Attr("ok"), inst.db->Attr("l_ok")}};
  return inst;
}

void Run(Report& report) {
  report.BeginSection(
      std::cout,
      "One-to-many (key/foreign-key) joins: Customer |x| Orders |x| "
      "Lineitem");
  Table table({"N (lineitems)", "flat tuples", "flat size", "FDB size",
               "FDB bytes", "ratio", "FDB time", "RDB time"});
  for (size_t n : {1000u, 10000u, 100000u}) {
    size_t scaled = static_cast<size_t>(static_cast<double>(n) * BenchScale());
    BenchInstance inst =
        MakeKeyForeignKey(scaled / 10 + 1, scaled / 4 + 1, scaled, 42 + n);
    Engine engine(inst.db.get());

    Timer tf;
    FdbResult fdb = engine.EvaluateFlat(inst.query);
    double fdb_time = tf.Seconds();

    RdbOptions opts;
    opts.timeout_seconds = BenchTimeout();
    opts.deduplicate = false;
    Timer tr;
    RdbResult rdb = engine.ExecuteRdb(inst.query, opts);
    double rdb_time = tr.Seconds();

    double flat_size = static_cast<double>(rdb.NumDataElements());
    double fact_size = static_cast<double>(fdb.NumSingletons());
    table.AddRow({FmtInt(scaled), FmtInt(rdb.NumTuples()),
                  FmtSci(flat_size), FmtSci(fact_size),
                  FmtInt(fdb.rep.MemoryBytes()),
                  FmtDouble(flat_size / fact_size, 2), FmtSecs(fdb_time),
                  FmtSecs(rdb_time)});
  }
  report.Emit(std::cout, table);
  std::cout << "\nPaper shape check: the flat/factorised size ratio stays a "
               "small constant (about the number of relations in the "
               "query), unlike the many-to-many workloads of Fig. 7 where "
               "the gap grows with N.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp5_one_to_many", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
