// Experiment 1 (Fig. 5): query optimisation on flat data.
//
// For schemas with A = 40 attributes over R = 1..8 relations and queries of
// K = 1..9 random non-redundant equalities, measure (left plot) the time to
// find an optimal f-tree for the query result by exhaustive search and
// (right plot) the cost s(T) of that optimal f-tree.
//
// Paper claims reproduced here: optimisation finishes in well under a
// second except at the largest K; the optimal cost is 1 for R <= 2 and
// almost always at most 2 even for 9 equalities over 8 relations.
//
// Environment knobs: FDB_EXP1_REPS (default 3), FDB_EXP1_MAXK (default 9).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"
#include "opt/ftree_search.h"

namespace fdb {
namespace {

int EnvInt(const char* name, int def) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atoi(s) > 0 ? std::atoi(s) : def;
}

void Run(Report& report) {
  const int kAttrs = 40;
  const int reps = EnvInt("FDB_EXP1_REPS", 3);
  const int max_k = EnvInt("FDB_EXP1_MAXK", 9);

  report.BeginSection(
      std::cout,
      "Figure 5: optimal f-tree search on flat data (A=40 attributes)");
  Table table({"R", "K", "opt time [s]", "cost s(T)", "explored"});

  for (int r = 1; r <= 8; ++r) {
    for (int k = 1; k <= max_k; ++k) {
      double total_time = 0.0, total_cost = 0.0;
      uint64_t total_explored = 0;
      for (int rep = 0; rep < reps; ++rep) {
        WorkloadSpec spec;
        spec.num_rels = r;
        spec.num_attrs = kAttrs;
        spec.tuples_per_rel = 1;  // data is irrelevant for optimisation
        spec.num_equalities = k;
        spec.seed = static_cast<uint64_t>(1000 * r + 10 * k + rep);
        BenchInstance inst = MakeBenchInstance(spec);
        QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);

        EdgeCoverSolver solver;
        Timer t;
        FTreeSearchResult res = FindOptimalFTree(info, solver);
        total_time += t.Seconds();
        total_cost += res.cost;
        total_explored += res.explored;
      }
      table.AddRow({FmtInt(static_cast<uint64_t>(r)),
                    FmtInt(static_cast<uint64_t>(k)),
                    FmtDouble(total_time / reps, 5),
                    FmtDouble(total_cost / reps, 3),
                    FmtInt(total_explored / static_cast<uint64_t>(reps))});
    }
  }
  report.Emit(std::cout, table);
  std::cout << "\nPaper shape check: cost is 1.0 for R<=2; typically <=2 "
               "elsewhere; time grows exponentially with K but stays "
               "sub-second for K<8.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp1_optimisation_flat", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
