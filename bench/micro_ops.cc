// Micro-benchmarks (ablations) for the operator kernels and substrates:
// grounding throughput, the swap operator's priority-queue regrouping,
// merge, normalisation, constant-delay enumeration, the edge-cover LP with
// and without the memo cache, and the two optimisers. These isolate the
// design choices DESIGN.md calls out (arena-backed unions, LP memoisation,
// bottleneck Dijkstra vs greedy).
#include <benchmark/benchmark.h>

#include "bench_util/workload.h"
#include "common/exec_context.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/enumerate.h"
#include "core/ground.h"
#include "core/kernel.h"
#include "core/ops.h"
#include "core/parallel_enumerate.h"
#include "lp/edge_cover.h"
#include "opt/fplan_search.h"
#include "opt/ftree_search.h"
#include "opt/greedy.h"

namespace fdb {
namespace {

Relation RandomRelation(std::vector<AttrId> schema, size_t rows,
                        int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Relation r(std::move(schema));
  std::vector<Value> t(r.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (Value& v : t) v = rng.Uniform(1, domain);
    r.AddTuple(t);
  }
  return r;
}

void BM_GroundRelation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation r = RandomRelation({0, 1, 2}, n, 100, 1);
  for (auto _ : state) {
    FRep rep = GroundRelation(r, 0);
    benchmark::DoNotOptimize(rep.NumValues());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  // Accounted outside the timed loop: the counter reports size, not speed.
  state.counters["rep_bytes"] =
      static_cast<double>(GroundRelation(r, 0).MemoryBytes());
}
BENCHMARK(BM_GroundRelation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Swap(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation r = RandomRelation({0, 1}, n, 1000, 2);
  FRep rep = GroundRelation(r, 0);
  for (auto _ : state) {
    FRep sw = Swap(rep, 0, 1);
    benchmark::DoNotOptimize(sw.NumValues());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rep.NumValues()));
  // Accounted outside the timed loop: the counter reports size, not speed.
  state.counters["rep_bytes"] =
      static_cast<double>(Swap(rep, 0, 1).MemoryBytes());
}
BENCHMARK(BM_Swap)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Merge(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation r = RandomRelation({0}, n, static_cast<int64_t>(n), 3);
  Relation s = RandomRelation({1, 2}, n, static_cast<int64_t>(n), 4);
  FRep prod = Product(GroundRelation(r, 0), GroundRelation(s, 1));
  for (auto _ : state) {
    FRep m = Merge(prod, 0, 1);
    benchmark::DoNotOptimize(m.empty());
  }
}
BENCHMARK(BM_Merge)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Normalize(benchmark::State& state) {
  // Product data nested as a chain: normalisation must hoist it apart.
  size_t n = static_cast<size_t>(state.range(0));
  Relation r = RandomRelation({0}, n, static_cast<int64_t>(4 * n), 5);
  Relation s = RandomRelation({1}, n, static_cast<int64_t>(4 * n), 6);
  FTree t;
  int n0 = t.NewNode(AttrSet::Of({0}), AttrSet::Of({0}), RelSet::Of({0}),
                     RelSet::Of({0}));
  int n1 = t.NewNode(AttrSet::Of({1}), AttrSet::Of({1}), RelSet::Of({1}),
                     RelSet::Of({1}));
  t.AttachRoot(n0);
  t.AttachChild(n0, n1);
  FRep rep = GroundQuery(t, {&r, &s});
  for (auto _ : state) {
    FRep norm = Normalize(rep);
    benchmark::DoNotOptimize(norm.NumValues());
  }
}
BENCHMARK(BM_Normalize)->Arg(100)->Arg(1000);

void BM_Enumerate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation r = RandomRelation({0, 1, 2}, n, 50, 7);
  FRep rep = GroundRelation(r, 0);
  for (auto _ : state) {
    TupleEnumerator en(rep);
    size_t count = 0;
    while (en.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Enumerate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EnumerateKernel(benchmark::State& state) {
  // Interpreted visible extraction (Arg 0) vs the compiled kernel (Arg 1)
  // over the same N=100k path rep as BM_Enumerate/100000, both assembling
  // the full flat row stream into a reused buffer — the ratio is the
  // kernel speedup the warm serve path sees per morsel.
  const bool use_kernel = state.range(0) != 0;
  const size_t n = 100000;
  Relation r = RandomRelation({0, 1, 2}, n, 50, 7);
  FRep rep = GroundRelation(r, 0);
  EnumKernel kernel = EnumKernel::Compile(rep.tree(), /*visible_only=*/true);
  const std::vector<AttrId>& schema = kernel.schema();
  std::vector<Value> buf;
  buf.reserve(n * schema.size());
  for (auto _ : state) {
    buf.clear();
    if (use_kernel) {
      benchmark::DoNotOptimize(kernel.Emit(rep, {}, &buf));
    } else {
      TupleEnumerator en(rep, /*visible_only=*/true);
      while (en.Next()) {
        for (AttrId a : schema) buf.push_back(en.ValueOf(a));
      }
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_EnumerateKernel)->Arg(0)->Arg(1);

void BM_ParallelEnumerate(benchmark::State& state) {
  // Same stream as BM_Enumerate (N=100k path rep), chunked through the
  // morsel planner onto state.range(0) threads. Arg(1) takes the
  // sequential fallback (no planning), so it measures the wrapper's
  // overhead against BM_Enumerate/100000; Arg(2+) includes the planner
  // DP and chunk bookkeeping.
  int threads = static_cast<int>(state.range(0));
  size_t n = 100000;
  Relation r = RandomRelation({0, 1, 2}, n, 50, 7);
  FRep rep = GroundRelation(r, 0);
  for (auto _ : state) {
    EnumerateOptions opts;
    opts.threads = threads;
    opts.parallel_cutoff = 0;
    ParallelEnumerator pe(rep, opts);
    std::vector<size_t> counts(pe.num_chunks(), 0);
    pe.Enumerate([&counts](size_t c, TupleEnumerator& en) {
      size_t local = 0;
      while (en.Next()) ++local;
      counts[c] = local;
    });
    size_t total = 0;
    for (size_t c : counts) total += c;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelEnumerate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TraceOverhead(benchmark::State& state) {
  // The warm serve path with tracing plumbed through but OFF (Arg 0,
  // trace == nullptr — what every non-EXPLAIN request pays) vs ON (Arg 1 —
  // what EXPLAIN ANALYZE pays). Spans are per-phase, never per-row, so
  // both must track the untraced baseline closely; the README documents
  // the Arg(0)-vs-kernel-materialize delta as the tracing-off overhead
  // (<2% required).
  const bool traced = state.range(0) != 0;
  const size_t n = 100000;
  Relation r = RandomRelation({0, 1, 2}, n, 50, 7);
  FRep rep = GroundRelation(r, 0);
  EnumKernel kernel = EnumKernel::Compile(rep.tree(), /*visible_only=*/true);
  EnumerateOptions opts;
  for (auto _ : state) {
    QueryTrace trace;
    QueryTrace* tp = traced ? &trace : nullptr;
    Relation out = MaterializeVisible(rep, opts, &kernel, tp);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

void BM_GovernanceOverhead(benchmark::State& state) {
  // The warm kernel enumeration path with no ambient ExecContext (Arg 0 —
  // every probe is one thread-local load finding nullptr) vs governed by a
  // context carrying a far deadline and a large memory budget (Arg 1 —
  // probes take the relaxed-load path, every 256th consults the clock).
  // The README documents the Arg(1)-vs-Arg(0) delta as the cooperative-
  // cancellation overhead (<2% required).
  const bool governed = state.range(0) != 0;
  const size_t n = 100000;
  Relation r = RandomRelation({0, 1, 2}, n, 50, 7);
  FRep rep = GroundRelation(r, 0);
  EnumKernel kernel = EnumKernel::Compile(rep.tree(), /*visible_only=*/true);
  EnumerateOptions opts;
  ExecContext ctx;
  ctx.SetDeadline(3600.0);
  ctx.budget().set_limit(size_t{1} << 40);
  for (auto _ : state) {
    ExecContext::Scope scope(governed ? &ctx : nullptr);
    Relation out = MaterializeVisible(rep, opts, &kernel, nullptr);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GovernanceOverhead)->Arg(0)->Arg(1);

void BM_MetricsOverhead(benchmark::State& state) {
  // Cost of one counter increment plus one histogram record — the serve
  // path's per-request metrics bill. Both are relaxed atomics; the number
  // here is nanoseconds, which is why the registry needs no sampling.
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("fdb_bench_ops_total");
  Histogram& h = reg.GetHistogram("fdb_bench_op_seconds");
  for (auto _ : state) {
    c.Increment();
    h.Record(1e-5);
  }
  benchmark::DoNotOptimize(c.Value());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsOverhead);

void BM_EdgeCoverColdCache(benchmark::State& state) {
  // Fresh solver per iteration: every path instance solved by simplex.
  std::vector<uint64_t> masks{0b0011, 0b0110, 0b1100, 0b1001, 0b0101};
  for (auto _ : state) {
    EdgeCoverSolver solver;
    benchmark::DoNotOptimize(solver.Solve(masks));
  }
}
BENCHMARK(BM_EdgeCoverColdCache);

void BM_EdgeCoverWarmCache(benchmark::State& state) {
  std::vector<uint64_t> masks{0b0011, 0b0110, 0b1100, 0b1001, 0b0101};
  EdgeCoverSolver solver;
  solver.Solve(masks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(masks));
  }
}
BENCHMARK(BM_EdgeCoverWarmCache);

void BM_FTreeSearch(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  WorkloadSpec spec;
  spec.num_rels = 6;
  spec.num_attrs = 24;
  spec.tuples_per_rel = 1;
  spec.num_equalities = k;
  spec.seed = 1234;
  BenchInstance inst = MakeBenchInstance(spec);
  QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);
  for (auto _ : state) {
    EdgeCoverSolver solver;
    benchmark::DoNotOptimize(FindOptimalFTree(info, solver).cost);
  }
}
BENCHMARK(BM_FTreeSearch)->Arg(2)->Arg(4)->Arg(6);

void BM_FPlanSearchVsGreedy(benchmark::State& state) {
  bool greedy = state.range(0) != 0;
  WorkloadSpec spec;
  spec.num_rels = 4;
  spec.num_attrs = 10;
  spec.tuples_per_rel = 1;
  spec.num_equalities = 3;
  spec.seed = 555;
  BenchInstance inst = MakeBenchInstance(spec);
  QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);
  EdgeCoverSolver solver;
  FTree base = FindOptimalFTree(info, solver).tree;
  Rng rng(99);
  auto extra = DrawExtraEqualities(info.classes, 3, rng);
  for (auto _ : state) {
    EdgeCoverSolver s2;
    if (greedy) {
      benchmark::DoNotOptimize(GreedyFPlan(base, extra, s2).plan.cost_max_s);
    } else {
      benchmark::DoNotOptimize(
          FindOptimalFPlan(base, extra, s2).plan.cost_max_s);
    }
  }
}
BENCHMARK(BM_FPlanSearchVsGreedy)
    ->Arg(0)   // full search
    ->Arg(1);  // greedy

}  // namespace
}  // namespace fdb
