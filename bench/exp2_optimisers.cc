// Experiment 2 (Fig. 6 and Fig. 9): query optimisation on factorised data.
//
// Input f-trees are optimal trees for queries of K equalities over R = 4
// relations with A = 10 attributes; the new queries are L further
// non-redundant equalities over the f-tree's classes, with K + L < A.
// For every (K, L) cell we report, averaged over repetitions:
//   * the f-plan cost s(f) and the result f-tree cost s(T) found by the
//     full-search optimiser and by the greedy heuristic (Fig. 6);
//   * both optimisers' running times (Fig. 9).
//
// Paper claims reproduced here: greedy is optimal or near-optimal in most
// cells (exceptions at small K, large L); plan costs stay between 1 and 2;
// greedy is 2-3 orders of magnitude faster than full search.
//
// Knobs: FDB_EXP2_REPS (default 3).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"
#include "opt/fplan_search.h"
#include "opt/ftree_search.h"
#include "opt/greedy.h"

namespace fdb {
namespace {

int EnvInt(const char* name, int def) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atoi(s) > 0 ? std::atoi(s) : def;
}

void Run(Report& report) {
  const int kRels = 4, kAttrs = 10;
  const int reps = EnvInt("FDB_EXP2_REPS", 3);

  report.BeginSection(
      std::cout,
      "Figures 6 and 9: full-search vs greedy f-plan optimisation "
      "(R=4, A=10)");
  Table table({"K", "L", "full s(f)", "full s(T)", "greedy s(f)",
               "greedy s(T)", "full time [s]", "greedy time [s]",
               "states"});

  for (int k = 1; k <= 8; ++k) {
    for (int l = 1; l <= 6 && k + l < kAttrs; ++l) {
      double f_cost = 0, f_final = 0, g_cost = 0, g_final = 0;
      double f_time = 0, g_time = 0;
      uint64_t states = 0;
      int done = 0;
      for (int rep = 0; rep < reps; ++rep) {
        WorkloadSpec spec;
        spec.num_rels = kRels;
        spec.num_attrs = kAttrs;
        spec.tuples_per_rel = 1;
        spec.num_equalities = k;
        spec.seed = static_cast<uint64_t>(100000 + 1000 * k + 10 * l + rep);
        BenchInstance inst = MakeBenchInstance(spec);
        QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);

        EdgeCoverSolver solver;
        FTreeSearchResult base = FindOptimalFTree(info, solver);

        Rng rng(spec.seed * 31 + 7);
        auto extra = DrawExtraEqualities(info.classes, l, rng);
        if (static_cast<int>(extra.size()) < l) continue;

        Timer tf;
        auto full = FindOptimalFPlan(base.tree, extra, solver);
        f_time += tf.Seconds();
        f_cost += full.plan.cost_max_s;
        f_final += full.plan.result_s;
        states += full.states_explored;

        Timer tg;
        auto greedy = GreedyFPlan(base.tree, extra, solver);
        g_time += tg.Seconds();
        g_cost += greedy.plan.cost_max_s;
        g_final += greedy.plan.result_s;
        ++done;
      }
      if (done == 0) continue;
      double d = done;
      table.AddRow({FmtInt(static_cast<uint64_t>(k)),
                    FmtInt(static_cast<uint64_t>(l)),
                    FmtDouble(f_cost / d, 3), FmtDouble(f_final / d, 3),
                    FmtDouble(g_cost / d, 3), FmtDouble(g_final / d, 3),
                    FmtDouble(f_time / d, 5), FmtDouble(g_time / d, 6),
                    FmtInt(states / static_cast<uint64_t>(done))});
    }
  }
  report.Emit(std::cout, table);
  std::cout << "\nPaper shape check: greedy s(f) >= full s(f), equal in most "
               "cells; costs lie in [1,2]; greedy runs orders of magnitude "
               "faster.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp2_optimisers", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
