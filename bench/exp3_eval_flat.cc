// Experiment 3 (Fig. 7): query evaluation on flat relational data.
//
// Three panels, as in the paper:
//  (a) 3 ternary relations of N = 1k..100k tuples, values uniform in
//      [1..100], K = 2..4 equalities — result sizes and evaluation times;
//  (b) the same with Zipf-distributed values;
//  (c) the combinatorial data set: two binary relations of 8^2 = 64 tuples
//      and two ternary relations of 8^3 = 512 tuples, values in [1..20],
//      K = 1..8, uniform and Zipf.
//
// Engines: FDB (optimal f-tree + grounding, factorised result), RDB
// (sort-merge baseline, flat result) and VDB (Volcano-style engine standing
// in for SQLite/PostgreSQL, see DESIGN.md §5). Baselines run under a
// timeout and a row cap; exceeded runs print "t/o" — the paper's plots have
// the same missing points at a 100 s timeout.
//
// Sizes are "# of data elements": singletons for FDB, tuples x arity for
// the flat engines.
//
// Knobs: FDB_BENCH_TIMEOUT (seconds, default 10), FDB_BENCH_FULL=1 extends
// panel a/b to N = 100000, FDB_EXP3_CAP (row cap, default 5e6).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"
#include "core/ground.h"
#include "opt/ftree_search.h"

namespace fdb {
namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atoll(s) > 0 ? static_cast<size_t>(std::atoll(s))
                                           : def;
}

struct EngineRow {
  double fdb_size = 0, fdb_time = 0;
  double rdb_size = 0, rdb_time = 0;
  bool rdb_timeout = false;
  double vdb_time = 0;
  bool vdb_timeout = false;
};

EngineRow RunOnce(BenchInstance& inst) {
  EngineRow row;
  Engine engine(inst.db.get());

  Timer tf;
  FdbResult fdb = engine.EvaluateFlat(inst.query);
  row.fdb_time = tf.Seconds();
  row.fdb_size = static_cast<double>(fdb.NumSingletons());

  RdbOptions ropts;
  ropts.timeout_seconds = BenchTimeout();
  ropts.max_result_tuples = EnvSize("FDB_EXP3_CAP", 5'000'000);
  ropts.deduplicate = false;
  Timer tr;
  RdbResult rdb = engine.ExecuteRdb(inst.query, ropts);
  row.rdb_time = tr.Seconds();
  row.rdb_timeout = rdb.timed_out;
  row.rdb_size = static_cast<double>(rdb.NumDataElements());

  VdbOptions vopts;
  vopts.timeout_seconds = BenchTimeout();
  vopts.max_result_tuples = ropts.max_result_tuples;
  vopts.deduplicate = false;
  Timer tv;
  VdbResult vdb = engine.ExecuteVdb(inst.query, vopts);
  row.vdb_time = tv.Seconds();
  row.vdb_timeout = vdb.timed_out;
  return row;
}

std::string Maybe(double v, bool timeout, bool sci = true) {
  if (timeout) return "t/o";
  return sci ? FmtSci(v) : FmtSecs(v);
}

void PanelAB(Report& report, Distribution dist) {
  report.BeginSection(
      std::cout,
      std::string("Figure 7 (") +
          (dist == Distribution::kUniform ? "left" : "middle") +
          "): 3 ternary relations, values " + DistributionName(dist) +
          " over [1..100]");
  Table table({"N", "K", "FDB size", "RDB size", "FDB time", "RDB time",
               "VDB time"});
  std::vector<size_t> sizes{1000, 3162, 10000, 31623};
  if (std::getenv("FDB_BENCH_FULL") != nullptr) sizes.push_back(100000);
  for (size_t n : sizes) {
    for (int k = 2; k <= 4; ++k) {
      WorkloadSpec spec;
      spec.num_rels = 3;
      spec.num_attrs = 9;
      spec.tuples_per_rel = static_cast<size_t>(
          static_cast<double>(n) * BenchScale());
      spec.domain = 100;
      spec.dist = dist;
      spec.num_equalities = k;
      spec.seed = static_cast<uint64_t>(n + static_cast<size_t>(k));
      BenchInstance inst = MakeBenchInstance(spec);
      EngineRow row = RunOnce(inst);
      table.AddRow({FmtInt(n), FmtInt(static_cast<uint64_t>(k)),
                    FmtSci(row.fdb_size),
                    Maybe(row.rdb_size, row.rdb_timeout),
                    FmtSecs(row.fdb_time),
                    Maybe(row.rdb_time, row.rdb_timeout, false),
                    Maybe(row.vdb_time, row.vdb_timeout, false)});
    }
  }
  report.Emit(std::cout, table);
}

void PanelC(Report& report, Distribution dist) {
  report.BeginSection(
      std::cout,
      std::string("Figure 7 (right): combinatorial data, R=4 "
                  "(2 binary x64, 2 ternary x512), values ") +
          DistributionName(dist) + " over [1..20]");
  Table table({"K", "FDB size", "RDB size", "FDB time", "RDB time",
               "VDB time"});
  for (int k = 1; k <= 8; ++k) {
    BenchInstance inst = MakeHeterogeneousInstance(
        {2, 2, 3, 3}, {64, 64, 512, 512}, 20, dist, 1.0, k,
        static_cast<uint64_t>(7000 + k));
    EngineRow row = RunOnce(inst);
    table.AddRow({FmtInt(static_cast<uint64_t>(k)), FmtSci(row.fdb_size),
                  Maybe(row.rdb_size, row.rdb_timeout),
                  FmtSecs(row.fdb_time),
                  Maybe(row.rdb_time, row.rdb_timeout, false),
                  Maybe(row.vdb_time, row.vdb_timeout, false)});
  }
  report.Emit(std::cout, table);
}

void Run(Report& report) {
  PanelAB(report, Distribution::kUniform);
  PanelAB(report, Distribution::kZipf);
  PanelC(report, Distribution::kUniform);
  PanelC(report, Distribution::kZipf);
  std::cout << "\nPaper shape check: factorised sizes are orders of "
               "magnitude below flat sizes and both follow power laws in N "
               "(smaller exponent for FDB); evaluation times track result "
               "sizes; flat engines hit the timeout where the paper's "
               "plots have missing points; VDB tracks RDB with a constant "
               "interpretation overhead (the SQLite/PostgreSQL role).\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp3_eval_flat", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
