// Experiment 8 (ROADMAP "Parallel enumeration"): morsel-driven parallel
// tuple streaming from f-representations vs the single-threaded
// constant-delay enumerator.
//
// Two workloads, matching the regimes the planner must handle:
//   * high-fanout star — S(a,b) |x| T(b,c) on a small b-domain: few top
//     union entries, each dominating, so the planner pins entries and
//     recurses one level down (the flat result has N^2/domain tuples
//     while the representation stays linear in N);
//   * one-to-many chain — Customer <- Orders <- Lineitem: many small top
//     entries, pure greedy range packing.
// For each thread count the full stream is enumerated through
// ParallelEnumerator (chunk results concatenated in plan order are
// byte-identical to sequential enumeration — asserted in
// tests/parallel_enumerate_test.cc); the table reports wall time (best of
// FDB_EXP8_REPS runs), throughput and the speedup vs 1 thread. A second
// table times the parallel MaterializeVisible sink on the star workload,
// with the compiled enumeration kernel (core/kernel.h) on and off. A third
// traces the star query end-to-end and reports the per-phase span times
// plus how much of the total the phases cover (>= 90% required).
//
// The host's hardware concurrency is recorded alongside: on machines with
// fewer cores than the thread column the speedup is bounded by the
// hardware, not the algorithm (the checked-in snapshot from the 1-core CI
// container shows ~1x throughout; the >= 3x @ 4 threads acceptance bar
// requires >= 4 cores).
//
// Knobs: FDB_EXP8_STAR_N (default 8000), FDB_EXP8_CHAIN_N (default
// 1500000), FDB_EXP8_REPS (default 3), FDB_BENCH_SCALE.
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/engine.h"
#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/kernel.h"
#include "core/parallel_enumerate.h"

namespace fdb {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && std::atoi(v) > 0 ? std::atoi(v) : fallback;
}

BenchInstance MakeStar(size_t n, int64_t b_domain, uint64_t seed) {
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);
  RelId s = inst.db->CreateRelation("S", {"sa", "sb"});
  RelId t = inst.db->CreateRelation("T", {"tb", "tc"});
  for (size_t i = 1; i <= n; ++i) {
    inst.db->relation(s).AddTuple(
        {static_cast<Value>(i), rng.Uniform(1, b_domain)});
    inst.db->relation(t).AddTuple(
        {rng.Uniform(1, b_domain), static_cast<Value>(i)});
  }
  inst.query.rels = {s, t};
  inst.query.equalities = {{inst.db->Attr("sb"), inst.db->Attr("tb")}};
  return inst;
}

BenchInstance MakeChain(size_t lineitems, uint64_t seed) {
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);
  RelId c = inst.db->CreateRelation("Customer", {"ck", "cnation"});
  RelId o = inst.db->CreateRelation("Orders", {"ok", "o_ck"});
  RelId l = inst.db->CreateRelation("Lineitem", {"lk", "l_ok", "qty"});
  const size_t customers = lineitems / 10 + 1, orders = lineitems / 4 + 1;
  for (size_t i = 1; i <= customers; ++i) {
    inst.db->relation(c).AddTuple({static_cast<Value>(i), rng.Uniform(1, 25)});
  }
  for (size_t i = 1; i <= orders; ++i) {
    inst.db->relation(o).AddTuple(
        {static_cast<Value>(i), rng.Uniform(1, static_cast<int64_t>(customers))});
  }
  for (size_t i = 1; i <= lineitems; ++i) {
    inst.db->relation(l).AddTuple(
        {static_cast<Value>(i), rng.Uniform(1, static_cast<int64_t>(orders)),
         rng.Uniform(1, 50)});
  }
  inst.query.rels = {c, o, l};
  inst.query.equalities = {{inst.db->Attr("ck"), inst.db->Attr("o_ck")},
                           {inst.db->Attr("ok"), inst.db->Attr("l_ok")}};
  return inst;
}

struct EnumRun {
  double seconds = 0;
  uint64_t tuples = 0;
  size_t chunks = 0;
};

// Streams the whole representation through ParallelEnumerator at the
// given thread count; best wall time of `reps` runs.
EnumRun RunEnumerate(const FRep& rep, int threads, int reps) {
  EnumRun best;
  for (int r = 0; r < reps; ++r) {
    EnumerateOptions opts;
    opts.threads = threads;
    opts.parallel_cutoff = 0;  // always exercise the planner
    ParallelEnumerator pe(rep, opts, /*visible_only=*/false);
    std::vector<uint64_t> counts(pe.num_chunks(), 0);
    Timer t;
    pe.Enumerate([&](size_t c, TupleEnumerator& en) {
      uint64_t local = 0;
      while (en.Next()) ++local;
      counts[c] = local;
    });
    double secs = t.Seconds();
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    if (best.tuples == 0 || secs < best.seconds) {
      best.seconds = secs;
      best.tuples = total;
      best.chunks = pe.num_chunks();
    }
  }
  return best;
}

void EnumTable(Report& report, const std::string& title, const FRep& rep,
               int reps) {
  report.BeginSection(std::cout, title);
  Table table({"threads", "tuples", "chunks", "wall", "Mtuples/s",
               "speedup vs 1T"});
  double base = 0;
  for (int threads : {1, 2, 4, 8}) {
    EnumRun run = RunEnumerate(rep, threads, reps);
    if (threads == 1) base = run.seconds;
    table.AddRow({FmtInt(static_cast<uint64_t>(threads)), FmtInt(run.tuples),
                  FmtInt(static_cast<uint64_t>(run.chunks)),
                  FmtSecs(run.seconds),
                  FmtDouble(static_cast<double>(run.tuples) / run.seconds /
                                1e6,
                            1),
                  FmtDouble(base / run.seconds, 2)});
  }
  report.Emit(std::cout, table);
}

void Run(Report& report) {
  const int reps = EnvInt("FDB_EXP8_REPS", 3);
  const size_t star_n = static_cast<size_t>(
      static_cast<double>(EnvInt("FDB_EXP8_STAR_N", 8000)) * BenchScale());
  const size_t chain_n = static_cast<size_t>(
      static_cast<double>(EnvInt("FDB_EXP8_CHAIN_N", 1'500'000)) *
      BenchScale());
  const unsigned hw = std::thread::hardware_concurrency();

  report.BeginSection(std::cout, "Host");
  {
    Table table({"hardware threads", "shared pool threads"});
    table.AddRow({FmtInt(hw), FmtInt(static_cast<uint64_t>(
                                  ThreadPool::Shared().size()))});
    report.Emit(std::cout, table);
  }

  {
    BenchInstance star = MakeStar(star_n, 32, 4242);
    Engine engine(star.db.get());
    FdbResult res = engine.EvaluateFlat(star.query);
    EnumTable(report,
              "High-fanout star S |x| T (N=" + FmtInt(star_n) +
                  ", domain 32): parallel enumeration scaling",
              res.rep, reps);

    report.BeginSection(
        std::cout, "Parallel MaterializeVisible on the star result");
    // Kernel off = interpreted TupleEnumerator per morsel; kernel on = the
    // compiled enumeration kernel (core/kernel.h) the warm serve path
    // runs. Compiled once outside the timed region, as PlanCache does.
    EnumKernel kernel =
        EnumKernel::Compile(res.rep.tree(), /*visible_only=*/true);
    Table table({"threads", "kernel", "rows", "wall", "speedup vs 1T int"});
    double base = 0;
    for (int threads : {1, 4}) {
      for (bool use_kernel : {false, true}) {
        EnumerateOptions opts;
        opts.threads = threads;
        opts.parallel_cutoff = 0;
        double secs = 0;
        size_t rows = 0;
        for (int r = 0; r < reps; ++r) {
          Timer t;
          Relation m = use_kernel
                           ? MaterializeVisible(res.rep, opts, &kernel)
                           : MaterializeVisible(res.rep, opts);
          double s = t.Seconds();
          rows = m.size();
          if (secs == 0 || s < secs) secs = s;
        }
        if (threads == 1 && !use_kernel) base = secs;
        table.AddRow({FmtInt(static_cast<uint64_t>(threads)),
                      use_kernel ? "on" : "off", FmtInt(rows), FmtSecs(secs),
                      FmtDouble(base / secs, 2)});
      }
    }
    report.Emit(std::cout, table);

    // Query-lifecycle trace of the same star query: the per-phase wall
    // times EXPLAIN ANALYZE reports, and how much of the end-to-end time
    // the phase spans account for (must stay >= 90%: the spans are the
    // observability story, so untraced gaps have to stay small).
    report.BeginSection(std::cout,
                        "Traced star query: phase breakdown (EXPLAIN "
                        "ANALYZE spans)");
    {
      QueryTrace trace;
      {
        QueryTrace::Scope root(&trace, "query");
        FdbResult traced = engine.ExecuteTraced(star.query, &trace);
      }
      Table spans({"span", "depth", "time", "rows", "bytes"});
      double root_seconds = 0, phase_sum = 0;
      for (const QueryTrace::Span& sp : trace.spans()) {
        if (sp.depth == 0) root_seconds = sp.seconds;
        if (sp.depth == 1) phase_sum += sp.seconds;
        spans.AddRow({std::string(static_cast<size_t>(sp.depth) * 2, ' ') +
                          sp.name,
                      FmtInt(static_cast<uint64_t>(sp.depth)),
                      FmtSecs(sp.seconds),
                      sp.has_rows ? FmtInt(sp.rows) : "-",
                      sp.has_bytes ? FmtInt(sp.bytes) : "-"});
      }
      report.Emit(std::cout, spans);
      Table coverage({"root total", "phase sum", "coverage %"});
      coverage.AddRow({FmtSecs(root_seconds), FmtSecs(phase_sum),
                       FmtDouble(root_seconds > 0
                                     ? 100.0 * phase_sum / root_seconds
                                     : 0.0,
                                 1)});
      report.Emit(std::cout, coverage);
    }
  }

  {
    BenchInstance chain = MakeChain(chain_n, 777);
    Engine engine(chain.db.get());
    FdbResult res = engine.EvaluateFlat(chain.query);
    EnumTable(report,
              "One-to-many chain (lineitems=" + FmtInt(chain_n) +
                  "): parallel enumeration scaling",
              res.rep, reps);
  }

  std::cout << "\nShape check: morsels partition the top-union entries "
               "(recursing past dominating entries), so the stream "
               "parallelises without coordination; speedup should track "
               "the thread count up to the hardware concurrency ("
            << hw
            << " on this host) and the output is byte-identical to "
               "sequential enumeration at every thread count.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp8_parallel_enumerate", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
