// Experiment 4 (Fig. 8): query evaluation on factorised data.
//
// Base queries of K = 1..8 equalities over R = 4 relations with A = 10
// attributes (the combinatorial sizes of Fig. 7 right: two binary relations
// of 64 tuples, two ternary of 512, values in [1..20]) are evaluated
// factorised by FDB and flat by RDB. New queries of L = 1..5 further
// equalities then run:
//   * FDB: optimal f-plan (full search) executed on the f-representation —
//     restructuring may be needed;
//   * RDB: a selection with L equality conditions over the flat result,
//     one scan.
// We report result sizes (# data elements) and evaluation times.
//
// Paper claims reproduced here: FDB's factorised result sizes and times
// stay orders of magnitude below RDB's for small K (large results), and
// the gap closes as K grows and results shrink; factorisation quality does
// not decay across composed queries.
//
// Knobs: FDB_BENCH_TIMEOUT (default 10 s), FDB_EXP4_CAP (default 5e6 rows).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "common/timer.h"
#include "core/kernel.h"
#include "opt/fplan_search.h"

namespace fdb {
namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atoll(s) > 0 ? static_cast<size_t>(std::atoll(s))
                                           : def;
}

void Run(Report& report) {
  report.BeginSection(
      std::cout,
      "Figure 8: FDB vs RDB on factorised inputs (R=4, A=10, "
      "combinatorial sizes)");
  Table table({"K", "L", "FDB size", "FDB bytes", "RDB size", "FDB time",
               "RDB time", "plan s(f)", "mat int", "mat kern", "kern x"});

  for (int k = 1; k <= 8; ++k) {
    BenchInstance inst = MakeHeterogeneousInstance(
        {2, 2, 3, 3}, {64, 64, 512, 512}, 20, Distribution::kUniform, 1.0, k,
        static_cast<uint64_t>(9000 + k));
    Engine engine(inst.db.get());

    // Base factorised result.
    FdbResult base = engine.EvaluateFlat(inst.query);
    if (base.rep.empty()) continue;

    // Base flat result (RDB's input for the follow-up selections).
    RdbOptions ropts;
    ropts.timeout_seconds = BenchTimeout();
    ropts.max_result_tuples = EnvSize("FDB_EXP4_CAP", 5'000'000);
    ropts.deduplicate = false;
    RdbResult flat = engine.ExecuteRdb(inst.query, ropts);

    QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);
    for (int l = 1; l <= 5 && k + l < 10; ++l) {
      Rng rng(static_cast<uint64_t>(77 * k + l));
      auto extra = DrawExtraEqualities(info.classes, l, rng);
      if (static_cast<int>(extra.size()) < l) break;

      // FDB: optimise + execute the f-plan on the factorised input.
      Timer tf;
      FdbResult out = engine.EvaluateOnFRep(base.rep, extra);
      double fdb_time = tf.Seconds();

      // RDB: one scan over the flat result with L equality conditions.
      std::string rdb_size = "t/o", rdb_time = "t/o";
      if (!flat.timed_out) {
        Timer tr;
        Relation scan = flat.relation;
        std::vector<std::pair<size_t, size_t>> cols;
        for (const auto& [a, b] : extra) {
          cols.emplace_back(scan.ColumnOf(a), scan.ColumnOf(b));
        }
        scan.Filter([&](size_t row) {
          for (const auto& [ca, cb] : cols) {
            if (scan.At(row, ca) != scan.At(row, cb)) return false;
          }
          return true;
        });
        rdb_time = FmtSecs(tr.Seconds());
        rdb_size = FmtSci(static_cast<double>(scan.size() * scan.arity()));
      }

      // Materialisation tap: interpreted enumeration vs the compiled
      // kernel (the serve path's warm plan), single-threaded so the ratio
      // isolates the kernel itself. Skipped for huge flat results.
      std::string mat_int = "-", mat_kern = "-", kern_x = "-";
      if (out.FlatTuples() > 0 && out.FlatTuples() < 2e6) {
        EnumerateOptions seq;
        seq.threads = 1;
        EnumKernel kernel =
            EnumKernel::Compile(out.rep.tree(), /*visible_only=*/true);
        Timer ti;
        Relation ri = MaterializeVisible(out.rep, seq);
        const double t_int = ti.Seconds();
        Timer tk;
        Relation rk = MaterializeVisible(out.rep, seq, &kernel);
        const double t_kern = tk.Seconds();
        if (!(ri == rk)) {
          std::cerr << "kernel materialisation mismatch at K=" << k
                    << " L=" << l << "\n";
          std::exit(1);
        }
        mat_int = FmtSecs(t_int);
        mat_kern = FmtSecs(t_kern);
        kern_x = FmtDouble(t_kern > 0 ? t_int / t_kern : 0.0, 2);
      }

      table.AddRow({FmtInt(static_cast<uint64_t>(k)),
                    FmtInt(static_cast<uint64_t>(l)),
                    FmtSci(static_cast<double>(out.NumSingletons())),
                    FmtInt(out.rep.MemoryBytes()), rdb_size,
                    FmtSecs(fdb_time), rdb_time,
                    FmtDouble(out.plan.cost_max_s, 3), mat_int, mat_kern,
                    kern_x});
    }
  }
  report.Emit(std::cout, table);
  std::cout << "\nPaper shape check: FDB sizes/times are up to orders of "
               "magnitude below RDB at small K and converge as K grows; "
               "f-plan costs stay in [1,2], so factorisation quality does "
               "not decay across composed queries.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp4_eval_factorised", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
