#!/bin/sh
# Runs every bench binary and collects machine-readable BENCH_*.json
# artifacts for the perf trajectory.
#
#   Usage: bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build (the tier-1 build directory), OUT_DIR to
# ./bench_results. The experiment drivers honour their FDB_* env knobs
# (e.g. FDB_EXP1_REPS, FDB_BENCH_FULL) for quicker or fuller runs;
# micro_ops honours the usual Google Benchmark flags via BENCHMARK_* env or
# by running it directly.
set -eu

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench_results}
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi
# Refuse instrumented builds: BENCH_*.json from a sanitizer, FDB_VALIDATE
# or FDB_FAULTS build would silently poison the perf trajectory (ASan ~2x,
# TSan ~10x, deep validation adds O(|E|) passes per operator, fault sites
# add registry lookups to hot paths). The cache check covers every way
# those flags can be set (preset, -D, cached).
CACHE="$BUILD_DIR/CMakeCache.txt"
if [ -f "$CACHE" ]; then
  BAD=$(grep -E '^FDB_(SANITIZE|TSAN|UBSAN|VALIDATE|FAULTS):[^=]*=(ON|TRUE|1)$' \
        "$CACHE" | cut -d: -f1 | tr '\n' ' ' || true)
  if [ -n "$BAD" ]; then
    echo "error: $BUILD_DIR is an instrumented build ($BAD)" >&2
    echo "bench artifacts must come from an uninstrumented Release build:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
    exit 1
  fi
fi
# Provenance: every BENCH_*.json stamps the commit it was built from
# (git_sha, via the env var below). A dirty tree would stamp a SHA whose
# code does not match what actually ran, so refuse it outright; set
# FDB_BENCH_ALLOW_DIRTY=1 to override for local experiments — the artifact
# then carries "<sha>-dirty" so it can never masquerade as a clean run.
if git -C . rev-parse --git-dir >/dev/null 2>&1; then
  SHA=$(git -C . rev-parse HEAD)
  if [ -n "$(git -C . status --porcelain)" ]; then
    if [ "${FDB_BENCH_ALLOW_DIRTY:-0}" = "1" ]; then
      SHA="${SHA}-dirty"
      echo "warning: dirty working tree — stamping git_sha=$SHA" >&2
    else
      echo "error: working tree is dirty; bench artifacts must map to a" >&2
      echo "commit. Commit or stash first, or set FDB_BENCH_ALLOW_DIRTY=1" >&2
      echo "to stamp '<sha>-dirty' instead." >&2
      exit 1
    fi
  fi
  FDB_BENCH_GIT_SHA="$SHA"
  export FDB_BENCH_GIT_SHA
else
  echo "warning: not a git checkout — artifacts will stamp git_sha=unknown" >&2
fi
mkdir -p "$OUT_DIR"

# Parallel-speedup benches (exp8, the serve hammer) need real cores; on a
# 1-core host their multi-thread rows measure scheduling overhead, not
# speedup. Run them anyway (the artifacts stamp hardware_concurrency so
# downstream tooling can discount them), but say so loudly.
NPROC=$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null || echo 1)
if [ "$NPROC" -le 1 ]; then
  echo "" >&2
  echo "*********************************************************" >&2
  echo "** WARNING: this host reports only 1 CPU.              **" >&2
  echo "** Multi-thread bench rows (exp7 hammer, exp8 speedup) **" >&2
  echo "** will NOT show parallel speedup on this machine;     **" >&2
  echo "** treat their thread-scaling columns as invalid.      **" >&2
  echo "*********************************************************" >&2
  echo "" >&2
fi

for b in abl_cost_models exp1_optimisation_flat exp2_optimisers \
         exp3_eval_flat exp4_eval_factorised exp5_one_to_many \
         exp6_group_aggregates exp7_serve exp8_parallel_enumerate; do
  if [ -x "$BENCH_DIR/$b" ]; then
    echo ">> $b"
    "$BENCH_DIR/$b" --json "$OUT_DIR/BENCH_${b}.json"
  else
    echo ">> $b: not built, skipping" >&2
  fi
done

# micro_ops links Google Benchmark's benchmark_main, which brings its own
# JSON reporter instead of the --json flag of the experiment drivers.
if [ -x "$BENCH_DIR/micro_ops" ]; then
  echo ">> micro_ops"
  "$BENCH_DIR/micro_ops" \
    --benchmark_out="$OUT_DIR/BENCH_micro.json" \
    --benchmark_out_format=json
else
  echo ">> micro_ops: not built (Google Benchmark missing), skipping" >&2
fi

echo "bench artifacts written to $OUT_DIR/"
