// Experiment 7 (serve path): closed-loop load on the concurrent
// QueryServer, cold plan cache vs warm.
//
// Workload: a "ladder" join of 9 ternary relations (b_i = a_{i+1},
// c_i = a_{i+2}) over small data — the shape where the optimal f-tree
// search dominates a single evaluation, exactly the regime the shared
// f-plan cache targets. N client threads issue requests in a closed loop
// (next request after the previous response):
//   * cold  — every request carries a unique always-true predicate, so
//     every normalised signature is new: parse + full optimisation each
//     time (and the LRU wraps, exercising eviction);
//   * warm  — the same requests drawn from 8 distinct statements: after
//     one miss each, the steady state is cache-lookup -> ground/execute.
// Reported per run: throughput, latency percentiles, plan-cache hit rate,
// coalesced requests. The summary table gives the warm/cold throughput
// ratio — the headline number for the f-plan cache (≥ 2x is the
// acceptance bar; see ISSUE 4).
//
// Knobs: FDB_EXP7_REQS (requests per client, default 150),
// FDB_EXP7_WORKERS (server worker threads, default 4).
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "common/timer.h"
#include "serve/query_server.h"

namespace fdb {
namespace {

constexpr int kLadderRels = 9;
constexpr int kLadderArity = 3;
constexpr int64_t kLadderRows = 60;
constexpr int kWarmDistinct = 8;

std::unique_ptr<Database> BuildLadderDb() {
  auto db = std::make_unique<Database>();
  for (int i = 0; i < kLadderRels; ++i) {
    std::vector<std::string> cols;
    for (int c = 0; c < kLadderArity; ++c) {
      cols.push_back(std::string(1, static_cast<char>('a' + c)) +
                     std::to_string(i));
    }
    RelId rid = db->CreateRelation("r" + std::to_string(i), cols);
    Relation& rel = db->relation(rid);
    std::vector<Value> row(static_cast<size_t>(kLadderArity));
    for (int64_t v = 0; v < kLadderRows; ++v) {
      for (int c = 0; c < kLadderArity; ++c) {
        row[static_cast<size_t>(c)] = (v * (7 + c) + i) % 20;
      }
      rel.AddTuple(row);
    }
  }
  return db;
}

std::string LadderSql() {
  std::string sql = "SELECT * FROM ";
  for (int i = 0; i < kLadderRels; ++i) {
    sql += (i ? ", r" : "r") + std::to_string(i);
  }
  sql += " WHERE ";
  bool first = true;
  for (int i = 0; i + 1 < kLadderRels; ++i) {
    sql += (first ? "b" : " AND b") + std::to_string(i) + " = a" +
           std::to_string(i + 1);
    first = false;
  }
  for (int i = 0; i + 2 < kLadderRels; ++i) {
    sql += " AND c" + std::to_string(i) + " = a" + std::to_string(i + 2);
  }
  return sql;
}

// Always-true predicate whose constant makes the normalised signature
// unique per `tag` — same result, fresh cache key.
std::string TaggedSql(int64_t tag) {
  return LadderSql() + " AND a0 <= " + std::to_string(1'000'000'000 + tag);
}

struct LoadResult {
  double seconds = 0;
  size_t requests = 0;
  double p50 = 0, p95 = 0, p99 = 0;  // seconds
  ServerStats stats;
  std::string exposition;  // STATS snapshot taken after the load drained
};

// Pulls one sample value out of a Prometheus text exposition. Parsing the
// serve's own STATS output (rather than reaching into the registry) keeps
// the bench honest about what an operator can actually observe.
double ExpoValue(const std::string& expo, const std::string& name) {
  std::istringstream is(expo);
  std::string line;
  const std::string needle = name + " ";
  while (std::getline(is, line)) {
    if (line.rfind(needle, 0) == 0) return std::stod(line.substr(needle.size()));
  }
  return 0.0;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Closed loop: `clients` threads, each issuing `per_client` requests,
/// request i of client c being sql_of(c, i). Fresh server per run.
LoadResult RunClosedLoop(Database* db, int clients, int per_client,
                         int workers,
                         const std::function<std::string(int, int)>& sql_of,
                         bool warmup) {
  ServeOptions opts;
  opts.num_workers = workers;
  opts.plan_cache_capacity = 512;
  QueryServer server(db, opts);

  if (warmup) {
    // Populate the cache: one pass over the distinct statements.
    for (int i = 0; i < kWarmDistinct; ++i) server.Query(sql_of(0, i));
  }

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        Timer t;
        ServeResponse r = server.Query(sql_of(c, i));
        lat.push_back(t.Seconds());
        if (r.status != ServeStatus::kOk) {
          std::cerr << "!! serve error: " << r.body << "\n";
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult res;
  res.seconds = wall.Seconds();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  res.requests = all.size();
  res.p50 = Percentile(all, 0.50);
  res.p95 = Percentile(all, 0.95);
  res.p99 = Percentile(all, 0.99);
  res.stats = server.stats();
  res.exposition = server.MetricsExposition();
  return res;
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && std::atoi(v) > 0 ? std::atoi(v) : fallback;
}

void AddRow(Table& table, const std::string& run, int clients,
            const LoadResult& r) {
  const ServerStats& s = r.stats;
  const uint64_t lookups = s.plan_cache.hits + s.plan_cache.misses;
  table.AddRow(
      {run, FmtInt(static_cast<uint64_t>(clients)),
       FmtInt(static_cast<uint64_t>(r.requests)), FmtSecs(r.seconds),
       FmtDouble(static_cast<double>(r.requests) / r.seconds, 0),
       FmtSecs(r.p50), FmtSecs(r.p95), FmtSecs(r.p99),
       lookups == 0 ? "-"
                    : FmtDouble(100.0 * static_cast<double>(s.plan_cache.hits) /
                                    static_cast<double>(lookups),
                                1),
       FmtInt(s.coalesced), FmtInt(s.plan_cache.evictions)});
}

void Run(Report& report) {
  const int per_client = EnvInt("FDB_EXP7_REQS", 150);
  const int workers = EnvInt("FDB_EXP7_WORKERS", 4);
  auto db = BuildLadderDb();

  report.BeginSection(
      std::cout,
      "Closed-loop serve throughput: 9-relation ladder join, " +
          std::to_string(workers) + " workers, " +
          std::to_string(per_client) + " requests/client");
  std::vector<std::pair<int, std::pair<LoadResult, LoadResult>>> by_clients;
  {
    Table table({"run", "clients", "requests", "wall", "qps", "p50", "p95",
                 "p99", "hit %", "coalesced", "evictions"});
    for (int clients : {1, 4, 8}) {
      // Cold: unique signature per request -> every request optimises.
      LoadResult cold = RunClosedLoop(
          db.get(), clients, per_client, workers,
          [per_client](int c, int i) {
            return TaggedSql(static_cast<int64_t>(c) * per_client + i);
          },
          /*warmup=*/false);
      // Warm: the same load drawn from kWarmDistinct statements.
      LoadResult warm = RunClosedLoop(
          db.get(), clients, per_client, workers,
          [](int c, int i) {
            return TaggedSql((c * 31 + i) % kWarmDistinct);
          },
          /*warmup=*/true);
      AddRow(table, "cold", clients, cold);
      AddRow(table, "warm", clients, warm);
      by_clients.push_back({clients, {cold, warm}});
    }
    report.Emit(std::cout, table);
  }

  report.BeginSection(std::cout,
                      "Warm vs cold: plan-cache speedup on identical load");
  {
    Table table({"clients", "cold qps", "warm qps", "warm/cold"});
    for (auto& [clients, runs] : by_clients) {
      double cold_qps =
          static_cast<double>(runs.first.requests) / runs.first.seconds;
      double warm_qps =
          static_cast<double>(runs.second.requests) / runs.second.seconds;
      table.AddRow({FmtInt(static_cast<uint64_t>(clients)),
                    FmtDouble(cold_qps, 0), FmtDouble(warm_qps, 0),
                    FmtDouble(warm_qps / cold_qps, 2)});
    }
    report.Emit(std::cout, table);
  }

  // Phase breakdown from the serve histograms (STATS exposition) of the
  // highest-concurrency cold and warm runs: where a request's wall time
  // actually goes. Warm must collapse execute (no optimisation) while
  // queue-wait grows with contention.
  report.BeginSection(std::cout,
                      "Serve phase breakdown (8 clients, from STATS "
                      "histograms, seconds)");
  {
    Table table({"run", "phase", "count", "mean", "p50", "p95", "p99", "max"});
    const auto& last = by_clients.back().second;
    for (const auto& [run, lr] :
         {std::pair<const char*, const LoadResult*>{"cold", &last.first},
          std::pair<const char*, const LoadResult*>{"warm", &last.second}}) {
      for (const char* phase :
           {"queue_wait", "cache_lookup", "execute", "render"}) {
        std::string base = std::string("fdb_serve_") + phase + "_seconds";
        double count = ExpoValue(lr->exposition, base + "_count");
        double sum = ExpoValue(lr->exposition, base + "_sum");
        table.AddRow({run, phase, FmtDouble(count, 0),
                      FmtSci(count > 0 ? sum / count : 0.0),
                      FmtSci(ExpoValue(lr->exposition, base + "_p50")),
                      FmtSci(ExpoValue(lr->exposition, base + "_p95")),
                      FmtSci(ExpoValue(lr->exposition, base + "_p99")),
                      FmtSci(ExpoValue(lr->exposition, base + "_max"))});
      }
    }
    report.Emit(std::cout, table);
  }

  std::cout << "\nServe-path shape check: the warm run answers the same "
               "request stream from the shared f-plan cache (hit rate near "
               "100%), skipping optimisation entirely — its throughput "
               "must be >= 2x the cold run, which optimises every request "
               "(unique signatures; the LRU wraps and evicts).\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("exp7_serve", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
