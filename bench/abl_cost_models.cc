// Ablation: asymptotic vs cardinality-estimate cost model (§4.1).
//
// The paper uses the asymptotic measure s(f) in its experiments and notes
// that "the alternative cost estimate discussed in Section 4.1 would lead
// to very similar choices of optimal f-plans". This harness quantifies
// that: for random factorised-input queries it optimises the same f-plan
// under both cost models and reports how often the chosen final f-trees
// coincide, plus the asymptotic quality of the estimate-chosen plan.
//
// Knobs: FDB_ABL_REPS (default 5).
#include <cstdlib>
#include <iostream>

#include "bench_util/report.h"
#include "bench_util/workload.h"
#include "opt/fplan_search.h"
#include "opt/ftree_search.h"

namespace fdb {
namespace {

int EnvInt(const char* name, int def) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atoi(s) > 0 ? std::atoi(s) : def;
}

void Run(Report& report) {
  const int reps = EnvInt("FDB_ABL_REPS", 5);
  report.BeginSection(
      std::cout,
      "Ablation (§4.1): asymptotic vs estimate-based plan costs "
      "(R=4, A=10, N=200, domain 20)");
  Table table({"K", "L", "same final tree", "asym s(f)", "est-plan s(f)"});

  for (int k = 1; k <= 5; ++k) {
    for (int l = 1; l <= 3; ++l) {
      int same = 0, done = 0;
      double asym_cost = 0, est_cost = 0;
      for (int rep = 0; rep < reps; ++rep) {
        WorkloadSpec spec;
        spec.num_rels = 4;
        spec.num_attrs = 10;
        spec.tuples_per_rel = 200;
        spec.domain = 20;
        spec.num_equalities = k;
        spec.seed = static_cast<uint64_t>(4200 + 100 * k + 10 * l + rep);
        BenchInstance inst = MakeBenchInstance(spec);
        QueryInfo info = AnalyzeQuery(inst.db->catalog(), inst.query);
        EdgeCoverSolver solver;
        FTree base = FindOptimalFTree(info, solver).tree;

        Rng rng(spec.seed * 13 + 1);
        auto extra = DrawExtraEqualities(info.classes, l, rng);
        if (static_cast<int>(extra.size()) < l) continue;

        DatabaseStats stats =
            DatabaseStats::Compute(inst.db->RelationPtrs(inst.query.rels));

        FPlanSearchOptions asym;
        auto plan_a = FindOptimalFPlan(base, extra, solver, asym);

        FPlanSearchOptions est;
        est.mode = CostMode::kEstimates;
        est.stats = &stats;
        auto plan_e = FindOptimalFPlan(base, extra, solver, est);

        ++done;
        if (plan_a.final_tree.CanonicalKey() ==
            plan_e.final_tree.CanonicalKey()) {
          ++same;
        }
        asym_cost += plan_a.plan.cost_max_s;
        // Asymptotic quality of the estimate-chosen plan: replay its steps
        // and take the max tree cost.
        double replay = base.Cost(solver);
        FTree t = base;
        t.NormalizeTree();
        for (const PlanStep& st : plan_e.plan.steps) {
          t = SimulateStepOnTree(t, st);
          replay = std::max(replay, t.Cost(solver));
        }
        est_cost += replay;
      }
      if (done == 0) continue;
      table.AddRow({FmtInt(static_cast<uint64_t>(k)),
                    FmtInt(static_cast<uint64_t>(l)),
                    FmtDouble(100.0 * same / done, 0) + "%",
                    FmtDouble(asym_cost / done, 3),
                    FmtDouble(est_cost / done, 3)});
    }
  }
  report.Emit(std::cout, table);
  std::cout << "\nPaper shape check: the two cost models choose the same "
               "final f-tree in most cases, and the estimate-chosen plans "
               "are (near-)optimal under the asymptotic measure too.\n";
}

}  // namespace
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::Report report("abl_cost_models", argc, argv);
  fdb::Run(report);
  return report.Finish();
}
