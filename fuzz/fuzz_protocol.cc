// Fuzz harness: the serve-path protocol layer (serve/protocol.h).
//
// Contract under attack:
//   * NormalizeSql throws FdbError on unlexable input, and on accepted
//     input is *idempotent* — the normal form is its own normal form.
//     (The plan cache keys on it: a drifting normal form would split or
//     alias cache entries.)
//   * FrameResponse keeps the wire format parseable for any body bytes:
//     ERR/TIMEOUT/BUSY/RESOURCE frames are exactly one line, and an OK
//     frame's advertised line count matches its body.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz_util.h"
#include "serve/protocol.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_protocol: %s\n", what);
    std::abort();
  }
}

size_t CountLines(const std::string& s) {
  return static_cast<size_t>(std::count(s.begin(), s.end(), '\n'));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const fdb::Catalog catalog = fdb::fuzz::MakeFuzzCatalog();
  std::string input(reinterpret_cast<const char*>(data), size);

  try {
    std::string once = fdb::NormalizeSql(input, catalog);
    std::string twice = fdb::NormalizeSql(once, catalog);
    Require(once == twice, "NormalizeSql is not idempotent");
  } catch (const fdb::FdbError&) {
    // Unlexable input; the serve path answers ERR.
  }

  // Framing must hold for arbitrary bodies, including embedded newlines.
  for (fdb::ServeStatus status :
       {fdb::ServeStatus::kError, fdb::ServeStatus::kTimeout,
        fdb::ServeStatus::kBusy, fdb::ServeStatus::kResource}) {
    fdb::ServeResponse r;
    r.status = status;
    r.body = input;
    Require(CountLines(fdb::FrameResponse(r)) == 1,
            "one-line frame leaked a newline");
  }
  {
    fdb::ServeResponse ok;
    ok.status = fdb::ServeStatus::kOk;
    ok.body = input;
    if (!ok.body.empty() && ok.body.back() != '\n') ok.body += '\n';
    std::string framed = fdb::FrameResponse(ok);
    size_t header_end = framed.find('\n');
    Require(header_end != std::string::npos && framed.rfind("OK ", 0) == 0,
            "OK frame missing header");
    size_t advertised = std::stoul(framed.substr(3, header_end - 3));
    Require(advertised == CountLines(framed.substr(header_end + 1)),
            "OK frame line count does not match body");
  }
  return 0;
}
