// Fuzz harness: the f-representation deserialiser (core/serialize.h).
//
// This is the highest-stakes boundary: serialized reps come from disk
// today and from the wire once the binary streaming protocol lands, and
// the header promises corrupted files cannot abort the process. Contract
// under attack:
//   * ReadFRep either throws FdbError or returns a representation that
//     passes the *deep* validator (arena bounds, acyclicity, window
//     overlap) — run here unconditionally, not just in FDB_VALIDATE
//     builds;
//   * an accepted representation round-trips through WriteFRep/ReadFRep to
//     a byte-identical fixpoint, and its tuple-count DP terminates.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/frep.h"
#include "core/serialize.h"
#include "core/validate.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    fdb::FRep rep = fdb::ReadFRep(in);
    fdb::ValidateDeep(rep);
    (void)rep.CountTuples();

    std::ostringstream first;
    fdb::WriteFRep(first, rep);
    std::istringstream again(first.str());
    fdb::FRep rep2 = fdb::ReadFRep(again);
    std::ostringstream second;
    fdb::WriteFRep(second, rep2);
    if (first.str() != second.str()) {
      std::fprintf(stderr,
                   "fuzz_frep_read: write/read round-trip is not a "
                   "fixpoint\n");
      std::abort();
    }
  } catch (const fdb::FdbError&) {
    // The one sanctioned outcome for corrupted input.
  }
  return 0;
}
