// Fuzz harness: the SQL front door (lexer -> parser -> AnalyzeQuery).
//
// Contract under attack: any byte string either parses into a Query that
// AnalyzeQuery accepts or rejects, or throws FdbError. Anything else —
// another exception type (std::out_of_range from a huge literal was a real
// finding), a sanitizer fault, unbounded recursion or allocation — is a
// finding and crashes the harness.
#include <cstdint>
#include <string>

#include "common/dictionary.h"
#include "fuzz_util.h"
#include "sql/parser.h"
#include "storage/query.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const fdb::Catalog catalog = fdb::fuzz::MakeFuzzCatalog();
  std::string sql(reinterpret_cast<const char*>(data), size);
  try {
    fdb::Dictionary dict;
    fdb::Query q = fdb::ParseSql(sql, catalog, &dict);
    (void)fdb::AnalyzeQuery(catalog, q);
  } catch (const fdb::FdbError&) {
    // The one sanctioned outcome for malformed input.
  }
  return 0;
}
