// Shared fixtures for the fuzz harnesses.
//
// The SQL-facing harnesses (fuzz_sql, fuzz_protocol) parse against a fixed
// catalog modelled on the grocery-retailer example: two relations, mixed
// integer/string columns, a joinable attribute pair. The catalog is built
// once per process — it is immutable under parsing, so reusing it across
// inputs keeps the harness hot loop allocation-light without leaking state
// between inputs (the Dictionary, which *is* mutated by interning, is
// created fresh per input by the harnesses).
#ifndef FDB_FUZZ_FUZZ_UTIL_H_
#define FDB_FUZZ_FUZZ_UTIL_H_

#include "storage/catalog.h"

namespace fdb {
namespace fuzz {

inline Catalog MakeFuzzCatalog() {
  Catalog c;
  AttrId oid = c.AddAttribute("oid");
  AttrId item = c.AddAttribute("item", /*is_string=*/true);
  AttrId sitem = c.AddAttribute("sitem", /*is_string=*/true);
  AttrId warehouse = c.AddAttribute("warehouse", /*is_string=*/true);
  AttrId qty = c.AddAttribute("qty");
  c.AddRelation("orders", {oid, item});
  c.AddRelation("stock", {sitem, warehouse, qty});
  return c;
}

}  // namespace fuzz
}  // namespace fdb

#endif  // FDB_FUZZ_FUZZ_UTIL_H_
