SELECT	*
FROM orders
WHERE qty <> 2