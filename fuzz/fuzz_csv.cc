// Fuzz harness: the CSV loader (storage/csv.h).
//
// Contract under attack: ReadCsv either throws FdbError (wrong arity,
// non-integer field, duplicate or empty column name, attribute-universe
// overflow) or registers a relation whose WriteCsv output loads back with
// identical geometry. The catalog and dictionary are fresh per input, so
// one hostile header cannot poison the next input's universe.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/dictionary.h"
#include "storage/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  try {
    fdb::Catalog catalog;
    fdb::Dictionary dict;
    std::istringstream in(text);
    fdb::Relation rel = fdb::ReadCsv(in, "fz", ',', &catalog, &dict);

    std::ostringstream out;
    fdb::WriteCsv(out, rel, catalog, dict, ',');
    fdb::Catalog catalog2;
    fdb::Dictionary dict2;
    std::istringstream in2(out.str());
    fdb::Relation rel2 = fdb::ReadCsv(in2, "fz", ',', &catalog2, &dict2);
    if (rel2.size() != rel.size() ||
        rel2.schema().size() != rel.schema().size()) {
      std::fprintf(stderr, "fuzz_csv: write/read round-trip lost rows\n");
      std::abort();
    }
  } catch (const fdb::FdbError&) {
    // The one sanctioned outcome for malformed input.
  }
  return 0;
}
