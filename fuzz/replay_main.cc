// Corpus-replay driver for the fuzz harnesses.
//
// Every harness in fuzz/ defines the libFuzzer entry point
// LLVMFuzzerTestOneInput. When the toolchain supports -fsanitize=fuzzer
// (clang), the FDB_FUZZ build links libFuzzer's own main and this file is
// not compiled. Everywhere else — notably GCC-only environments, where
// libFuzzer does not exist — this main() replays a checked-in corpus
// through the same entry point: every file under the directories (or
// files) given on the command line is fed to the harness once.
//
// The replay binaries are built in *every* configuration and registered as
// ctest suites, so each corpus input runs under ASan/UBSan/the deep
// validators on every CI push. A harness signals a finding the same way
// under libFuzzer and under replay: it crashes (uncaught exception,
// sanitizer fault, std::abort). Exit code 0 means the whole corpus was
// digested cleanly.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<std::string> CollectInputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    fs::path p(argv[i]);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.string());
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::vector<std::string> files = CollectInputs(argc, argv);
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    // A crash below is attributed by the last line printed.
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", path.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::fprintf(stderr, "replay: %zu inputs, no findings\n", files.size());
  return 0;
}
