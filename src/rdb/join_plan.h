// Join-order planning for the RDB baseline: a greedy connected order that
// always joins on every equivalence class shared with the relations joined
// so far (the "hand-crafted optimised query plan" of §5).
#ifndef FDB_RDB_JOIN_PLAN_H_
#define FDB_RDB_JOIN_PLAN_H_

#include <vector>

#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {

/// Returns the query-local relation indices in join order: start from the
/// smallest relation, repeatedly append the relation that shares the most
/// equivalence classes with the prefix (ties: smaller relation first);
/// disconnected relations (Cartesian products) come when nothing connects.
std::vector<size_t> PlanJoinOrder(const QueryInfo& info,
                                  const std::vector<const Relation*>& rels);

/// Join keys between a running result with attribute set `left_attrs` and
/// relation `right`: one (left attr, right attr) pair per equivalence class
/// with attributes on both sides.
std::vector<std::pair<AttrId, AttrId>> JoinKeys(const QueryInfo& info,
                                                AttrSet left_attrs,
                                                const Relation& right);

}  // namespace fdb

#endif  // FDB_RDB_JOIN_PLAN_H_
