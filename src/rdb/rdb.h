// RDB: the homebred in-memory relational engine used as the paper's main
// baseline (§5). It evaluates SPJ queries on flat relations with
// hand-optimised multi-way sort-merge join plans over pre-sorted inputs:
// constant selections are pushed to the scans, joins run in a greedy
// connected order enforcing every shared equivalence class, projection and
// de-duplication happen at the end.
#ifndef FDB_RDB_RDB_H_
#define FDB_RDB_RDB_H_

#include <vector>

#include "common/timer.h"
#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {

/// Execution limits; the paper ran with a 100-second timeout and reports
/// missing points where engines exceeded it.
struct RdbOptions {
  size_t max_result_tuples = 0;  ///< 0 = unlimited
  double timeout_seconds = 0.0;  ///< 0 = none
  bool deduplicate = true;       ///< sort + dedup the final result
};

/// Flat evaluation outcome.
struct RdbResult {
  Relation relation{std::vector<AttrId>{}};
  bool timed_out = false;

  size_t NumTuples() const { return relation.size(); }
  /// "# of data elements" as plotted in Fig. 7/8: tuples x arity.
  size_t NumDataElements() const {
    return relation.size() * relation.arity();
  }
};

/// Evaluates `q` over `rels` (indexed by query-local relation position).
RdbResult RdbEvaluate(const Catalog& catalog,
                      const std::vector<const Relation*>& rels,
                      const Query& q, const RdbOptions& opts = {});

/// Enumerate-then-hash-aggregate GROUP BY baseline: one scan over `flat`
/// (which must already be a *set* — the deduplicated join result over all
/// query attributes), hashing each row's group key and folding the
/// aggregate specs. The relational yardstick for the factorised
/// GroupByAggregate of core/aggregate.h; both produce the same
/// GroupedTable (keys ascending after SortByKey).
GroupedTable HashGroupBy(const Relation& flat, AttrSet group_by,
                         const std::vector<AggSpec>& specs);

}  // namespace fdb

#endif  // FDB_RDB_RDB_H_
