#include "rdb/join_plan.h"

#include <algorithm>

namespace fdb {

std::vector<size_t> PlanJoinOrder(const QueryInfo& info,
                                  const std::vector<const Relation*>& rels) {
  const size_t n = rels.size();
  std::vector<bool> used(n, false);
  std::vector<size_t> order;
  order.reserve(n);

  // Classes shared between two relations make them "connected".
  auto shared_classes = [&](AttrSet left_attrs, size_t r) {
    int count = 0;
    for (const AttrSet& cls : info.classes) {
      if (cls.Intersects(left_attrs) &&
          cls.Intersects(info.rel_attrs[r])) {
        ++count;
      }
    }
    return count;
  };

  // Seed: smallest relation.
  size_t seed = 0;
  for (size_t r = 1; r < n; ++r) {
    if (rels[r]->size() < rels[seed]->size()) seed = r;
  }
  order.push_back(seed);
  used[seed] = true;
  AttrSet joined = info.rel_attrs[seed];

  while (order.size() < n) {
    size_t best = n;
    int best_shared = -1;
    for (size_t r = 0; r < n; ++r) {
      if (used[r]) continue;
      int s = shared_classes(joined, r);
      if (s > best_shared ||
          (s == best_shared && best < n &&
           rels[r]->size() < rels[best]->size())) {
        best = r;
        best_shared = s;
      }
    }
    order.push_back(best);
    used[best] = true;
    joined = joined.Union(info.rel_attrs[best]);
  }
  return order;
}

std::vector<std::pair<AttrId, AttrId>> JoinKeys(const QueryInfo& info,
                                                AttrSet left_attrs,
                                                const Relation& right) {
  std::vector<std::pair<AttrId, AttrId>> keys;
  for (const AttrSet& cls : info.classes) {
    AttrSet on_left = cls.Intersect(left_attrs);
    AttrSet on_right = cls.Intersect(right.attr_set());
    if (!on_left.Empty() && !on_right.Empty()) {
      keys.emplace_back(on_left.Min(), on_right.Min());
    }
  }
  return keys;
}

}  // namespace fdb
