#include "rdb/rdb.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/exec_context.h"
#include "common/hash.h"
#include "rdb/join_plan.h"

namespace fdb {

namespace {

// Applies constant predicates and intra-relation class equalities.
Relation PrepareRelation(const QueryInfo& info, const Relation& in,
                         size_t rel_index, const Query& q) {
  Relation rel = in;
  for (const ConstPred& p : q.const_preds) {
    if (!rel.HasAttr(p.attr)) continue;
    size_t col = rel.ColumnOf(p.attr);
    rel.Filter(
        [&](size_t row) { return EvalCmp(rel.At(row, col), p.op, p.value); });
  }
  for (const AttrSet& cls : info.classes) {
    AttrSet mine = cls.Intersect(info.rel_attrs[rel_index]);
    if (mine.Size() < 2) continue;
    std::vector<size_t> cols;
    for (AttrId a : mine) cols.push_back(rel.ColumnOf(a));
    rel.Filter([&](size_t row) {
      for (size_t i = 1; i < cols.size(); ++i) {
        if (rel.At(row, cols[i]) != rel.At(row, cols[0])) return false;
      }
      return true;
    });
  }
  return rel;
}

// Sort-merge join; returns false when a limit was hit.
bool SortMergeJoin(Relation* left, Relation* right,
                   const std::vector<std::pair<AttrId, AttrId>>& keys,
                   const RdbOptions& opts, ExecContext* ctx, Relation* out) {
  std::vector<size_t> lcols, rcols;
  for (const auto& [la, ra] : keys) {
    lcols.push_back(left->ColumnOf(la));
    rcols.push_back(right->ColumnOf(ra));
  }
  left->SortByColumns(lcols);
  right->SortByColumns(rcols);

  const size_t ln = left->size(), rn = right->size();
  const size_t la = left->arity(), ra = right->arity();
  std::vector<Value> tuple(la + ra);

  auto key_cmp = [&](size_t li, size_t ri) {
    for (size_t k = 0; k < lcols.size(); ++k) {
      Value lv = left->At(li, lcols[k]);
      Value rv = right->At(ri, rcols[k]);
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };

  size_t li = 0, ri = 0;
  while (li < ln && ri < rn) {
    int c = keys.empty() ? 0 : key_cmp(li, ri);
    if (c < 0) {
      ++li;
      continue;
    }
    if (c > 0) {
      ++ri;
      continue;
    }
    // Equal-key groups; for the keyless (product) case the groups are the
    // whole relations.
    size_t le = keys.empty() ? ln : li + 1;
    size_t re = keys.empty() ? rn : ri + 1;
    if (!keys.empty()) {
      while (le < ln && key_cmp(le, ri) == 0) ++le;
      while (re < rn && key_cmp(li, re) == 0) ++re;
    }
    for (size_t i = li; i < le; ++i) {
      for (size_t j = ri; j < re; ++j) {
        for (size_t cidx = 0; cidx < la; ++cidx) tuple[cidx] = left->At(i, cidx);
        for (size_t cidx = 0; cidx < ra; ++cidx) {
          tuple[la + cidx] = right->At(j, cidx);
        }
        out->AddTuple(tuple);
        if (opts.max_result_tuples > 0 &&
            out->size() >= opts.max_result_tuples) {
          return false;
        }
      }
      if (ctx->StopRequested()) return false;
    }
    li = le;
    ri = re;
  }
  return true;
}

}  // namespace

RdbResult RdbEvaluate(const Catalog& catalog,
                      const std::vector<const Relation*>& rels,
                      const Query& q, const RdbOptions& opts) {
  QueryInfo info = AnalyzeQuery(catalog, q);
  // Baselines share the engine's governance clock (common/exec_context.h):
  // the same strided deadline probe FDB uses, read non-throwing so a hit
  // reports as data (timed_out) rather than unwinding.
  ExecContext exec_ctx;
  if (opts.timeout_seconds > 0) exec_ctx.SetDeadline(opts.timeout_seconds);

  std::vector<Relation> prepared;
  prepared.reserve(rels.size());
  for (size_t r = 0; r < rels.size(); ++r) {
    prepared.push_back(PrepareRelation(info, *rels[r], r, q));
  }

  std::vector<size_t> order = PlanJoinOrder(info, rels);

  RdbResult res;
  Relation current = std::move(prepared[order[0]]);
  for (size_t step = 1; step < order.size(); ++step) {
    Relation& next = prepared[order[step]];
    auto keys = JoinKeys(info, current.attr_set(), next);
    // Combined schema: current columns then next's.
    std::vector<AttrId> schema = current.schema();
    schema.insert(schema.end(), next.schema().begin(), next.schema().end());
    Relation joined(schema);
    if (!SortMergeJoin(&current, &next, keys, opts, &exec_ctx, &joined)) {
      res.timed_out = true;
      res.relation = std::move(joined);
      return res;
    }
    current = std::move(joined);
  }

  // Projection + set semantics.
  AttrSet keep = info.projection;
  if (keep != current.attr_set()) {
    std::vector<AttrId> schema = keep.ToVector();
    std::vector<size_t> cols;
    for (AttrId a : schema) cols.push_back(current.ColumnOf(a));
    Relation projected(schema);
    projected.Reserve(current.size());
    std::vector<Value> tuple(schema.size());
    for (size_t rix = 0; rix < current.size(); ++rix) {
      for (size_t c = 0; c < cols.size(); ++c) tuple[c] = current.At(rix, cols[c]);
      projected.AddTuple(tuple);
    }
    current = std::move(projected);
  }
  if (opts.deduplicate) current.SortLex();
  res.relation = std::move(current);
  return res;
}

GroupedTable HashGroupBy(const Relation& flat, AttrSet group_by,
                         const std::vector<AggSpec>& specs) {
  GroupedTable out;
  out.group_schema = group_by.ToVector();
  out.specs = specs;
  const size_t nk = out.group_schema.size();
  const size_t ns = specs.size();

  std::vector<size_t> key_cols;
  for (AttrId a : out.group_schema) key_cols.push_back(flat.ColumnOf(a));
  std::vector<size_t> spec_cols(ns, 0);
  for (size_t j = 0; j < ns; ++j) {
    if (specs[j].fn != AggFn::kCount) {
      spec_cols[j] = flat.ColumnOf(specs[j].attr);
    }
  }

  struct Acc {
    uint64_t count = 0;
    std::vector<double> sum;
    std::vector<Value> mn, mx;
  };
  std::unordered_map<std::vector<Value>, Acc, VecHash64> groups;

  std::vector<Value> key(nk);
  for (size_t r = 0; r < flat.size(); ++r) {
    for (size_t c = 0; c < nk; ++c) key[c] = flat.At(r, key_cols[c]);
    Acc& acc = groups[key];
    if (acc.count == 0) {
      acc.sum.assign(ns, 0.0);
      acc.mn.assign(ns, std::numeric_limits<Value>::max());
      acc.mx.assign(ns, std::numeric_limits<Value>::min());
    }
    ++acc.count;
    for (size_t j = 0; j < ns; ++j) {
      if (specs[j].fn == AggFn::kCount) continue;
      Value v = flat.At(r, spec_cols[j]);
      acc.sum[j] += static_cast<double>(v);
      acc.mn[j] = std::min(acc.mn[j], v);
      acc.mx[j] = std::max(acc.mx[j], v);
    }
  }

  std::vector<double> row(ns);
  for (const auto& [k, acc] : groups) {
    for (size_t j = 0; j < ns; ++j) {
      switch (specs[j].fn) {
        case AggFn::kCount: row[j] = static_cast<double>(acc.count); break;
        case AggFn::kSum: row[j] = acc.sum[j]; break;
        case AggFn::kAvg:
          row[j] = acc.sum[j] / static_cast<double>(acc.count);
          break;
        case AggFn::kMin: row[j] = static_cast<double>(acc.mn[j]); break;
        case AggFn::kMax: row[j] = static_cast<double>(acc.mx[j]); break;
      }
    }
    out.AddRow(k, row);
  }
  out.SortByKey();
  return out;
}

}  // namespace fdb
