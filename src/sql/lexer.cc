#include "sql/lexer.h"

#include <cctype>

#include "common/str.h"

namespace fdb {
namespace sql {

std::vector<Token> Lex(const std::string& in) {
  FDB_CHECK_MSG(in.size() <= kMaxSqlBytes,
                "SQL statement exceeds " + std::to_string(kMaxSqlBytes) +
                    " bytes");
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = in.size();
  auto push = [&](TokenKind k, std::string text, size_t pos, int64_t v = 0) {
    out.emplace_back(k, std::move(text), v, pos);
  };
  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t b = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(in[i])) ||
                       in[i] == '_')) {
        ++i;
      }
      FDB_CHECK_MSG(i - b <= kMaxTokenBytes,
                    "identifier exceeds " + std::to_string(kMaxTokenBytes) +
                        " bytes at position " + std::to_string(pos));
      push(TokenKind::kIdent, in.substr(b, i - b), pos);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t b = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      // ParseInt64, not std::stoll: an out-of-range literal must surface as
      // FdbError (the serve path's error contract), not std::out_of_range.
      int64_t v;
      FDB_CHECK_MSG(ParseInt64(in.substr(b, i - b), &v),
                    "integer literal out of range at position " +
                        std::to_string(pos));
      push(TokenKind::kInt, "", pos, v);
      continue;
    }
    switch (c) {
      case '\'': {
        size_t b = ++i;
        while (i < n && in[i] != '\'') ++i;
        FDB_CHECK_MSG(i < n, "unterminated string literal at position " +
                                 std::to_string(pos));
        FDB_CHECK_MSG(i - b <= kMaxTokenBytes,
                      "string literal exceeds " +
                          std::to_string(kMaxTokenBytes) +
                          " bytes at position " + std::to_string(pos));
        push(TokenKind::kString, in.substr(b, i - b), pos);
        ++i;
        continue;
      }
      case '(': push(TokenKind::kLParen, "(", pos); ++i; continue;
      case ')': push(TokenKind::kRParen, ")", pos); ++i; continue;
      case ',': push(TokenKind::kComma, ",", pos); ++i; continue;
      case '.': push(TokenKind::kDot, ".", pos); ++i; continue;
      case '*': push(TokenKind::kStar, "*", pos); ++i; continue;
      case '=': push(TokenKind::kEq, "=", pos); ++i; continue;
      case '!':
        FDB_CHECK_MSG(i + 1 < n && in[i + 1] == '=',
                      "expected '=' after '!' at position " +
                          std::to_string(pos));
        push(TokenKind::kNe, "!=", pos);
        i += 2;
        continue;
      case '<':
        if (i + 1 < n && in[i + 1] == '=') {
          push(TokenKind::kLe, "<=", pos);
          i += 2;
        } else if (i + 1 < n && in[i + 1] == '>') {
          push(TokenKind::kNe, "<>", pos);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", pos);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && in[i + 1] == '=') {
          push(TokenKind::kGe, ">=", pos);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", pos);
          ++i;
        }
        continue;
      default:
        throw FdbError("unexpected character '" + std::string(1, c) +
                       "' at position " + std::to_string(pos));
    }
  }
  push(TokenKind::kEnd, "", n);
  return out;
}

}  // namespace sql
}  // namespace fdb
