#include "sql/parser.h"

#include <cctype>

#include "common/str.h"
#include "sql/lexer.h"

namespace fdb {

namespace {

using sql::Lex;
using sql::Token;
using sql::TokenKind;

class Parser {
 public:
  Parser(const std::string& sql, const Catalog& catalog, Dictionary* dict)
      : tokens_(Lex(sql)), catalog_(catalog), dict_(dict) {}

  Query Run() {
    if (IsKeyword(Peek(), "explain")) {
      Advance();
      ExpectKeyword("analyze");
      q_.explain_analyze = true;
    }
    ExpectKeyword("select");
    bool star = false;
    std::vector<std::string> select_attrs;
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      star = true;
    } else {
      ParseSelectItem(&select_attrs);
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        ParseSelectItem(&select_attrs);
      }
    }

    ExpectKeyword("from");
    ParseRelation();
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      ParseRelation();
    }

    if (IsKeyword(Peek(), "where")) {
      Advance();
      ParseCondition();
      while (IsKeyword(Peek(), "and")) {
        Advance();
        ParseCondition();
      }
    }
    if (IsKeyword(Peek(), "group")) {
      Advance();
      ExpectKeyword("by");
      size_t at = Peek().pos;
      q_.group_by.Add(ResolveAttr(ParseAttrName(), at));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        at = Peek().pos;
        q_.group_by.Add(ResolveAttr(ParseAttrName(), at));
      }
    }
    Expect(TokenKind::kEnd, "end of query");

    if (star && q_.IsAggregate()) {
      throw FdbError(
          "SQL parse error: SELECT * cannot be combined with aggregates or "
          "GROUP BY");
    }
    if (!star) {
      for (const std::string& name : select_attrs) {
        q_.projection.Add(ResolveAttr(name, 0));
      }
    }
    return q_;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  [[noreturn]] void Fail(const std::string& what, const Token& t) {
    throw FdbError("SQL parse error: expected " + what + " at position " +
                   std::to_string(t.pos));
  }

  const Token& Expect(TokenKind k, const std::string& what) {
    if (Peek().kind != k) Fail(what, Peek());
    return Advance();
  }

  static bool IsKeyword(const Token& t, const std::string& kw) {
    return t.kind == TokenKind::kIdent && ToLower(t.text) == kw;
  }

  void ExpectKeyword(const std::string& kw) {
    if (!IsKeyword(Peek(), kw)) Fail("'" + kw + "'", Peek());
    Advance();
  }

  // One SELECT-list item: a plain attribute (collected for the projection)
  // or an aggregate call COUNT(*) / SUM(a) / AVG(a) / MIN(a) / MAX(a).
  // An identifier is only treated as a function name when '(' follows, so
  // attributes named like the functions stay usable.
  void ParseSelectItem(std::vector<std::string>* plain_attrs) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdent &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      std::string fn = ToLower(t.text);
      AggSpec spec;
      if (fn == "count") {
        spec.fn = AggFn::kCount;
      } else if (fn == "sum") {
        spec.fn = AggFn::kSum;
      } else if (fn == "avg") {
        spec.fn = AggFn::kAvg;
      } else if (fn == "min") {
        spec.fn = AggFn::kMin;
      } else if (fn == "max") {
        spec.fn = AggFn::kMax;
      } else {
        throw FdbError("unknown aggregate function '" + t.text +
                       "' at position " + std::to_string(t.pos));
      }
      Advance();  // function name
      Advance();  // (
      if (spec.fn == AggFn::kCount) {
        Expect(TokenKind::kStar, "'*' (COUNT takes only *)");
      } else {
        size_t at = Peek().pos;
        spec.attr = ResolveAttr(ParseAttrName(), at);
      }
      Expect(TokenKind::kRParen, "')'");
      q_.aggregates.push_back(spec);
      return;
    }
    plain_attrs->push_back(ParseAttrName());
  }

  void ParseRelation() {
    const Token& t = Expect(TokenKind::kIdent, "relation name");
    int rid = catalog_.FindRelation(t.text);
    if (rid < 0) throw FdbError("unknown relation: " + t.text);
    q_.rels.push_back(static_cast<RelId>(rid));
  }

  // attr or rel.attr; returns the attribute name after membership checks.
  std::string ParseAttrName() {
    const Token& t = Expect(TokenKind::kIdent, "attribute name");
    if (Peek().kind != TokenKind::kDot) return t.text;
    Advance();
    const Token& a = Expect(TokenKind::kIdent, "attribute after '.'");
    int rid = catalog_.FindRelation(t.text);
    if (rid < 0) throw FdbError("unknown relation: " + t.text);
    int aid = catalog_.FindAttribute(a.text);
    if (aid < 0) throw FdbError("unknown attribute: " + a.text);
    const auto& attrs = catalog_.rel(static_cast<RelId>(rid)).attrs;
    bool member = false;
    for (AttrId x : attrs) member = member || x == static_cast<AttrId>(aid);
    if (!member) {
      throw FdbError("attribute " + a.text + " is not in relation " + t.text);
    }
    return a.text;
  }

  AttrId ResolveAttr(const std::string& name, size_t pos) {
    int aid = catalog_.FindAttribute(name);
    if (aid < 0) {
      throw FdbError("unknown attribute '" + name + "' at position " +
                     std::to_string(pos));
    }
    return static_cast<AttrId>(aid);
  }

  static CmpOp OpOf(const Token& t) {
    switch (t.kind) {
      case TokenKind::kEq: return CmpOp::kEq;
      case TokenKind::kNe: return CmpOp::kNe;
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      default: throw FdbError("SQL parse error: expected comparison at position " +
                              std::to_string(t.pos));
    }
  }

  void ParseCondition() {
    // Left side: attribute or constant.
    if (Peek().kind == TokenKind::kIdent) {
      size_t at = Peek().pos;
      std::string lhs = ParseAttrName();
      AttrId la = ResolveAttr(lhs, at);
      CmpOp op = OpOf(Advance());
      const Token& r = Peek();
      if (r.kind == TokenKind::kIdent) {
        std::string rhs = ParseAttrName();
        AttrId ra = ResolveAttr(rhs, r.pos);
        FDB_CHECK_MSG(op == CmpOp::kEq,
                      "only equality joins are supported between attributes");
        q_.equalities.emplace_back(la, ra);
      } else if (r.kind == TokenKind::kInt) {
        Advance();
        q_.const_preds.emplace_back(la, op, r.value);
      } else if (r.kind == TokenKind::kString) {
        Advance();
        q_.const_preds.emplace_back(la, op, dict_->Intern(r.text));
      } else {
        Fail("attribute or constant", r);
      }
      return;
    }
    // Constant on the left: flip.
    const Token& l = Peek();
    if (l.kind == TokenKind::kInt || l.kind == TokenKind::kString) {
      Advance();
      Value v = l.kind == TokenKind::kInt ? l.value : dict_->Intern(l.text);
      CmpOp op = OpOf(Advance());
      size_t at = Peek().pos;
      std::string rhs = ParseAttrName();
      AttrId ra = ResolveAttr(rhs, at);
      // c op attr  ==  attr op' c with the comparison mirrored.
      CmpOp flipped = op;
      switch (op) {
        case CmpOp::kLt: flipped = CmpOp::kGt; break;
        case CmpOp::kLe: flipped = CmpOp::kGe; break;
        case CmpOp::kGt: flipped = CmpOp::kLt; break;
        case CmpOp::kGe: flipped = CmpOp::kLe; break;
        default: break;
      }
      q_.const_preds.emplace_back(ra, flipped, v);
      return;
    }
    Fail("condition", l);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog& catalog_;
  Dictionary* dict_;
  Query q_;
};

}  // namespace

Query ParseSql(const std::string& sql, const Catalog& catalog,
               Dictionary* dict) {
  return Parser(sql, catalog, dict).Run();
}

bool IsExplainAnalyze(const std::string& sql) {
  size_t i = 0;
  auto lower = [](char c) {
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  };
  auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  auto skip_space = [&] {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i])) != 0) {
      ++i;
    }
  };
  auto match_word = [&](const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i) {
      if (i >= sql.size() || lower(sql[i]) != *p) return false;
    }
    // Word boundary: end of input or a non-identifier character.
    return i >= sql.size() || !is_word_char(sql[i]);
  };
  skip_space();
  if (!match_word("explain")) return false;
  skip_space();
  return match_word("analyze");
}

}  // namespace fdb
