// Tokeniser for the SPJ SQL dialect (see sql/parser.h).
#ifndef FDB_SQL_LEXER_H_
#define FDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace fdb {
namespace sql {

enum class TokenKind {
  kIdent,    // bare identifier
  kInt,      // integer literal
  kString,   // 'quoted string'
  kComma,
  kDot,
  kStar,
  kLParen,   // (
  kRParen,   // )
  kEq,       // =
  kNe,       // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier or string body
  int64_t value = 0;  // for kInt
  size_t pos = 0;     // byte offset, for error messages
};

/// Tokenises `input`; throws FdbError on unexpected characters or an
/// unterminated string literal.
std::vector<Token> Lex(const std::string& input);

}  // namespace sql
}  // namespace fdb

#endif  // FDB_SQL_LEXER_H_
