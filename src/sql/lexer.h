// Tokeniser for the SPJ SQL dialect (see sql/parser.h).
#ifndef FDB_SQL_LEXER_H_
#define FDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace fdb {
namespace sql {

// Untrusted-input bounds. SQL arrives from clients (serve/protocol.h) and
// must fail with a parse error, never with resource exhaustion: the caps
// below bound what a single statement can make the lexer hold. Legitimate
// queries sit orders of magnitude under both (identifiers are catalog
// names; statements are written by humans or query generators).
/// Longest accepted statement, in bytes.
inline constexpr size_t kMaxSqlBytes = size_t{1} << 20;  // 1 MiB
/// Longest accepted identifier or string-literal body, in bytes.
inline constexpr size_t kMaxTokenBytes = size_t{1} << 12;  // 4 KiB

enum class TokenKind {
  kIdent,    // bare identifier
  kInt,      // integer literal
  kString,   // 'quoted string'
  kComma,
  kDot,
  kStar,
  kLParen,   // (
  kRParen,   // )
  kEq,       // =
  kNe,       // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier or string body
  int64_t value = 0;  // for kInt
  size_t pos = 0;     // byte offset, for error messages
};

/// Tokenises `input`; throws FdbError on unexpected characters or an
/// unterminated string literal.
std::vector<Token> Lex(const std::string& input);

}  // namespace sql
}  // namespace fdb

#endif  // FDB_SQL_LEXER_H_
