// A recursive-descent parser for the (grouped-aggregate) SPJ fragment FDB
// evaluates:
//
//   SELECT * | item [, item]*
//   FROM rel [, rel]*
//   [WHERE cond [AND cond]*]
//   [GROUP BY attr [, attr]*]
//
// where item is an attribute or an aggregate call COUNT(*), SUM(a),
// AVG(a), MIN(a) or MAX(a), and cond is `attr = attr` (equality join) or
// `attr theta const` with theta in {=, !=, <>, <, <=, >, >=} and const an
// integer or 'string' literal (interned into the database dictionary).
// Attributes may be written bare (attribute names are global, following
// the paper's model) or qualified as rel.attr, in which case membership is
// checked. Keywords are case-insensitive. Queries with aggregates or
// GROUP BY must not use SELECT *; plain selected attributes must be
// grouped on (checked by AnalyzeQuery) and the result carries all GROUP BY
// attributes.
#ifndef FDB_SQL_PARSER_H_
#define FDB_SQL_PARSER_H_

#include <string>

#include "common/dictionary.h"
#include "storage/catalog.h"
#include "storage/query.h"

namespace fdb {

/// Parses `sql` against `catalog`; string literals are interned in `dict`.
/// Throws FdbError with a position on syntax errors and unknown names.
/// A leading case-insensitive `EXPLAIN ANALYZE` sets Query::explain_analyze
/// and the rest of the statement is parsed as usual.
Query ParseSql(const std::string& sql, const Catalog& catalog,
               Dictionary* dict);

/// True iff `sql` starts (after whitespace) with the case-insensitive words
/// EXPLAIN ANALYZE. A plain text scan — no lexing, no catalog — so the
/// engine can decide whether to open a trace before parsing happens inside
/// it (Engine::Execute opens the root span first, then parses, keeping the
/// parse span nested under the root).
bool IsExplainAnalyze(const std::string& sql);

}  // namespace fdb

#endif  // FDB_SQL_PARSER_H_
