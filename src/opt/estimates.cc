#include "opt/estimates.h"

#include <algorithm>
#include <cmath>

namespace fdb {

DatabaseStats DatabaseStats::Compute(const std::vector<const Relation*>& rels) {
  DatabaseStats s;
  s.rel_size.reserve(rels.size());
  s.attr_distinct.assign(kMaxAttrs, 0.0);
  for (const Relation* r : rels) {
    s.rel_size.push_back(static_cast<double>(r->size()));
    for (size_t c = 0; c < r->arity(); ++c) {
      s.attr_distinct[r->schema()[c]] =
          static_cast<double>(r->DistinctCount(c));
    }
  }
  return s;
}

double EstimatePathCardinality(const DatabaseStats& stats, const FTree& tree,
                               const std::vector<int>& path_nodes) {
  // Relations involved: every relation covering a class on the path.
  RelSet rels;
  for (int n : path_nodes) {
    if (!tree.node(n).constant) rels = rels.Union(tree.node(n).cover_rels);
  }
  double join_est = 1.0;
  for (AttrId r : rels) {
    if (r < stats.rel_size.size()) join_est *= std::max(stats.rel_size[r], 1.0);
  }
  double distinct_bound = 1.0;
  for (int n : path_nodes) {
    const FTreeNode& nd = tree.node(n);
    if (nd.constant) continue;
    // Selectivity: chain the class's attributes pairwise (System-R).
    std::vector<double> d;
    for (AttrId a : nd.attrs) {
      double da = stats.attr_distinct[a];
      if (da > 0.0) d.push_back(da);
    }
    if (d.empty()) d.push_back(1.0);
    for (size_t i = 1; i < d.size(); ++i) {
      join_est /= std::max(d[i], d[i - 1]);
    }
    distinct_bound *= *std::min_element(d.begin(), d.end());
  }
  return std::max(1.0, std::min(join_est, distinct_bound));
}

double EstimateFRepSize(const DatabaseStats& stats, const FTree& tree) {
  double total = 0.0;
  // Depth-first accumulation of the path to each node.
  std::vector<int> path;
  double sum = 0.0;
  auto rec = [&](auto&& self, int n) -> void {
    path.push_back(n);
    const FTreeNode& nd = tree.node(n);
    int vis = nd.visible.Size();
    if (vis > 0 && !nd.constant) {
      sum += vis * EstimatePathCardinality(stats, tree, path);
    }
    for (int c : nd.children) self(self, c);
    path.pop_back();
  };
  for (int r : tree.roots()) rec(rec, r);
  total = sum;
  return total;
}

}  // namespace fdb
