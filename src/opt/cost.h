// Cost measures for f-plans (§4.1).
//
// Measure 1 (asymptotic): an f-plan's cost is s(f) = max_i s(T_i) over the
// f-trees it passes through; plans are ordered lexicographically by
// (s(f), s(T_final)) — the order <max x <s(T).
// Measure 2 (estimates): the sum over intermediate and final f-trees of the
// estimated f-representation size (see opt/estimates.h).
#ifndef FDB_OPT_COST_H_
#define FDB_OPT_COST_H_

#include "core/ftree.h"

namespace fdb {

/// Tolerance for comparing LP-derived costs.
inline constexpr double kCostEps = 1e-6;

inline bool CostLess(double a, double b) { return a < b - kCostEps; }
inline bool CostEq(double a, double b) {
  return a <= b + kCostEps && b <= a + kCostEps;
}

/// Lexicographic (plan cost, result cost): true when plan 1 is strictly
/// better (§4.1, f1 <max x <s(T) f2).
inline bool PlanCostBetter(double max1, double final1, double max2,
                           double final2) {
  if (CostLess(max1, max2)) return true;
  if (CostLess(max2, max1)) return false;
  return CostLess(final1, final2);
}

/// Which cost measure an optimiser should use.
enum class CostMode {
  kAsymptotic,  ///< s(T) via fractional edge covers, minimax over the plan
  kEstimates    ///< cardinality estimates, summed over the plan
};

}  // namespace fdb

#endif  // FDB_OPT_COST_H_
