#include "opt/ftree_search.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <optional>
#include <set>

#include "opt/cost.h"

namespace fdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Search state: classes are indexed 0..m-1 and manipulated as bitmasks.
struct Searcher {
  std::vector<uint64_t> covers;          // class -> covering relation mask
  std::vector<uint64_t> adj;             // class -> dependent classes mask
  EdgeCoverSolver* solver;
  uint64_t explored = 0;

  // Edges of the best arrangement: (class, parent class or -1).
  using Edges = std::vector<std::pair<int, int>>;
  struct Sub {
    double cost;
    Edges edges;
  };

  std::vector<uint64_t> Components(uint64_t set) const {
    std::vector<uint64_t> comps;
    uint64_t remaining = set;
    while (remaining) {
      uint64_t seed = remaining & (~remaining + 1);
      uint64_t comp = seed, frontier = seed;
      while (frontier) {
        int c = std::countr_zero(frontier);
        frontier &= frontier - 1;
        uint64_t nbrs = adj[static_cast<size_t>(c)] & set & ~comp;
        comp |= nbrs;
        frontier |= nbrs;
      }
      comps.push_back(comp);
      remaining &= ~comp;
    }
    return comps;
  }

  // Best arrangement of `set` as a forest under the current path; fails
  // (nullopt) when nothing beats `upper`.
  std::optional<Sub> BestForest(uint64_t set, std::vector<uint64_t>& path,
                                double upper, int parent) {
    if (set == 0) return Sub{0.0, {}};
    Sub out{0.0, {}};
    for (uint64_t comp : Components(set)) {
      auto sub = BestComponent(comp, path, upper, parent);
      if (!sub) return std::nullopt;  // the max over components can't beat
      out.cost = std::max(out.cost, sub->cost);
      out.edges.insert(out.edges.end(), sub->edges.begin(), sub->edges.end());
    }
    return out;
  }

  std::optional<Sub> BestComponent(uint64_t comp, std::vector<uint64_t>& path,
                                   double upper, int parent) {
    // Dominance reduction: a class covered by a single relation never needs
    // to sit above other classes — putting it higher only adds its cover
    // mask to more root-to-leaf paths, and the leaf path through its
    // relation's chain contains the same class set either way. So:
    //  * a component made only of single-cover classes is one relation's
    //    clique; emit it as a chain and price its single leaf path;
    //  * otherwise only multi-relation classes are tried as roots.
    uint64_t multi = 0;
    for (uint64_t rest = comp; rest;) {
      int c = std::countr_zero(rest);
      rest &= rest - 1;
      if (std::popcount(covers[static_cast<size_t>(c)]) >= 2) {
        multi |= uint64_t{1} << c;
      }
    }
    if (multi == 0) {
      path.push_back(covers[static_cast<size_t>(std::countr_zero(comp))]);
      ++explored;
      double cost = solver->Solve(path);
      path.pop_back();
      if (!CostLess(cost, upper)) return std::nullopt;
      Edges chain;
      int prev = parent;
      for (uint64_t rest = comp; rest;) {
        int c = std::countr_zero(rest);
        rest &= rest - 1;
        chain.emplace_back(c, prev);
        prev = c;
      }
      return Sub{cost, std::move(chain)};
    }

    double best = kInf;
    Edges best_edges;
    std::set<uint64_t> tried;  // root cover-signature dedup
    for (uint64_t rest = multi; rest;) {
      int r = std::countr_zero(rest);
      rest &= rest - 1;
      if (!tried.insert(covers[static_cast<size_t>(r)]).second) continue;
      path.push_back(covers[static_cast<size_t>(r)]);
      ++explored;
      double prefix = solver->Solve(path);
      double bound = std::min(upper, best);
      if (!CostLess(prefix, bound)) {  // prefix only grows: prune
        path.pop_back();
        continue;
      }
      uint64_t remainder = comp & ~(uint64_t{1} << r);
      std::optional<Sub> sub;
      if (remainder == 0) {
        sub = Sub{prefix, {}};
      } else {
        sub = BestForest(remainder, path, bound, r);
        if (sub) sub->cost = std::max(sub->cost, prefix);
      }
      path.pop_back();
      if (sub && CostLess(sub->cost, best)) {
        best = sub->cost;
        best_edges = std::move(sub->edges);
        best_edges.emplace_back(r, parent);
      }
    }
    if (best == kInf) return std::nullopt;
    return Sub{best, std::move(best_edges)};
  }
};

}  // namespace

FTreeSearchResult FindOptimalFTree(const QueryInfo& info,
                                   EdgeCoverSolver& solver) {
  const auto& classes = info.classes;
  const size_t m = classes.size();
  FDB_CHECK_MSG(m <= 64, "too many attribute classes");

  Searcher s;
  s.solver = &solver;
  s.covers.reserve(m);
  for (const AttrSet& cls : classes) {
    RelSet cover = info.RelsCovering(cls);
    FDB_CHECK_MSG(!cover.Empty(), "class with no covering relation");
    s.covers.push_back(cover.bits());
  }
  s.adj.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i != j && (s.covers[i] & s.covers[j]) != 0) {
        s.adj[i] |= uint64_t{1} << j;
      }
    }
  }

  uint64_t all = m == 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  std::vector<uint64_t> path;
  auto res = s.BestForest(all, path, kInf, -1);
  FDB_CHECK_MSG(res.has_value(), "f-tree search found no tree");

  std::vector<int> parent_of(m, -1);
  for (const auto& [c, p] : res->edges) parent_of[static_cast<size_t>(c)] = p;

  FTreeSearchResult out;
  out.tree = FTreeFromShape(info, classes, parent_of);
  FDB_CHECK_MSG(out.tree.IsNormalized(),
                "constructed f-tree is not normalised");
  out.cost = res->cost;
  out.explored = s.explored;
  return out;
}

}  // namespace fdb
