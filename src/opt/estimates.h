// Cardinality-estimate cost measure (§4.1).
//
// The number of A-singletons in an f-representation over T equals
// |Q_anc(A)(D)| where anc(A) is the set of classes from the root to A's
// node; the representation size is the sum over visible attributes. FDB
// estimates these cardinalities with textbook System-R style statistics
// (relation sizes, per-attribute distinct counts; equality selectivity
// 1/max(d1,d2)), capped by the product of per-class distinct counts.
#ifndef FDB_OPT_ESTIMATES_H_
#define FDB_OPT_ESTIMATES_H_

#include <vector>

#include "core/ftree.h"
#include "storage/relation.h"

namespace fdb {

/// Catalogue statistics for one query's relations.
struct DatabaseStats {
  std::vector<double> rel_size;       ///< by query-local relation index
  std::vector<double> attr_distinct;  ///< by AttrId (0 when absent)

  /// Scans the relations (exact statistics; FDB is in-memory).
  static DatabaseStats Compute(const std::vector<const Relation*>& rels);
};

/// Estimated size of the join of the relations covering `path_classes`
/// projected onto those classes: min( product of relation sizes scaled by
/// per-class equality selectivities, product of per-class distinct counts ).
/// `tree` supplies cover sets; `path_nodes` are the node ids root..node.
double EstimatePathCardinality(const DatabaseStats& stats, const FTree& tree,
                               const std::vector<int>& path_nodes);

/// Estimated f-representation size over `tree`:
/// sum over alive nodes of |visible(n)| * |Q_anc(n)| (§4.1).
double EstimateFRepSize(const DatabaseStats& stats, const FTree& tree);

}  // namespace fdb

#endif  // FDB_OPT_ESTIMATES_H_
