// Exhaustive f-plan search (§4.2).
//
// The space of normalised f-trees forms a graph whose edges are f-plan
// operators: swaps for every (parent, child) pair, and merge/absorb only
// for class pairs that a pending query equality will merge (a valid f-plan
// never merges classes that stay separate in the final tree). Under the
// asymptotic cost measure the cost of a plan is the *maximum* s(T) along
// its path, so the search is a bottleneck shortest path: Dijkstra ordered
// by (max-so-far, #steps). Under the estimate measure edge weights add.
// Among all goal trees (every equality satisfied) the result minimises the
// plan cost and, among those, the cost of the final tree — the
// lexicographic order <max x <s(T).
#ifndef FDB_OPT_FPLAN_SEARCH_H_
#define FDB_OPT_FPLAN_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/fplan.h"
#include "core/ftree.h"
#include "lp/edge_cover.h"
#include "opt/cost.h"
#include "opt/estimates.h"

namespace fdb {

struct FPlanSearchOptions {
  CostMode mode = CostMode::kAsymptotic;
  const DatabaseStats* stats = nullptr;  ///< required for kEstimates
  size_t max_states = 1u << 20;          ///< safety valve on the state space
};

struct FPlanSearchResult {
  FPlan plan;            ///< steps + cost_max_s + result_s filled in
  FTree final_tree;
  size_t states_explored = 0;
  bool complete = true;  ///< false when max_states truncated the search
};

/// Finds an optimal f-plan turning `input` into an f-tree where every
/// equality holds. `input` is normalised first if needed.
FPlanSearchResult FindOptimalFPlan(
    const FTree& input,
    const std::vector<std::pair<AttrId, AttrId>>& equalities,
    EdgeCoverSolver& solver, const FPlanSearchOptions& opts = {});

}  // namespace fdb

#endif  // FDB_OPT_FPLAN_SEARCH_H_
