// Greedy f-plan heuristic (§4.3).
//
// For each pending equality A = B the optimiser considers three
// restructuring scenarios: swap A's node upwards until it is an ancestor of
// B's (then absorb), the symmetric plan for B, or swap both upwards until
// they are siblings under their lowest common ancestor — at the top level
// for disjoint trees — (then merge). The cheapest scenario is kept per
// condition; conditions execute cheapest-first, re-costing after each. The
// search is polynomial in the f-tree size, 2–3 orders of magnitude faster
// than full search at the paper's scales, and near-optimal in most cases
// (Fig. 6, Fig. 9).
#ifndef FDB_OPT_GREEDY_H_
#define FDB_OPT_GREEDY_H_

#include "opt/fplan_search.h"

namespace fdb {

/// Builds a greedy f-plan; same contract as FindOptimalFPlan.
FPlanSearchResult GreedyFPlan(
    const FTree& input,
    const std::vector<std::pair<AttrId, AttrId>>& equalities,
    EdgeCoverSolver& solver, const FPlanSearchOptions& opts = {});

}  // namespace fdb

#endif  // FDB_OPT_GREEDY_H_
