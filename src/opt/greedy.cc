#include "opt/greedy.h"

#include <limits>
#include <optional>

namespace fdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Candidate {
  std::vector<PlanStep> steps;
  FTree result;
  double max_cost = kInf;    // cost of the dearest tree along the steps
  double final_cost = kInf;  // cost of the result tree
};

class GreedyPlanner {
 public:
  GreedyPlanner(EdgeCoverSolver& solver, const FPlanSearchOptions& opts)
      : solver_(solver), opts_(opts) {}

  double TreeCost(const FTree& t) {
    return opts_.mode == CostMode::kAsymptotic
               ? t.Cost(solver_)
               : EstimateFRepSize(*opts_.stats, t);
  }

  // Applies `step` to the candidate, updating its cost bookkeeping.
  void Apply(Candidate* c, const PlanStep& step) {
    c->steps.push_back(step);
    c->result = SimulateStepOnTree(c->result, step);
    c->final_cost = TreeCost(c->result);
    c->max_cost = std::max(c->max_cost, c->final_cost);
  }

  // Scenario: swap `up_attr`'s node upwards until it is an ancestor of
  // `low_attr`'s node, then absorb. Fails when the nodes live in different
  // trees of the forest.
  std::optional<Candidate> TryAbsorb(const FTree& t, AttrId up_attr,
                                     AttrId low_attr) {
    Candidate c{{}, t, TreeCost(t), TreeCost(t)};
    for (;;) {
      int nu = c.result.FindAttr(up_attr);
      int nl = c.result.FindAttr(low_attr);
      if (c.result.IsAncestor(nu, nl)) break;
      int p = c.result.node(nu).parent;
      if (p == -1) return std::nullopt;  // reached a root: disjoint trees
      Apply(&c, PlanStep::MakeSwap(c.result.node(p).attrs.Min(),
                                   c.result.node(nu).attrs.Min()));
    }
    Apply(&c, PlanStep::MakeAbsorb(up_attr, low_attr));
    return c;
  }

  // Scenario: swap both nodes upwards until they are siblings (children of
  // their LCA, or both roots for disjoint trees), then merge. Fails when
  // one node is an ancestor of the other (that is absorb territory).
  std::optional<Candidate> TrySibling(const FTree& t, AttrId a_attr,
                                      AttrId b_attr) {
    Candidate c{{}, t, TreeCost(t), TreeCost(t)};
    for (;;) {
      int na = c.result.FindAttr(a_attr);
      int nb = c.result.FindAttr(b_attr);
      if (c.result.IsAncestor(na, nb) || c.result.IsAncestor(nb, na)) {
        return std::nullopt;
      }
      int lca = c.result.Lca(na, nb);
      int pa = c.result.node(na).parent;
      int pb = c.result.node(nb).parent;
      if (pa == lca && pb == lca) break;  // siblings (or both roots)
      int lift = pa != lca ? na : nb;
      int p = c.result.node(lift).parent;
      Apply(&c, PlanStep::MakeSwap(c.result.node(p).attrs.Min(),
                                   c.result.node(lift).attrs.Min()));
    }
    Apply(&c, PlanStep::MakeMerge(a_attr, b_attr));
    return c;
  }

  // Best of the three restructuring scenarios for one condition.
  std::optional<Candidate> BestForCondition(const FTree& t, AttrId a,
                                            AttrId b) {
    std::optional<Candidate> best;
    for (auto& cand :
         {TryAbsorb(t, a, b), TryAbsorb(t, b, a), TrySibling(t, a, b)}) {
      if (!cand) continue;
      if (!best || PlanCostBetter(cand->max_cost, cand->final_cost,
                                  best->max_cost, best->final_cost)) {
        best = cand;
      }
    }
    return best;
  }

 private:
  EdgeCoverSolver& solver_;
  const FPlanSearchOptions& opts_;
};

}  // namespace

FPlanSearchResult GreedyFPlan(
    const FTree& input,
    const std::vector<std::pair<AttrId, AttrId>>& equalities,
    EdgeCoverSolver& solver, const FPlanSearchOptions& opts) {
  FDB_CHECK_MSG(opts.mode == CostMode::kAsymptotic || opts.stats != nullptr,
                "estimate-based greedy needs DatabaseStats");
  GreedyPlanner planner(solver, opts);

  FPlanSearchResult res;
  FTree t = input;
  t.NormalizeTree();
  double max_cost = planner.TreeCost(t);

  std::vector<std::pair<AttrId, AttrId>> pending;
  for (const auto& eq : equalities) {
    if (t.FindAttr(eq.first) != t.FindAttr(eq.second)) pending.push_back(eq);
  }

  while (!pending.empty()) {
    // Cheapest condition first.
    size_t best_i = pending.size();
    std::optional<Candidate> best;
    for (size_t i = 0; i < pending.size(); ++i) {
      auto cand =
          planner.BestForCondition(t, pending[i].first, pending[i].second);
      FDB_CHECK_MSG(cand.has_value(),
                    "no restructuring scenario applies to a condition");
      if (best_i == pending.size() ||
          PlanCostBetter(cand->max_cost, cand->final_cost, best->max_cost,
                         best->final_cost)) {
        best_i = i;
        best = std::move(cand);
      }
    }
    res.plan.steps.insert(res.plan.steps.end(), best->steps.begin(),
                          best->steps.end());
    t = std::move(best->result);
    max_cost = std::max(max_cost, best->max_cost);
    ++res.states_explored;

    std::vector<std::pair<AttrId, AttrId>> still;
    for (const auto& eq : pending) {
      if (t.FindAttr(eq.first) != t.FindAttr(eq.second)) still.push_back(eq);
    }
    pending = std::move(still);
  }

  res.plan.cost_max_s = max_cost;
  res.plan.result_s = planner.TreeCost(t);
  res.final_tree = std::move(t);
  return res;
}

}  // namespace fdb
