// Exhaustive search for an optimal f-tree of a query over flat input
// (Experiment 1 / Fig. 5).
//
// Every normalised f-tree of the query arises from a recursive choice of
// roots: pick a root class for each dependency-connected component of the
// classes, remove it, recurse on the components of the remainder (each
// sub-component shares a relation with the chosen root, so the construction
// yields exactly the normalised trees; because the classes of one relation
// form a dependency clique, the path constraint holds automatically).
//
// Two reductions keep the exponential space tractable at the paper's scale
// (R = 8, A = 40, K = 9):
//   * symmetry — classes with identical covering-relation sets are
//     interchangeable, only one is tried as root;
//   * branch-and-bound — the fractional cover of a path prefix only grows
//     when extended, so any prefix already at or above the incumbent bound
//     is cut.
#ifndef FDB_OPT_FTREE_SEARCH_H_
#define FDB_OPT_FTREE_SEARCH_H_

#include <cstdint>

#include "core/ftree.h"
#include "lp/edge_cover.h"
#include "storage/query.h"

namespace fdb {

/// Search outcome.
struct FTreeSearchResult {
  FTree tree;            ///< an optimal f-tree of the query
  double cost = 0.0;     ///< s(tree) = s(Q) over normalised f-trees
  uint64_t explored = 0; ///< number of root choices examined
};

/// Finds a normalised f-tree of minimal cost s(T) for the query described
/// by `info`. `solver` memoises edge-cover LPs across calls.
FTreeSearchResult FindOptimalFTree(const QueryInfo& info,
                                   EdgeCoverSolver& solver);

}  // namespace fdb

#endif  // FDB_OPT_FTREE_SEARCH_H_
