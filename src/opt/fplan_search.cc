#include "opt/fplan_search.h"

#include <limits>
#include <queue>
#include <string>
#include <unordered_map>

namespace fdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct State {
  FTree tree;
  double dist = kInf;   // max-s (asymptotic) or summed estimate
  int steps = 0;
  int parent = -1;      // predecessor state
  PlanStep step{};      // operator that produced this state
  bool closed = false;
  bool goal = false;
};

bool AllSatisfied(const FTree& t,
                  const std::vector<std::pair<AttrId, AttrId>>& eqs) {
  for (const auto& [a, b] : eqs) {
    if (t.FindAttr(a) != t.FindAttr(b)) return false;
  }
  return true;
}

}  // namespace

FPlanSearchResult FindOptimalFPlan(
    const FTree& input,
    const std::vector<std::pair<AttrId, AttrId>>& equalities,
    EdgeCoverSolver& solver, const FPlanSearchOptions& opts) {
  FDB_CHECK_MSG(opts.mode == CostMode::kAsymptotic || opts.stats != nullptr,
                "estimate-based search needs DatabaseStats");

  auto tree_cost = [&](const FTree& t) {
    return opts.mode == CostMode::kAsymptotic
               ? t.Cost(solver)
               : EstimateFRepSize(*opts.stats, t);
  };

  FTree start = input;
  start.NormalizeTree();

  std::vector<State> states;
  std::unordered_map<std::string, int> index;
  auto intern = [&](FTree&& t) {
    std::string key = t.CanonicalKey();
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    int id = static_cast<int>(states.size());
    states.emplace_back();
    states.back().tree = std::move(t);
    states.back().goal = AllSatisfied(states.back().tree, equalities);
    index.emplace(std::move(key), id);
    return id;
  };

  using PqItem = std::tuple<double, int, int>;  // (dist, steps, state)
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;

  int start_id = intern(std::move(start));
  states[start_id].dist =
      opts.mode == CostMode::kAsymptotic ? tree_cost(states[start_id].tree)
                                         : 0.0;
  states[start_id].steps = 0;
  pq.push({states[start_id].dist, 0, start_id});

  FPlanSearchResult res;
  int best_goal = -1;
  double best_goal_dist = kInf;
  double best_goal_final = kInf;

  while (!pq.empty()) {
    auto [dist, steps, id] = pq.top();
    pq.pop();
    if (states[id].closed) continue;
    if (dist > states[id].dist + kCostEps ||
        (CostEq(dist, states[id].dist) && steps > states[id].steps)) {
      continue;  // stale entry
    }
    // All remaining states cost at least `dist`; once that exceeds the best
    // goal, no better goal can appear.
    if (best_goal >= 0 && CostLess(best_goal_dist, dist)) break;
    states[id].closed = true;
    ++res.states_explored;

    if (states[id].goal) {
      double final_cost = tree_cost(states[id].tree);
      if (best_goal < 0 || CostLess(dist, best_goal_dist) ||
          (CostEq(dist, best_goal_dist) &&
           CostLess(final_cost, best_goal_final))) {
        best_goal = id;
        best_goal_dist = dist;
        best_goal_final = final_cost;
      }
      continue;  // goal states need no outgoing edges
    }
    if (states.size() > opts.max_states) {
      res.complete = false;
      break;
    }

    // Candidate operators from this tree. Work on a copy: intern() below
    // grows `states` and would invalidate a reference.
    std::vector<PlanStep> moves;
    const FTree t = states[id].tree;
    for (int n : t.AliveNodes()) {
      int p = t.node(n).parent;
      if (p != -1) {
        moves.push_back(PlanStep::MakeSwap(t.node(p).attrs.Min(),
                                           t.node(n).attrs.Min()));
      }
    }
    for (const auto& [a, b] : equalities) {
      int na = t.FindAttr(a), nb = t.FindAttr(b);
      FDB_CHECK(na >= 0 && nb >= 0);
      if (na == nb) continue;
      if (t.node(na).parent == t.node(nb).parent) {
        moves.push_back(PlanStep::MakeMerge(a, b));
      } else if (t.IsAncestor(na, nb) || t.IsAncestor(nb, na)) {
        moves.push_back(PlanStep::MakeAbsorb(a, b));
      }
    }

    for (const PlanStep& mv : moves) {
      FTree next = SimulateStepOnTree(t, mv);
      double c = tree_cost(next);
      double ndist = opts.mode == CostMode::kAsymptotic
                         ? std::max(states[id].dist, c)
                         : states[id].dist + c;
      int nid = intern(std::move(next));
      if (states[nid].closed) continue;
      bool better = CostLess(ndist, states[nid].dist) ||
                    (CostEq(ndist, states[nid].dist) &&
                     states[id].steps + 1 < states[nid].steps);
      if (better) {
        states[nid].dist = ndist;
        states[nid].steps = states[id].steps + 1;
        states[nid].parent = id;
        states[nid].step = mv;
        pq.push({ndist, states[nid].steps, nid});
      }
    }
  }

  FDB_CHECK_MSG(best_goal >= 0, "f-plan search found no plan");

  // Reconstruct the step sequence.
  std::vector<PlanStep> rev;
  for (int id = best_goal; states[id].parent != -1; id = states[id].parent) {
    rev.push_back(states[id].step);
  }
  res.plan.steps.assign(rev.rbegin(), rev.rend());
  res.plan.cost_max_s = best_goal_dist;
  res.plan.result_s = best_goal_final;
  res.final_tree = states[best_goal].tree;
  return res;
}

}  // namespace fdb
