#include "opt/cost.h"

// Header-only; this TU anchors the library target.
