// fdb::Database — the user-facing container: catalog + dictionary +
// relation storage. This is the entry point of the public API; see
// examples/quickstart.cc for typical use.
#ifndef FDB_API_DATABASE_H_
#define FDB_API_DATABASE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/dictionary.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/relation.h"

namespace fdb {

/// A cell value supplied by the user: integer or string.
using Cell = std::variant<int64_t, std::string>;

/// An in-memory factorised-capable database.
class Database {
 public:
  /// Declares a relation. Column specs are attribute names, with an
  /// optional ":str" suffix for dictionary-encoded string columns, e.g.
  ///   db.CreateRelation("Orders", {"oid", "item:str"});
  /// Attribute names are global: reusing a name in a second relation is an
  /// error (the paper's query model; alias attributes for self-joins).
  RelId CreateRelation(const std::string& name,
                       const std::vector<std::string>& column_specs);

  /// Appends one row; cells must match the declared column types by
  /// convertibility (strings are interned, integers stored directly).
  void Insert(RelId rel, const std::vector<Cell>& row);

  /// Loads a relation from a CSV file (header defines the columns).
  RelId LoadCsv(const std::string& path, const std::string& rel_name,
                char sep = ',');

  const Catalog& catalog() const { return catalog_; }
  const Dictionary& dict() const { return dict_; }
  Dictionary& dict() { return dict_; }

  const Relation& relation(RelId id) const { return relations_.at(id); }
  Relation& relation(RelId id) { return relations_.at(id); }
  size_t num_relations() const { return relations_.size(); }

  /// Relation pointers in the order of `rels` (query-local order).
  std::vector<const Relation*> RelationPtrs(
      const std::vector<RelId>& rels) const;

  /// Resolves an attribute name; throws on unknown names.
  AttrId Attr(const std::string& name) const;

  /// Monotonically increasing version, bumped by every schema or data
  /// change made through the Database API (CreateRelation, Insert,
  /// LoadCsv). The serve-path plan cache keys cached f-plans on this
  /// version, so stale plans are invalidated when the database changes
  /// between serving sessions. Mutating a relation directly via the
  /// non-const relation() accessor bypasses the counter — long-lived
  /// servers must treat the database as frozen (see serve/query_server.h).
  uint64_t version() const { return version_; }

 private:
  Catalog catalog_;
  Dictionary dict_;
  std::vector<Relation> relations_;
  uint64_t version_ = 0;
};

}  // namespace fdb

#endif  // FDB_API_DATABASE_H_
