#include "api/database.h"

#include "common/str.h"

namespace fdb {

RelId Database::CreateRelation(const std::string& name,
                               const std::vector<std::string>& column_specs) {
  std::vector<AttrId> attrs;
  for (const std::string& spec : column_specs) {
    bool is_string = false;
    std::string attr_name = spec;
    if (spec.ends_with(":str")) {
      is_string = true;
      attr_name = spec.substr(0, spec.size() - 4);
    }
    int existing = catalog_.FindAttribute(attr_name);
    if (existing >= 0) {
      attrs.push_back(static_cast<AttrId>(existing));
    } else {
      attrs.push_back(catalog_.AddAttribute(attr_name, is_string));
    }
  }
  RelId id = catalog_.AddRelation(name, attrs);
  relations_.emplace_back(attrs);
  ++version_;
  return id;
}

void Database::Insert(RelId rel, const std::vector<Cell>& row) {
  Relation& r = relations_.at(rel);
  FDB_CHECK_MSG(row.size() == r.arity(), "row arity mismatch");
  std::vector<Value> tuple(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    const AttrInfo& info = catalog_.attr(r.schema()[c]);
    if (std::holds_alternative<int64_t>(row[c])) {
      FDB_CHECK_MSG(!info.is_string,
                    "integer supplied for string column " + info.name);
      tuple[c] = std::get<int64_t>(row[c]);
    } else {
      FDB_CHECK_MSG(info.is_string,
                    "string supplied for integer column " + info.name);
      tuple[c] = dict_.Intern(std::get<std::string>(row[c]));
    }
  }
  r.AddTuple(tuple);
  ++version_;
}

RelId Database::LoadCsv(const std::string& path, const std::string& rel_name,
                        char sep) {
  relations_.push_back(ReadCsvFile(path, rel_name, sep, &catalog_, &dict_));
  ++version_;
  return static_cast<RelId>(relations_.size()) - 1;
}

std::vector<const Relation*> Database::RelationPtrs(
    const std::vector<RelId>& rels) const {
  std::vector<const Relation*> out;
  out.reserve(rels.size());
  for (RelId r : rels) out.push_back(&relations_.at(r));
  return out;
}

AttrId Database::Attr(const std::string& name) const {
  int id = catalog_.FindAttribute(name);
  FDB_CHECK_MSG(id >= 0, "unknown attribute: " + name);
  return static_cast<AttrId>(id);
}

}  // namespace fdb
