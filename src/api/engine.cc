#include "api/engine.h"

#include "common/timer.h"
#include "sql/parser.h"

namespace fdb {

FTreeSearchResult Engine::OptimizeFlat(const Query& q) {
  QueryInfo info = AnalyzeQuery(db_->catalog(), q);
  return FindOptimalFTree(info, solver_);
}

FdbResult Engine::EvaluateFlat(const Query& q,
                               const FTreeSearchResult* pretree,
                               QueryTrace* trace) {
  QueryInfo info = AnalyzeQuery(db_->catalog(), q);

  Timer opt_timer;
  FTreeSearchResult searched;
  if (pretree == nullptr) {
    QueryTrace::Scope span(trace, "f-tree-search");
    searched = FindOptimalFTree(info, solver_);
  }
  const FTreeSearchResult& t = pretree != nullptr ? *pretree : searched;
  FdbResult res{FRep{FTree{}}, FPlan{}, 0.0, 0.0, {}, {}};
  res.optimize_seconds = opt_timer.Seconds();

  Timer eval_timer;
  std::vector<const Relation*> rels = db_->RelationPtrs(q.rels);
  FRep rep = GroundQuery(t.tree, rels, q.const_preds, trace);
  if (info.projection != info.all_attrs) {
    QueryTrace::Scope span(trace, "project");
    rep = Project(rep, info.projection);
    span.SetBytes(rep.MemoryBytes());
    res.plan.steps.push_back(PlanStep::MakeProject(info.projection));
  }
  res.evaluate_seconds = eval_timer.Seconds();
  res.plan.result_s = rep.tree().Cost(solver_);
  res.rep = std::move(rep);
  return res;
}

FPlanSearchResult Engine::OptimizeOnTree(
    const FTree& tree, const std::vector<std::pair<AttrId, AttrId>>& eqs) {
  FPlanSearchOptions so = opts_.search;
  so.mode = opts_.cost_mode;
  return opts_.greedy_optimizer ? GreedyFPlan(tree, eqs, solver_, so)
                                : FindOptimalFPlan(tree, eqs, solver_, so);
}

FdbResult Engine::EvaluateOnFRep(
    const FRep& in, const std::vector<std::pair<AttrId, AttrId>>& eqs,
    const std::vector<ConstPred>& preds, AttrSet projection) {
  FdbResult res{FRep{FTree{}}, FPlan{}, 0.0, 0.0, {}, {}};

  Timer opt_timer;
  // Constant selections are cheapest and run first (§4); they do not change
  // class structure, so the plan can be optimised on the input tree.
  FPlanSearchResult search = OptimizeOnTree(in.tree(), eqs);
  res.optimize_seconds = opt_timer.Seconds();

  FPlan full;
  for (const ConstPred& p : preds) {
    full.steps.push_back(PlanStep::MakeSelectConst(p.attr, p.op, p.value));
  }
  full.steps.insert(full.steps.end(), search.plan.steps.begin(),
                    search.plan.steps.end());
  if (!projection.Empty()) {
    full.steps.push_back(PlanStep::MakeProject(projection));
  }
  full.cost_max_s = search.plan.cost_max_s;
  full.result_s = search.plan.result_s;

  Timer eval_timer;
  res.rep = ExecutePlan(in, full);
  res.evaluate_seconds = eval_timer.Seconds();
  res.plan = std::move(full);
  return res;
}

FdbResult Engine::JoinFactorised(
    const FRep& lhs, const FRep& rhs,
    const std::vector<std::pair<AttrId, AttrId>>& eqs) {
  FRep shifted = rhs;
  shifted.tree().ShiftRelIndices(lhs.tree().MaxRelIndex() + 1);
  FRep prod = Product(lhs, shifted);
  return EvaluateOnFRep(prod, eqs);
}

AggregateResult Engine::ExecuteAggregate(const Query& q,
                                         const FTreeSearchResult* pretree,
                                         QueryTrace* trace) {
  AnalyzeQuery(db_->catalog(), q);  // validates group_by/aggregates early

  // Aggregates range over the distinct tuples of the join result taken
  // over all attributes, so the SPJ part runs without projection.
  FdbResult base = EvaluateFlat(q.SpjCore(), pretree, trace);

  AggregateResult res;
  res.plan = std::move(base.plan);
  res.optimize_seconds = base.optimize_seconds;

  Timer agg_timer;
  {
    QueryTrace::Scope span(trace, "restructure-aggregate");
    res.grouped = GroupByAggregate(base.rep, q.group_by, q.aggregates,
                                   &solver_, &res.plan);
    span.SetBytes(res.grouped.rep.MemoryBytes());
  }
  {
    QueryTrace::Scope span(trace, "materialize-groups");
    res.table = res.grouped.Materialize(opts_.enumerate);
    res.table.SortByKey();
    span.SetRows(res.table.num_rows);
  }
  res.evaluate_seconds = base.evaluate_seconds + agg_timer.Seconds();
  return res;
}

AggregateResult Engine::ExecuteAggregate(const std::string& sql_text) {
  return ExecuteAggregate(Parse(sql_text));
}

Query Engine::Parse(const std::string& sql_text) {
  return ParseSql(sql_text, db_->catalog(), &db_->dict());
}

FdbResult Engine::ExecuteTraced(const Query& q, QueryTrace* trace,
                                const FTreeSearchResult* pretree,
                                const EnumKernel* kernel) {
  if (q.IsAggregate()) {
    AggregateResult ar = ExecuteAggregate(q, pretree, trace);
    FdbResult res{std::move(ar.grouped.rep), std::move(ar.plan),
                  ar.optimize_seconds, ar.evaluate_seconds, {}, {}};
    res.aggregate = std::move(ar.table);
    return res;
  }
  FdbResult res = EvaluateFlat(q, pretree, trace);
  if (trace != nullptr) {
    // The SPJ result of plain Execute stays factorised (materialisation is
    // the caller's call); EXPLAIN ANALYZE times the full pipeline, so
    // enumerate the visible relation for the morsel-plan/enumerate spans.
    MaterializeResult(res, kernel, trace);
  }
  return res;
}

FdbResult Engine::Execute(const std::string& sql_text) {
  if (IsExplainAnalyze(sql_text)) {
    QueryTrace trace;
    FdbResult res{FRep{FTree{}}, FPlan{}, 0.0, 0.0, {}, {}};
    {
      QueryTrace::Scope root(&trace, "query");
      Query q;
      {
        QueryTrace::Scope span(&trace, "parse");
        q = Parse(sql_text);
      }
      res = ExecuteTraced(q, &trace);
    }
    res.explain = trace.Render();
    return res;
  }
  Query q = Parse(sql_text);
  if (q.IsAggregate()) {
    AggregateResult ar = ExecuteAggregate(q);
    FdbResult res{std::move(ar.grouped.rep), std::move(ar.plan),
                  ar.optimize_seconds, ar.evaluate_seconds, {}, {}};
    res.aggregate = std::move(ar.table);
    return res;
  }
  return EvaluateFlat(q);
}

RdbResult Engine::ExecuteRdb(const Query& q, const RdbOptions& opts) const {
  return RdbEvaluate(db_->catalog(), db_->RelationPtrs(q.rels), q, opts);
}

VdbResult Engine::ExecuteVdb(const Query& q, const VdbOptions& opts) const {
  return VdbEvaluate(db_->catalog(), db_->RelationPtrs(q.rels), q, opts);
}

}  // namespace fdb
