// fdb::Engine — the FDB query engine plus the two relational baselines.
//
// Two evaluation paths, matching the paper:
//  * flat input (Experiments 1/3): find an optimal f-tree for the query by
//    exhaustive search, then *ground* the factorised result directly from
//    the sorted relations — no flat intermediate results;
//  * factorised input (Experiments 2/4): optimise an f-plan (exhaustive
//    bottleneck search or greedy heuristic) and execute its operator
//    sequence on the input f-representation.
#ifndef FDB_API_ENGINE_H_
#define FDB_API_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/trace.h"
#include "core/aggregate.h"
#include "core/fplan.h"
#include "core/frep.h"
#include "core/ground.h"
#include "core/parallel_enumerate.h"
#include "opt/fplan_search.h"
#include "opt/ftree_search.h"
#include "opt/greedy.h"
#include "rdb/rdb.h"
#include "vdb/vdb.h"

namespace fdb {

/// Engine-wide knobs.
struct EngineOptions {
  bool greedy_optimizer = false;  ///< greedy instead of exhaustive f-plans
  CostMode cost_mode = CostMode::kAsymptotic;
  FPlanSearchOptions search;      ///< advanced search options
  /// Parallel enumeration knobs (core/parallel_enumerate.h): drive the
  /// materialisation paths — MaterializeResult and the grouped-table
  /// flattening of ExecuteAggregate. Defaults enumerate large results on
  /// the shared thread pool and keep small ones on the caller; output is
  /// identical to sequential enumeration for every thread count.
  EnumerateOptions enumerate;
};

/// Outcome of an FDB evaluation.
struct FdbResult {
  FRep rep;         ///< factorised query result
  FPlan plan;       ///< f-plan executed (empty for the grounding path)
  double optimize_seconds = 0.0;
  double evaluate_seconds = 0.0;

  /// Filled only when Execute() dispatched an aggregate query: the flat
  /// grouped table; `rep` then holds the factorised distinct groups.
  std::optional<GroupedTable> aggregate;

  /// Filled only for EXPLAIN ANALYZE statements: the rendered span tree of
  /// the execution (common/trace.h). Consumers should print this instead
  /// of the result — serve/protocol.h's RenderResult does.
  std::optional<std::string> explain;

  size_t NumSingletons() const { return rep.NumSingletons(); }
  double FlatTuples() const { return rep.CountTuples(); }
};

/// Outcome of a grouped-aggregate evaluation (Engine::ExecuteAggregate).
struct AggregateResult {
  GroupedRep grouped;  ///< factorised groups + collapsed per-entry payloads
  GroupedTable table;  ///< flat materialisation (one row per group)
  FPlan plan;          ///< SPJ plan followed by the grouping swaps
  double optimize_seconds = 0.0;
  double evaluate_seconds = 0.0;
};

/// The query engine; borrows the database (which must outlive it).
///
/// Concurrency contract (the serve path, serve/query_server.h, depends on
/// this): once the database is fully loaded, read-only evaluation —
/// Parse, Execute, EvaluateFlat, ExecuteAggregate, OptimizeFlat and the
/// baselines — may run concurrently from any number of threads on one
/// shared Engine. The only two pieces of shared mutable state are
/// internally synchronised:
///  * the database dictionary: Engine::Parse interns SQL string literals
///    into it, which is an append-only, lock-protected operation
///    (common/dictionary.h) — existing codes never change, so concurrently
///    running evaluations are unaffected;
///  * the shared EdgeCoverSolver memo (lp/edge_cover.h).
/// Everything else reads `const` catalog/relation state; grounding copies
/// and sorts relations internally. What is NOT allowed concurrently with
/// queries: schema or data changes (CreateRelation / Insert / LoadCsv) and
/// direct mutation through Database::relation() — a serving database is
/// frozen.
class Engine {
 public:
  explicit Engine(Database* db, EngineOptions opts = {})
      : db_(db), opts_(opts) {}

  /// Flat evaluation: optimal f-tree search + grounding (+ deferred
  /// projection). When `pretree` is given (a result of OptimizeFlat for
  /// the same query, e.g. from the serve-path plan cache), the search is
  /// skipped and the cached tree is executed directly. A non-null `trace`
  /// records "f-tree-search" (only when the search actually runs),
  /// "ground" and "project" spans.
  FdbResult EvaluateFlat(const Query& q,
                         const FTreeSearchResult* pretree = nullptr,
                         QueryTrace* trace = nullptr);

  /// Optimal f-tree for a query without evaluating it (Experiment 1).
  FTreeSearchResult OptimizeFlat(const Query& q);

  /// Factorised evaluation: f-plan optimisation + operator execution on an
  /// existing f-representation. `eqs` are the new equality selections;
  /// constant predicates run first, projection last (if `projection` is
  /// non-empty).
  FdbResult EvaluateOnFRep(const FRep& in,
                           const std::vector<std::pair<AttrId, AttrId>>& eqs,
                           const std::vector<ConstPred>& preds = {},
                           AttrSet projection = {});

  /// Plan-only variant of EvaluateOnFRep (Experiment 2).
  FPlanSearchResult OptimizeOnTree(
      const FTree& tree,
      const std::vector<std::pair<AttrId, AttrId>>& eqs);

  /// Joins two independently built factorised results (Example 2:
  /// Q1 |x| Q2 on f-representations). Relation indices of `rhs` are shifted
  /// past `lhs`'s, the forests are combined with the product operator, and
  /// the join equalities run through the f-plan optimiser. The inputs must
  /// have disjoint attribute sets.
  FdbResult JoinFactorised(const FRep& lhs, const FRep& rhs,
                           const std::vector<std::pair<AttrId, AttrId>>& eqs);

  /// Grouped aggregation inside the factorisation: evaluates the SPJ part
  /// of `q` factorised over *all* attributes (aggregates range over the
  /// distinct tuples of the join result), then restructures and collapses
  /// the result (core/aggregate.h). `q.group_by` / `q.aggregates` drive
  /// the grouping; a query without either computes the single global group
  /// of its aggregates. The empty join result yields zero rows — also for
  /// the global group, diverging from SQL's single COUNT = 0 row (FDB has
  /// no NULLs for the SUM/MIN/MAX columns of such a row; the HashGroupBy
  /// baseline makes the same choice).
  /// `pretree` (optional) is a cached optimal f-tree for the query's SPJ
  /// core; the f-tree search ignores projection, grouping and aggregates,
  /// so OptimizeFlat(q) yields a tree valid for both the plain and the
  /// aggregate path of the same query.
  /// A non-null `trace` records the EvaluateFlat spans of the SPJ core
  /// plus "restructure-aggregate" and "materialize-groups" spans.
  AggregateResult ExecuteAggregate(const Query& q,
                                   const FTreeSearchResult* pretree = nullptr,
                                   QueryTrace* trace = nullptr);
  AggregateResult ExecuteAggregate(const std::string& sql_text);

  /// Parses an SPJ / grouped-aggregate SQL string against the database.
  /// String literals are interned into the dictionary — a synchronised,
  /// append-only operation, so Parse is safe to call concurrently with
  /// other Parse/Execute calls; the catalog and relation data are never
  /// touched. A literal absent from the data gets a fresh code that
  /// matches no stored value (the predicate simply selects nothing).
  Query Parse(const std::string& sql_text);

  /// Parses and evaluates an SQL string. SPJ queries run the flat path;
  /// aggregate queries dispatch to ExecuteAggregate, returning the grouped
  /// table in FdbResult::aggregate with the factorised groups as `rep`.
  /// An `EXPLAIN ANALYZE <query>` statement executes the query under a
  /// QueryTrace (including result materialisation, which plain Execute
  /// leaves to the caller) and returns the rendered span tree in
  /// FdbResult::explain alongside the usual result fields.
  FdbResult Execute(const std::string& sql_text);

  /// Evaluates a parsed query with every phase recorded into `trace`
  /// (null = no tracing): the aggregate path runs ExecuteAggregate, the
  /// SPJ path runs EvaluateFlat *and* materialises the visible relation —
  /// optionally through `kernel` (see MaterializeResult) — so the trace
  /// covers morsel planning and enumeration. This is the execution core of
  /// EXPLAIN ANALYZE, both here and in the serve path, which wraps it in
  /// its own root/parse/cache-lookup spans (serve/query_server.h).
  FdbResult ExecuteTraced(const Query& q, QueryTrace* trace,
                          const FTreeSearchResult* pretree = nullptr,
                          const EnumKernel* kernel = nullptr);

  /// Materialises the visible relation of an evaluation result — the flat
  /// output tap of EvaluateFlat/Execute. Large representations enumerate
  /// in parallel per EngineOptions::enumerate (deterministic: identical
  /// rows and order for every thread count); small ones stay on the
  /// caller thread.
  Relation MaterializeResult(const FdbResult& res) const {
    return MaterializeVisible(res.rep, opts_.enumerate);
  }

  /// Kernel-accelerated materialisation: identical output to the overload
  /// above, but rows are emitted by a compiled enumeration kernel
  /// (core/kernel.h) when `kernel` matches the result's f-tree — e.g. the
  /// kernel attached to the serve-path plan cache entry for this query
  /// (serve/plan_cache.h). Null or mismatching kernels fall back to the
  /// interpreted path, so callers can pass whatever the cache holds.
  Relation MaterializeResult(const FdbResult& res, const EnumKernel* kernel,
                             QueryTrace* trace = nullptr) const {
    return MaterializeVisible(res.rep, opts_.enumerate, kernel, trace);
  }

  /// Baselines.
  RdbResult ExecuteRdb(const Query& q, const RdbOptions& opts = {}) const;
  VdbResult ExecuteVdb(const Query& q, const VdbOptions& opts = {}) const;

  /// Shared LP cache (exposed for benchmarks that report cache statistics).
  EdgeCoverSolver& solver() { return solver_; }

  const Database& db() const { return *db_; }

 private:
  Database* db_;
  EngineOptions opts_;
  EdgeCoverSolver solver_;
};

}  // namespace fdb

#endif  // FDB_API_ENGINE_H_
