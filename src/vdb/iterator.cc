#include "vdb/iterator.h"

#include <algorithm>

namespace fdb {
namespace vdb {

bool ScanIterator::Next(Tuple* out) {
  if (row_ >= rel_->size()) return false;
  auto row = rel_->Row(row_);
  out->assign(row.begin(), row.end());
  ++row_;
  return true;
}

bool FilterIterator::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (pred_(*out)) return true;
  }
  return false;
}

HashJoinIterator::HashJoinIterator(
    IteratorPtr left, IteratorPtr right,
    std::vector<std::pair<size_t, size_t>> key_cols)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_cols_(std::move(key_cols)) {
  schema_ = left_->schema();
  schema_.insert(schema_.end(), right_->schema().begin(),
                 right_->schema().end());
}

void HashJoinIterator::Open() {
  left_->Open();
  right_->Open();
  build_.clear();
  Tuple t;
  std::vector<Value> key(key_cols_.size());
  while (right_->Next(&t)) {
    for (size_t k = 0; k < key_cols_.size(); ++k) {
      key[k] = t[key_cols_[k].second];
    }
    build_.emplace(key, t);
  }
  have_probe_ = false;
}

bool HashJoinIterator::Next(Tuple* out) {
  std::vector<Value> key(key_cols_.size());
  for (;;) {
    if (!have_probe_) {
      if (!left_->Next(&probe_)) return false;
      for (size_t k = 0; k < key_cols_.size(); ++k) {
        key[k] = probe_[key_cols_[k].first];
      }
      auto range = build_.equal_range(key);
      match_ = range.first;
      match_end_ = range.second;
      have_probe_ = true;
    }
    if (match_ == match_end_) {
      have_probe_ = false;
      continue;
    }
    *out = probe_;
    out->insert(out->end(), match_->second.begin(), match_->second.end());
    ++match_;
    return true;
  }
}

void HashJoinIterator::Close() {
  left_->Close();
  right_->Close();
  build_.clear();
}

ProjectIterator::ProjectIterator(IteratorPtr child, std::vector<AttrId> keep)
    : child_(std::move(child)), schema_(std::move(keep)) {
  for (AttrId a : schema_) {
    const auto& cs = child_->schema();
    auto it = std::find(cs.begin(), cs.end(), a);
    FDB_CHECK_MSG(it != cs.end(), "projection attribute missing from input");
    cols_.push_back(static_cast<size_t>(it - cs.begin()));
  }
}

bool ProjectIterator::Next(Tuple* out) {
  if (!child_->Next(&buf_)) return false;
  out->resize(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) (*out)[i] = buf_[cols_[i]];
  return true;
}

}  // namespace vdb
}  // namespace fdb
