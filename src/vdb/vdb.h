// VDB query evaluation: builds a Volcano iterator plan for an SPJ query
// (scans + pushed-down filters + left-deep hash joins + projection) and
// runs it to completion. See vdb/iterator.h for why this engine exists.
#ifndef FDB_VDB_VDB_H_
#define FDB_VDB_VDB_H_

#include <vector>

#include "common/timer.h"
#include "storage/query.h"
#include "storage/relation.h"
#include "vdb/iterator.h"

namespace fdb {

/// Limits, mirroring RdbOptions.
struct VdbOptions {
  size_t max_result_tuples = 0;
  double timeout_seconds = 0.0;
  bool deduplicate = true;
};

struct VdbResult {
  Relation relation{std::vector<AttrId>{}};
  bool timed_out = false;

  size_t NumTuples() const { return relation.size(); }
  size_t NumDataElements() const {
    return relation.size() * relation.arity();
  }
};

/// Builds the iterator plan for `q` without executing it (exposed for
/// tests and examples that want to drive the Volcano interface directly).
vdb::IteratorPtr VdbBuildPlan(const Catalog& catalog,
                              const std::vector<const Relation*>& rels,
                              const Query& q);

/// Executes `q` to completion.
VdbResult VdbEvaluate(const Catalog& catalog,
                      const std::vector<const Relation*>& rels,
                      const Query& q, const VdbOptions& opts = {});

}  // namespace fdb

#endif  // FDB_VDB_VDB_H_
