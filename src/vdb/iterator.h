// Volcano-style tuple-at-a-time iterators.
//
// VDB stands in for the paper's external baselines (SQLite, PostgreSQL),
// which are unavailable in this offline environment. Like them it is a
// "fully functioning engine": a generic interpreter with virtual dispatch
// per tuple, generic predicates and hash joins — the same asymptotics as
// RDB with a constant-factor interpretation overhead, which is exactly the
// relationship the paper reports (§5: SQLite ~3x RDB, PostgreSQL ~3x
// SQLite).
#ifndef FDB_VDB_ITERATOR_H_
#define FDB_VDB_ITERATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {
namespace vdb {

/// The classic Open/Next/Close interface.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual void Open() = 0;
  /// Produces the next tuple (schema() positions); false when exhausted.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() = 0;

  virtual const std::vector<AttrId>& schema() const = 0;
};

using IteratorPtr = std::unique_ptr<Iterator>;

/// Full scan of a stored relation.
class ScanIterator final : public Iterator {
 public:
  explicit ScanIterator(const Relation* rel) : rel_(rel) {}

  void Open() override { row_ = 0; }
  bool Next(Tuple* out) override;
  void Close() override {}
  const std::vector<AttrId>& schema() const override { return rel_->schema(); }

 private:
  const Relation* rel_;
  size_t row_ = 0;
};

/// Generic selection.
class FilterIterator final : public Iterator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  FilterIterator(IteratorPtr child, Predicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const std::vector<AttrId>& schema() const override {
    return child_->schema();
  }

 private:
  IteratorPtr child_;
  Predicate pred_;
};

/// Hash join (build = right input, probe = left input). Empty key list
/// degrades to a nested-loop Cartesian product over the materialised build
/// side.
class HashJoinIterator final : public Iterator {
 public:
  HashJoinIterator(IteratorPtr left, IteratorPtr right,
                   std::vector<std::pair<size_t, size_t>> key_cols);

  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const std::vector<AttrId>& schema() const override { return schema_; }

 private:
  IteratorPtr left_, right_;
  std::vector<std::pair<size_t, size_t>> key_cols_;  // (left col, right col)
  std::vector<AttrId> schema_;
  std::unordered_multimap<std::vector<Value>, Tuple, VecHash64> build_;
  Tuple probe_;
  bool have_probe_ = false;
  std::unordered_multimap<std::vector<Value>, Tuple, VecHash64>::iterator
      match_, match_end_;
};

/// Column projection (may duplicate tuples; VDB has no implicit DISTINCT,
/// like SQL engines).
class ProjectIterator final : public Iterator {
 public:
  ProjectIterator(IteratorPtr child, std::vector<AttrId> keep);

  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const std::vector<AttrId>& schema() const override { return schema_; }

 private:
  IteratorPtr child_;
  std::vector<AttrId> schema_;
  std::vector<size_t> cols_;
  Tuple buf_;
};

}  // namespace vdb
}  // namespace fdb

#endif  // FDB_VDB_ITERATOR_H_
