#include "vdb/vdb.h"

#include <algorithm>

#include "common/exec_context.h"
#include "rdb/join_plan.h"

namespace fdb {

using vdb::FilterIterator;
using vdb::HashJoinIterator;
using vdb::Iterator;
using vdb::IteratorPtr;
using vdb::ProjectIterator;
using vdb::ScanIterator;

IteratorPtr VdbBuildPlan(const Catalog& catalog,
                         const std::vector<const Relation*>& rels,
                         const Query& q) {
  QueryInfo info = AnalyzeQuery(catalog, q);

  // Scans with pushed-down constant selections and intra-relation
  // class equalities.
  std::vector<IteratorPtr> inputs;
  for (size_t r = 0; r < rels.size(); ++r) {
    IteratorPtr it = std::make_unique<ScanIterator>(rels[r]);
    const std::vector<AttrId>& schema = rels[r]->schema();
    auto col_of = [&schema](AttrId a) {
      return static_cast<size_t>(
          std::find(schema.begin(), schema.end(), a) - schema.begin());
    };
    std::vector<std::tuple<size_t, CmpOp, Value>> consts;
    for (const ConstPred& p : q.const_preds) {
      if (rels[r]->HasAttr(p.attr)) {
        consts.emplace_back(col_of(p.attr), p.op, p.value);
      }
    }
    std::vector<std::pair<size_t, size_t>> eq_cols;
    for (const AttrSet& cls : info.classes) {
      AttrSet mine = cls.Intersect(info.rel_attrs[r]);
      if (mine.Size() < 2) continue;
      auto attrs = mine.ToVector();
      for (size_t i = 1; i < attrs.size(); ++i) {
        eq_cols.emplace_back(col_of(attrs[0]), col_of(attrs[i]));
      }
    }
    if (!consts.empty() || !eq_cols.empty()) {
      it = std::make_unique<FilterIterator>(
          std::move(it), [consts, eq_cols](const Tuple& t) {
            for (const auto& [col, op, v] : consts) {
              if (!EvalCmp(t[col], op, v)) return false;
            }
            for (const auto& [c1, c2] : eq_cols) {
              if (t[c1] != t[c2]) return false;
            }
            return true;
          });
    }
    inputs.push_back(std::move(it));
  }

  // Left-deep hash joins in the same greedy order RDB uses.
  std::vector<size_t> order = PlanJoinOrder(info, rels);
  IteratorPtr root = std::move(inputs[order[0]]);
  AttrSet joined = info.rel_attrs[order[0]];
  for (size_t step = 1; step < order.size(); ++step) {
    size_t r = order[step];
    auto keys = JoinKeys(info, joined, *rels[r]);
    const std::vector<AttrId>& ls = root->schema();
    const std::vector<AttrId>& rs = inputs[r]->schema();
    std::vector<std::pair<size_t, size_t>> key_cols;
    for (const auto& [la, ra] : keys) {
      size_t lc = static_cast<size_t>(
          std::find(ls.begin(), ls.end(), la) - ls.begin());
      size_t rc = static_cast<size_t>(
          std::find(rs.begin(), rs.end(), ra) - rs.begin());
      key_cols.emplace_back(lc, rc);
    }
    root = std::make_unique<HashJoinIterator>(std::move(root),
                                              std::move(inputs[r]),
                                              std::move(key_cols));
    joined = joined.Union(info.rel_attrs[r]);
  }

  if (info.projection != info.all_attrs) {
    root = std::make_unique<ProjectIterator>(std::move(root),
                                             info.projection.ToVector());
  }
  return root;
}

VdbResult VdbEvaluate(const Catalog& catalog,
                      const std::vector<const Relation*>& rels,
                      const Query& q, const VdbOptions& opts) {
  IteratorPtr plan = VdbBuildPlan(catalog, rels, q);
  // Same governance clock as FDB and rdb (common/exec_context.h), read
  // non-throwing: a deadline hit reports as data (timed_out).
  ExecContext exec_ctx;
  if (opts.timeout_seconds > 0) exec_ctx.SetDeadline(opts.timeout_seconds);

  VdbResult res;
  Relation out(plan->schema());
  plan->Open();
  Tuple t;
  size_t since_check = 0;
  while (plan->Next(&t)) {
    out.AddTuple(t);
    if (opts.max_result_tuples > 0 && out.size() >= opts.max_result_tuples) {
      res.timed_out = true;
      break;
    }
    if (++since_check >= 4096) {
      since_check = 0;
      if (exec_ctx.StopRequested()) {
        res.timed_out = true;
        break;
      }
    }
  }
  plan->Close();
  if (opts.deduplicate && !res.timed_out) out.SortLex();
  res.relation = std::move(out);
  return res;
}

}  // namespace fdb
