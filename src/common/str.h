// Small string helpers used by the CSV loader, SQL lexer and reporters.
#ifndef FDB_COMMON_STR_H_
#define FDB_COMMON_STR_H_

#include <string>
#include <vector>

namespace fdb {

/// Splits `s` on `sep` (no quoting); keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cases ASCII.
std::string ToLower(const std::string& s);

/// True if `s` parses fully as a signed 64-bit integer (optionally signed).
bool ParseInt64(const std::string& s, int64_t* out);

}  // namespace fdb

#endif  // FDB_COMMON_STR_H_
