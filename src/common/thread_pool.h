// A small fixed-size worker thread pool shared across the process.
//
// Two entry points:
//   * Submit(fn)        — fire-and-forget task queued for the workers;
//   * ParallelFor(n,fn) — run fn(0..n-1) cooperatively on the pool *and*
//     the calling thread, returning when every index has been processed.
//
// ParallelFor is deadlock-free under nesting and pool exhaustion: indices
// are claimed from a shared atomic counter and the caller participates, so
// all work completes even if no pool thread ever picks up a helper task
// (helpers that fire late find the counter exhausted and return). The
// first exception thrown by `fn` is captured and rethrown on the caller
// after all in-flight work has drained.
//
// The process-wide Shared() pool is sized to the hardware concurrency and
// constructed lazily on first use; core/parallel_enumerate.cc runs its
// morsels on it, and serve/QueryServer can adopt it for its workers.
#ifndef FDB_COMMON_THREAD_POOL_H_
#define FDB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fdb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Queues one task for the workers. Tasks must not throw.
  void Submit(std::function<void()> fn) EXCLUDES(mu_);

  /// Runs fn(i) for every i in [0, n) on up to `max_threads` threads
  /// (0 = caller plus every pool worker), including the calling thread.
  /// Returns when all indices are done; rethrows the first exception.
  /// Safe to call from inside a pool task (nested calls degrade to the
  /// caller doing the work itself rather than deadlocking).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   int max_threads = 0);

  /// The process-wide pool, sized to std::thread::hardware_concurrency()
  /// (minus the calling thread, minimum 1). Constructed on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Written only by the constructor (before any concurrency) and joined by
  /// the destructor; size() reads are safe without the mutex.
  std::vector<std::thread> threads_;
};

}  // namespace fdb

#endif  // FDB_COMMON_THREAD_POOL_H_
