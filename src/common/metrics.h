// Process metrics: named relaxed-atomic counters, gauges and fixed-boundary
// latency histograms, with a Prometheus-style text exposition.
//
// The recording side is lock-free — Counter::Increment and
// Histogram::Record are a handful of relaxed atomic RMWs, cheap enough for
// the warm serve hot path (BM_MetricsOverhead in bench/micro_ops.cc keeps
// this honest). The registry's mutex is only taken to create a metric
// (get-or-create by name, once per metric per process lifetime) and to
// walk the name index on exposition; the returned references are stable
// for the registry's lifetime, so callers cache them at construction and
// never touch the index again.
//
// Consistency contract: values are individually coherent (monotone
// counters, torn reads impossible — each is one aligned atomic), but the
// exposition and cross-metric views are NOT a simultaneous snapshot:
// relaxed ordering means a reader may observe counter A's increment from a
// request before counter B's from the same request. Readers that hold a
// response in hand are guaranteed to see that request reflected (the
// increments are sequenced before the promise fulfilment that released the
// response, and the future's synchronisation publishes them); cross-counter
// invariants like hits + misses == lookups hold exactly only at
// quiescence. serve_test.cc StatsConsistencyContract pins this down.
//
// Naming convention (README "Observability"): fdb_<subsystem>_<what>, with
// counters suffixed _total and histograms suffixed _seconds. The
// exposition renders, per histogram, cumulative `_bucket{le="..."}` lines,
// `_sum`, `_count`, and derived `_p50` / `_p95` / `_p99` / `_max` gauges.
#ifndef FDB_COMMON_METRICS_H_
#define FDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fdb {

/// A monotone counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A settable signed value (e.g. current cache entries).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A latency histogram over fixed exponential boundaries (1us..10s in a
/// 1-2.5-5 ladder, plus an overflow bucket). Record is lock-free: one
/// relaxed fetch_add per bucket/count/sum and a CAS loop for the max.
/// p50/p95/p99 are extracted from the bucket counts on read.
class Histogram {
 public:
  static constexpr size_t kNumBounds = 22;

  /// Upper bucket boundaries in seconds, ascending; bucket i counts
  /// samples <= Bounds()[i] (Prometheus `le` semantics). Samples beyond
  /// the last bound land in the overflow (+Inf) bucket.
  static const std::array<double, kNumBounds>& Bounds();

  /// Records one sample. Negative/NaN samples clamp to 0 (a monotonic
  /// clock can in principle report equal instants).
  void Record(double seconds);

  struct Snapshot {
    uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<uint64_t, kNumBounds + 1> buckets{};  ///< last = +Inf

    /// Linear-interpolated quantile from the bucket counts; `p` in (0, 1].
    /// Returns 0 for an empty histogram; ranks in the overflow bucket
    /// return max_seconds.
    double Percentile(double p) const;
  };

  /// Coherent per-field values; not a simultaneous snapshot (see the
  /// header comment). count >= sum of buckets observed is not guaranteed
  /// either way under concurrent recording — equal only at quiescence.
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBounds + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
};

/// A named index of metrics. Instantiable — each QueryServer owns one, so
/// per-server counters in tests never interfere — with a process-wide
/// Global() for code without a natural owner. Get-or-create returns
/// references that stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Prometheus-style text exposition: `# TYPE` comments, one line per
  /// counter/gauge, `_bucket{le="..."}` / `_sum` / `_count` / quantile
  /// lines per histogram. Deterministic order (names sorted per kind).
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// Process-wide registry for metrics without a natural owner.
  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_;
  // node-based maps: values never move, so returned references are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace fdb

#endif  // FDB_COMMON_METRICS_H_
