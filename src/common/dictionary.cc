#include "common/dictionary.h"

namespace fdb {

Value Dictionary::Intern(const std::string& s) {
  auto it = codes_.find(s);
  if (it != codes_.end()) return it->second;
  Value code = static_cast<Value>(strings_.size());
  codes_.emplace(s, code);
  strings_.push_back(s);
  return code;
}

Value Dictionary::Lookup(const std::string& s) const {
  auto it = codes_.find(s);
  return it == codes_.end() ? -1 : it->second;
}

const std::string& Dictionary::Decode(Value code) const {
  FDB_CHECK_MSG(Contains(code), "dictionary code out of range");
  return strings_[static_cast<size_t>(code)];
}

}  // namespace fdb
