#include "common/dictionary.h"

namespace fdb {

Value Dictionary::Intern(const std::string& s) {
  {
    // Fast path: already interned. Most Intern calls during serving hit
    // literals that exist in the data, so try a shared lock first.
    ReaderMutexLock lock(mu_);
    auto it = codes_.find(s);
    if (it != codes_.end()) return it->second;
  }
  WriterMutexLock lock(mu_);
  auto it = codes_.find(s);  // re-check: another thread may have won
  if (it != codes_.end()) return it->second;
  Value code = static_cast<Value>(strings_.size());
  codes_.emplace(s, code);
  strings_.push_back(s);
  return code;
}

Value Dictionary::Lookup(const std::string& s) const {
  ReaderMutexLock lock(mu_);
  auto it = codes_.find(s);
  return it == codes_.end() ? -1 : it->second;
}

const std::string& Dictionary::Decode(Value code) const {
  ReaderMutexLock lock(mu_);
  FDB_CHECK_MSG(ContainsLocked(code), "dictionary code out of range");
  return strings_[static_cast<size_t>(code)];
}

}  // namespace fdb
