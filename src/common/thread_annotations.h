// Clang Thread Safety Analysis annotations.
//
// These macros expand to clang's `thread_safety` attributes, turning the
// locking contracts of the concurrent subsystems (serve/plan_cache,
// serve/query_server, common/thread_pool, common/dictionary,
// lp/edge_cover) into compile-time checkable declarations: every guarded
// field names its mutex (GUARDED_BY), every locking function its contract
// (REQUIRES / ACQUIRE / RELEASE / EXCLUDES). The `thread-safety` CMake
// preset builds with -Werror=thread-safety, so a field access outside its
// mutex or a lock-order violation is a build break, not a TSan lottery.
//
// On compilers without the attribute (gcc, MSVC) every macro expands to
// nothing; the annotations are documentation there and cost nothing.
//
// The std:: synchronisation primitives are not annotated under libstdc++,
// so the analysis only sees locking done through the annotated wrappers in
// common/mutex.h — annotate fields with the wrapper types, not raw
// std::mutex.
#ifndef FDB_COMMON_THREAD_ANNOTATIONS_H_
#define FDB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define FDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FDB_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex", "shared_mutex").
#define CAPABILITY(x) FDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY FDB_THREAD_ANNOTATION_(scoped_lockable)

/// A data member that may only be accessed while holding `x`.
#define GUARDED_BY(x) FDB_THREAD_ANNOTATION_(guarded_by(x))

/// A pointer member whose *pointee* may only be accessed while holding `x`.
#define PT_GUARDED_BY(x) FDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities
/// exclusively / shared.
#define REQUIRES(...) \
  FDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (exclusively / shared) and
/// does not release them before returning.
#define ACQUIRE(...) FDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held exclusively /
/// shared / either) on entry.
#define RELEASE(...) FDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  FDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the listed
/// capabilities (prevents self-deadlock on non-recursive mutexes).
#define EXCLUDES(...) FDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  FDB_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(b, ...) \
  FDB_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

/// The function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) FDB_THREAD_ANNOTATION_(lock_returned(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  FDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  FDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch: the function is deliberately unchecked. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  FDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FDB_COMMON_THREAD_ANNOTATIONS_H_
