#include "common/fault.h"

#include <chrono>
#include <new>
#include <thread>
#include <unordered_map>

#include "common/exec_context.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fdb {
namespace fault {
namespace {

struct Site {
  Spec spec;
  bool armed = false;
  uint64_t hits = 0;      // every Hit() at this name, armed or not
  uint64_t passed = 0;    // hits since arming (for spec.skip)
  int64_t triggered = 0;  // injections fired since arming
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Site> sites GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites outlive all tests
  return *r;
}

}  // namespace

void Arm(const std::string& name, Spec spec) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  Site& site = r.sites[name];
  site.spec = spec;
  site.armed = true;
  site.passed = 0;
  site.triggered = 0;
}

void Disarm(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  if (it != r.sites.end()) it->second.armed = false;
}

void DisarmAll() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& [name, site] : r.sites) site.armed = false;
}

uint64_t HitCount(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void Hit(const char* name) {
  // Decide under the lock, inject outside it: the injections sleep, throw
  // or re-enter engine code, none of which may hold the registry mutex.
  Spec spec;
  bool fire = false;
  {
    Registry& r = registry();
    MutexLock lock(r.mu);
    Site& site = r.sites[name];
    ++site.hits;
    if (!site.armed) return;
    if (site.passed++ < site.spec.skip) return;
    if (site.spec.times >= 0 && site.triggered >= site.spec.times) return;
    ++site.triggered;
    spec = site.spec;
    fire = true;
  }
  if (!fire) return;
  switch (spec.kind) {
    case Kind::kBadAlloc:
      throw std::bad_alloc();
    case Kind::kLatency:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spec.latency_seconds));
      return;
    case Kind::kCancel:
      if (ExecContext* ctx = ExecContext::Current()) {
        ctx->Cancel(ExecContext::StopReason::kCancelled);
        ctx->CheckCancelled();  // deterministic: unwind at the site itself
      }
      return;
  }
}

}  // namespace fault
}  // namespace fdb
