#include "common/trace.h"

#include <cstdio>

#include "common/types.h"

namespace fdb {

namespace {

// Human-readable wall time, us/ms/s to three significant-ish digits.
// Deliberately local: common/ must not depend on bench_util/.
std::string FmtTraceTime(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace

int QueryTrace::OpenSpan(std::string_view name) {
  Span s;
  s.name = std::string(name);
  if (!open_.empty()) {
    s.parent = open_.back();
    s.depth = spans_[static_cast<size_t>(s.parent)].depth + 1;
  }
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(s));
  open_.push_back(index);
  return index;
}

void QueryTrace::CloseSpan(int index, double seconds) {
  FDB_CHECK_MSG(!open_.empty() && open_.back() == index,
                "trace spans must close LIFO (innermost first)");
  spans_[static_cast<size_t>(index)].seconds = seconds;
  open_.pop_back();
}

void QueryTrace::RecordSpan(std::string_view name, double seconds) {
  CloseSpan(OpenSpan(name), seconds);
}

void QueryTrace::SetRows(int index, uint64_t rows) {
  Span& s = spans_[static_cast<size_t>(index)];
  s.rows = rows;
  s.has_rows = true;
}

void QueryTrace::SetBytes(int index, uint64_t bytes) {
  Span& s = spans_[static_cast<size_t>(index)];
  s.bytes = bytes;
  s.has_bytes = true;
}

double QueryTrace::TotalSeconds() const {
  double total = 0.0;
  for (const Span& s : spans_) {
    if (s.parent < 0) total += s.seconds;
  }
  return total;
}

std::string QueryTrace::Render() const {
  std::string out = "EXPLAIN ANALYZE\n";
  for (const Span& s : spans_) {
    out.append(static_cast<size_t>(s.depth) * 2, ' ');
    out += s.name;
    out += "  time=";
    out += FmtTraceTime(s.seconds);
    if (s.has_rows) {
      out += " rows=";
      out += std::to_string(s.rows);
    }
    if (s.has_bytes) {
      out += " bytes=";
      out += std::to_string(s.bytes);
    }
    out += '\n';
  }
  out += "-- total ";
  out += FmtTraceTime(TotalSeconds());
  out += ", ";
  out += std::to_string(spans_.size());
  out += " spans\n";
  return out;
}

}  // namespace fdb
