#include "common/exec_context.h"

#include <string>

namespace fdb {

thread_local ExecContext* ExecContext::tls_current_ = nullptr;
thread_local uint32_t ExecContext::tls_probe_tick_ = 0;

void MemoryBudget::ChargeOrThrow(size_t bytes) {
  if (limit_ == 0) {
    charged_.fetch_add(bytes, std::memory_order_relaxed);
    return;
  }
  const uint64_t total =
      charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (total > limit_) {
    throw FdbResourceExhausted(
        "query memory budget exceeded: charged " + std::to_string(total) +
        " bytes, limit " + std::to_string(limit_));
  }
}

void ExecContext::ThrowStop(StopReason reason) const {
  switch (reason) {
    case StopReason::kTimeout:
      throw FdbTimeout("query deadline exceeded");
    case StopReason::kResource:
      throw FdbResourceExhausted("query stopped: memory budget exceeded");
    case StopReason::kCancelled:
    case StopReason::kNone:  // unreachable: ThrowStop is called with s != 0
      break;
  }
  throw FdbCancelled("query cancelled");
}

}  // namespace fdb
