// Dictionary encoding of string values.
//
// FDB stores only 64-bit integers in singletons; databases with string
// columns map each distinct string to a dense integer code (the paper points
// to dictionary-based compression as a complementary technique, §1).
#ifndef FDB_COMMON_DICTIONARY_H_
#define FDB_COMMON_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fdb {

/// Bidirectional string <-> code map. Codes are assigned densely from 0 in
/// first-seen order. Not thread-safe (FDB is a single-threaded engine, like
/// the paper's prototype).
class Dictionary {
 public:
  /// Returns the code for `s`, inserting it if new.
  Value Intern(const std::string& s);

  /// Returns the code for `s` or -1 if absent.
  Value Lookup(const std::string& s) const;

  /// Returns the string for a code; throws FdbError if out of range.
  const std::string& Decode(Value code) const;

  bool Contains(Value code) const {
    return code >= 0 && static_cast<size_t>(code) < strings_.size();
  }

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Value> codes_;
  std::vector<std::string> strings_;
};

}  // namespace fdb

#endif  // FDB_COMMON_DICTIONARY_H_
