// Dictionary encoding of string values.
//
// FDB stores only 64-bit integers in singletons; databases with string
// columns map each distinct string to a dense integer code (the paper points
// to dictionary-based compression as a complementary technique, §1).
#ifndef FDB_COMMON_DICTIONARY_H_
#define FDB_COMMON_DICTIONARY_H_

#include <deque>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace fdb {

/// Bidirectional string <-> code map. Codes are assigned densely from 0 in
/// first-seen order.
///
/// Thread safety: all operations may be called concurrently. Intern takes an
/// exclusive lock; Lookup/Decode/Contains/size take a shared lock, so the
/// read path scales across serving threads (serve/query_server.h relies on
/// this: SQL parsing interns string literals while other workers decode
/// result values). Strings are stored in a deque, so the reference returned
/// by Decode stays valid across concurrent Intern calls — codes are never
/// removed or remapped.
class Dictionary {
 public:
  Dictionary() = default;

  // Copy/move transfer the mappings but not the mutex (a mutex is tied to
  // its object). They lock the source, but the destination must not be in
  // concurrent use — move a database before serving starts, not during.
  Dictionary(const Dictionary& o) {
    ReaderMutexLock lock(o.mu_);
    codes_ = o.codes_;
    strings_ = o.strings_;
  }
  Dictionary(Dictionary&& o) {  // not noexcept: locking the source may throw
    WriterMutexLock lock(o.mu_);
    codes_ = std::move(o.codes_);
    strings_ = std::move(o.strings_);
  }
  Dictionary& operator=(const Dictionary& o) EXCLUDES(mu_, o.mu_) {
    if (this != &o) {
      ReaderMutexLock lock(o.mu_);
      WriterMutexLock self(mu_);
      codes_ = o.codes_;
      strings_ = o.strings_;
    }
    return *this;
  }
  Dictionary& operator=(Dictionary&& o) EXCLUDES(mu_, o.mu_) {
    if (this != &o) {
      WriterMutexLock lock(o.mu_);
      WriterMutexLock self(mu_);
      codes_ = std::move(o.codes_);
      strings_ = std::move(o.strings_);
    }
    return *this;
  }

  /// Returns the code for `s`, inserting it if new.
  Value Intern(const std::string& s) EXCLUDES(mu_);

  /// Returns the code for `s` or -1 if absent.
  Value Lookup(const std::string& s) const EXCLUDES(mu_);

  /// Returns the string for a code; throws FdbError if out of range. The
  /// reference remains valid for the lifetime of the dictionary.
  const std::string& Decode(Value code) const EXCLUDES(mu_);

  bool Contains(Value code) const EXCLUDES(mu_) {
    ReaderMutexLock lock(mu_);
    return ContainsLocked(code);
  }

  size_t size() const EXCLUDES(mu_) {
    ReaderMutexLock lock(mu_);
    return strings_.size();
  }

 private:
  bool ContainsLocked(Value code) const REQUIRES_SHARED(mu_) {
    return code >= 0 && static_cast<size_t>(code) < strings_.size();
  }

  mutable SharedMutex mu_;
  std::unordered_map<std::string, Value> codes_ GUARDED_BY(mu_);
  /// deque: Decode refs survive growth
  std::deque<std::string> strings_ GUARDED_BY(mu_);
};

}  // namespace fdb

#endif  // FDB_COMMON_DICTIONARY_H_
