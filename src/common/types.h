// Core scalar types and error-checking macros shared by all FDB modules.
#ifndef FDB_COMMON_TYPES_H_
#define FDB_COMMON_TYPES_H_

// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is set; it
// reports the real language level in _MSVC_LANG instead.
#if !(defined(__cplusplus) && __cplusplus >= 202002L) && \
    !(defined(_MSVC_LANG) && _MSVC_LANG >= 202002L)
#error "FDB requires C++20 (std::popcount in common/attrset.h and friends); compile with -std=c++20 or use the provided CMake build."
#endif

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fdb {

/// A data value. FDB stores 8-byte integers; strings are dictionary-encoded
/// (the paper: "a singleton holds an 8 byte integer").
using Value = int64_t;

/// Global attribute identifier. Attributes live in a per-database universe of
/// at most kMaxAttrs attributes so that attribute sets fit in one 64-bit mask.
using AttrId = uint32_t;

/// Identifier of a relation within a database / query.
using RelId = uint32_t;

/// Maximum number of attributes in a database universe (fits an AttrSet).
inline constexpr AttrId kMaxAttrs = 64;

/// Maximum number of relations in a query (fits a RelSet bitmask).
inline constexpr RelId kMaxRels = 64;

/// A flat tuple; values are indexed positionally by a schema.
using Tuple = std::vector<Value>;

/// Exception type thrown on precondition violations and malformed input.
class FdbError : public std::runtime_error {
 public:
  explicit FdbError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Overflow-checked unsigned arithmetic. The tuple-count dynamic programs
/// (FRep::CountTuples, core/aggregate.cc) accumulate in uint64_t so counts
/// stay exact; these helpers let them detect saturation instead of wrapping.
inline bool U64MulOverflow(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_mul_overflow(a, b, out);
#else
  if (b != 0 && a > UINT64_MAX / b) return true;
  *out = a * b;
  return false;
#endif
}

inline bool U64AddOverflow(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_add_overflow(a, b, out);
#else
  if (a > UINT64_MAX - b) return true;
  *out = a + b;
  return false;
#endif
}

namespace internal {

inline void ThrowCheckFailure(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "FDB_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw FdbError(os.str());
}

}  // namespace internal

// Always-on invariant check (these guard algorithmic preconditions such as
// the path constraint; the cost is negligible next to the guarded work).
#define FDB_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fdb::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define FDB_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fdb::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace fdb

#endif  // FDB_COMMON_TYPES_H_
