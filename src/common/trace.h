// Per-query lifecycle tracing: a tree of timed phase spans.
//
// A QueryTrace records where one query's wall time went — the phases the
// paper's cost analysis distinguishes (f-tree search vs grounding vs
// enumeration, and restructure-vs-collapse for aggregates) as nested RAII
// spans carrying wall-time plus optional output-row and rep-size payloads.
// The span taxonomy (see README "Observability"):
//
//   serve / query          root: the whole request / Engine::Execute call
//     normalize            SQL canonicalisation (serve path only)
//     plan-cache-lookup    PlanCache::Lookup
//     parse                ParseSql
//     f-tree-search        FindOptimalFTree (absent on a plan-cache hit)
//     ground               GroundQuery (bytes = FRep::MemoryBytes)
//     project              deferred projection, when the query projects
//     restructure-aggregate  GroupByAggregate (aggregate queries)
//     materialize-groups   GroupedRep::Materialize (rows = groups)
//     kernel-compile       EnumKernel::Compile (first execution of a plan)
//     morsel-plan          ParallelEnumerator planning (rows = morsels)
//     enumerate            materialisation of the flat result (rows)
//
// Tracing is opt-in per query: every traced function takes a
// `QueryTrace* trace = nullptr` and a null trace makes Scope a no-op that
// never reads the clock, so the untraced hot path pays one branch per
// phase (BM_TraceOverhead in bench/micro_ops.cc keeps this honest).
//
// Thread safety: a QueryTrace is single-threaded by construction — spans
// open and close on the thread driving the query. Parallel phases
// (morsel-driven enumeration) are covered by ONE span opened on the
// driving thread around the whole fan-out, never one span per morsel;
// worker threads never touch the trace.
#ifndef FDB_COMMON_TRACE_H_
#define FDB_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.h"

namespace fdb {

/// A tree of timed phase spans for one query. Spans are stored in opening
/// order (pre-order); `parent` indices encode the tree.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    int parent = -1;        ///< index of the enclosing span; -1 for roots
    int depth = 0;          ///< 0 for roots (cached for rendering)
    double seconds = 0.0;   ///< wall time; filled when the span closes
    uint64_t rows = 0;      ///< output rows, when the phase has them
    uint64_t bytes = 0;     ///< rep size (FRep::MemoryBytes), when known
    bool has_rows = false;
    bool has_bytes = false;
  };

  /// RAII phase span. Null-safe: a null trace makes every member a no-op
  /// and the clock is never read, so untraced callers pay one branch.
  /// Scopes must nest (strict LIFO per trace) — guaranteed by lexical
  /// scoping at every call site.
  class Scope {
   public:
    Scope(QueryTrace* trace, std::string_view name) : trace_(trace) {
      if (trace_ != nullptr) {
        index_ = trace_->OpenSpan(name);
        start_ = MonotonicClock::now();
      }
    }
    ~Scope() {
      if (trace_ != nullptr) {
        trace_->CloseSpan(
            index_,
            std::chrono::duration<double>(MonotonicClock::now() - start_)
                .count());
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    void SetRows(uint64_t rows) {
      if (trace_ != nullptr) trace_->SetRows(index_, rows);
    }
    void SetBytes(uint64_t bytes) {
      if (trace_ != nullptr) trace_->SetBytes(index_, bytes);
    }

   private:
    QueryTrace* trace_;
    int index_ = -1;
    MonotonicClock::time_point start_{};
  };

  /// Opens a span as a child of the innermost open span (or a root).
  /// Returns its index. Prefer Scope; this is the manual layer under it.
  int OpenSpan(std::string_view name);

  /// Closes span `index` with its measured wall time. Must be the
  /// innermost open span (spans close LIFO).
  void CloseSpan(int index, double seconds);

  /// Records an already-measured leaf span under the innermost open span.
  void RecordSpan(std::string_view name, double seconds);

  void SetRows(int index, uint64_t rows);
  void SetBytes(int index, uint64_t bytes);

  const std::vector<Span>& spans() const { return spans_; }

  /// Wall time of the root span(s) — the trace's reported total.
  double TotalSeconds() const;

  /// Renders the span tree as the EXPLAIN ANALYZE body: one line per span,
  /// two-space indentation per depth, `time=` plus optional `rows=` /
  /// `bytes=` fields, a trailing total line. Every line ends with '\n'.
  std::string Render() const;

 private:
  std::vector<Span> spans_;
  std::vector<int> open_;  ///< stack of open span indices
};

}  // namespace fdb

#endif  // FDB_COMMON_TRACE_H_
