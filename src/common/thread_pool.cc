#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "common/types.h"

namespace fdb {

ThreadPool::ThreadPool(int num_threads) {
  FDB_CHECK_MSG(num_threads > 0, "thread pool needs at least one worker");
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    FDB_CHECK_MSG(!stopping_, "Submit on a stopped thread pool");
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared claim state of one ParallelFor. Owns a copy of the loop body so
// helper tasks that fire after the caller has returned (possible when the
// caller drained every index itself) touch only this state, never the
// caller's stack.
struct ForState {
  explicit ForState(std::function<void(size_t)> body, size_t total)
      : fn(std::move(body)), n(total) {}

  const std::function<void(size_t)> fn;
  const size_t n;
  std::atomic<size_t> next{0};

  Mutex mu;
  CondVar cv;
  size_t active GUARDED_BY(mu) = 0;  ///< helpers currently inside fn
  std::exception_ptr error GUARDED_BY(mu);

  // Claims and runs indices until exhausted (or an error aborts the loop).
  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(mu);
        if (error == nullptr) error = std::current_exception();
        next.store(n);  // abort: stop claiming further indices
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             int max_threads) {
  if (n == 0) return;
  size_t helpers = std::min(threads_.size(), n - 1);
  if (max_threads > 0) {
    helpers = std::min(helpers, static_cast<size_t>(max_threads - 1));
  }
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(fn, n);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] {
      {
        MutexLock lock(state->mu);
        ++state->active;
      }
      state->Drain();
      {
        MutexLock lock(state->mu);
        --state->active;
      }
      state->cv.NotifyAll();
    });
  }

  // The caller participates; once it runs out of indices it only has to
  // wait for helpers that are mid-index (claimed-but-unstarted helpers
  // will find the counter exhausted whenever they fire).
  state->Drain();
  MutexLock lock(state->mu);
  while (state->active != 0 || state->next.load() < state->n) {
    state->cv.Wait(state->mu);
  }
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw) - 1 : 1;
  }());
  return pool;
}

}  // namespace fdb
