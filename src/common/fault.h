// Fault injection: named FDB_FAULT_POINT(name) sites at the engine's
// allocation / morsel / serve boundaries, armed by tests to inject
// allocation failure, latency or cancellation on demand — so the
// governance paths (common/exec_context.h) are *proven* to degrade
// gracefully, not assumed to.
//
// The sites compile to nothing unless the build sets FDB_FAULTS (CMake
// option FDB_FAULTS=ON, carried by the asan/tsan presets), so release
// binaries pay zero cost and bench/run_all.sh refuses instrumented
// builds. The registry below is always compiled (it is tiny) so
// tests/fault_injection_test.cc builds in every configuration and skips
// itself when fault::kEnabled is false.
//
// Site names must be snake_case and globally unique — enforced by
// tools/fdb_lint.py (fault-point). Current sites:
//
//   frep_arena_commit   FRep::CommitUnion, before arena growth
//   ground_build_union  per grounded union in GroundQuery's build
//   ground_prepare_relation  per relation filter/sort in GroundQuery
//   kernel_run          entry of EnumKernel::Run
//   enumerate_morsel    per morsel task in ParallelEnumerator
//   serve_execute_group entry of QueryServer::ExecuteGroup's evaluation
//   serve_render        before RenderResult in QueryServer
#ifndef FDB_COMMON_FAULT_H_
#define FDB_COMMON_FAULT_H_

#include <cstdint>
#include <string>

namespace fdb {
namespace fault {

#ifdef FDB_FAULTS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// What an armed site injects when it triggers.
enum class Kind : uint8_t {
  kBadAlloc,  ///< throw std::bad_alloc (exercises TranslateBadAlloc)
  kLatency,   ///< sleep latency_seconds (exercises deadlines under load)
  kCancel,    ///< cancel the ambient ExecContext and probe it immediately
};

struct Spec {
  Kind kind = Kind::kBadAlloc;
  /// Hits to let through before triggering (0 = trigger on first hit).
  uint64_t skip = 0;
  /// Triggers to fire before the site disarms itself (-1 = every hit).
  int64_t times = -1;
  double latency_seconds = 0.0;  ///< for kLatency
};

/// Arms `name`; replaces any previous spec. Safe to call in any build
/// (without FDB_FAULTS no site ever hits, so it has no effect).
void Arm(const std::string& name, Spec spec);
void Disarm(const std::string& name);
void DisarmAll();

/// Total hits observed at `name` since process start (armed or not) —
/// lets tests assert a site was actually reached. Always 0 without
/// FDB_FAULTS.
uint64_t HitCount(const std::string& name);

/// Called by FDB_FAULT_POINT in FDB_FAULTS builds. Counts the hit and
/// injects the armed fault, if any.
void Hit(const char* name);

}  // namespace fault
}  // namespace fdb

#ifdef FDB_FAULTS
#define FDB_FAULT_POINT(name) ::fdb::fault::Hit(name)
#else
#define FDB_FAULT_POINT(name) ((void)0)
#endif

#endif  // FDB_COMMON_FAULT_H_
