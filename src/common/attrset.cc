#include "common/attrset.h"

#include <sstream>

namespace fdb {

std::vector<AttrId> AttrSet::ToVector() const {
  std::vector<AttrId> out;
  out.reserve(static_cast<size_t>(Size()));
  for (AttrId id : *this) out.push_back(id);
  return out;
}

std::string AttrSet::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (AttrId id : *this) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace fdb
