// AttrSet: a set of attribute ids backed by a 64-bit mask.
//
// F-tree nodes are labelled by attribute classes, relations by attribute
// sets, and the optimiser manipulates many of these per second; a bitmask
// keeps all set algebra O(1).
#ifndef FDB_COMMON_ATTRSET_H_
#define FDB_COMMON_ATTRSET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fdb {

/// A set of up to 64 attribute (or relation) identifiers.
class AttrSet {
 public:
  constexpr AttrSet() : bits_(0) {}
  constexpr explicit AttrSet(uint64_t bits) : bits_(bits) {}

  /// Builds a set from a list of ids.
  static AttrSet Of(std::initializer_list<AttrId> ids) {
    AttrSet s;
    for (AttrId id : ids) s.Add(id);
    return s;
  }
  static AttrSet FromVector(const std::vector<AttrId>& ids) {
    AttrSet s;
    for (AttrId id : ids) s.Add(id);
    return s;
  }
  /// The set {0, 1, ..., n-1}.
  static AttrSet FirstN(AttrId n) {
    FDB_CHECK(n <= kMaxAttrs);
    return n == 64 ? AttrSet(~uint64_t{0}) : AttrSet((uint64_t{1} << n) - 1);
  }

  void Add(AttrId id) {
    FDB_CHECK(id < kMaxAttrs);
    bits_ |= uint64_t{1} << id;
  }
  void Remove(AttrId id) { bits_ &= ~(uint64_t{1} << id); }
  bool Contains(AttrId id) const { return (bits_ >> id) & 1; }

  bool Empty() const { return bits_ == 0; }
  int Size() const { return std::popcount(bits_); }
  uint64_t bits() const { return bits_; }

  /// Smallest id in the set; set must be non-empty.
  AttrId Min() const {
    FDB_CHECK(bits_ != 0);
    return static_cast<AttrId>(std::countr_zero(bits_));
  }

  bool Intersects(AttrSet o) const { return (bits_ & o.bits_) != 0; }
  bool ContainsAll(AttrSet o) const { return (bits_ & o.bits_) == o.bits_; }

  AttrSet Union(AttrSet o) const { return AttrSet(bits_ | o.bits_); }
  AttrSet Intersect(AttrSet o) const { return AttrSet(bits_ & o.bits_); }
  AttrSet Minus(AttrSet o) const { return AttrSet(bits_ & ~o.bits_); }

  friend bool operator==(AttrSet a, AttrSet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.bits_ != b.bits_; }
  friend bool operator<(AttrSet a, AttrSet b) { return a.bits_ < b.bits_; }

  /// Ids in increasing order.
  std::vector<AttrId> ToVector() const;

  /// Debug form, e.g. "{0,3,7}".
  std::string ToString() const;

  /// Iteration support: for (AttrId a : set) ...
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    AttrId operator*() const {
      return static_cast<AttrId>(std::countr_zero(bits_));
    }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_;
};

/// Relations are identified by small ids too; reuse the same bitset.
using RelSet = AttrSet;

}  // namespace fdb

#endif  // FDB_COMMON_ATTRSET_H_
