// Annotated synchronisation primitives.
//
// Thin wrappers over std::mutex / std::shared_mutex / std::condition_variable
// carrying the clang Thread Safety Analysis attributes from
// common/thread_annotations.h. libstdc++'s own primitives are not annotated,
// so locking them directly is invisible to the analysis; all concurrent
// subsystems lock through these wrappers instead, which makes
// `-Werror=thread-safety` able to prove that every GUARDED_BY field is only
// touched under its mutex.
//
// Condition waits are written as explicit loops
//
//     MutexLock lock(mu_);
//     while (!predicate()) cv_.Wait(mu_);
//
// rather than the std predicate overload: the analysis does not propagate
// capabilities into lambdas, so a predicate closure reading guarded fields
// would need an escape hatch — the loop form keeps the whole wait checkable.
#ifndef FDB_COMMON_MUTEX_H_
#define FDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace fdb {

/// An annotated exclusive mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// An annotated shared (reader/writer) mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard counterpart).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_SHARED() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to fdb::Mutex. Wait atomically releases and
/// re-acquires the *held* mutex (callers hold it via MutexLock), which the
/// adopt/release dance below expresses without double-unlocking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fdb

#endif  // FDB_COMMON_MUTEX_H_
