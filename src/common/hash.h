// FNV-1a folding over sequences of 64-bit scalars — the one hash used by
// every value-vector keyed map in FDB (hash join keys, GROUP BY keys, the
// edge-cover LP memo), so the constants and mixing live in one place.
#ifndef FDB_COMMON_HASH_H_
#define FDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdb {

inline uint64_t Fnv1a64(const uint64_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;  // fold the high bits back down (word-sized inputs)
  }
  return h;
}

/// Hash functor for vectors of 64-bit scalars (Value or uint64_t keys).
struct VecHash64 {
  size_t operator()(const std::vector<uint64_t>& v) const {
    return static_cast<size_t>(Fnv1a64(v.data(), v.size()));
  }
  size_t operator()(const std::vector<int64_t>& v) const {
    // Accessing int64_t storage through the corresponding unsigned type is
    // well-defined.
    return static_cast<size_t>(
        Fnv1a64(reinterpret_cast<const uint64_t*>(v.data()), v.size()));
  }
};

}  // namespace fdb

#endif  // FDB_COMMON_HASH_H_
