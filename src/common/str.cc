#include "common/str.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace fdb {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) os << sep;
    os << parts[i];
  }
  return os.str();
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace fdb
