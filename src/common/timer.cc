#include "common/timer.h"

// Header-only; this TU anchors the library target.
