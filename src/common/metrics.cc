#include "common/metrics.h"

#include <cmath>
#include <cstdio>

namespace fdb {

namespace {

constexpr double kNanosPerSecond = 1e9;

// %g keeps the exposition compact and deterministic ("1e-06", "0.00025").
std::string FmtBound(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FmtSeconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const std::array<double, Histogram::kNumBounds>& Histogram::Bounds() {
  static const std::array<double, kNumBounds> kBounds = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
      5e-3, 1e-2,   5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,  2.5,    5.0,  7.5,  10.0};
  return kBounds;
}

void Histogram::Record(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;  // clamp negatives and NaN
  const auto& bounds = Bounds();
  size_t b = 0;
  while (b < kNumBounds && seconds > bounds[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Sum kept in integer nanoseconds: std::atomic<double> has no lock-free
  // fetch_add pre-C++26, and 2^64 ns is ~584 years of accumulated latency.
  const double nanos_fp = seconds * kNanosPerSecond;
  const uint64_t nanos =
      nanos_fp >= 9e18 ? uint64_t{9000000000000000000u}
                       : static_cast<uint64_t>(nanos_fp);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t cur = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > cur && !max_nanos_.compare_exchange_weak(
                            cur, nanos, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
      kNanosPerSecond;
  s.max_seconds =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
      kNanosPerSecond;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p * static_cast<double>(count);
  const auto& bounds = Bounds();
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBounds; ++i) {
    const uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) >= rank) {
      // Linear interpolation inside the bucket [lower, bounds[i]].
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double in_bucket = static_cast<double>(buckets[i]);
      if (in_bucket <= 0.0) return upper;
      const double frac = (rank - static_cast<double>(prev)) / in_bucket;
      return lower + (upper - lower) * frac;
    }
  }
  return max_seconds;  // rank lands in the overflow bucket
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(c->Value()) + '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(g->Value()) + '\n';
  }
  const auto& bounds = Histogram::Bounds();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += "# TYPE " + name + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kNumBounds; ++i) {
      cum += s.buckets[i];
      out += name + "_bucket{le=\"" + FmtBound(bounds[i]) + "\"} " +
             std::to_string(cum) + '\n';
    }
    cum += s.buckets[Histogram::kNumBounds];
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + '\n';
    out += name + "_sum " + FmtSeconds(s.sum_seconds) + '\n';
    out += name + "_count " + std::to_string(s.count) + '\n';
    // Derived read-side quantiles; rendered as separate gauge families so
    // the exposition stays within the plain-text grammar.
    out += name + "_p50 " + FmtSeconds(s.Percentile(0.50)) + '\n';
    out += name + "_p95 " + FmtSeconds(s.Percentile(0.95)) + '\n';
    out += name + "_p99 " + FmtSeconds(s.Percentile(0.99)) + '\n';
    out += name + "_max " + FmtSeconds(s.max_seconds) + '\n';
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

}  // namespace fdb
