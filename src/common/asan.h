// Manual AddressSanitizer poisoning of arena slack.
//
// The columnar arenas in core/frep.h (and the recycled UnionBuilder scratch
// buffers) live inside std::vector buffers. ASan instruments only the
// *allocation* edges of those buffers: a read past a union's live window
// that lands in the vector's spare capacity is invisible to it, because the
// whole [data, data+capacity) range is one valid heap chunk. The helpers
// here close that gap container-annotation-style: the owning structure
// poisons the slack [size, capacity) after every mutation and unpoisons it
// right before the vector writes into it, so an out-of-window read becomes
// a hard use-after-poison fault instead of silently returning stale bytes.
//
// Everything compiles to nothing when ASan is off (kEnabled == false and
// the bodies are empty), so release builds pay zero cost — not even a
// branch. tests/asan_poison_test.cc proves both directions: legal arena
// traffic stays clean under ASan, and a deliberate slack read is caught
// (the armed-probe pattern of cmake/CheckThreadSafety.cmake).
//
// Poisoning granularity is ASan's 8-byte shadow: a region edge that is not
// 8-aligned is poisoned conservatively (the misaligned fringe stays
// accessible). The arenas store 8-byte Values, 4-byte child ids and
// 40-byte headers off malloc-aligned bases, so in practice at most the
// first 4 bytes of a child-arena slack window stay unpoisoned.
#ifndef FDB_COMMON_ASAN_H_
#define FDB_COMMON_ASAN_H_

#include <cstddef>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define FDB_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FDB_ASAN_ENABLED 1
#endif
#endif

#ifdef FDB_ASAN_ENABLED
#include <sanitizer/asan_interface.h>
#endif

namespace fdb {
namespace asan {

#ifdef FDB_ASAN_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Marks `[p, p+n)` as unreadable; any access reports use-after-poison.
inline void Poison(const void* p, size_t n) {
#ifdef FDB_ASAN_ENABLED
  if (n != 0) ASAN_POISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

/// Re-admits `[p, p+n)` for reads and writes.
inline void Unpoison(const void* p, size_t n) {
#ifdef FDB_ASAN_ENABLED
  if (n != 0) ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

/// Poisons a vector's slack `[data+size, data+capacity)`. Call after every
/// mutation that may have changed size or relocated the buffer.
template <typename T>
inline void PoisonTail(const std::vector<T>& v) {
  if constexpr (kEnabled) {
    Poison(v.data() + v.size(), (v.capacity() - v.size()) * sizeof(T));
  } else {
    (void)v;
  }
}

/// Unpoisons a vector's slack. Call immediately before any operation that
/// appends into the buffer (insert/push_back/resize): libstdc++ constructs
/// the new elements in place, and those writes must not fault. If the
/// operation reallocates instead, the old buffer is unpoisoned on free by
/// ASan itself and the new one starts clean — re-poison via PoisonTail
/// afterwards either way.
template <typename T>
inline void UnpoisonTail(std::vector<T>& v) {
  if constexpr (kEnabled) {
    Unpoison(v.data() + v.size(), (v.capacity() - v.size()) * sizeof(T));
  } else {
    (void)v;
  }
}

/// Poisons a vector's *entire* buffer `[data, data+capacity)`. For recycled
/// staging buffers that are logically dead between uses (UnionBuilder
/// scratch after Finish/Abandon): the vector must be clear()ed first.
template <typename T>
inline void PoisonBuffer(const std::vector<T>& v) {
  if constexpr (kEnabled) {
    Poison(v.data(), v.capacity() * sizeof(T));
  } else {
    (void)v;
  }
}

/// Re-admits a recycled buffer before handing it back out.
template <typename T>
inline void UnpoisonBuffer(std::vector<T>& v) {
  if constexpr (kEnabled) {
    Unpoison(v.data(), v.capacity() * sizeof(T));
  } else {
    (void)v;
  }
}

}  // namespace asan
}  // namespace fdb

#endif  // FDB_COMMON_ASAN_H_
