// Deterministic random number generation for workload synthesis.
//
// The paper's experiments draw values uniformly or from a Zipf distribution
// over [1..M]; both samplers live here so benchmarks and tests share one
// reproducible source of randomness.
#ifndef FDB_COMMON_RNG_H_
#define FDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace fdb {

/// xorshift128+ generator: fast, deterministic across platforms (std::mt19937
/// would also do, but a self-contained generator keeps bench outputs byte-
/// stable across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipf(alpha) sampler over {1, ..., n} using inverse-CDF on a precomputed
/// table (n is at most a few hundred in the paper's workloads).
class ZipfSampler {
 public:
  /// alpha > 0; alpha around 1 matches the paper's "more skewed" setting.
  ZipfSampler(int64_t n, double alpha);

  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  int64_t n_;
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace fdb

#endif  // FDB_COMMON_RNG_H_
