// ExecContext: per-query execution governance — a deadline, a cooperative
// cancellation flag and an atomic memory budget, threaded through the
// engine without touching operator signatures.
//
// Why ambient (thread-local) rather than a parameter: the probe sites live
// in the hottest inner loops of the engine — FRep arena commits
// (core/frep.h), the leapfrog grounding loop (core/ground.cc), compiled
// kernel runs (core/kernel.cc), the CountTuples DP — and several of them
// (UnionBuilder::Finish, FRep::CommitUnion) have no context parameter to
// thread one through. A query binds its context with an ExecContext::Scope
// on the evaluating thread; ParallelEnumerator re-binds the caller's
// context inside each morsel task so pool threads observe the same flag.
// Code that runs with no context bound (tests, benchmarks, library use)
// pays one thread-local load per probe and nothing else.
//
// Probe cost: CheckCancelled() is one relaxed atomic load; the monotonic
// clock is consulted only every kDeadlineStride-th probe (per thread), so
// probes are cheap enough for arena-growth granularity. The warm-path
// overhead is measured by BM_GovernanceOverhead in bench/micro_ops.cc and
// must stay within noise (<= 2%).
//
// Stop conditions unwind as FdbError subclasses so every existing
// catch (const FdbError&) boundary — QueryServer::ExecuteGroup, the REPL,
// the experiment drivers — already contains them:
//
//   FdbTimeout            deadline passed          -> protocol TIMEOUT
//   FdbResourceExhausted  budget / allocation      -> protocol RESOURCE
//   FdbCancelled          explicit RequestCancel() -> protocol ERR
//
// Memory accounting is cumulative-charged, not live: FRep arena growth
// charges bytes as they are appended and nothing is ever credited back
// (releases are rare on the build path and a monotone counter needs no
// pairing discipline). UnionBuilder scratch is deliberately not charged —
// it is recycled LIFO and bounded by build depth, not by data size.
#ifndef FDB_COMMON_EXEC_CONTEXT_H_
#define FDB_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "common/timer.h"
#include "common/types.h"

namespace fdb {

/// Deadline exceeded (detected at a cooperative probe). Serve answers
/// TIMEOUT.
class FdbTimeout : public FdbError {
 public:
  using FdbError::FdbError;
};

/// Memory budget exceeded or allocation failed. Serve answers RESOURCE.
class FdbResourceExhausted : public FdbError {
 public:
  using FdbError::FdbError;
};

/// Explicit cancellation (RequestCancel). Serve answers ERR.
class FdbCancelled : public FdbError {
 public:
  using FdbError::FdbError;
};

/// Cumulative per-query memory budget. Monotone: ChargeOrThrow only ever
/// adds, so charged() is "bytes ever appended", an upper bound on live
/// arena bytes. limit 0 means unlimited.
class MemoryBudget {
 public:
  /// Adds `bytes`; throws FdbResourceExhausted once the cumulative total
  /// exceeds the limit. Relaxed atomics: charges race benignly (the limit
  /// is a governance bound, not an exact accounting), and the first thread
  /// to observe an over-limit total throws.
  void ChargeOrThrow(size_t bytes);

  uint64_t charged() const { return charged_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  void set_limit(uint64_t bytes) { limit_ = bytes; }

 private:
  std::atomic<uint64_t> charged_{0};
  uint64_t limit_ = 0;  // 0 = unlimited; set before the query starts
};

/// One query's governance state. Create per evaluation, bind with Scope on
/// every thread that works for the query, probe with CheckCancelled().
/// Configuration (SetDeadline / set_limit) must happen before the context
/// is shared; Cancel and the probes are thread-safe.
class ExecContext {
 public:
  enum class StopReason : uint8_t {
    kNone = 0,
    kCancelled,  ///< explicit Cancel()
    kTimeout,    ///< deadline passed
    kResource,   ///< budget exceeded (set so sibling threads stop too)
  };

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Absolute deadline; `seconds <= 0` clears it. Not thread-safe — call
  /// before sharing the context.
  void SetDeadline(double seconds) {
    has_deadline_ = seconds > 0.0;
    if (has_deadline_) deadline_ = MonotonicDeadline(seconds);
  }
  void SetDeadlineAt(MonotonicClock::time_point tp) {
    has_deadline_ = true;
    deadline_ = tp;
  }
  bool has_deadline() const { return has_deadline_; }
  MonotonicClock::time_point deadline() const { return deadline_; }

  /// Requests cooperative stop; the next probe on any bound thread throws.
  /// Thread-safe, idempotent (the first reason wins).
  void Cancel(StopReason reason = StopReason::kCancelled) {
    uint8_t expected = 0;
    stop_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                  std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return stop_.load(std::memory_order_relaxed) != 0;
  }
  StopReason stop_reason() const {
    return static_cast<StopReason>(stop_.load(std::memory_order_relaxed));
  }

  /// Cooperative probe: throws the FdbError subclass matching the stop
  /// reason. One relaxed load on the fast path; the deadline clock is read
  /// only every kDeadlineStride-th probe per thread.
  void CheckCancelled() {
    const uint8_t s = stop_.load(std::memory_order_relaxed);
    if (s != 0) ThrowStop(static_cast<StopReason>(s));
    if (has_deadline_) MaybeCheckDeadline();
  }

  /// Non-throwing probe for callers that report timeouts as data instead
  /// of unwinding (the rdb/vdb baselines). Same cost profile.
  bool StopRequested() {
    if (stop_.load(std::memory_order_relaxed) != 0) return true;
    if (has_deadline_ && DeadlineStrideHit() &&
        MonotonicClock::now() >= deadline_) {
      Cancel(StopReason::kTimeout);
      return true;
    }
    return false;
  }

  MemoryBudget& budget() { return budget_; }
  const MemoryBudget& budget() const { return budget_; }

  /// Charges query memory against the budget (no-op when no context is
  /// bound — library callers are ungoverned). Throws FdbResourceExhausted
  /// over budget and flags the context so sibling threads stop promptly.
  void ChargeMemory(size_t bytes) {
    try {
      budget_.ChargeOrThrow(bytes);
    } catch (const FdbResourceExhausted&) {
      Cancel(StopReason::kResource);
      throw;
    }
  }

  /// The context bound to this thread (nullptr when ungoverned).
  static ExecContext* Current() { return tls_current_; }

  /// RAII binding of a context to the current thread. Nesting restores the
  /// previous binding; binding nullptr is allowed (explicitly ungoverned).
  class Scope {
   public:
    explicit Scope(ExecContext* ctx) : prev_(tls_current_) {
      tls_current_ = ctx;
    }
    ~Scope() { tls_current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ExecContext* prev_;
  };

 private:
  /// True every kDeadlineStride-th call on this thread. The counter is
  /// thread-local and shared across contexts — striding is a cost control,
  /// not a correctness property, so cross-context interleaving is fine.
  static bool DeadlineStrideHit() {
    return (++tls_probe_tick_ & (kDeadlineStride - 1)) == 0;
  }

  void MaybeCheckDeadline() {
    if (!DeadlineStrideHit()) return;
    if (MonotonicClock::now() >= deadline_) {
      Cancel(StopReason::kTimeout);
      ThrowStop(StopReason::kTimeout);
    }
  }

  [[noreturn]] void ThrowStop(StopReason reason) const;

  static constexpr uint32_t kDeadlineStride = 256;  // probes per clock read

  std::atomic<uint8_t> stop_{0};  // StopReason, 0 = running
  bool has_deadline_ = false;
  MonotonicClock::time_point deadline_{};
  MemoryBudget budget_;

  static thread_local ExecContext* tls_current_;
  static thread_local uint32_t tls_probe_tick_;
};

/// Probes the ambient context, if any. The canonical probe for engine
/// inner loops: one thread-local load when ungoverned.
inline void CheckAmbientCancelled() {
  if (ExecContext* ctx = ExecContext::Current()) ctx->CheckCancelled();
}

/// Charges the ambient context's budget, if any.
inline void ChargeAmbientMemory(size_t bytes) {
  if (ExecContext* ctx = ExecContext::Current()) ctx->ChargeMemory(bytes);
}

/// Runs `fn`, translating std::bad_alloc into FdbResourceExhausted so
/// allocation failure surfaces as a graceful FdbError instead of killing
/// the process. The only sanctioned place to catch std::bad_alloc —
/// tools/fdb_lint.py (bad-alloc-catch) rejects raw catches outside
/// src/common/.
template <typename Fn>
auto TranslateBadAlloc(Fn&& fn, const char* what) -> decltype(fn()) {
  try {
    return std::forward<Fn>(fn)();
  } catch (const std::bad_alloc&) {
    throw FdbResourceExhausted(std::string("out of memory: ") + what);
  }
}

}  // namespace fdb

#endif  // FDB_COMMON_EXEC_CONTEXT_H_
