// Wall-clock timing for experiments (the paper reports wall-clock times).
#ifndef FDB_COMMON_TIMER_H_
#define FDB_COMMON_TIMER_H_

#include <chrono>

namespace fdb {

/// The project's canonical monotonic clock. All timing outside
/// src/common/ and src/bench_util/ must go through this alias, Timer,
/// ExecContext deadlines (common/exec_context.h) or trace spans
/// (common/trace.h) — naming std::chrono::steady_clock directly
/// elsewhere is a lint violation (tools/fdb_lint.py raw-timing), so
/// every clock read stays swappable and traceable from one place.
using MonotonicClock = std::chrono::steady_clock;

/// Absolute monotonic instant `seconds` from now (e.g. a request
/// deadline).
inline MonotonicClock::time_point MonotonicDeadline(double seconds) {
  return MonotonicClock::now() +
         std::chrono::duration_cast<MonotonicClock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = MonotonicClock;
  Clock::time_point start_;
};

}  // namespace fdb

#endif  // FDB_COMMON_TIMER_H_
