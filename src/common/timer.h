// Wall-clock timing for experiments (the paper reports wall-clock times).
#ifndef FDB_COMMON_TIMER_H_
#define FDB_COMMON_TIMER_H_

#include <chrono>

namespace fdb {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Simple deadline used to emulate the paper's 100-second query timeout.
class Deadline {
 public:
  /// `seconds <= 0` means "no deadline".
  explicit Deadline(double seconds) : seconds_(seconds) {}

  bool Expired() const {
    return seconds_ > 0 && timer_.Seconds() > seconds_;
  }

  double Budget() const { return seconds_; }

 private:
  double seconds_;
  Timer timer_;
};

}  // namespace fdb

#endif  // FDB_COMMON_TIMER_H_
