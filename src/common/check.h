// Contract-check macros: FDB_ASSERT (always on) and FDB_DCHECK (debug /
// FDB_VALIDATE builds only).
//
// These complement the FDB_CHECK/FDB_CHECK_MSG macros in common/types.h,
// which *throw FdbError* and guard recoverable precondition violations
// (malformed queries, corrupted input files — things a serve-path worker
// catches and answers as an error response). FDB_ASSERT/FDB_DCHECK guard
// *programming errors*: internal invariants whose violation means the
// process state can no longer be trusted, so they print the failed
// expression with file:line and message to stderr and abort() — no stack
// unwinding that could run destructors over corrupted state, and a core
// dump / sanitizer report pointing at the exact contract that broke.
//
// Use FDB_ASSERT for cheap checks worth keeping in release builds;
// FDB_DCHECK for checks that are too hot for release (per-entry loops,
// operator inner loops) — it compiles to nothing unless NDEBUG is unset or
// FDB_VALIDATE is defined (the debug/asan presets define it).
#ifndef FDB_COMMON_CHECK_H_
#define FDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fdb {
namespace internal {

[[noreturn]] inline void AssertFailure(const char* expr, const char* file,
                                       int line, const char* msg) {
  // fprintf, not iostreams: this must work mid-corruption, with no
  // allocation and no locale machinery.
  std::fprintf(stderr, "FDB_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               (msg != nullptr) ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace fdb

/// Always-on contract check; aborts with expression + file:line + message.
#define FDB_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::fdb::internal::AssertFailure(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define FDB_ASSERT_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr))                                                        \
      ::fdb::internal::AssertFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only contract check: active when NDEBUG is unset (Debug builds)
/// or FDB_VALIDATE is defined; compiles to nothing otherwise. The expression
/// is not evaluated when disabled — keep it side-effect free.
#if !defined(NDEBUG) || defined(FDB_VALIDATE)
#define FDB_DCHECK(expr) FDB_ASSERT(expr)
#define FDB_DCHECK_MSG(expr, msg) FDB_ASSERT_MSG(expr, msg)
#else
#define FDB_DCHECK(expr) \
  do {                   \
  } while (0)
#define FDB_DCHECK_MSG(expr, msg) \
  do {                            \
  } while (0)
#endif

#endif  // FDB_COMMON_CHECK_H_
