#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace fdb {

Rng::Rng(uint64_t seed) {
  // splitmix64 expansion of the seed into two non-zero state words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9E3779B97f4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  FDB_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % span);
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(int64_t n, double alpha) : n_(n), alpha_(alpha) {
  FDB_CHECK(n >= 1);
  FDB_CHECK(alpha > 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf_[static_cast<size_t>(k - 1)] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

int64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace fdb
