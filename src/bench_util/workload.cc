#include "bench_util/workload.h"

#include <cstdlib>

namespace fdb {

namespace {

// Draws K non-redundant equalities over [0..num_attrs) and appends them to
// the query (mirrors GenerateWorkload's policy).
void DrawEqualities(Query* q, int num_attrs, int k, Rng& rng) {
  AttrSet universe = AttrSet::FirstN(static_cast<AttrId>(num_attrs));
  FDB_CHECK_MSG(k < num_attrs,
                "cannot draw K non-redundant equalities with K >= A");
  while (static_cast<int>(q->equalities.size()) < k) {
    AttrId a = static_cast<AttrId>(rng.Uniform(0, num_attrs - 1));
    AttrId b = static_cast<AttrId>(rng.Uniform(0, num_attrs - 1));
    if (a == b) continue;
    auto classes = EqualityClasses(universe, q->equalities);
    AttrSet ca, cb;
    for (const AttrSet& c : classes) {
      if (c.Contains(a)) ca = c;
      if (c.Contains(b)) cb = c;
    }
    if (ca == cb) continue;
    q->equalities.emplace_back(a, b);
  }
}

void FillRelation(Relation* rel, size_t rows, int64_t domain,
                  Distribution dist, double zipf_alpha, Rng& rng) {
  std::vector<Value> tuple(rel->arity());
  rel->Reserve(rows);
  if (dist == Distribution::kZipf) {
    ZipfSampler zipf(domain, zipf_alpha);
    for (size_t i = 0; i < rows; ++i) {
      for (Value& v : tuple) v = zipf.Sample(rng);
      rel->AddTuple(tuple);
    }
  } else {
    for (size_t i = 0; i < rows; ++i) {
      for (Value& v : tuple) v = rng.Uniform(1, domain);
      rel->AddTuple(tuple);
    }
  }
}

}  // namespace

BenchInstance MakeBenchInstance(const WorkloadSpec& spec) {
  BenchInstance inst;
  inst.spec = spec;
  inst.db = std::make_unique<Database>();
  Rng rng(spec.seed);

  std::vector<int> counts = DistributeAttrs(spec.num_attrs, spec.num_rels);
  AttrId next = 0;
  for (int r = 0; r < spec.num_rels; ++r) {
    std::vector<std::string> cols;
    for (int i = 0; i < counts[static_cast<size_t>(r)]; ++i) {
      cols.push_back("a" + std::to_string(next++));
    }
    RelId rid = inst.db->CreateRelation("r" + std::to_string(r), cols);
    FillRelation(&inst.db->relation(rid), spec.tuples_per_rel, spec.domain,
                 spec.dist, spec.zipf_alpha, rng);
    inst.query.rels.push_back(rid);
  }
  DrawEqualities(&inst.query, spec.num_attrs, spec.num_equalities, rng);
  return inst;
}

BenchInstance MakeHeterogeneousInstance(
    const std::vector<int>& arities, const std::vector<size_t>& sizes,
    int64_t domain, Distribution dist, double zipf_alpha, int num_equalities,
    uint64_t seed) {
  FDB_CHECK(arities.size() == sizes.size());
  BenchInstance inst;
  inst.db = std::make_unique<Database>();
  Rng rng(seed);

  int num_attrs = 0;
  for (size_t r = 0; r < arities.size(); ++r) {
    std::vector<std::string> cols;
    for (int i = 0; i < arities[r]; ++i) {
      cols.push_back("a" + std::to_string(num_attrs++));
    }
    RelId rid =
        inst.db->CreateRelation("r" + std::to_string(r), cols);
    FillRelation(&inst.db->relation(rid), sizes[r], domain, dist, zipf_alpha,
                 rng);
    inst.query.rels.push_back(rid);
  }
  DrawEqualities(&inst.query, num_attrs, num_equalities, rng);

  inst.spec.num_rels = static_cast<int>(arities.size());
  inst.spec.num_attrs = num_attrs;
  inst.spec.domain = domain;
  inst.spec.dist = dist;
  inst.spec.zipf_alpha = zipf_alpha;
  inst.spec.num_equalities = num_equalities;
  inst.spec.seed = seed;
  return inst;
}

double BenchScale() {
  const char* s = std::getenv("FDB_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

double BenchTimeout() {
  const char* s = std::getenv("FDB_BENCH_TIMEOUT");
  if (s == nullptr) return 10.0;
  double v = std::atof(s);
  return v > 0 ? v : 10.0;
}

}  // namespace fdb
