#include "bench_util/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <thread>

namespace fdb {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  line(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

std::string FmtInt(uint64_t v) { return std::to_string(v); }

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string FmtSecs(double secs) {
  char buf[64];
  if (secs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", secs * 1e6);
  } else if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", secs * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", secs);
  }
  return buf;
}

void Banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

namespace {

void JsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// True iff `s` matches the JSON number grammar: -?int frac? exp?. Stricter
// than strtod, which also accepts hex floats, inf/nan and leading space —
// none of which may be emitted unquoted.
bool IsJsonNumber(const std::string& s) {
  size_t i = 0;
  const size_t n = s.size();
  auto digits = [&] {
    size_t start = i;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
    return i > start;
  };
  if (i < n && s[i] == '-') ++i;
  if (i < n && s[i] == '0') {
    ++i;  // leading zero must stand alone ("0", "0.5" — not "00", "0x1f")
  } else if (!digits()) {
    return false;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == n;
}

// Emits a cell as a bare JSON number when the whole string is one ("12",
// "0.031", "1.23e+06"), otherwise as a quoted string ("12.3ms", "t/o",
// "yes"). Keeps numeric columns directly plottable downstream.
void JsonCell(std::ostream& os, const std::string& s) {
  if (IsJsonNumber(s)) {
    os << s;
    return;
  }
  JsonEscape(os, s);
}

void JsonTable(std::ostream& os, const Table& table, const char* indent) {
  os << indent << "{\"headers\": [";
  for (size_t c = 0; c < table.headers().size(); ++c) {
    if (c) os << ", ";
    JsonEscape(os, table.headers()[c]);
  }
  os << "],\n" << indent << " \"rows\": [";
  for (size_t r = 0; r < table.rows().size(); ++r) {
    if (r) os << ',';
    os << '\n' << indent << "  [";
    const auto& row = table.rows()[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ", ";
      JsonCell(os, row[c]);
    }
    os << ']';
  }
  os << '\n' << indent << "]}";
}

// Provenance stamps. A BENCH_*.json is only comparable to another run if
// both came from the same commit, compiler, and build type; downstream
// tooling keys the perf trajectory on these fields.
#if defined(__clang_version__)
constexpr const char* kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

#ifdef FDB_BUILD_TYPE
constexpr const char* kBuildType = FDB_BUILD_TYPE;
#else
constexpr const char* kBuildType = "unknown";
#endif

// The binary cannot know its own commit; bench/run_all.sh exports
// FDB_BENCH_GIT_SHA after verifying the tree is clean. Direct invocations
// without it stamp "unknown" — honest, and distinguishable downstream.
std::string GitSha() {
  const char* sha = std::getenv("FDB_BENCH_GIT_SHA");
  return sha != nullptr && sha[0] != '\0' ? sha : "unknown";
}

}  // namespace

Report::Report(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)) {
  std::string arg_error;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        arg_error = "--json requires a path argument";
        break;
      }
      json_path_ = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path_ = arg + 7;
      if (json_path_.empty()) {
        arg_error = "--json= requires a non-empty path";
        break;
      }
    }
    // Other arguments are ignored; benches are configured via FDB_* env vars.
  }
  // Fail fast: a usage error must not surface only after minutes of
  // benchmarking. These are short-lived CLI drivers, so exiting here is fine.
  if (!arg_error.empty()) {
    std::cerr << bench_name_ << ": " << arg_error << "\n";
    std::exit(2);
  }
}

void Report::BeginSection(std::ostream& os, const std::string& title) {
  Banner(os, title);
  sections_.emplace_back(title);
}

void Report::Emit(std::ostream& os, const Table& table) {
  table.Print(os);
  if (sections_.empty()) sections_.emplace_back();
  sections_.back().tables.push_back(table);
}

int Report::Finish() {
  if (json_path_.empty()) return 0;
  std::ofstream out(json_path_);
  if (!out) {
    std::cerr << bench_name_ << ": cannot open " << json_path_
              << " for writing\n";
    return 1;
  }
  out << "{\"bench\": ";
  JsonEscape(out, bench_name_);
  // Host parallelism stamp: parallel-speedup numbers are meaningless
  // without knowing how many cores the run actually had (a 1-core host
  // cannot show any). Schema v2 adds the provenance triple.
  out << ",\n \"schema_version\": 2,\n \"hardware_concurrency\": "
      << std::thread::hardware_concurrency();
  out << ",\n \"git_sha\": ";
  JsonEscape(out, GitSha());
  out << ",\n \"compiler\": ";
  JsonEscape(out, kCompiler);
  out << ",\n \"build_type\": ";
  JsonEscape(out, kBuildType);
  out << ",\n \"sections\": [";
  for (size_t s = 0; s < sections_.size(); ++s) {
    if (s) out << ',';
    const Section& sec = sections_[s];
    out << "\n  {\"title\": ";
    JsonEscape(out, sec.title);
    out << ",\n   \"tables\": [";
    for (size_t t = 0; t < sec.tables.size(); ++t) {
      if (t) out << ",\n";
      else out << '\n';
      JsonTable(out, sec.tables[t], "    ");
    }
    out << "\n   ]}";
  }
  out << "\n ]}\n";
  out.close();
  if (!out) {
    std::cerr << bench_name_ << ": error writing " << json_path_ << "\n";
    return 1;
  }
  return 0;
}

}  // namespace fdb
