#include "bench_util/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace fdb {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  line(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

std::string FmtInt(uint64_t v) { return std::to_string(v); }

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string FmtSecs(double secs) {
  char buf[64];
  if (secs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", secs * 1e6);
  } else if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", secs * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", secs);
  }
  return buf;
}

void Banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace fdb
