// Plain-text table/series reporting for the experiment harnesses. Each
// bench binary prints the rows/series of the paper figure it regenerates.
#ifndef FDB_BENCH_UTIL_REPORT_H_
#define FDB_BENCH_UTIL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace fdb {

/// A fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting used across benches.
std::string FmtInt(uint64_t v);
std::string FmtDouble(double v, int precision = 3);
std::string FmtSci(double v);       ///< 1.23e+06
std::string FmtSecs(double secs);   ///< 12.3ms / 1.23s

/// Prints a figure banner, e.g. "== Figure 5 (left): ... ==".
void Banner(std::ostream& os, const std::string& title);

}  // namespace fdb

#endif  // FDB_BENCH_UTIL_REPORT_H_
