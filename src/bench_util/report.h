// Plain-text table/series reporting for the experiment harnesses. Each
// bench binary prints the rows/series of the paper figure it regenerates,
// and can additionally dump everything it printed as one machine-readable
// JSON document (`--json out.json`) for the perf trajectory. Every JSON
// artifact is stamped with provenance (git_sha from $FDB_BENCH_GIT_SHA,
// compiler, build type) so runs are only ever compared like-for-like.
#ifndef FDB_BENCH_UTIL_REPORT_H_
#define FDB_BENCH_UTIL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace fdb {

/// A fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Collects everything a bench binary prints — banner-titled sections, each
/// holding the tables emitted under it — and mirrors it to a JSON file when
/// the binary was invoked with `--json <path>` (or `--json=<path>`).
///
///   int main(int argc, char** argv) {
///     fdb::Report report("exp1_optimisation_flat", argc, argv);
///     Run(report);              // BeginSection(...) + Emit(...) inside
///     return report.Finish();
///   }
///
/// BeginSection/Emit are drop-in replacements for Banner/Table::Print: they
/// produce identical text output and additionally record the data.
class Report {
 public:
  /// Parses `--json <path>` / `--json=<path>` from argv; other arguments are
  /// ignored (benches are configured via FDB_* env vars). Malformed --json
  /// usage prints an error and exits(2) immediately — before the bench runs.
  Report(std::string bench_name, int argc, char** argv);

  /// Prints the banner to `os` and opens a new section of the report.
  void BeginSection(std::ostream& os, const std::string& title);

  /// Prints `table` to `os` and attaches it to the current section. A table
  /// emitted before any BeginSection lands in an untitled section.
  void Emit(std::ostream& os, const Table& table);

  /// Writes the JSON document if requested. Returns a process exit code:
  /// 0 on success (or nothing to do), 1 on bad arguments or I/O failure.
  int Finish();

 private:
  struct Section {
    std::string title;
    std::vector<Table> tables;
  };

  std::string bench_name_;
  std::string json_path_;
  std::vector<Section> sections_;
};

/// Number formatting used across benches.
std::string FmtInt(uint64_t v);
std::string FmtDouble(double v, int precision = 3);
std::string FmtSci(double v);       ///< 1.23e+06
std::string FmtSecs(double secs);   ///< 12.3ms / 1.23s

/// Prints a figure banner, e.g. "== Figure 5 (left): ... ==".
void Banner(std::ostream& os, const std::string& title);

}  // namespace fdb

#endif  // FDB_BENCH_UTIL_REPORT_H_
