// Workload construction for the experiment harnesses (§5, Experimental
// Design): R relations with A attributes distributed uniformly, N tuples
// per relation with uniform/Zipf values in [1..M], equi-join queries with K
// non-redundant equalities — assembled into an fdb::Database ready for the
// Engine and the baselines.
#ifndef FDB_BENCH_UTIL_WORKLOAD_H_
#define FDB_BENCH_UTIL_WORKLOAD_H_

#include <memory>

#include "api/database.h"
#include "api/engine.h"
#include "storage/generator.h"

namespace fdb {

/// A generated database plus the generated query over it.
struct BenchInstance {
  std::unique_ptr<Database> db;  // stable address for Engine
  Query query;
  WorkloadSpec spec;
};

/// Builds the database and query for `spec`.
BenchInstance MakeBenchInstance(const WorkloadSpec& spec);

/// Per-relation tuple counts may differ (Fig. 7 right column uses two
/// binary relations of 64 tuples and two ternary ones of 512); this variant
/// takes explicit per-relation aritys and sizes.
BenchInstance MakeHeterogeneousInstance(
    const std::vector<int>& arities, const std::vector<size_t>& sizes,
    int64_t domain, Distribution dist, double zipf_alpha, int num_equalities,
    uint64_t seed);

/// Reads scaling knobs from the environment: FDB_BENCH_SCALE (float,
/// default 1) multiplies data sizes; FDB_BENCH_TIMEOUT (seconds, default
/// 10) bounds each baseline run (the paper used 100 s).
double BenchScale();
double BenchTimeout();

}  // namespace fdb

#endif  // FDB_BENCH_UTIL_WORKLOAD_H_
