#include "storage/query.h"

#include <algorithm>

namespace fdb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

bool EvalCmp(Value lhs, CmpOp op, Value rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

AttrSet QueryInfo::ClassOf(AttrId attr) const {
  for (const AttrSet& cls : classes) {
    if (cls.Contains(attr)) return cls;
  }
  return AttrSet::Of({attr});
}

RelSet QueryInfo::RelsCovering(AttrSet attrs) const {
  RelSet out;
  for (int r = 0; r < num_rels; ++r) {
    if (rel_attrs[static_cast<size_t>(r)].Intersects(attrs)) {
      out.Add(static_cast<AttrId>(r));
    }
  }
  return out;
}

std::vector<AttrSet> EqualityClasses(
    AttrSet universe, const std::vector<std::pair<AttrId, AttrId>>& eqs) {
  // Union-find over attribute ids.
  std::vector<AttrId> parent(kMaxAttrs);
  for (AttrId i = 0; i < kMaxAttrs; ++i) parent[i] = i;
  auto find = [&](AttrId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : eqs) {
    FDB_CHECK_MSG(universe.Contains(a) && universe.Contains(b),
                  "equality over attribute not in the query");
    AttrId ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  std::vector<AttrSet> classes(kMaxAttrs);
  for (AttrId a : universe) classes[find(a)].Add(a);
  std::vector<AttrSet> out;
  for (const AttrSet& c : classes) {
    if (!c.Empty()) out.push_back(c);
  }
  return out;
}

QueryInfo AnalyzeQuery(const Catalog& catalog, const Query& q) {
  QueryInfo info;
  info.num_rels = static_cast<int>(q.rels.size());
  FDB_CHECK_MSG(info.num_rels > 0, "query must reference at least one relation");
  FDB_CHECK_MSG(q.rels.size() <= kMaxRels, "too many relations in query");

  info.attr_rel.assign(kMaxAttrs, -1);
  for (size_t r = 0; r < q.rels.size(); ++r) {
    FDB_CHECK_MSG(q.rels[r] < catalog.num_rels(), "unknown relation in query");
    AttrSet attrs = catalog.RelAttrSet(q.rels[r]);
    for (AttrId a : attrs) {
      FDB_CHECK_MSG(info.attr_rel[a] == -1,
                    "attribute occurs in two query relations (alias the "
                    "relation for self-joins): " + catalog.attr(a).name);
      info.attr_rel[a] = static_cast<int>(r);
    }
    info.rel_attrs.push_back(attrs);
    info.all_attrs = info.all_attrs.Union(attrs);
  }

  for (const auto& [a, b] : q.equalities) {
    FDB_CHECK_MSG(info.all_attrs.Contains(a) && info.all_attrs.Contains(b),
                  "equality over attribute not in the query");
  }
  for (const ConstPred& p : q.const_preds) {
    FDB_CHECK_MSG(info.all_attrs.Contains(p.attr),
                  "constant predicate over attribute not in the query");
  }
  FDB_CHECK_MSG(info.all_attrs.ContainsAll(q.projection),
                "projection attribute not in the query");

  info.classes = EqualityClasses(info.all_attrs, q.equalities);
  info.projection = q.projection.Empty() ? info.all_attrs : q.projection;
  return info;
}

}  // namespace fdb
