#include "storage/query.h"

#include <algorithm>

namespace fdb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

bool EvalCmp(Value lhs, CmpOp op, Value rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

void GroupedTable::AddRow(std::span<const Value> key,
                          std::span<const double> agg) {
  FDB_CHECK(key.size() == group_schema.size() && agg.size() == specs.size());
  keys.insert(keys.end(), key.begin(), key.end());
  aggs.insert(aggs.end(), agg.begin(), agg.end());
  ++num_rows;
}

void GroupedTable::SortByKey() {
  const size_t kk = group_schema.size(), ka = specs.size();
  std::vector<size_t> idx(num_rows);
  for (size_t i = 0; i < num_rows; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < kk; ++c) {
      if (keys[a * kk + c] != keys[b * kk + c]) {
        return keys[a * kk + c] < keys[b * kk + c];
      }
    }
    return false;
  });
  std::vector<Value> nk(keys.size());
  std::vector<double> na(aggs.size());
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t c = 0; c < kk; ++c) nk[i * kk + c] = keys[idx[i] * kk + c];
    for (size_t c = 0; c < ka; ++c) na[i * ka + c] = aggs[idx[i] * ka + c];
  }
  keys = std::move(nk);
  aggs = std::move(na);
}

AttrSet QueryInfo::ClassOf(AttrId attr) const {
  for (const AttrSet& cls : classes) {
    if (cls.Contains(attr)) return cls;
  }
  return AttrSet::Of({attr});
}

RelSet QueryInfo::RelsCovering(AttrSet attrs) const {
  RelSet out;
  for (int r = 0; r < num_rels; ++r) {
    if (rel_attrs[static_cast<size_t>(r)].Intersects(attrs)) {
      out.Add(static_cast<AttrId>(r));
    }
  }
  return out;
}

std::vector<AttrSet> EqualityClasses(
    AttrSet universe, const std::vector<std::pair<AttrId, AttrId>>& eqs) {
  // Union-find over attribute ids.
  std::vector<AttrId> parent(kMaxAttrs);
  for (AttrId i = 0; i < kMaxAttrs; ++i) parent[i] = i;
  auto find = [&](AttrId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : eqs) {
    FDB_CHECK_MSG(universe.Contains(a) && universe.Contains(b),
                  "equality over attribute not in the query");
    AttrId ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  std::vector<AttrSet> classes(kMaxAttrs);
  for (AttrId a : universe) classes[find(a)].Add(a);
  std::vector<AttrSet> out;
  for (const AttrSet& c : classes) {
    if (!c.Empty()) out.push_back(c);
  }
  return out;
}

QueryInfo AnalyzeQuery(const Catalog& catalog, const Query& q) {
  QueryInfo info;
  info.num_rels = static_cast<int>(q.rels.size());
  FDB_CHECK_MSG(info.num_rels > 0, "query must reference at least one relation");
  FDB_CHECK_MSG(q.rels.size() <= kMaxRels, "too many relations in query");

  info.attr_rel.assign(kMaxAttrs, -1);
  for (size_t r = 0; r < q.rels.size(); ++r) {
    FDB_CHECK_MSG(q.rels[r] < catalog.num_rels(), "unknown relation in query");
    AttrSet attrs = catalog.RelAttrSet(q.rels[r]);
    for (AttrId a : attrs) {
      FDB_CHECK_MSG(info.attr_rel[a] == -1,
                    "attribute occurs in two query relations (alias the "
                    "relation for self-joins): " + catalog.attr(a).name);
      info.attr_rel[a] = static_cast<int>(r);
    }
    info.rel_attrs.push_back(attrs);
    info.all_attrs = info.all_attrs.Union(attrs);
  }

  for (const auto& [a, b] : q.equalities) {
    FDB_CHECK_MSG(info.all_attrs.Contains(a) && info.all_attrs.Contains(b),
                  "equality over attribute not in the query");
  }
  for (const ConstPred& p : q.const_preds) {
    FDB_CHECK_MSG(info.all_attrs.Contains(p.attr),
                  "constant predicate over attribute not in the query");
  }
  FDB_CHECK_MSG(info.all_attrs.ContainsAll(q.projection),
                "projection attribute not in the query");

  FDB_CHECK_MSG(info.all_attrs.ContainsAll(q.group_by),
                "GROUP BY attribute not in the query");
  for (const AggSpec& s : q.aggregates) {
    if (s.fn == AggFn::kCount) continue;
    FDB_CHECK_MSG(info.all_attrs.Contains(s.attr),
                  std::string(AggFnName(s.fn)) +
                      " over attribute not in the query");
    // String values are dictionary codes in first-seen order; summing or
    // ordering them would silently aggregate the codes, not the strings.
    FDB_CHECK_MSG(!catalog.attr(s.attr).is_string,
                  std::string(AggFnName(s.fn)) +
                      " over string attribute " + catalog.attr(s.attr).name +
                      " (dictionary codes have no aggregate semantics)");
  }
  if (q.IsAggregate()) {
    // SQL rule: plain SELECT-list attributes must be grouped on.
    FDB_CHECK_MSG(q.group_by.ContainsAll(q.projection),
                  "non-aggregated SELECT attribute not in GROUP BY");
  }
  info.group_by = q.group_by;
  info.aggregates = q.aggregates;

  info.classes = EqualityClasses(info.all_attrs, q.equalities);
  info.projection = q.projection.Empty() ? info.all_attrs : q.projection;
  return info;
}

}  // namespace fdb
