#include "storage/catalog.h"

#include <sstream>

namespace fdb {

AttrId Catalog::AddAttribute(const std::string& name, bool is_string) {
  FDB_CHECK_MSG(attrs_.size() < kMaxAttrs,
                "attribute universe full (max 64 attributes per database)");
  FDB_CHECK_MSG(attr_by_name_.find(name) == attr_by_name_.end(),
                "duplicate attribute name: " + name);
  AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.emplace_back(name, is_string);
  attr_by_name_.emplace(name, id);
  return id;
}

RelId Catalog::AddRelation(const std::string& name, std::vector<AttrId> attrs) {
  FDB_CHECK_MSG(rels_.size() < kMaxRels, "too many relations");
  FDB_CHECK_MSG(rel_by_name_.find(name) == rel_by_name_.end(),
                "duplicate relation name: " + name);
  for (AttrId a : attrs) FDB_CHECK_MSG(a < attrs_.size(), "unknown attribute id");
  RelId id = static_cast<RelId>(rels_.size());
  rels_.emplace_back(name, std::move(attrs));
  rel_by_name_.emplace(name, id);
  return id;
}

int Catalog::FindAttribute(const std::string& name) const {
  auto it = attr_by_name_.find(name);
  return it == attr_by_name_.end() ? -1 : static_cast<int>(it->second);
}

int Catalog::FindRelation(const std::string& name) const {
  auto it = rel_by_name_.find(name);
  return it == rel_by_name_.end() ? -1 : static_cast<int>(it->second);
}

std::string Catalog::ClassName(AttrSet cls) const {
  std::ostringstream os;
  bool first = true;
  for (AttrId a : cls) {
    if (!first) os << '=';
    os << (a < attrs_.size() ? attrs_[a].name : "?" + std::to_string(a));
    first = false;
  }
  return os.str();
}

}  // namespace fdb
