#include "storage/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/str.h"

namespace fdb {

Relation ReadCsv(std::istream& in, const std::string& rel_name, char sep,
                 Catalog* catalog, Dictionary* dict) {
  std::string line;
  FDB_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                "empty CSV input for relation " + rel_name);

  std::vector<AttrId> attrs;
  std::vector<bool> is_string;
  for (const std::string& raw : Split(line, sep)) {
    std::string field = Trim(raw);
    FDB_CHECK_MSG(!field.empty(), "empty column name in CSV header");
    bool str_col = false;
    std::string name = field;
    if (field.ends_with(":str")) {
      str_col = true;
      name = field.substr(0, field.size() - 4);
    }
    int existing = catalog->FindAttribute(name);
    AttrId id;
    if (existing >= 0) {
      id = static_cast<AttrId>(existing);
      FDB_CHECK_MSG(catalog->attr(id).is_string == str_col,
                    "column type mismatch for attribute " + name);
    } else {
      id = catalog->AddAttribute(name, str_col);
    }
    for (AttrId prev : attrs) {
      FDB_CHECK_MSG(prev != id, "duplicate column name in CSV header: " + name);
    }
    attrs.push_back(id);
    is_string.push_back(str_col);
  }

  Relation rel(attrs);
  std::vector<Value> tuple(attrs.size());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, sep);
    FDB_CHECK_MSG(fields.size() == attrs.size(),
                  "row " + std::to_string(line_no) + " of " + rel_name +
                      " has wrong arity");
    for (size_t c = 0; c < fields.size(); ++c) {
      std::string f = Trim(fields[c]);
      if (is_string[c]) {
        tuple[c] = dict->Intern(f);
      } else {
        int64_t v;
        FDB_CHECK_MSG(ParseInt64(f, &v),
                      "non-integer value '" + f + "' at row " +
                          std::to_string(line_no) + " of " + rel_name);
        tuple[c] = v;
      }
    }
    rel.AddTuple(tuple);
  }
  catalog->AddRelation(rel_name, attrs);
  return rel;
}

Relation ReadCsvFile(const std::string& path, const std::string& rel_name,
                     char sep, Catalog* catalog, Dictionary* dict) {
  std::ifstream in(path);
  FDB_CHECK_MSG(in.good(), "cannot open CSV file: " + path);
  return ReadCsv(in, rel_name, sep, catalog, dict);
}

void WriteCsv(std::ostream& out, const Relation& rel, const Catalog& catalog,
              const Dictionary& dict, char sep) {
  const auto& schema = rel.schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    if (c) out << sep;
    const AttrInfo& info = catalog.attr(schema[c]);
    out << info.name;
    if (info.is_string) out << ":str";
  }
  out << '\n';
  for (size_t r = 0; r < rel.size(); ++r) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c) out << sep;
      Value v = rel.At(r, c);
      if (catalog.attr(schema[c]).is_string) {
        out << dict.Decode(v);
      } else {
        out << v;
      }
    }
    out << '\n';
  }
}

}  // namespace fdb
