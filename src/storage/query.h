// Select-project-join queries (optionally grouped-aggregate) and their
// static analysis.
//
// Q = pi_P sigma_phi (R1 x ... x Rn) where phi is a conjunction of
// attribute-attribute equalities and attribute-constant comparisons (§2).
// A query may additionally carry GROUP BY attributes and aggregate
// functions over the join result (the PVLDB'13 follow-up "Aggregation and
// Ordering in Factorised Databases"); see core/aggregate.h for the
// factorised evaluation.
#ifndef FDB_STORAGE_QUERY_H_
#define FDB_STORAGE_QUERY_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/attrset.h"
#include "common/types.h"
#include "storage/catalog.h"

namespace fdb {

/// Comparison operator for constant predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
bool EvalCmp(Value lhs, CmpOp op, Value rhs);

/// A predicate "attr op constant".
struct ConstPred {
  AttrId attr;
  CmpOp op;
  Value value;
};

/// Aggregate functions evaluable inside the factorisation.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregate call of the SELECT list. Aggregates range over the
/// *distinct tuples* of the join result taken over all query attributes
/// (relations are sets), matching core/aggregate.h.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  AttrId attr = 0;  ///< aggregated attribute; ignored for kCount

  bool operator==(const AggSpec& o) const = default;
};

/// Flat grouped-aggregate result: one row per group, keyed by the group-by
/// attributes (ascending id order) with one double column per aggregate
/// spec (COUNT/MIN/MAX are integral but widen to double uniformly; values
/// past 2^53 lose precision only in this flat view — the factorised result
/// keeps counts in uint64_t).
struct GroupedTable {
  std::vector<AttrId> group_schema;  ///< ascending attribute ids
  std::vector<AggSpec> specs;
  size_t num_rows = 0;
  std::vector<Value> keys;   ///< num_rows x group_schema.size(), row-major
  std::vector<double> aggs;  ///< num_rows x specs.size(), row-major

  void AddRow(std::span<const Value> key, std::span<const double> agg);
  Value KeyAt(size_t row, size_t col) const {
    return keys[row * group_schema.size() + col];
  }
  double AggAt(size_t row, size_t col) const {
    return aggs[row * specs.size() + col];
  }

  /// Sorts rows lexicographically by key (keys are unique per group), so
  /// tables from different evaluation strategies compare positionally.
  void SortByKey();

  bool operator==(const GroupedTable& o) const = default;
};

/// An SPJ query over catalog relations.
struct Query {
  /// Catalog relation ids; the position in this vector is the query-local
  /// relation index used everywhere else (RelSet bits, f-tree bookkeeping).
  std::vector<RelId> rels;

  /// Equality conditions A = B over attributes of the query's relations.
  std::vector<std::pair<AttrId, AttrId>> equalities;

  /// Constant comparisons.
  std::vector<ConstPred> const_preds;

  /// Attributes to keep; an empty set means "project nothing away". For
  /// aggregate queries this holds the plain SELECT-list attributes, which
  /// must be a subset of `group_by`.
  AttrSet projection;

  /// GROUP BY attributes (empty = one global group when aggregates are
  /// present).
  AttrSet group_by;

  /// Aggregate calls of the SELECT list, in SELECT order.
  std::vector<AggSpec> aggregates;

  /// True when the statement was prefixed with EXPLAIN ANALYZE: the engine
  /// executes the query normally but records a QueryTrace and returns its
  /// rendering instead of the result rows (api/engine.h).
  bool explain_analyze = false;

  /// True when the query is a grouped-aggregate query (evaluated by
  /// Engine::ExecuteAggregate rather than the plain SPJ path). GROUP BY
  /// without aggregates is the DISTINCT-groups query.
  bool IsAggregate() const { return !aggregates.empty() || !group_by.Empty(); }

  /// The SPJ core an aggregate query ranges over: the same relations and
  /// conditions with projection, grouping and aggregates stripped (the
  /// join result carries all attributes). Used by the engine and the
  /// baselines so both sides aggregate the identical relation.
  Query SpjCore() const {
    Query q = *this;
    q.projection = {};
    q.group_by = {};
    q.aggregates.clear();
    return q;
  }
};

/// Static analysis of a query against a catalog: relation attribute sets,
/// attribute equivalence classes, and ownership of attributes by query-local
/// relations. Validates that each attribute occurs in exactly one relation.
struct QueryInfo {
  int num_rels = 0;
  AttrSet all_attrs;                 ///< attributes of all query relations
  std::vector<AttrSet> rel_attrs;    ///< query-local rel -> its attributes
  std::vector<int> attr_rel;         ///< attr -> query-local rel, -1 if none
  std::vector<AttrSet> classes;      ///< attribute equivalence classes
  AttrSet projection;                ///< resolved projection (all attrs if empty)
  AttrSet group_by;                  ///< validated GROUP BY attributes
  std::vector<AggSpec> aggregates;   ///< validated aggregate calls

  /// The class containing `attr` (singleton class if the attribute is not
  /// mentioned in any equality).
  AttrSet ClassOf(AttrId attr) const;

  /// Relations (as a query-local bitmask) with an attribute in `attrs`.
  RelSet RelsCovering(AttrSet attrs) const;
};

/// Analyses `q` against `catalog`; throws FdbError on malformed queries
/// (unknown relations, attributes shared between two query relations,
/// equalities or predicates over attributes outside the query).
QueryInfo AnalyzeQuery(const Catalog& catalog, const Query& q);

/// Merges equality pairs into equivalence classes over `universe`;
/// attributes not mentioned get singleton classes.
std::vector<AttrSet> EqualityClasses(
    AttrSet universe, const std::vector<std::pair<AttrId, AttrId>>& eqs);

}  // namespace fdb

#endif  // FDB_STORAGE_QUERY_H_
