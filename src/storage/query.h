// Select-project-join queries and their static analysis.
//
// Q = pi_P sigma_phi (R1 x ... x Rn) where phi is a conjunction of
// attribute-attribute equalities and attribute-constant comparisons (§2).
#ifndef FDB_STORAGE_QUERY_H_
#define FDB_STORAGE_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/attrset.h"
#include "common/types.h"
#include "storage/catalog.h"

namespace fdb {

/// Comparison operator for constant predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
bool EvalCmp(Value lhs, CmpOp op, Value rhs);

/// A predicate "attr op constant".
struct ConstPred {
  AttrId attr;
  CmpOp op;
  Value value;
};

/// An SPJ query over catalog relations.
struct Query {
  /// Catalog relation ids; the position in this vector is the query-local
  /// relation index used everywhere else (RelSet bits, f-tree bookkeeping).
  std::vector<RelId> rels;

  /// Equality conditions A = B over attributes of the query's relations.
  std::vector<std::pair<AttrId, AttrId>> equalities;

  /// Constant comparisons.
  std::vector<ConstPred> const_preds;

  /// Attributes to keep; an empty set means "project nothing away".
  AttrSet projection;
};

/// Static analysis of a query against a catalog: relation attribute sets,
/// attribute equivalence classes, and ownership of attributes by query-local
/// relations. Validates that each attribute occurs in exactly one relation.
struct QueryInfo {
  int num_rels = 0;
  AttrSet all_attrs;                 ///< attributes of all query relations
  std::vector<AttrSet> rel_attrs;    ///< query-local rel -> its attributes
  std::vector<int> attr_rel;         ///< attr -> query-local rel, -1 if none
  std::vector<AttrSet> classes;      ///< attribute equivalence classes
  AttrSet projection;                ///< resolved projection (all attrs if empty)

  /// The class containing `attr` (singleton class if the attribute is not
  /// mentioned in any equality).
  AttrSet ClassOf(AttrId attr) const;

  /// Relations (as a query-local bitmask) with an attribute in `attrs`.
  RelSet RelsCovering(AttrSet attrs) const;
};

/// Analyses `q` against `catalog`; throws FdbError on malformed queries
/// (unknown relations, attributes shared between two query relations,
/// equalities or predicates over attributes outside the query).
QueryInfo AnalyzeQuery(const Catalog& catalog, const Query& q);

/// Merges equality pairs into equivalence classes over `universe`;
/// attributes not mentioned get singleton classes.
std::vector<AttrSet> EqualityClasses(
    AttrSet universe, const std::vector<std::pair<AttrId, AttrId>>& eqs);

}  // namespace fdb

#endif  // FDB_STORAGE_QUERY_H_
