#include "storage/relation.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_set>

namespace fdb {

namespace {

// Sort + dedup for a fixed arity K: each row is materialised as a
// contiguous key with its columns permuted into the requested compare
// order, so std::sort touches sequential memory instead of chasing a row
// permutation (two random reads per compare) — several times faster on
// multi-million-row results. Dedup on the permuted keys is exact because
// the order is a permutation of all K columns.
template <size_t K>
void SortRowsFixed(std::vector<Value>& data, const std::vector<size_t>& order) {
  const size_t n = data.size() / K;
  std::vector<std::array<Value, K>> keys(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < K; ++j) keys[r][j] = data[r * K + order[j]];
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  data.resize(keys.size() * K);
  for (size_t r = 0; r < keys.size(); ++r) {
    for (size_t j = 0; j < K; ++j) data[r * K + order[j]] = keys[r][j];
  }
}

}  // namespace

Relation::Relation(std::vector<AttrId> schema) : schema_(std::move(schema)) {
  AttrSet seen;
  for (AttrId a : schema_) {
    FDB_CHECK_MSG(!seen.Contains(a), "duplicate attribute in relation schema");
    seen.Add(a);
  }
}

size_t Relation::ColumnOf(AttrId attr) const {
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c] == attr) return c;
  }
  throw FdbError("attribute not in relation schema");
}

bool Relation::HasAttr(AttrId attr) const {
  return std::find(schema_.begin(), schema_.end(), attr) != schema_.end();
}

void Relation::AddTuple(std::span<const Value> tuple) {
  FDB_CHECK(tuple.size() == arity());
  if (arity() == 0) {
    nullary_count_ = 1;  // the nullary relation has at most one tuple
    return;
  }
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  sort_order_.clear();
}

void Relation::AppendRows(std::span<const Value> values) {
  FDB_CHECK_MSG(arity() > 0, "AppendRows on a nullary relation");
  FDB_CHECK_MSG(values.size() % arity() == 0,
                "AppendRows size must be a multiple of the arity");
  data_.insert(data_.end(), values.begin(), values.end());
  sort_order_.clear();
}

void Relation::AdoptRows(std::vector<Value>&& values) {
  FDB_CHECK_MSG(arity() > 0, "AdoptRows on a nullary relation");
  FDB_CHECK_MSG(values.size() % arity() == 0,
                "AdoptRows size must be a multiple of the arity");
  if (data_.empty()) {
    data_ = std::move(values);
  } else {
    data_.insert(data_.end(), values.begin(), values.end());
  }
  sort_order_.clear();
}

void Relation::SortByColumns(const std::vector<size_t>& cols) {
  const size_t k = arity();
  if (k == 0) return;
  // Total column order: requested columns first, the rest as tie-breakers.
  std::vector<size_t> order = cols;
  std::vector<bool> used(k, false);
  for (size_t c : order) {
    FDB_CHECK(c < k);
    used[c] = true;
  }
  for (size_t c = 0; c < k; ++c) {
    if (!used[c]) order.push_back(c);
  }

  // Narrow arities (every enumerated result in practice) take the
  // cache-friendly fixed-key sort; wider rows fall back to the generic
  // permutation sort below.
  switch (k) {
    case 1: SortRowsFixed<1>(data_, order); sort_order_ = order; return;
    case 2: SortRowsFixed<2>(data_, order); sort_order_ = order; return;
    case 3: SortRowsFixed<3>(data_, order); sort_order_ = order; return;
    case 4: SortRowsFixed<4>(data_, order); sort_order_ = order; return;
    default: break;
  }

  const size_t n = size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](size_t x, size_t y) {
    for (size_t c : order) {
      Value vx = data_[x * k + c], vy = data_[y * k + c];
      if (vx != vy) return vx < vy;
    }
    return false;
  });

  std::vector<Value> out;
  out.reserve(data_.size());
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t r = perm[i];
    if (kept > 0) {
      // Skip duplicates (relations are sets).
      const Value* prev = out.data() + (kept - 1) * k;
      const Value* cur = data_.data() + r * k;
      if (std::equal(prev, prev + k, cur)) continue;
    }
    out.insert(out.end(), data_.begin() + static_cast<ptrdiff_t>(r * k),
               data_.begin() + static_cast<ptrdiff_t>((r + 1) * k));
    ++kept;
  }
  data_ = std::move(out);
  sort_order_ = order;
}

void Relation::SortLex() {
  std::vector<size_t> cols(arity());
  std::iota(cols.begin(), cols.end(), 0);
  SortByColumns(cols);
}

size_t Relation::LowerBound(size_t lo, size_t hi, size_t col, Value v) const {
  const size_t k = arity();
  size_t count = hi - lo;
  while (count > 0) {
    size_t step = count / 2;
    size_t mid = lo + step;
    if (data_[mid * k + col] < v) {
      lo = mid + 1;
      count -= step + 1;
    } else {
      count = step;
    }
  }
  return lo;
}

std::pair<size_t, size_t> Relation::EqualRange(size_t lo, size_t hi,
                                               size_t col, Value v) const {
  size_t b = LowerBound(lo, hi, col, v);
  size_t e = LowerBound(b, hi, col, v + 1);
  return {b, e};
}

size_t Relation::DistinctCount(size_t col) const {
  std::unordered_set<Value> seen;
  const size_t n = size(), k = arity();
  for (size_t r = 0; r < n; ++r) seen.insert(data_[r * k + col]);
  return seen.size();
}

}  // namespace fdb
