// Synthetic data and query generation (§5, "Experimental Design").
//
// "We generate R relations and distribute uniformly A attributes over them.
//  Each relation has a given number of tuples, each value is a natural
//  number generated from 1 to M using uniform or Zipf distribution. The
//  queries are equi-joins over all of these relations. Their selections are
//  conjunctions of K non-redundant equalities."
#ifndef FDB_STORAGE_GENERATOR_H_
#define FDB_STORAGE_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {

/// Value distribution for generated columns.
enum class Distribution { kUniform, kZipf };

const char* DistributionName(Distribution d);

/// Parameters of a random database + query instance.
struct WorkloadSpec {
  int num_rels = 4;          ///< R
  int num_attrs = 10;        ///< A, distributed uniformly over relations
  size_t tuples_per_rel = 1000;  ///< N (same for every relation)
  int64_t domain = 100;      ///< M: values drawn from [1..M]
  Distribution dist = Distribution::kUniform;
  double zipf_alpha = 1.0;
  int num_equalities = 2;    ///< K non-redundant equalities
  uint64_t seed = 42;
};

/// A generated database plus the equi-join query over it.
struct GeneratedWorkload {
  Catalog catalog;
  std::vector<Relation> relations;  ///< indexed by catalog RelId
  Query query;
};

/// Generates one relation with `rows` tuples over the given schema.
Relation GenerateRelation(const std::vector<AttrId>& schema, size_t rows,
                          int64_t domain, Distribution dist, double zipf_alpha,
                          Rng& rng);

/// Distributes `num_attrs` attributes over `num_rels` relations as evenly as
/// possible (every relation gets at least one attribute).
std::vector<int> DistributeAttrs(int num_attrs, int num_rels);

/// Builds a full workload: schema, data, and a query joining all relations
/// with K non-redundant equalities (each equality merges two distinct
/// attribute equivalence classes; attributes are drawn uniformly).
GeneratedWorkload GenerateWorkload(const WorkloadSpec& spec);

/// Draws `count` additional non-redundant equalities over the given
/// attribute classes (used by Experiments 2 and 4: new queries on top of
/// previous results). Returns fewer if the classes cannot support that many.
std::vector<std::pair<AttrId, AttrId>> DrawExtraEqualities(
    const std::vector<AttrSet>& classes, int count, Rng& rng);

}  // namespace fdb

#endif  // FDB_STORAGE_GENERATOR_H_
