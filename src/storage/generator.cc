#include "storage/generator.h"

#include <algorithm>

namespace fdb {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipf: return "zipf";
  }
  return "?";
}

Relation GenerateRelation(const std::vector<AttrId>& schema, size_t rows,
                          int64_t domain, Distribution dist, double zipf_alpha,
                          Rng& rng) {
  Relation rel(schema);
  rel.Reserve(rows);
  std::vector<Value> tuple(schema.size());
  if (dist == Distribution::kZipf) {
    ZipfSampler zipf(domain, zipf_alpha);
    for (size_t r = 0; r < rows; ++r) {
      for (Value& v : tuple) v = zipf.Sample(rng);
      rel.AddTuple(tuple);
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      for (Value& v : tuple) v = rng.Uniform(1, domain);
      rel.AddTuple(tuple);
    }
  }
  return rel;
}

std::vector<int> DistributeAttrs(int num_attrs, int num_rels) {
  FDB_CHECK(num_rels >= 1);
  FDB_CHECK_MSG(num_attrs >= num_rels,
                "need at least one attribute per relation");
  std::vector<int> counts(static_cast<size_t>(num_rels),
                          num_attrs / num_rels);
  for (int i = 0; i < num_attrs % num_rels; ++i) ++counts[static_cast<size_t>(i)];
  return counts;
}

GeneratedWorkload GenerateWorkload(const WorkloadSpec& spec) {
  FDB_CHECK(spec.num_attrs <= static_cast<int>(kMaxAttrs));
  GeneratedWorkload w;
  Rng rng(spec.seed);

  std::vector<int> counts = DistributeAttrs(spec.num_attrs, spec.num_rels);
  AttrId next = 0;
  for (int r = 0; r < spec.num_rels; ++r) {
    std::vector<AttrId> schema;
    for (int i = 0; i < counts[static_cast<size_t>(r)]; ++i) {
      schema.push_back(
          w.catalog.AddAttribute("a" + std::to_string(next)));
      ++next;
    }
    RelId rid = w.catalog.AddRelation("r" + std::to_string(r), schema);
    w.relations.push_back(GenerateRelation(schema, spec.tuples_per_rel,
                                           spec.domain, spec.dist,
                                           spec.zipf_alpha, rng));
    w.query.rels.push_back(rid);
  }

  // K non-redundant equalities: each must merge two distinct equivalence
  // classes of the attributes drawn so far.
  AttrSet universe = AttrSet::FirstN(static_cast<AttrId>(spec.num_attrs));
  int max_eqs = spec.num_attrs - 1;
  FDB_CHECK_MSG(spec.num_equalities <= max_eqs,
                "cannot draw K non-redundant equalities with K >= A");
  while (static_cast<int>(w.query.equalities.size()) < spec.num_equalities) {
    AttrId a = static_cast<AttrId>(rng.Uniform(0, spec.num_attrs - 1));
    AttrId b = static_cast<AttrId>(rng.Uniform(0, spec.num_attrs - 1));
    if (a == b) continue;
    auto classes = EqualityClasses(universe, w.query.equalities);
    AttrSet ca, cb;
    for (const AttrSet& c : classes) {
      if (c.Contains(a)) ca = c;
      if (c.Contains(b)) cb = c;
    }
    if (ca == cb) continue;  // redundant
    w.query.equalities.emplace_back(a, b);
  }
  return w;
}

std::vector<std::pair<AttrId, AttrId>> DrawExtraEqualities(
    const std::vector<AttrSet>& classes, int count, Rng& rng) {
  // Work on a copy of the classes; each drawn equality merges two groups.
  std::vector<AttrSet> groups = classes;
  std::vector<std::pair<AttrId, AttrId>> out;
  while (static_cast<int>(out.size()) < count && groups.size() >= 2) {
    size_t i = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(groups.size()) - 1));
    size_t j = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(groups.size()) - 1));
    if (i == j) continue;
    // Pick a random attribute from each group.
    auto pick = [&](const AttrSet& g) {
      std::vector<AttrId> v = g.ToVector();
      return v[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(v.size()) - 1))];
    };
    out.emplace_back(pick(groups[i]), pick(groups[j]));
    groups[i] = groups[i].Union(groups[j]);
    groups.erase(groups.begin() + static_cast<ptrdiff_t>(j));
  }
  return out;
}

}  // namespace fdb
