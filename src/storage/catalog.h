// Schema catalog: global attribute universe and relation schemas.
//
// FDB follows the paper's query model: a query is over R1 x ... x Rn where
// every attribute id occurs in exactly one relation of the query; equality
// conditions link attributes (self-joins are expressed by registering an
// aliased copy of the relation with fresh attribute ids).
#ifndef FDB_STORAGE_CATALOG_H_
#define FDB_STORAGE_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/attrset.h"
#include "common/types.h"

namespace fdb {

/// Per-attribute metadata.
struct AttrInfo {
  std::string name;
  bool is_string = false;  ///< values are dictionary codes
};

/// Per-relation metadata.
struct RelInfo {
  std::string name;
  std::vector<AttrId> attrs;
};

/// Name/id registry for attributes and relation schemas.
class Catalog {
 public:
  /// Registers an attribute; names must be unique. Throws when the 64-
  /// attribute universe is full.
  AttrId AddAttribute(const std::string& name, bool is_string = false);

  /// Registers a relation schema over previously registered attributes.
  RelId AddRelation(const std::string& name, std::vector<AttrId> attrs);

  size_t num_attrs() const { return attrs_.size(); }
  size_t num_rels() const { return rels_.size(); }

  const AttrInfo& attr(AttrId id) const { return attrs_.at(id); }
  const RelInfo& rel(RelId id) const { return rels_.at(id); }

  /// Lookup by name; returns -1 (as the signed value) when absent.
  int FindAttribute(const std::string& name) const;
  int FindRelation(const std::string& name) const;

  /// Attribute set of a relation.
  AttrSet RelAttrSet(RelId id) const {
    return AttrSet::FromVector(rels_.at(id).attrs);
  }

  /// Human-readable label of an attribute class, e.g. "item=pitem".
  std::string ClassName(AttrSet cls) const;

 private:
  std::vector<AttrInfo> attrs_;
  std::vector<RelInfo> rels_;
  std::unordered_map<std::string, AttrId> attr_by_name_;
  std::unordered_map<std::string, RelId> rel_by_name_;
};

}  // namespace fdb

#endif  // FDB_STORAGE_CATALOG_H_
