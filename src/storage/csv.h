// CSV/TSV import and export.
//
// Header syntax: `name` (integer column) or `name:str` (dictionary-encoded
// string column). FDB and RDB read plain text, like the paper's prototypes.
#ifndef FDB_STORAGE_CSV_H_
#define FDB_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/dictionary.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace fdb {

/// Parses a relation from a stream. Registers the attributes (if new) and
/// the relation in `catalog`; strings are interned into `dict`.
/// Throws FdbError on malformed rows (wrong arity, non-integer value in an
/// integer column).
Relation ReadCsv(std::istream& in, const std::string& rel_name, char sep,
                 Catalog* catalog, Dictionary* dict);

/// Reads from a file path.
Relation ReadCsvFile(const std::string& path, const std::string& rel_name,
                     char sep, Catalog* catalog, Dictionary* dict);

/// Writes a relation with a header understood by ReadCsv.
void WriteCsv(std::ostream& out, const Relation& rel, const Catalog& catalog,
              const Dictionary& dict, char sep);

}  // namespace fdb

#endif  // FDB_STORAGE_CSV_H_
