// In-memory relations.
//
// A relation is a row-major array of 64-bit values plus a schema of global
// attribute ids. The engines (FDB grounding, RDB sort-merge) work on
// relations sorted lexicographically under a chosen column order, mirroring
// the paper's setup ("the relations are given sorted").
#ifndef FDB_STORAGE_RELATION_H_
#define FDB_STORAGE_RELATION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/attrset.h"
#include "common/types.h"

namespace fdb {

/// A flat relation instance over a fixed schema.
class Relation {
 public:
  /// `schema` lists the global attribute ids of the columns, left to right.
  /// Attribute ids must be distinct.
  explicit Relation(std::vector<AttrId> schema);

  size_t arity() const { return schema_.size(); }
  size_t size() const { return arity() == 0 ? nullary_count_ : data_.size() / arity(); }
  bool empty() const { return size() == 0; }

  const std::vector<AttrId>& schema() const { return schema_; }
  AttrSet attr_set() const { return AttrSet::FromVector(schema_); }

  /// Column position of a global attribute id; throws if absent.
  size_t ColumnOf(AttrId attr) const;
  bool HasAttr(AttrId attr) const;

  void Reserve(size_t rows) { data_.reserve(rows * arity()); }

  /// Appends one tuple; `tuple.size()` must equal arity().
  void AddTuple(std::span<const Value> tuple);

  /// Bulk-appends `values.size() / arity()` rows stored row-major (the
  /// merge step of parallel enumeration sinks). `values.size()` must be a
  /// multiple of arity(), which must be positive.
  void AppendRows(std::span<const Value> values);

  /// AppendRows that takes ownership: when the relation is still empty the
  /// buffer is moved in wholesale (no copy — the fast path for a
  /// single-chunk kernel materialisation), otherwise it degrades to a
  /// plain append. Same size contract as AppendRows.
  void AdoptRows(std::vector<Value>&& values);
  void AddTuple(std::initializer_list<Value> tuple) {
    AddTuple(std::span<const Value>(tuple.begin(), tuple.size()));
  }

  Value At(size_t row, size_t col) const { return data_[row * arity() + col]; }
  std::span<const Value> Row(size_t row) const {
    return {data_.data() + row * arity(), arity()};
  }

  /// Sorts rows lexicographically by the given column positions (remaining
  /// columns are appended as tie-breakers so the order is total) and removes
  /// exact duplicate rows (relations are sets).
  void SortByColumns(const std::vector<size_t>& cols);

  /// Sorts by columns 0,1,...,arity-1.
  void SortLex();

  /// The column order of the last SortByColumns call (empty if unsorted).
  const std::vector<size_t>& sort_order() const { return sort_order_; }

  /// First row index in [lo, hi) whose value in column `col` is >= v.
  /// Requires rows [lo, hi) to be sorted on `col` (true within an equal-
  /// prefix range of the sort order).
  size_t LowerBound(size_t lo, size_t hi, size_t col, Value v) const;

  /// Sub-range of [lo, hi) whose `col` value equals v (same requirement).
  std::pair<size_t, size_t> EqualRange(size_t lo, size_t hi, size_t col,
                                       Value v) const;

  /// Number of distinct values in a column (scans; used by the estimator).
  size_t DistinctCount(size_t col) const;

  /// Keeps only rows satisfying pred(row_index).
  template <typename Pred>
  void Filter(Pred pred) {
    size_t w = 0;
    const size_t n = size(), k = arity();
    for (size_t r = 0; r < n; ++r) {
      if (pred(r)) {
        if (w != r) {
          for (size_t c = 0; c < k; ++c) data_[w * k + c] = data_[r * k + c];
        }
        ++w;
      }
    }
    data_.resize(w * k);
  }

  /// Raw data access for tight loops.
  const std::vector<Value>& data() const { return data_; }

  bool operator==(const Relation& o) const {
    return schema_ == o.schema_ && data_ == o.data_ &&
           nullary_count_ == o.nullary_count_;
  }

 private:
  std::vector<AttrId> schema_;
  std::vector<Value> data_;
  std::vector<size_t> sort_order_;
  size_t nullary_count_ = 0;  // tuple count for arity-0 relations (0 or 1)
};

}  // namespace fdb

#endif  // FDB_STORAGE_RELATION_H_
