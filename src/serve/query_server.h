// QueryServer: a long-lived, concurrent entry point over one frozen
// Database + Engine pair — the serve path of the ROADMAP north star.
//
// Architecture (one process, no I/O here — examples/fdb_server.cc adds the
// socket front end):
//
//   clients ──Submit(sql)──▶ batching front door ──▶ request queue
//                                │ (requests with identical normalised
//                                │  SQL coalesce onto one evaluation)
//                                ▼
//              shared thread pool (common/thread_pool.h), at most
//              num_workers drain tasks running concurrently
//                                │  plan cache lookup (normalised SQL,
//                                │  db version) ── miss: parse + optimise
//                                ▼
//                  ground / execute / enumerate / render
//                                │
//                                ▼ one rendered body, fan-out to waiters
//
// The server owns no threads: Submit spawns a queue-draining task on the
// process-wide pool whenever fewer than num_workers are in flight, and
// each task loops until the queue is empty, so num_workers bounds the
// number of *concurrent evaluations* rather than naming dedicated
// threads. Shutdown waits for in-flight tasks instead of joining.
//
// The shared plan cache (serve/plan_cache.h) makes the steady-state hot
// path cache-lookup -> ground/execute -> enumerate, skipping the
// exponential f-tree search entirely. A cache entry is published only
// after its first successful execution, carrying a compiled enumeration
// kernel (core/kernel.h) specialised to the result shape — warm repeats
// reuse it without recompiling (ServerStats::kernels_built stays flat).
// Per-request deadlines are enforced at Submit (an already-expired
// deadline is answered TIMEOUT without burning a queue slot), at dequeue
// (expired requests are answered TIMEOUT without evaluating), *during*
// evaluation (the worker binds an ExecContext — common/exec_context.h —
// carrying the group's least-restrictive deadline and the per-query
// memory budget, and the engine's cooperative probes unwind to TIMEOUT /
// RESOURCE in bounded time, reclaiming the worker) and again at delivery.
//
// Observability: every server owns a MetricsRegistry (common/metrics.h)
// holding its request counters, the plan-cache counters and four latency
// histograms (queue wait, cache lookup, execute, render); recording is
// lock-free and MetricsExposition() renders the registry for the STATS
// protocol verb. EXPLAIN ANALYZE statements run their evaluation under a
// QueryTrace (common/trace.h) and answer with the rendered span tree
// (serve -> normalize/plan-cache-lookup/[parse/f-tree-search]/ground/...)
// instead of result rows.
//
// Thread safety: the database must be fully loaded before the server is
// constructed and must not change while it serves (Database::version
// guards cached plans against changes *between* serving sessions, not
// concurrent ones). Everything the workers share — the engine's LP memo,
// the dictionary, the plan cache, the queue — is internally synchronised;
// see the Engine concurrency contract in api/engine.h.
#ifndef FDB_SERVE_QUERY_SERVER_H_
#define FDB_SERVE_QUERY_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/database.h"
#include "api/engine.h"
#include "common/exec_context.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"

namespace fdb {

/// Serve-path knobs.
struct ServeOptions {
  /// Maximum evaluations running concurrently. Work is executed by tasks
  /// on the shared process-wide thread pool (common/thread_pool.h), not by
  /// dedicated server threads, so this bounds concurrency rather than
  /// sizing a pool.
  int num_workers = 4;
  size_t plan_cache_capacity = 64;   ///< LRU bound on cached plans
  double default_deadline_seconds = 0.0;  ///< <= 0: no deadline
  /// Admission control: maximum queued evaluation groups (0 = unbounded).
  /// A request that would open a group beyond the bound is rejected with
  /// BUSY immediately; requests that coalesce onto an already-queued
  /// group are always admitted (they add no queue pressure).
  size_t max_queue = 0;
  /// Resource governance (0 = unlimited for each). Violations answer
  /// RESOURCE (serve/protocol.h) — the query is the problem, not the
  /// load, so clients should not retry unchanged.
  ///
  /// Per-query memory budget: cumulative bytes of FRep arena growth one
  /// evaluation may charge (common/exec_context.h) before it is stopped
  /// cooperatively mid-execution.
  size_t max_memory_bytes = 0;
  /// Maximum rendered response body size; larger results are dropped and
  /// answered RESOURCE after evaluation.
  size_t max_result_bytes = 0;
  /// Maximum accepted SQL statement length, checked at Submit before any
  /// parsing.
  size_t max_query_bytes = 0;
  EngineOptions engine;              ///< forwarded to the shared Engine
};

/// Counters of one QueryServer (monotonic since construction). A view of
/// the server's MetricsRegistry: each value is one relaxed-atomic read, so
/// values never tear, but the struct is not a simultaneous snapshot and may
/// trail requests still in flight — see the consistency contract in
/// common/metrics.h. A request's own effect is always visible once its
/// response is in hand (counters are bumped before promises are fulfilled),
/// and cross-counter invariants hold exactly at quiescence: every received
/// request was the lead of an executed group, coalesced onto one, shed with
/// BUSY, or expired before its group ran (a fully-expired group skips
/// evaluation and counts only under timeouts) — so
/// received <= executed + coalesced + rejected + timeouts, with equality
/// when no request timed out (timeouts can otherwise double-count a
/// coalesced or executed-group waiter that also expired).
struct ServerStats {
  uint64_t received = 0;   ///< requests submitted
  uint64_t executed = 0;   ///< evaluations actually run
  uint64_t coalesced = 0;  ///< requests answered by another's evaluation
  uint64_t errors = 0;     ///< requests answered ERR
  uint64_t timeouts = 0;   ///< requests answered TIMEOUT
  uint64_t rejected = 0;   ///< requests answered BUSY (queue at max_queue)
  /// Evaluations stopped mid-execution by governance (deadline, explicit
  /// cancellation, or memory budget) — the cooperative-probe path in
  /// common/exec_context.h actually fired. Counts evaluations, not
  /// waiters.
  uint64_t cancelled = 0;
  /// Requests answered RESOURCE (memory budget, result size cap, query
  /// size cap, or allocation failure).
  uint64_t resource_rejected = 0;
  /// Requests whose deadline had already passed at Submit — answered
  /// TIMEOUT without ever occupying a queue slot. A subset of timeouts
  /// (each such request counts under both).
  uint64_t submit_expired = 0;
  /// Enumeration kernels compiled (one per plan-cache miss of a
  /// non-aggregate query). Stays flat across warm repeats: cached plans
  /// carry their kernel, so hits never recompile.
  uint64_t kernels_built = 0;
  PlanCacheStats plan_cache;
};

/// A concurrent read-only SQL query server over one Database.
class QueryServer {
 public:
  /// `db` must outlive the server and stay frozen while it runs. No
  /// threads are spawned here: evaluation runs on the shared thread pool,
  /// scheduled on demand by Submit.
  explicit QueryServer(Database* db, ServeOptions opts = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one SQL request. `deadline_seconds` <= 0 falls back to the
  /// configured default (and 0 there means no deadline). The future is
  /// always fulfilled — with kError after Shutdown.
  std::future<ServeResponse> Submit(const std::string& sql,
                                    double deadline_seconds = 0.0)
      EXCLUDES(mu_);

  /// Blocking convenience: Submit + wait.
  ServeResponse Query(const std::string& sql, double deadline_seconds = 0.0);

  /// View of the server counters, including the plan cache's. Lock-free:
  /// reads the metrics registry's atomics without touching mu_, so it never
  /// contends with evaluation (see the ServerStats consistency contract).
  ServerStats stats() const;

  /// Prometheus-style text exposition of the server's full metrics
  /// registry: the ServerStats counters, the plan-cache counters/gauge and
  /// the per-request latency histograms (fdb_serve_queue_wait_seconds,
  /// _cache_lookup_, _execute_, _render_). This is the body of the STATS
  /// protocol verb (serve/protocol.h).
  std::string MetricsExposition() const { return metrics_.RenderPrometheus(); }

  const Database& db() const { return *db_; }
  const PlanCache& plan_cache() const { return cache_; }

  /// Stops accepting work, drains the queue (answering kError) and waits
  /// for in-flight pool tasks to finish. Idempotent; also run by the
  /// destructor.
  void Shutdown() EXCLUDES(mu_);

 private:
  using Clock = MonotonicClock;  // common/timer.h

  struct Waiter {
    std::promise<ServeResponse> promise;
    Clock::time_point deadline;
    bool has_deadline = false;
    bool coalesced = false;
  };

  /// One evaluation unit: every queued request with the same normalised
  /// SQL. Groups are closed when a worker dequeues them, so late arrivals
  /// start a fresh group instead of joining an in-flight evaluation.
  struct Group {
    std::string raw_sql;    ///< first arrival's text (parsed on plan miss)
    std::string signature;  ///< normalised SQL, the plan-cache key
    Clock::time_point enqueued{};  ///< for fdb_serve_queue_wait_seconds
    std::vector<Waiter> waiters;
  };

  /// Body of one pool task: drains queued groups until the queue is empty
  /// or the server is stopping, then retires its inflight slot.
  void RunWorker() EXCLUDES(mu_);
  void ExecuteGroup(Group& group) EXCLUDES(mu_);

  Database* db_;
  ServeOptions opts_;
  /// Owns every server metric (declared before engine_/cache_: the cache
  /// binds its counters here at construction). Counters/histograms below
  /// are references into this registry — lock-free to record and to read.
  MetricsRegistry metrics_;
  Engine engine_;
  PlanCache cache_;
  Counter& received_;
  Counter& executed_;
  Counter& coalesced_;
  Counter& errors_;
  Counter& timeouts_;
  Counter& rejected_;
  Counter& kernels_built_;
  Counter& cancelled_;          ///< fdb_server_cancelled_total
  Counter& resource_rejected_;  ///< fdb_server_resource_rejected_total
  Counter& submit_expired_;     ///< fdb_server_submit_expired_total
  Histogram& queue_wait_hist_;    ///< Submit enqueue -> worker dequeue
  Histogram& cache_lookup_hist_;  ///< PlanCache::Lookup wall time
  Histogram& execute_hist_;       ///< whole evaluation (lookup..render)
  Histogram& render_hist_;        ///< RenderResult wall time (OK only)

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::unique_ptr<Group>> queue_ GUARDED_BY(mu_);
  /// signature -> queued group (the pointee is owned by queue_ and only
  /// mutated under mu_ while the group is queued).
  std::unordered_map<std::string, Group*> open_ GUARDED_BY(mu_);
  /// Governance contexts of evaluations currently running, so Shutdown can
  /// cancel them cooperatively instead of waiting out arbitrarily long
  /// queries. Each ExecuteGroup registers its stack-local context for the
  /// duration of the evaluation.
  std::vector<ExecContext*> active_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;

  /// Queue-draining pool tasks currently running (or scheduled and not yet
  /// started). Bounded by opts_.num_workers; Shutdown waits on cv_ for it
  /// to reach zero, which also guarantees no task still references `this`.
  size_t inflight_ GUARDED_BY(mu_) = 0;
};

}  // namespace fdb

#endif  // FDB_SERVE_QUERY_SERVER_H_
