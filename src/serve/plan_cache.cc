#include "serve/plan_cache.h"

#include "common/types.h"

namespace fdb {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  FDB_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& signature, uint64_t version) {
  MutexLock lock(mu_);
  auto it = index_.find(signature);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->version != version) {
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++hits_;
  return it->second->plan;
}

void PlanCache::Insert(const std::string& signature, uint64_t version,
                       std::shared_ptr<const CachedPlan> plan) {
  MutexLock lock(mu_);
  auto it = index_.find(signature);
  if (it != index_.end()) {
    it->second->version = version;
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().signature);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{signature, version, std::move(plan)});
  index_.emplace(signature, lru_.begin());
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace fdb
