#include "serve/plan_cache.h"

#include "common/types.h"

namespace fdb {

PlanCache::PlanCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity),
      owned_(metrics == nullptr ? std::make_unique<MetricsRegistry>()
                                : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_.get()),
      hits_(metrics_->GetCounter("fdb_plan_cache_hits_total")),
      misses_(metrics_->GetCounter("fdb_plan_cache_misses_total")),
      evictions_(metrics_->GetCounter("fdb_plan_cache_evictions_total")),
      invalidations_(
          metrics_->GetCounter("fdb_plan_cache_invalidations_total")),
      entries_(metrics_->GetGauge("fdb_plan_cache_entries")) {
  FDB_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& signature, uint64_t version, QueryTrace* trace) {
  QueryTrace::Scope span(trace, "plan-cache-lookup");
  MutexLock lock(mu_);
  auto it = index_.find(signature);
  if (it == index_.end()) {
    misses_.Increment();
    return nullptr;
  }
  if (it->second->version != version) {
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.Increment();
    misses_.Increment();
    entries_.Set(static_cast<int64_t>(lru_.size()));
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  hits_.Increment();
  return it->second->plan;
}

void PlanCache::Insert(const std::string& signature, uint64_t version,
                       std::shared_ptr<const CachedPlan> plan) {
  MutexLock lock(mu_);
  auto it = index_.find(signature);
  if (it != index_.end()) {
    it->second->version = version;
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().signature);
    lru_.pop_back();
    evictions_.Increment();
  }
  lru_.push_front(Entry{signature, version, std::move(plan)});
  index_.emplace(signature, lru_.begin());
  entries_.Set(static_cast<int64_t>(lru_.size()));
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.Value();
  s.misses = misses_.Value();
  s.evictions = evictions_.Value();
  s.invalidations = invalidations_.Value();
  s.size = size();
  s.capacity = capacity_;
  return s;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace fdb
