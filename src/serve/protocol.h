// Serve-path protocol: SQL normalisation, canonical result rendering and
// the newline-delimited wire format spoken by examples/fdb_server.cc.
//
// Requests are one SQL statement per line. Responses are framed as
//
//   OK <n>\n<body>      body is exactly n lines (result + stats line)
//   ERR <message>\n     parse/evaluation error (message is one line)
//   TIMEOUT <message>\n deadline exceeded before the result was ready
//   BUSY <message>\n    rejected: the request queue is at its bound
//                       (ServeOptions::max_queue) — retry later
//   RESOURCE <message>\n rejected or stopped on a resource bound: query
//                       memory budget (ServeOptions::max_memory_bytes),
//                       result/query size caps, or allocation failure —
//                       the query is the problem, not the load; do not
//                       retry unchanged
//
// The body rendering is deterministic: identical queries on an identical
// database produce byte-identical bodies regardless of thread interleaving
// or plan-cache state (serve_test.cc cross-checks every concurrent
// response against a single-threaded Engine::Execute reference).
#ifndef FDB_SERVE_PROTOCOL_H_
#define FDB_SERVE_PROTOCOL_H_

#include <string>

#include "api/database.h"
#include "api/engine.h"

namespace fdb {

/// Normalises an SQL statement into the plan-cache signature: tokens are
/// re-joined with single spaces (whitespace-insensitive), keywords and
/// aggregate-function names fold to lower case, `<>` folds to `!=` and
/// integer literals are re-rendered canonically. Identifier case is
/// preserved when the identifier exactly names a catalog attribute or
/// relation (names are case-sensitive); otherwise keyword-shaped
/// identifiers fold, so `SELECT`/`select`/`Select` coincide. String
/// literal bodies are kept verbatim ('Milk' and 'milk' differ). Throws
/// FdbError on unlexable input.
std::string NormalizeSql(const std::string& sql, const Catalog& catalog);

/// Renders an Execute() outcome as the canonical response body. SPJ
/// queries yield the factorised expression (ASCII operators, attribute
/// names, dictionary-decoded values) plus a `-- N singletons, M tuples`
/// stats line; grouped-aggregate queries yield a header line, one line per
/// group (keys sorted — GroupedTable::SortByKey order) and a `-- N groups`
/// line. Timings are deliberately excluded: the body depends only on the
/// query and the data. Every line ends with '\n'. Exception: an EXPLAIN
/// ANALYZE result (FdbResult::explain) renders its span tree verbatim —
/// those bodies carry wall times and are *not* deterministic.
std::string RenderResult(const Database& db, const FdbResult& res);

/// True iff `line` is the STATS protocol verb: the case-insensitive word
/// "stats" alone on the line (surrounding whitespace ignored). It cannot
/// collide with SQL — statements start with SELECT or EXPLAIN. The server
/// answers with its metrics registry's Prometheus-style exposition
/// (QueryServer::MetricsExposition), framed like any OK body.
bool IsStatsRequest(const std::string& line);

/// Outcome status of one served request.
enum class ServeStatus { kOk, kError, kTimeout, kBusy, kResource };

/// One served response plus serve-path metadata (not part of the rendered
/// body, so coalesced/cached answers stay byte-identical to cold ones).
struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string body;        ///< rendered result (kOk) or one-line message
  bool cache_hit = false;  ///< plan served from the shared plan cache
  bool coalesced = false;  ///< answered by another request's evaluation
};

/// Frames a response for the wire (see the header comment).
std::string FrameResponse(const ServeResponse& r);

}  // namespace fdb

#endif  // FDB_SERVE_PROTOCOL_H_
