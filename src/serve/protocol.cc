#include "serve/protocol.h"

#include <algorithm>
#include <sstream>

#include "common/str.h"
#include "core/print.h"
#include "sql/lexer.h"

namespace fdb {

namespace {

// Keywords and aggregate-function names of the SQL dialect (sql/parser.cc
// matches them case-insensitively).
bool IsKeywordShaped(const std::string& lower) {
  static const char* const kKeywords[] = {
      "select", "from", "where", "and", "group",   "by",       "count",
      "sum",    "avg",  "min",   "max", "explain", "analyze"};
  return std::find(std::begin(kKeywords), std::end(kKeywords), lower) !=
         std::end(kKeywords);
}

}  // namespace

std::string NormalizeSql(const std::string& sql, const Catalog& catalog) {
  std::vector<sql::Token> tokens = sql::Lex(sql);
  std::string out;
  for (const sql::Token& t : tokens) {
    if (t.kind == sql::TokenKind::kEnd) break;
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case sql::TokenKind::kIdent: {
        std::string lower = ToLower(t.text);
        // Identifier case is significant only for catalog names; keyword-
        // shaped identifiers that do not exactly name an attribute or
        // relation fold to lower case so `SELECT` and `select` coincide.
        if (IsKeywordShaped(lower) && catalog.FindAttribute(t.text) < 0 &&
            catalog.FindRelation(t.text) < 0) {
          out += lower;
        } else {
          out += t.text;
        }
        break;
      }
      case sql::TokenKind::kInt:
        out += std::to_string(t.value);
        break;
      case sql::TokenKind::kString:
        out += '\'';
        out += t.text;  // the lexer admits no quote inside a literal
        out += '\'';
        break;
      case sql::TokenKind::kNe:
        out += "!=";  // <> and != lex to the same token
        break;
      default:
        out += t.text;
        break;
    }
  }
  return out;
}

std::string RenderResult(const Database& db, const FdbResult& res) {
  if (res.explain.has_value()) return *res.explain;
  std::ostringstream os;
  if (res.aggregate.has_value()) {
    const GroupedTable& tbl = *res.aggregate;
    for (size_t c = 0; c < tbl.group_schema.size(); ++c) {
      if (c) os << "  ";
      os << db.catalog().attr(tbl.group_schema[c]).name;
    }
    for (size_t c = 0; c < tbl.specs.size(); ++c) {
      if (c || !tbl.group_schema.empty()) os << "  ";
      const AggSpec& s = tbl.specs[c];
      os << AggFnName(s.fn) << "("
         << (s.fn == AggFn::kCount ? "*" : db.catalog().attr(s.attr).name)
         << ")";
    }
    os << "\n";
    for (size_t r = 0; r < tbl.num_rows; ++r) {
      for (size_t c = 0; c < tbl.group_schema.size(); ++c) {
        if (c) os << "  ";
        Value v = tbl.KeyAt(r, c);
        if (db.catalog().attr(tbl.group_schema[c]).is_string &&
            db.dict().Contains(v)) {
          os << db.dict().Decode(v);
        } else {
          os << v;
        }
      }
      for (size_t c = 0; c < tbl.specs.size(); ++c) {
        if (c || !tbl.group_schema.empty()) os << "  ";
        os << tbl.AggAt(r, c);
      }
      os << "\n";
    }
    os << "-- " << tbl.num_rows << " groups\n";
  } else {
    PrintOptions popts;
    popts.unicode = false;  // ASCII wire format
    popts.catalog = &db.catalog();
    popts.dict = &db.dict();
    os << ToExpressionString(res.rep, popts) << "\n"
       << "-- " << res.NumSingletons() << " singletons, " << res.FlatTuples()
       << " tuples\n";
  }
  return os.str();
}

bool IsStatsRequest(const std::string& line) {
  return ToLower(Trim(line)) == "stats";
}

std::string FrameResponse(const ServeResponse& r) {
  auto one_line = [](std::string s) {
    std::replace(s.begin(), s.end(), '\n', ' ');
    return s;
  };
  switch (r.status) {
    case ServeStatus::kOk: {
      size_t lines =
          static_cast<size_t>(std::count(r.body.begin(), r.body.end(), '\n'));
      return "OK " + std::to_string(lines) + "\n" + r.body;
    }
    case ServeStatus::kError:
      return "ERR " + one_line(r.body) + "\n";
    case ServeStatus::kTimeout:
      return "TIMEOUT " + one_line(r.body) + "\n";
    case ServeStatus::kBusy:
      return "BUSY " + one_line(r.body) + "\n";
    case ServeStatus::kResource:
      return "RESOURCE " + one_line(r.body) + "\n";
  }
  return "ERR unreachable\n";
}

}  // namespace fdb
