// Shared f-plan cache for the serve path.
//
// The expensive part of answering a repeated SPJ / grouped-aggregate query
// is the optimal f-tree search (FindOptimalFTree explores an exponential
// space; BM_EdgeCoverWarmCache showed the same effect one layer down at the
// LP memo). The serve path therefore memoises whole optimisation outcomes:
// parsed query + optimal f-tree, keyed on the *normalised* SQL text
// (serve/protocol.h) and the database version. The steady-state hot path of
// QueryServer is then cache-lookup -> ground/execute -> enumerate, with no
// optimisation at all.
//
// Entries are invalidated by database version bumps (schema or data
// changes; see Database::version) and bounded by an LRU of configurable
// capacity.
#ifndef FDB_SERVE_PLAN_CACHE_H_
#define FDB_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "opt/ftree_search.h"
#include "storage/query.h"

namespace fdb {

class EnumKernel;  // core/kernel.h

/// One memoised optimisation outcome. Immutable once published (shared
/// between all threads executing the same query concurrently). Published
/// plans have executed successfully at least once: the server inserts
/// after the first execution, so failing plans are never cached.
struct CachedPlan {
  Query query;               ///< parsed query, literals interned
  FTreeSearchResult search;  ///< optimal f-tree for the query's SPJ core

  /// Compiled enumeration kernel (core/kernel.h), specialised to the shape
  /// of the first execution's result f-tree in visible-only mode. Null for
  /// aggregate queries (their output is a grouped table, not an enumerated
  /// stream). Consumers must check EnumKernel::Matches against the result
  /// tree they hold — the kernel-aware MaterializeVisible overload does —
  /// and fall back to interpreted enumeration on a mismatch.
  std::shared_ptr<const EnumKernel> kernel;
};

/// Counter view of one PlanCache (see PlanCache::stats). `hits + misses`
/// equals the number of Lookup calls; `invalidations` counts entries
/// dropped because their database version went stale (a subset of misses);
/// `evictions` counts LRU drops.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  size_t size = 0;      ///< current number of entries
  size_t capacity = 0;  ///< configured bound
};

/// A thread-safe LRU of CachedPlans keyed on (normalised SQL, database
/// version). All operations are O(1) expected and lock one internal mutex;
/// the critical sections only touch the index (the plan itself is shared
/// out by shared_ptr and executed outside the lock).
class PlanCache {
 public:
  /// `metrics` receives the cache's counters (fdb_plan_cache_hits_total,
  /// _misses_total, _evictions_total, _invalidations_total and the
  /// fdb_plan_cache_entries gauge); it must outlive the cache. Null means
  /// the cache owns a private registry (standalone uses and tests).
  explicit PlanCache(size_t capacity, MetricsRegistry* metrics = nullptr);

  /// Returns the cached plan for `signature` if present and built against
  /// `version`; nullptr otherwise. A present entry with a stale version is
  /// erased (counted as invalidation + miss). A non-null `trace` records a
  /// "plan-cache-lookup" span.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& signature,
                                           uint64_t version,
                                           QueryTrace* trace = nullptr)
      EXCLUDES(mu_);

  /// Publishes a plan, evicting the least-recently-used entry if the cache
  /// is full. Re-inserting an existing key replaces the entry (last writer
  /// wins — both racers hold equivalent plans).
  void Insert(const std::string& signature, uint64_t version,
              std::shared_ptr<const CachedPlan> plan) EXCLUDES(mu_);

  /// Counter view assembled from the registry metrics plus the current
  /// size. Values never tear (each is one atomic), but the view is not a
  /// simultaneous snapshot — see the consistency contract in
  /// common/metrics.h.
  PlanCacheStats stats() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string signature;
    uint64_t version;
    std::shared_ptr<const CachedPlan> plan;
  };

  mutable Mutex mu_;
  const size_t capacity_;  // immutable after construction, lock-free reads
  std::unique_ptr<MetricsRegistry> owned_;  // when no registry was passed
  MetricsRegistry* metrics_;                // owned_.get() or the argument
  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
  Counter& invalidations_;
  Gauge& entries_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
};

}  // namespace fdb

#endif  // FDB_SERVE_PLAN_CACHE_H_
