#include "serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/kernel.h"

namespace fdb {

QueryServer::QueryServer(Database* db, ServeOptions opts)
    : db_(db),
      opts_(opts),
      engine_(db, opts.engine),
      cache_(opts.plan_cache_capacity, &metrics_),
      received_(metrics_.GetCounter("fdb_serve_requests_total")),
      executed_(metrics_.GetCounter("fdb_serve_executed_total")),
      coalesced_(metrics_.GetCounter("fdb_serve_coalesced_total")),
      errors_(metrics_.GetCounter("fdb_serve_errors_total")),
      timeouts_(metrics_.GetCounter("fdb_serve_timeouts_total")),
      rejected_(metrics_.GetCounter("fdb_serve_rejected_total")),
      kernels_built_(metrics_.GetCounter("fdb_serve_kernels_built_total")),
      cancelled_(metrics_.GetCounter("fdb_server_cancelled_total")),
      resource_rejected_(
          metrics_.GetCounter("fdb_server_resource_rejected_total")),
      submit_expired_(metrics_.GetCounter("fdb_server_submit_expired_total")),
      queue_wait_hist_(metrics_.GetHistogram("fdb_serve_queue_wait_seconds")),
      cache_lookup_hist_(
          metrics_.GetHistogram("fdb_serve_cache_lookup_seconds")),
      execute_hist_(metrics_.GetHistogram("fdb_serve_execute_seconds")),
      render_hist_(metrics_.GetHistogram("fdb_serve_render_seconds")) {
  FDB_CHECK_MSG(opts_.num_workers > 0, "server needs at least one worker");
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<ServeResponse> QueryServer::Submit(const std::string& sql,
                                               double deadline_seconds) {
  Waiter waiter;
  std::future<ServeResponse> future = waiter.promise.get_future();

  double deadline = deadline_seconds > 0.0 ? deadline_seconds
                                           : opts_.default_deadline_seconds;
  if (deadline > 0.0) {
    waiter.has_deadline = true;
    waiter.deadline = MonotonicDeadline(deadline);
  }

  // Enqueue-time governance, cheapest checks first. An oversized statement
  // is rejected before it is even lexed; an already-expired deadline is
  // answered TIMEOUT without burning a queue slot (counted separately from
  // dequeue-time expiry under submit_expired).
  if (opts_.max_query_bytes > 0 && sql.size() > opts_.max_query_bytes) {
    received_.Increment();
    resource_rejected_.Increment();
    waiter.promise.set_value(ServeResponse{
        ServeStatus::kResource,
        "query too large: " + std::to_string(sql.size()) + " bytes, limit " +
            std::to_string(opts_.max_query_bytes),
        false, false});
    return future;
  }
  if (waiter.has_deadline && waiter.deadline <= Clock::now()) {
    received_.Increment();
    timeouts_.Increment();
    submit_expired_.Increment();
    waiter.promise.set_value(ServeResponse{ServeStatus::kTimeout,
                                           "deadline expired before enqueue",
                                           false, false});
    return future;
  }

  // Normalise outside the lock; an unlexable statement is answered
  // immediately (it could never join a batch or hit the cache).
  std::string signature;
  try {
    signature = NormalizeSql(sql, db_->catalog());
  } catch (const FdbError& e) {
    received_.Increment();
    errors_.Increment();
    waiter.promise.set_value(
        ServeResponse{ServeStatus::kError, e.what(), false, false});
    return future;
  }

  // Rejection responses are delivered *after* mu_ is released: set_value
  // wakes the client thread (and may run a continuation) — doing that
  // under the lock lengthens the critical section for every worker and
  // invites a lock-order inversion if the woken client immediately calls
  // stats() or Submit. Decide under the lock, fulfil outside it.
  const char* reject_reason = nullptr;
  ServeStatus reject_status = ServeStatus::kError;
  bool schedule = false;
  received_.Increment();
  {
    MutexLock lock(mu_);
    if (stopping_) {
      errors_.Increment();
      reject_reason = "server is shutting down";
      reject_status = ServeStatus::kError;
    } else if (auto it = open_.find(signature); it != open_.end()) {
      // Batching front door: identical normalised SQL coalesces onto the
      // already-queued evaluation. Always admitted — it adds no queue
      // pressure, so it bypasses the max_queue bound.
      waiter.coalesced = true;
      coalesced_.Increment();
      it->second->waiters.push_back(std::move(waiter));
      return future;
    } else if (opts_.max_queue > 0 && queue_.size() >= opts_.max_queue) {
      // Admission control: opening another evaluation group would exceed
      // the configured queue bound — shed the request now rather than
      // growing an unbounded backlog.
      rejected_.Increment();
      reject_reason = "server overloaded: request queue is full";
      reject_status = ServeStatus::kBusy;
    } else {
      auto group = std::make_unique<Group>();
      group->raw_sql = sql;
      group->signature = std::move(signature);
      group->enqueued = Clock::now();
      group->waiters.push_back(std::move(waiter));
      open_.emplace(group->signature, group.get());
      queue_.push_back(std::move(group));
      // Schedule a drain task unless num_workers are already in flight —
      // a running task loops until the queue empties, so the new group is
      // guaranteed a worker either way (both the enqueue here and the
      // worker's exit check happen under mu_, so a worker cannot retire
      // between this enqueue and a decision not to schedule).
      if (inflight_ < static_cast<size_t>(opts_.num_workers)) {
        ++inflight_;
        schedule = true;
      }
    }
  }
  if (reject_reason != nullptr) {
    waiter.promise.set_value(
        ServeResponse{reject_status, reject_reason, false, false});
    return future;
  }
  // Spawn outside the lock: the pool has its own mutex and the task may
  // start (and want mu_) immediately.
  if (schedule) ThreadPool::Shared().Submit([this] { RunWorker(); });
  return future;
}

ServeResponse QueryServer::Query(const std::string& sql,
                                 double deadline_seconds) {
  return Submit(sql, deadline_seconds).get();
}

void QueryServer::RunWorker() {
  for (;;) {
    std::unique_ptr<Group> group;
    {
      MutexLock lock(mu_);
      if (stopping_ || queue_.empty()) {
        // Retire this drain task. The notify wakes Shutdown, which waits
        // for inflight_ == 0; after the decrement the task touches no
        // server state, so a woken Shutdown may safely destroy `this`.
        --inflight_;
        if (inflight_ == 0) cv_.NotifyAll();
        return;
      }
      group = std::move(queue_.front());
      queue_.pop_front();
      // Close the group: from here on, identical SQL starts a fresh one
      // rather than joining an evaluation that is about to run.
      open_.erase(group->signature);
    }
    ExecuteGroup(*group);
  }
}

void QueryServer::ExecuteGroup(Group& group) {
  // Deadline check at dequeue: expired requests are answered without
  // evaluating; if nobody is left waiting, the evaluation is skipped.
  const Clock::time_point now = Clock::now();
  queue_wait_hist_.Record(
      std::chrono::duration<double>(now - group.enqueued).count());
  std::vector<Waiter> live, expired;
  live.reserve(group.waiters.size());
  for (Waiter& w : group.waiters) {
    if (w.has_deadline && w.deadline <= now) {
      expired.push_back(std::move(w));
    } else {
      live.push_back(std::move(w));
    }
  }
  if (!expired.empty()) {
    timeouts_.Increment(expired.size());
    for (Waiter& w : expired) {
      w.promise.set_value(ServeResponse{ServeStatus::kTimeout,
                                        "deadline exceeded before evaluation",
                                        false, w.coalesced});
    }
  }
  if (live.empty()) return;

  // Governance context for this evaluation. Coalesced waiters share one
  // execution, so the binding deadline is the *least* restrictive over the
  // live waiters — with any no-deadline waiter the evaluation runs
  // undeadlined (impatient waiters are still answered TIMEOUT at
  // delivery). The memory budget comes from ServeOptions; the context is
  // registered in active_ so Shutdown can cancel a running evaluation
  // cooperatively instead of waiting it out.
  ExecContext ctx;
  bool all_deadlined = true;
  Clock::time_point latest = Clock::time_point::min();
  for (const Waiter& w : live) {
    if (!w.has_deadline) {
      all_deadlined = false;
      break;
    }
    latest = std::max(latest, w.deadline);
  }
  if (all_deadlined) ctx.SetDeadlineAt(latest);
  if (opts_.max_memory_bytes > 0) {
    ctx.budget().set_limit(opts_.max_memory_bytes);
  }
  {
    MutexLock lock(mu_);
    active_.push_back(&ctx);
    if (stopping_) ctx.Cancel();  // lost the race with Shutdown's sweep
  }

  // EXPLAIN ANALYZE runs the identical pipeline under a QueryTrace and
  // answers with the rendered span tree. Normalisation folds keywords to
  // lower case, so the signature prefix identifies explain statements
  // before the query is parsed (the parse happens *inside* the trace).
  const bool explain = group.signature.rfind("explain analyze", 0) == 0;
  std::optional<QueryTrace> trace;
  if (explain) trace.emplace();
  QueryTrace* tp = trace.has_value() ? &*trace : nullptr;

  ServeResponse response;
  bool built_kernel = false;
  Timer exec_timer;
  // The evaluation proper, lifted into a lambda so the try below can run
  // it under TranslateBadAlloc: an allocation failure anywhere inside
  // surfaces as FdbResourceExhausted (-> RESOURCE) instead of a
  // process-killing bad_alloc.
  auto evaluate = [&] {
    FDB_FAULT_POINT("serve_execute_group");
    std::optional<QueryTrace::Scope> root;
    if (tp != nullptr) {
      root.emplace(tp, "serve");
      // Submit already normalised the statement (the group key); re-run it
      // here so the trace carries the phase's cost for this query.
      QueryTrace::Scope span(tp, "normalize");
      NormalizeSql(group.raw_sql, db_->catalog());
    }

    const uint64_t version = db_->version();
    Timer lookup_timer;
    std::shared_ptr<const CachedPlan> plan =
        cache_.Lookup(group.signature, version, tp);
    cache_lookup_hist_.Record(lookup_timer.Seconds());
    std::shared_ptr<CachedPlan> fresh;
    if (plan == nullptr) {
      fresh = std::make_shared<CachedPlan>();
      {
        QueryTrace::Scope span(tp, "parse");
        fresh->query = engine_.Parse(group.raw_sql);
      }
      // The f-tree search ignores projection/grouping, so one tree serves
      // both the SPJ and the aggregate path of this query.
      {
        QueryTrace::Scope span(tp, "f-tree-search");
        fresh->search = engine_.OptimizeFlat(fresh->query);
      }
      plan = fresh;
    } else {
      response.cache_hit = true;
    }

    // The steady-state hot path: ground/execute/enumerate on the cached
    // tree — no optimisation. The traced variant covers both branches
    // (and, for SPJ, materialises through the cached kernel so the trace
    // includes morsel planning and enumeration).
    FdbResult result{FRep{FTree{}}, FPlan{}, 0.0, 0.0, {}, {}};
    if (tp != nullptr) {
      result = engine_.ExecuteTraced(plan->query, tp, &plan->search,
                                     plan->kernel.get());
    } else if (plan->query.IsAggregate()) {
      AggregateResult ar = engine_.ExecuteAggregate(plan->query, &plan->search);
      result = FdbResult{std::move(ar.grouped.rep), std::move(ar.plan),
                         ar.optimize_seconds, ar.evaluate_seconds, {}, {}};
      result.aggregate = std::move(ar.table);
    } else {
      result = engine_.EvaluateFlat(plan->query, &plan->search);
    }
    if (fresh != nullptr) {
      // Publish only after the first successful execution: failing plans
      // are never cached, and the result's f-tree is now known, so a
      // compiled enumeration kernel specialised to it can ride along
      // (SPJ only — aggregate output is a grouped table, not a stream).
      // Inserting before the waiters are fulfilled keeps the sequential
      // repeat guarantee: a client that has its answer hits the cache.
      if (!fresh->query.IsAggregate()) {
        fresh->kernel = std::make_shared<const EnumKernel>(EnumKernel::Compile(
            result.rep.tree(), /*visible_only=*/true, tp));
        built_kernel = true;
      }
      cache_.Insert(group.signature, version, std::move(fresh));
    }
    if (tp != nullptr) {
      root.reset();  // close the "serve" span before rendering the tree
      result.explain = trace->Render();
    }
    Timer render_timer;
    FDB_FAULT_POINT("serve_render");
    response.body = RenderResult(*db_, result);
    render_hist_.Record(render_timer.Seconds());
    if (opts_.max_result_bytes > 0 &&
        response.body.size() > opts_.max_result_bytes) {
      const size_t size = response.body.size();
      response.body.clear();  // drop the oversized render before framing
      throw FdbResourceExhausted(
          "result too large: " + std::to_string(size) + " bytes, limit " +
          std::to_string(opts_.max_result_bytes));
    }
    response.status = ServeStatus::kOk;
  };
  try {
    // Bind the governance context for the whole evaluation; operators
    // re-bind it on pool threads via ParallelEnumerator::ForEachChunk.
    ExecContext::Scope scope(&ctx);
    TranslateBadAlloc(evaluate, "query evaluation");
  } catch (const FdbTimeout& e) {
    cancelled_.Increment();
    response.status = ServeStatus::kTimeout;
    response.body = e.what();
  } catch (const FdbResourceExhausted& e) {
    cancelled_.Increment();
    response.status = ServeStatus::kResource;
    response.body = e.what();
  } catch (const FdbCancelled& e) {
    cancelled_.Increment();
    response.status = ServeStatus::kError;
    response.body = e.what();
  } catch (const FdbError& e) {
    response.status = ServeStatus::kError;
    response.body = e.what();
  } catch (const std::exception& e) {
    response.status = ServeStatus::kError;
    response.body = std::string("internal error: ") + e.what();
  }
  {
    MutexLock lock(mu_);
    active_.erase(std::find(active_.begin(), active_.end(), &ctx));
  }
  execute_hist_.Record(exec_timer.Seconds());

  // Decide each waiter's outcome (a deadline that passed during evaluation
  // still times out — that client has given up), update the counters, and
  // only then fulfil the promises: a client that has its response in hand
  // must see it reflected in stats().
  const Clock::time_point done = Clock::now();
  std::vector<ServeResponse> outcomes;
  outcomes.reserve(live.size());
  uint64_t delivered_errors = 0, delivered_timeouts = 0;
  uint64_t delivered_resource = 0;
  for (const Waiter& w : live) {
    ServeResponse r = response;
    r.coalesced = w.coalesced;
    if (w.has_deadline && w.deadline <= done) {
      r = ServeResponse{ServeStatus::kTimeout,
                        "deadline exceeded during evaluation",
                        response.cache_hit, w.coalesced};
      ++delivered_timeouts;
    } else if (r.status == ServeStatus::kError) {
      ++delivered_errors;
    } else if (r.status == ServeStatus::kResource) {
      ++delivered_resource;
    }
    outcomes.push_back(std::move(r));
  }
  executed_.Increment();
  errors_.Increment(delivered_errors);
  timeouts_.Increment(delivered_timeouts);
  resource_rejected_.Increment(delivered_resource);
  if (built_kernel) kernels_built_.Increment();
  for (size_t i = 0; i < live.size(); ++i) {
    live[i].promise.set_value(std::move(outcomes[i]));
  }
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.received = received_.Value();
  s.executed = executed_.Value();
  s.coalesced = coalesced_.Value();
  s.errors = errors_.Value();
  s.timeouts = timeouts_.Value();
  s.rejected = rejected_.Value();
  s.kernels_built = kernels_built_.Value();
  s.cancelled = cancelled_.Value();
  s.resource_rejected = resource_rejected_.Value();
  s.submit_expired = submit_expired_.Value();
  s.plan_cache = cache_.stats();
  return s;
}

void QueryServer::Shutdown() {
  std::vector<std::unique_ptr<Group>> drained;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Cancel running evaluations cooperatively: each in-flight worker's
    // context flips, its next engine probe unwinds (answered ERR), and the
    // inflight_ wait below completes in bounded time even against
    // arbitrarily long queries.
    for (ExecContext* ctx : active_) ctx->Cancel();
    // Drain unexecuted work so no future is left dangling.
    while (!queue_.empty()) {
      open_.erase(queue_.front()->signature);
      drained.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    for (const auto& group : drained) errors_.Increment(group->waiters.size());
    // Wait for in-flight pool tasks: each retires (decrements inflight_
    // and notifies) on its next queue check, after which it no longer
    // touches server state — so once inflight_ is zero, destroying the
    // server is safe. Safe to run from concurrent callers (each waits for
    // the same condition) and idempotent.
    while (inflight_ > 0) cv_.Wait(mu_);
  }
  for (auto& group : drained) {
    for (Waiter& w : group->waiters) {
      w.promise.set_value(ServeResponse{ServeStatus::kError,
                                        "server is shutting down", false,
                                        w.coalesced});
    }
  }
}

}  // namespace fdb
