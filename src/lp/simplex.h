// A small dense simplex solver.
//
// The paper computes the parameter s(T) — the maximal fractional edge cover
// number over root-to-leaf paths of an f-tree — with GLPK. GLPK is not
// available in this environment, so FDB ships its own solver. The LPs are
// tiny (#variables = #relations <= 64, #constraints = #attribute classes on
// one path <= 64), all coefficients are 0/1 and b = 1, so a dense Big-M
// tableau simplex with Bland's anti-cycling rule is exact to fp tolerance
// and more than fast enough.
#ifndef FDB_LP_SIMPLEX_H_
#define FDB_LP_SIMPLEX_H_

#include <vector>

namespace fdb {

/// Result of an LP solve.
struct LpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution (size = #variables)
};

/// Solves  min c^T x  subject to  A x >= b,  x >= 0.
///
/// Requires b >= 0 (always true for covering LPs). Uses the Big-M method
/// with Bland's rule, so it terminates on degenerate instances.
LpResult SolveCoveringLp(const std::vector<std::vector<double>>& a,
                         const std::vector<double>& b,
                         const std::vector<double>& c);

}  // namespace fdb

#endif  // FDB_LP_SIMPLEX_H_
