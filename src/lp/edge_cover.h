// Fractional edge cover numbers for root-to-leaf paths of f-trees (§2).
//
// For a path p, build the hypergraph whose vertices are the attribute
// classes on p and whose edges are the query relations covering them; the
// fractional edge cover number is the optimum of
//
//   min   sum_i x_i
//   s.t.  sum_{i : class c covered by R_i} x_i >= 1   for every class c on p
//         x_i >= 0.
//
// The cover structure of a path is fully described by one relation-set
// bitmask per class, so solutions are memoised on the canonical (sorted,
// de-duplicated) list of masks: the optimiser evaluates millions of paths
// that share a handful of distinct cover structures.
#ifndef FDB_LP_EDGE_COVER_H_
#define FDB_LP_EDGE_COVER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/attrset.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fdb {

/// Solves one fractional edge cover instance.
///
/// `class_covers[i]` is the bitmask of relations covering the i-th attribute
/// class on the path. Throws FdbError if some class has no covering relation
/// (every attribute originates in some relation, so this indicates misuse).
double FractionalEdgeCoverValue(const std::vector<uint64_t>& class_covers);

/// Memoising wrapper around FractionalEdgeCoverValue.
///
/// Thread safety: Solve may be called concurrently (the serve path shares
/// one solver across all worker threads). Cache lookups take a shared lock;
/// only a memo miss upgrades to an exclusive lock around the insert. Two
/// threads racing on the same uncached instance may both run the LP — the
/// result is identical and only one insert wins, so `solve_count` may
/// exceed the number of distinct instances but never miscounts calls:
/// solve_count + hit_count == number of Solve calls, always.
class EdgeCoverSolver {
 public:
  double Solve(std::vector<uint64_t> class_covers) EXCLUDES(mu_);

  size_t cache_size() const EXCLUDES(mu_) {
    ReaderMutexLock lock(mu_);
    return cache_.size();
  }
  uint64_t solve_count() const { return solves_.load(std::memory_order_relaxed); }
  uint64_t hit_count() const { return hits_.load(std::memory_order_relaxed); }

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::vector<uint64_t>, double, VecHash64> cache_
      GUARDED_BY(mu_);
  std::atomic<uint64_t> solves_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace fdb

#endif  // FDB_LP_EDGE_COVER_H_
