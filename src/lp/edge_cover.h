// Fractional edge cover numbers for root-to-leaf paths of f-trees (§2).
//
// For a path p, build the hypergraph whose vertices are the attribute
// classes on p and whose edges are the query relations covering them; the
// fractional edge cover number is the optimum of
//
//   min   sum_i x_i
//   s.t.  sum_{i : class c covered by R_i} x_i >= 1   for every class c on p
//         x_i >= 0.
//
// The cover structure of a path is fully described by one relation-set
// bitmask per class, so solutions are memoised on the canonical (sorted,
// de-duplicated) list of masks: the optimiser evaluates millions of paths
// that share a handful of distinct cover structures.
#ifndef FDB_LP_EDGE_COVER_H_
#define FDB_LP_EDGE_COVER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/attrset.h"
#include "common/hash.h"

namespace fdb {

/// Solves one fractional edge cover instance.
///
/// `class_covers[i]` is the bitmask of relations covering the i-th attribute
/// class on the path. Throws FdbError if some class has no covering relation
/// (every attribute originates in some relation, so this indicates misuse).
double FractionalEdgeCoverValue(const std::vector<uint64_t>& class_covers);

/// Memoising wrapper around FractionalEdgeCoverValue.
class EdgeCoverSolver {
 public:
  double Solve(std::vector<uint64_t> class_covers);

  size_t cache_size() const { return cache_.size(); }
  uint64_t solve_count() const { return solves_; }
  uint64_t hit_count() const { return hits_; }

 private:
  std::unordered_map<std::vector<uint64_t>, double, VecHash64> cache_;
  uint64_t solves_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace fdb

#endif  // FDB_LP_EDGE_COVER_H_
