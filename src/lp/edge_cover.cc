#include "lp/edge_cover.h"

#include <algorithm>
#include <bit>

#include "common/types.h"
#include "lp/simplex.h"

namespace fdb {

double FractionalEdgeCoverValue(const std::vector<uint64_t>& class_covers) {
  if (class_covers.empty()) return 0.0;

  uint64_t all_rels = 0;
  for (uint64_t mask : class_covers) {
    FDB_CHECK_MSG(mask != 0, "attribute class with no covering relation");
    all_rels |= mask;
  }

  // Dense relation ids 0..n-1 for the relations that appear.
  std::vector<int> rel_col(64, -1);
  int n = 0;
  for (int r = 0; r < 64; ++r) {
    if ((all_rels >> r) & 1) rel_col[r] = n++;
  }

  const size_t m = class_covers.size();
  std::vector<std::vector<double>> a(m, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (int r = 0; r < 64; ++r) {
      if ((class_covers[i] >> r) & 1) a[i][static_cast<size_t>(rel_col[r])] = 1.0;
    }
  }
  std::vector<double> b(m, 1.0);
  std::vector<double> c(static_cast<size_t>(n), 1.0);

  LpResult res = SolveCoveringLp(a, b, c);
  FDB_CHECK_MSG(res.feasible, "edge cover LP infeasible");
  return res.objective;
}

double EdgeCoverSolver::Solve(std::vector<uint64_t> class_covers) {
  // Canonicalise: the LP value depends only on the set of distinct masks.
  std::sort(class_covers.begin(), class_covers.end());
  class_covers.erase(
      std::unique(class_covers.begin(), class_covers.end()),
      class_covers.end());
  // A class whose cover mask is a superset of another's is never binding:
  // any cover of the smaller mask's class covers it too... only when the
  // *smaller* mask is a subset: the subset constraint is the stronger one.
  // Drop dominated (superset) masks to shrink the cache key further.
  std::vector<uint64_t> kept;
  for (uint64_t mi : class_covers) {
    bool dominated = false;
    for (uint64_t mj : class_covers) {
      if (mj != mi && (mi & mj) == mj) {  // mj subset of mi: mj is stronger
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(mi);
  }

  {
    ReaderMutexLock lock(mu_);
    auto it = cache_.find(kept);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: solve outside any lock (the LP is the expensive part), then
  // insert. A racing thread may have inserted meanwhile; emplace keeps the
  // first value (both are the same optimum).
  solves_.fetch_add(1, std::memory_order_relaxed);
  double v = FractionalEdgeCoverValue(kept);
  WriterMutexLock lock(mu_);
  cache_.emplace(std::move(kept), v);
  return v;
}

}  // namespace fdb
