#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/types.h"

namespace fdb {

namespace {

constexpr double kEps = 1e-9;
constexpr double kBigM = 1e7;

}  // namespace

LpResult SolveCoveringLp(const std::vector<std::vector<double>>& a,
                         const std::vector<double>& b,
                         const std::vector<double>& c) {
  const size_t m = a.size();     // constraints
  const size_t n = c.size();     // structural variables
  FDB_CHECK(b.size() == m);
  for (const auto& row : a) FDB_CHECK(row.size() == n);
  for (double bi : b) FDB_CHECK_MSG(bi >= 0.0, "covering LP requires b >= 0");

  // Columns: [x (n) | surplus (m) | artificial (m) | rhs].
  // Row i:  a_i x - s_i + t_i = b_i, basis starts at the artificials.
  const size_t cols = n + 2 * m + 1;
  std::vector<std::vector<double>> tab(m + 1, std::vector<double>(cols, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) tab[i][j] = a[i][j];
    tab[i][n + i] = -1.0;          // surplus
    tab[i][n + m + i] = 1.0;       // artificial
    tab[i][cols - 1] = b[i];
  }
  // Objective row: min c^T x + M * sum(t). Stored as z-row coefficients.
  std::vector<double>& z = tab[m];
  for (size_t j = 0; j < n; ++j) z[j] = c[j];
  for (size_t i = 0; i < m; ++i) z[n + m + i] = kBigM;

  std::vector<size_t> basis(m);
  for (size_t i = 0; i < m; ++i) basis[i] = n + m + i;

  // Price out the initial basis (artificials have cost M).
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < cols; ++j) z[j] -= kBigM * tab[i][j];
  }

  // Simplex iterations with Bland's rule: entering variable = smallest index
  // with negative reduced cost; leaving = smallest-index row among the
  // minimum-ratio ties.
  const size_t max_iters = 10000 * (m + n + 1);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    size_t enter = cols - 1;
    for (size_t j = 0; j + 1 < cols; ++j) {
      if (z[j] < -kEps) {
        enter = j;
        break;
      }
    }
    if (enter == cols - 1) break;  // optimal

    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (tab[i][enter] > kEps) {
        double ratio = tab[i][cols - 1] / tab[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) {
      // Unbounded: cannot happen for covering LPs (objective bounded below
      // by 0), treat as failure.
      return LpResult{};
    }

    // Pivot on (leave, enter).
    double piv = tab[leave][enter];
    for (size_t j = 0; j < cols; ++j) tab[leave][j] /= piv;
    for (size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      double f = tab[i][enter];
      if (std::fabs(f) < kEps) continue;
      for (size_t j = 0; j < cols; ++j) tab[i][j] -= f * tab[leave][j];
    }
    basis[leave] = enter;
  }

  LpResult res;
  res.x.assign(n, 0.0);
  double artificial_mass = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) {
      res.x[basis[i]] = tab[i][cols - 1];
    } else if (basis[i] >= n + m) {
      artificial_mass += tab[i][cols - 1];
    }
  }
  if (artificial_mass > 1e-6) {
    res.feasible = false;  // phase-1 mass left: the LP is infeasible
    return res;
  }
  res.feasible = true;
  double obj = 0.0;
  for (size_t j = 0; j < n; ++j) obj += c[j] * res.x[j];
  res.objective = obj;
  return res;
}

}  // namespace fdb
