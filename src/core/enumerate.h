// Tuple enumeration from f-representations.
//
// F-representations allow constant-delay enumeration: O(|E|) preparation and
// O(|S|) delay between successive tuples (§2). TupleEnumerator implements
// this with an explicit odometer over the f-tree's pre-order: advancing to
// the next tuple touches each of the |T| frames at most once.
#ifndef FDB_CORE_ENUMERATE_H_
#define FDB_CORE_ENUMERATE_H_

#include <vector>

#include "core/frep.h"
#include "storage/relation.h"

namespace fdb {

/// One pre-order frame of an f-tree walk: the node, the index of its
/// parent's frame in the frame list (-1 for roots), and the child slot
/// within the parent (for roots: the slot in the root list).
struct PreOrderFrame {
  int node;
  int parent_pos;
  size_t slot;
};

/// Frames for t.PreOrder(). When `keep` is given (indexed by node id, and
/// closed under parents: a kept node's parent is kept), skipped nodes get
/// no frame. Shared by TupleEnumerator and GroupedRep::Materialize.
std::vector<PreOrderFrame> BuildPreOrderFrames(const FTree& t,
                                               const std::vector<char>* keep =
                                                   nullptr);

/// Streams the tuples of an f-representation.
///
/// Contract: in the default mode each *distinct tuple over all attributes
/// of the f-tree* (visible or not) is emitted exactly once; callers
/// project as needed. Projecting the stream onto the visible attributes
/// may therefore repeat visible tuples when the tree retains invisible
/// (projected-away) nodes — consumers that count or aggregate the visible
/// relation must deduplicate, or enumerate with `visible_only`.
///
/// `visible_only` skips every subtree that contains no visible attribute:
/// odometer positions that differ only inside such subtrees collapse into
/// one, so invisible-only nodes no longer multiply the stream. Duplicate
/// *visible* tuples can still arise from invisible nodes that have visible
/// descendants (two values of the invisible node may lead to equal visible
/// sub-tuples below — a data property no structural skip can detect);
/// MaterializeVisible removes those by sort+dedup. In this mode only
/// visible attributes of the current tuple are meaningful.
class TupleEnumerator {
 public:
  explicit TupleEnumerator(const FRep& rep, bool visible_only = false);

  /// Advances to the next tuple; false when exhausted. The first call
  /// positions the enumerator on the first tuple.
  bool Next();

  /// Value of `attr` in the current tuple (valid after Next() == true).
  Value ValueOf(AttrId attr) const { return current_[attr]; }

  /// The current tuple indexed by attribute id (sparse; only attributes of
  /// the f-tree are meaningful).
  const std::vector<Value>& current() const { return current_; }

 private:
  struct Frame : PreOrderFrame {
    uint32_t union_id = 0;
    size_t entry = 0;
  };

  // Sets frames_[i].union_id from the parent frame (or root slot) and
  // resets its entry to 0; writes the class values into current_.
  void ResetFrame(size_t i);
  void WriteValues(size_t i);

  const FRep* rep_;
  std::vector<Frame> frames_;      // pre-order
  std::vector<size_t> root_slot_;  // frame index -> slot in rep roots
  std::vector<Value> current_;     // indexed by AttrId
  bool started_ = false;
  bool done_ = false;
  bool nullary_pending_ = false;
};

/// Materialises the visible part of `rep` as a relation with schema =
/// visible attributes in increasing id order; rows sorted, duplicates
/// removed. Enumerates with `visible_only`, so invisible-only subtrees do
/// not blow up the intermediate stream. Intended for tests and examples,
/// not for large results.
Relation MaterializeVisible(const FRep& rep);

}  // namespace fdb

#endif  // FDB_CORE_ENUMERATE_H_
