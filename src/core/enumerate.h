// Tuple enumeration from f-representations.
//
// F-representations allow constant-delay enumeration: O(|E|) preparation and
// O(|S|) delay between successive tuples (§2). TupleEnumerator implements
// this with an explicit odometer over the f-tree's pre-order: advancing to
// the next tuple touches each of the |T| frames at most once.
#ifndef FDB_CORE_ENUMERATE_H_
#define FDB_CORE_ENUMERATE_H_

#include <vector>

#include "core/frep.h"
#include "storage/relation.h"

namespace fdb {

/// Streams the tuples of an f-representation. Tuples carry all attributes
/// of the f-tree (visible or not); callers project as needed.
class TupleEnumerator {
 public:
  explicit TupleEnumerator(const FRep& rep);

  /// Advances to the next tuple; false when exhausted. The first call
  /// positions the enumerator on the first tuple.
  bool Next();

  /// Value of `attr` in the current tuple (valid after Next() == true).
  Value ValueOf(AttrId attr) const { return current_[attr]; }

  /// The current tuple indexed by attribute id (sparse; only attributes of
  /// the f-tree are meaningful).
  const std::vector<Value>& current() const { return current_; }

 private:
  struct Frame {
    int node;        // f-tree node id
    int parent_pos;  // index into frames_ of the parent, -1 for roots
    size_t slot;     // child slot within the parent node
    uint32_t union_id = 0;
    size_t entry = 0;
  };

  // Sets frames_[i].union_id from the parent frame (or root slot) and
  // resets its entry to 0; writes the class values into current_.
  void ResetFrame(size_t i);
  void WriteValues(size_t i);

  const FRep* rep_;
  std::vector<Frame> frames_;      // pre-order
  std::vector<size_t> root_slot_;  // frame index -> slot in rep roots
  std::vector<Value> current_;     // indexed by AttrId
  bool started_ = false;
  bool done_ = false;
  bool nullary_pending_ = false;
};

/// Materialises the visible part of `rep` as a relation with schema =
/// visible attributes in increasing id order; rows sorted, duplicates
/// removed. Intended for tests and examples, not for large results.
Relation MaterializeVisible(const FRep& rep);

}  // namespace fdb

#endif  // FDB_CORE_ENUMERATE_H_
