// Tuple enumeration from f-representations.
//
// F-representations allow constant-delay enumeration: O(|E|) preparation and
// O(|S|) delay between successive tuples (§2). TupleEnumerator implements
// this with an explicit odometer over the f-tree's pre-order: advancing to
// the next tuple touches each of the |T| frames at most once.
#ifndef FDB_CORE_ENUMERATE_H_
#define FDB_CORE_ENUMERATE_H_

#include <vector>

#include "core/frep.h"
#include "storage/relation.h"

namespace fdb {

/// One pre-order frame of an f-tree walk: the node, the index of its
/// parent's frame in the frame list (-1 for roots), and the child slot
/// within the parent (for roots: the slot in the root list).
struct PreOrderFrame {
  int node;
  int parent_pos;
  size_t slot;
};

/// Frames for t.PreOrder(). When `keep` is given (indexed by node id, and
/// closed under parents: a kept node's parent is kept), skipped nodes get
/// no frame. Shared by TupleEnumerator and GroupedRep::Materialize.
std::vector<PreOrderFrame> BuildPreOrderFrames(const FTree& t,
                                               const std::vector<char>* keep =
                                                   nullptr);

/// The node mask of visible_only enumeration: a node is kept iff its
/// subtree contains a visible attribute (closed under parents, so it is a
/// valid `keep` argument for BuildPreOrderFrames).
std::vector<char> VisibleKeepMask(const FTree& t);

/// Half-open entry range [begin, end) restricting one pre-order frame of
/// an enumeration (see the TupleEnumerator bounds constructor). Produced
/// by the morsel planner in core/parallel_enumerate.h.
struct EntryBound {
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// Streams the tuples of an f-representation.
///
/// Contract: in the default mode each *distinct tuple over all attributes
/// of the f-tree* (visible or not) is emitted exactly once; callers
/// project as needed. Projecting the stream onto the visible attributes
/// may therefore repeat visible tuples when the tree retains invisible
/// (projected-away) nodes — consumers that count or aggregate the visible
/// relation must deduplicate, or enumerate with `visible_only`.
///
/// `visible_only` skips every subtree that contains no visible attribute:
/// odometer positions that differ only inside such subtrees collapse into
/// one, so invisible-only nodes no longer multiply the stream. Duplicate
/// *visible* tuples can still arise from invisible nodes that have visible
/// descendants (two values of the invisible node may lead to equal visible
/// sub-tuples below — a data property no structural skip can detect);
/// MaterializeVisible removes those by sort+dedup. In this mode only
/// visible attributes of the current tuple are meaningful.
class TupleEnumerator {
 public:
  explicit TupleEnumerator(const FRep& rep, bool visible_only = false);

  /// Range-restricted enumeration: `bounds[i]` restricts the entries of
  /// pre-order frame i (the same frame order the unrestricted enumerator
  /// walks, after the visible_only skip) to [begin, end). Every bound but
  /// the last must pin exactly one entry (begin + 1 == end), so the
  /// restricted frames form a chain whose unions never change during the
  /// walk — the shape the morsel planner emits. The restricted stream is
  /// a contiguous slice of the unrestricted stream, in the same order;
  /// a bound that misses its union entirely yields the empty stream.
  TupleEnumerator(const FRep& rep, bool visible_only,
                  std::vector<EntryBound> bounds);

  /// Advances to the next tuple; false when exhausted. The first call
  /// positions the enumerator on the first tuple.
  bool Next();

  /// Value of `attr` in the current tuple (valid after Next() == true).
  Value ValueOf(AttrId attr) const { return current_[attr]; }

  /// The current tuple indexed by attribute id (sparse; only attributes of
  /// the f-tree are meaningful).
  const std::vector<Value>& current() const { return current_; }

 private:
  struct Frame : PreOrderFrame {
    uint32_t union_id = 0;
    size_t entry = 0;
    /// Entries strictly below this advance: min(union size, bound end),
    /// folded in at reset so the hot advance loop compares one cached
    /// value instead of re-reading the union header and re-clamping the
    /// bound on every step.
    size_t limit = 0;
  };

  // Sets frames_[i].union_id from the parent frame (or root slot), resets
  // its entry to the frame's lower bound (0 when unbounded), caches the
  // frame's entry limit and writes the class values into current_. Returns
  // false when the bound misses the union entirely — possible only on the
  // first pass, since bounded frames form a pinned chain whose unions
  // never change afterwards.
  bool ResetFrame(size_t i);
  void WriteValues(size_t i);

  const FRep* rep_;
  std::vector<Frame> frames_;      // pre-order
  std::vector<size_t> root_slot_;  // frame index -> slot in rep roots
  std::vector<Value> current_;     // indexed by AttrId
  std::vector<EntryBound> bounds_;  // per-frame ranges on a prefix of frames_
  bool started_ = false;
  bool done_ = false;
  bool nullary_pending_ = false;
};

/// Materialises the visible part of `rep` as a relation with schema =
/// visible attributes in increasing id order; rows sorted, duplicates
/// removed. Enumerates with `visible_only`, so invisible-only subtrees do
/// not blow up the intermediate stream, and reserves the output capacity
/// from the restricted tuple count up front (no growth reallocations).
/// For large representations the overload taking EnumerateOptions
/// (core/parallel_enumerate.h) enumerates on multiple cores.
Relation MaterializeVisible(const FRep& rep);

namespace internal {

/// Sequential MaterializeVisible sink with a pre-computed pre-dedup row
/// count (<= 0: unknown, skip the reservation). Shared by the public
/// overloads so each call sizes the stream with exactly one DP pass.
Relation MaterializeVisibleSized(const FRep& rep, double est_rows);

}  // namespace internal

}  // namespace fdb

#endif  // FDB_CORE_ENUMERATE_H_
