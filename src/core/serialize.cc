#include "core/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/str.h"
#include "core/validate.h"

namespace fdb {

namespace {

constexpr const char* kMagic = "fdb-frep";
constexpr int kVersion = 1;

// Hard cap on serialized f-tree node ids. Node records may legitimately
// leave gaps (dead nodes keep their pool slot), but the reader materialises
// the whole pool up to the largest id — without a cap, a single forged
// `node 999999999 ...` line makes a kilobyte file allocate gigabytes before
// any validation runs. Real pools are tiny (one node per attribute class);
// 2^16 leaves orders of magnitude of headroom.
constexpr int64_t kMaxNodeId = (int64_t{1} << 16) - 1;

// Strict fixed-width hex: non-empty, hex digits only, at most 16 of them
// (one uint64). istream's `>> std::hex` is too lenient for an untrusted
// boundary — it silently accepts trailing garbage ("12xy" parses as 0x12)
// and a leading '-' wraps through negation.
uint64_t ParseHex(const std::string& s) {
  FDB_CHECK_MSG(!s.empty() && s.size() <= 16, "bad hex field: " + s);
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      throw FdbError("bad hex field: " + s);
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  return v;
}

// Splits "key=value" and checks the key.
std::string Field(const std::string& token, const std::string& key) {
  auto pos = token.find('=');
  FDB_CHECK_MSG(pos != std::string::npos && token.substr(0, pos) == key,
                "expected field '" + key + "', got '" + token + "'");
  return token.substr(pos + 1);
}

std::vector<int64_t> ParseIntList(const std::string& s) {
  std::vector<int64_t> out;
  if (s.empty()) return out;
  for (const std::string& part : Split(s, ',')) {
    int64_t v;
    FDB_CHECK_MSG(ParseInt64(part, &v), "bad integer list entry: " + part);
    out.push_back(v);
  }
  return out;
}

}  // namespace

void WriteFRep(std::ostream& out, const FRep& rep) {
  out << kMagic << ' ' << kVersion << '\n';
  const FTree& t = rep.tree();
  out << std::hex;
  for (size_t i = 0; i < t.pool_size(); ++i) {
    const FTreeNode& n = t.node(static_cast<int>(i));
    if (!n.alive) continue;
    out << "node " << std::dec << i << std::hex
        << " attrs=" << n.attrs.bits() << " visible=" << n.visible.bits()
        << " cover=" << n.cover_rels.bits() << " dep=" << n.dep_rels.bits()
        << " const=" << (n.constant ? 1 : 0) << " parent=" << std::dec
        << n.parent << '\n';
  }
  out << std::dec;
  for (int r : t.roots()) out << "troot " << r << '\n';
  out << (rep.empty() ? "empty" : "nonempty") << '\n';
  if (!rep.empty()) {
    // Walk reachable unions; ids are rewritten densely in discovery order.
    std::vector<uint32_t> order;
    std::vector<int64_t> new_id(rep.NumUnions(), -1);
    std::vector<uint32_t> stack(rep.roots().rbegin(), rep.roots().rend());
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      if (new_id[id] >= 0) continue;
      new_id[id] = static_cast<int64_t>(order.size());
      order.push_back(id);
      UnionRef un = rep.u(id);
      for (size_t i = un.num_children(); i > 0; --i) {
        stack.push_back(un.child(i - 1));
      }
    }
    for (uint32_t id : order) {
      UnionRef un = rep.u(id);
      out << "union " << new_id[id] << " node=" << un.node() << " values=";
      for (size_t i = 0; i < un.size(); ++i) {
        if (i) out << ',';
        out << un.value(i);
      }
      out << " children=";
      for (size_t i = 0; i < un.num_children(); ++i) {
        if (i) out << ',';
        out << new_id[un.child(i)];
      }
      out << '\n';
    }
    for (uint32_t r : rep.roots()) out << "uroot " << new_id[r] << '\n';
  }
  out << "end\n";
}

FRep ReadFRep(std::istream& in) {
  std::string line;
  // Skip leading comments and blank lines before the header.
  bool have_header = false;
  while (std::getline(in, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    have_header = true;
    break;
  }
  FDB_CHECK_MSG(have_header, "empty f-representation input");
  {
    std::vector<std::string> head = Split(line, ' ');
    FDB_CHECK_MSG(head.size() == 2 && head[0] == kMagic &&
                      head[1] == std::to_string(kVersion),
                  "bad f-representation header: " + line);
  }

  // Node records may arrive with arbitrary ids; collect then build.
  struct NodeRec {
    int id;
    uint64_t attrs, visible, cover, dep;
    bool constant;
    int parent;
  };
  std::vector<NodeRec> nodes;
  std::vector<int> troots;
  struct UnionRec {
    int64_t id;
    int node;
    std::vector<int64_t> values, children;
  };
  std::vector<UnionRec> unions;
  std::vector<int64_t> uroots;
  bool empty = true, saw_state = false, saw_end = false;

  while (std::getline(in, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tok = Split(line, ' ');
    const std::string& kind = tok[0];
    if (kind == "node") {
      FDB_CHECK_MSG(tok.size() == 8, "bad node record: " + line);
      NodeRec n;
      int64_t id, parent;
      FDB_CHECK_MSG(ParseInt64(tok[1], &id) && id >= 0 && id <= kMaxNodeId,
                    "bad node id");
      n.id = static_cast<int>(id);
      n.attrs = ParseHex(Field(tok[2], "attrs"));
      n.visible = ParseHex(Field(tok[3], "visible"));
      n.cover = ParseHex(Field(tok[4], "cover"));
      n.dep = ParseHex(Field(tok[5], "dep"));
      n.constant = Field(tok[6], "const") == "1";
      FDB_CHECK_MSG(ParseInt64(Field(tok[7], "parent"), &parent) &&
                        parent >= -1 && parent <= kMaxNodeId,
                    "bad parent id");
      n.parent = static_cast<int>(parent);
      nodes.push_back(n);
    } else if (kind == "troot") {
      FDB_CHECK_MSG(tok.size() == 2, "bad troot record: " + line);
      int64_t id;
      FDB_CHECK_MSG(ParseInt64(tok[1], &id) && id >= 0 && id <= kMaxNodeId,
                    "bad troot id");
      troots.push_back(static_cast<int>(id));
    } else if (kind == "empty" || kind == "nonempty") {
      empty = kind == "empty";
      saw_state = true;
    } else if (kind == "union") {
      FDB_CHECK_MSG(tok.size() == 5, "bad union record: " + line);
      UnionRec u;
      FDB_CHECK_MSG(ParseInt64(tok[1], &u.id), "bad union id");
      int64_t node;
      FDB_CHECK_MSG(ParseInt64(Field(tok[2], "node"), &node) && node >= 0 &&
                        node <= kMaxNodeId,
                    "bad node ref");
      u.node = static_cast<int>(node);
      u.values = ParseIntList(Field(tok[3], "values"));
      u.children = ParseIntList(Field(tok[4], "children"));
      unions.push_back(std::move(u));
    } else if (kind == "uroot") {
      FDB_CHECK_MSG(tok.size() == 2, "bad uroot record: " + line);
      int64_t id;
      FDB_CHECK_MSG(ParseInt64(tok[1], &id), "bad uroot id");
      uroots.push_back(id);
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      throw FdbError("unknown record kind: " + kind);
    }
  }
  FDB_CHECK_MSG(saw_end, "truncated f-representation (missing 'end')");
  FDB_CHECK_MSG(saw_state, "missing empty/nonempty record");

  // Rebuild the tree with the original node ids (the pool may have gaps
  // where dead nodes lived; re-create placeholders and kill them).
  int max_id = -1;
  for (const NodeRec& n : nodes) max_id = std::max(max_id, n.id);
  FTree tree;
  std::vector<bool> alive(static_cast<size_t>(max_id) + 1, false);
  for (int i = 0; i <= max_id; ++i) {
    tree.NewNode(AttrSet::Of({0}), AttrSet{}, RelSet::Of({0}),
                 RelSet::Of({0}));
  }
  for (const NodeRec& n : nodes) {
    FDB_CHECK_MSG(n.id >= 0 && n.id <= max_id, "node id out of range");
    FDB_CHECK_MSG(!alive[static_cast<size_t>(n.id)],
                  "duplicate node record for id " + std::to_string(n.id));
    FTreeNode& nd = tree.node(n.id);
    nd.attrs = AttrSet(n.attrs);
    nd.visible = AttrSet(n.visible);
    nd.cover_rels = RelSet(n.cover);
    nd.dep_rels = RelSet(n.dep);
    nd.constant = n.constant;
    alive[static_cast<size_t>(n.id)] = true;
  }
  for (int i = 0; i <= max_id; ++i) {
    tree.node(i).alive = alive[static_cast<size_t>(i)];
  }
  for (const NodeRec& n : nodes) {
    if (n.parent >= 0) {
      FDB_CHECK_MSG(n.parent <= max_id && alive[static_cast<size_t>(n.parent)],
                    "dangling parent reference");
      tree.node(n.id).parent = n.parent;
      tree.node(n.parent).children.push_back(n.id);
    }
  }
  {
    std::vector<char> is_root(static_cast<size_t>(max_id) + 1, 0);
    for (int r : troots) {
      FDB_CHECK_MSG(r <= max_id && alive[static_cast<size_t>(r)],
                    "dangling troot reference");
      FDB_CHECK_MSG(!is_root[static_cast<size_t>(r)],
                    "duplicate troot record");
      is_root[static_cast<size_t>(r)] = 1;
      tree.AttachRoot(r);
    }
  }
  // Reject parent cycles and detached alive nodes: every alive node must be
  // reachable from a root through the children lists. A cyclic parent chain
  // would otherwise pass the shallow Validate() below (every member of the
  // cycle has a consistent parent) and then hang the CountTuples DP.
  {
    size_t reached = 0;
    std::vector<char> seen(static_cast<size_t>(max_id) + 1, 0);
    std::vector<int> stack(tree.roots().begin(), tree.roots().end());
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      if (seen[static_cast<size_t>(id)]) continue;
      seen[static_cast<size_t>(id)] = 1;
      ++reached;
      for (int c : tree.node(id).children) stack.push_back(c);
    }
    FDB_CHECK_MSG(reached == nodes.size(),
                  "cyclic parent chain or alive node unreachable from roots");
  }

  FRep rep(std::move(tree));
  if (!empty) {
    rep.MarkNonEmpty();
    const size_t n_unions = unions.size();
    // Ids are dense by construction of the writer (but records may arrive in
    // any order): index by id, then append to the arena in id order.
    std::vector<const UnionRec*> by_id(n_unions, nullptr);
    for (const UnionRec& u : unions) {
      FDB_CHECK_MSG(u.id >= 0 && u.id < static_cast<int64_t>(n_unions) &&
                        by_id[static_cast<size_t>(u.id)] == nullptr,
                    "union ids must be dense");
      by_id[static_cast<size_t>(u.id)] = &u;
    }
    for (size_t i = 0; i < n_unions; ++i) {
      const UnionRec& u = *by_id[i];
      // The node binding must be checked here: StartUnion stores the id
      // unchecked, and the Validate() walk below dereferences it through
      // FTree::node() — an out-of-pool id would read out of bounds.
      FDB_CHECK_MSG(u.node <= max_id && alive[static_cast<size_t>(u.node)],
                    "union bound to missing tree node");
      UnionBuilder nu = rep.StartUnion(u.node);
      for (int64_t v : u.values) nu.AddValue(v);
      for (int64_t c : u.children) {
        FDB_CHECK_MSG(c >= 0 && c < static_cast<int64_t>(n_unions),
                      "dangling child union reference");
        nu.AddChild(static_cast<uint32_t>(c));
      }
      nu.Finish();
    }
    for (int64_t r : uroots) {
      FDB_CHECK_MSG(r >= 0 && r < static_cast<int64_t>(n_unions),
                    "dangling root union reference");
      rep.roots().push_back(static_cast<uint32_t>(r));
    }
  }
  rep.Validate();
  FDB_VALIDATE_REP(rep);
  return rep;
}

void WriteFRepFile(const std::string& path, const FRep& rep) {
  std::ofstream out(path);
  FDB_CHECK_MSG(out.good(), "cannot open file for writing: " + path);
  WriteFRep(out, rep);
}

FRep ReadFRepFile(const std::string& path) {
  std::ifstream in(path);
  FDB_CHECK_MSG(in.good(), "cannot open file: " + path);
  return ReadFRep(in);
}

}  // namespace fdb
