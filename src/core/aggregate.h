// Aggregates computed directly on f-representations, without enumeration.
//
// Factorised representations support aggregation in time linear in |E|
// rather than in the number of represented tuples: counts and sums
// distribute over the union/product structure (this is the direction the
// factorised-database line later developed into the F and LMFAO systems;
// the FDB paper positions factorised results as "compilations of query
// results that allow for efficient subsequent processing", §1).
//
// Semantics: aggregates range over the *distinct tuples* of the represented
// relation (relations are sets), over all attributes of the f-tree.
#ifndef FDB_CORE_AGGREGATE_H_
#define FDB_CORE_AGGREGATE_H_

#include <cstdint>

#include "core/frep.h"

namespace fdb {

/// COUNT(*): number of represented tuples. Exact up to 2^53 (delegates to
/// FRep::CountTuples).
double Count(const FRep& rep);

/// SUM(attr) over all represented tuples. The attribute must label an
/// alive f-tree node. Returns 0 for the empty relation.
double Sum(const FRep& rep, AttrId attr);

/// AVG(attr); throws FdbError on the empty relation.
double Avg(const FRep& rep, AttrId attr);

/// MIN/MAX(attr); throw FdbError on the empty relation. Every reachable
/// union participates in at least one tuple (no-empty-unions invariant), so
/// these are single passes over the unions of the attribute's node.
Value Min(const FRep& rep, AttrId attr);
Value Max(const FRep& rep, AttrId attr);

/// COUNT(DISTINCT attr): number of distinct values of the attribute across
/// all represented tuples.
size_t CountDistinct(const FRep& rep, AttrId attr);

}  // namespace fdb

#endif  // FDB_CORE_AGGREGATE_H_
