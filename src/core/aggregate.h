// Aggregates computed directly on f-representations, without enumeration.
//
// Factorised representations support aggregation in time linear in |E|
// rather than in the number of represented tuples: counts and sums
// distribute over the union/product structure, and GROUP BY evaluates
// inside the factorisation once the grouping attributes form the upper
// fragment of the f-tree (Bakibayev, Kočiský, Olteanu, Závodný:
// "Aggregation and Ordering in Factorised Databases", PVLDB'13 — the
// follow-up to the FDB paper, which positions factorised results as
// "compilations of query results that allow for efficient subsequent
// processing", §1).
//
// Grouped aggregation is restructure-then-collapse:
//   1. restructure — repeated chi swaps (core/ops_restructure.cc) lift
//      every node whose class meets the GROUP BY set above all non-group
//      nodes, so the grouping classes become an upper fragment of the
//      f-tree ("aggregations compatible with the f-tree order"). Among the
//      applicable swaps the cheapest next tree by s(T) is chosen greedily.
//   2. collapse — one linear pass over the union arenas replaces every
//      subtree hanging below the grouping frontier by its aggregate
//      statistics (tuple count, per-attribute sum/min/max), attached to
//      the union entry that owned the subtree. Root trees containing no
//      grouping class collapse into global multipliers shared by all
//      groups.
// The result is a factorised representation of the *distinct groups* plus
// per-entry payloads (GroupedRep) from which every per-group aggregate is
// a product/sum along the group's root-to-leaf entries — time linear in
// the representation size, never in the number of represented tuples.
//
// Exactness: all tuple counts are accumulated in uint64_t with overflow
// checks. Aggregates whose value would silently be wrong past saturation
// (SUM/AVG weighting, per-group counts) throw FdbError instead of
// returning a rounded double; Count() reports approximate counts past
// 2^64 via the `exact` flag of FRep::CountTuples.
//
// Semantics: aggregates range over the *distinct tuples* of the represented
// relation (relations are sets), over all attributes of the f-tree,
// visible or not. The nullary relation <> has COUNT 1; attribute
// aggregates over it throw (no attribute labels an f-tree node).
#ifndef FDB_CORE_AGGREGATE_H_
#define FDB_CORE_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "core/fplan.h"
#include "core/frep.h"
#include "core/parallel_enumerate.h"
#include "storage/query.h"

namespace fdb {

/// COUNT(*): number of represented tuples. Exact while the count fits a
/// double round trip (delegates to FRep::CountTuples).
double Count(const FRep& rep);

/// SUM(attr) over all represented tuples. The attribute must label an
/// alive f-tree node. Returns 0 for the empty relation. Throws FdbError
/// when an intermediate tuple count overflows uint64 (the weighted sum
/// would be silently wrong).
double Sum(const FRep& rep, AttrId attr);

/// AVG(attr); throws FdbError on the empty relation (and on count
/// overflow, like Sum).
double Avg(const FRep& rep, AttrId attr);

/// MIN/MAX(attr); throw FdbError on the empty relation. Every reachable
/// union participates in at least one tuple (no-empty-unions invariant), so
/// these are single passes over the unions of the attribute's node.
Value Min(const FRep& rep, AttrId attr);
Value Max(const FRep& rep, AttrId attr);

/// COUNT(DISTINCT attr): number of distinct values of the attribute across
/// all represented tuples.
size_t CountDistinct(const FRep& rep, AttrId attr);

/// A factorised grouped-aggregate result: the distinct groups as an
/// f-representation over the grouping classes only, plus the collapsed
/// statistics of everything that hung below them.
///
/// For a union entry with rep-wide entry index i (UnionRef::arena_offset()
/// + entry), entry_count[i] is the number of tuples represented by the
/// product of the subtrees removed below that entry (1 when nothing was
/// removed), and entry_sum/min/max[j][i] hold the per-spec statistics of
/// the removed product for the one entry whose node owns spec j's
/// attribute. A group is one root-to-leaf assignment of `rep`; its
/// aggregates combine the payloads of the entries on that assignment with
/// the global multipliers — see Materialize().
struct GroupedRep {
  /// Where a spec's attribute ended up after restructuring.
  enum class Where {
    kNone,    ///< COUNT(*): no attribute
    kGroup,   ///< attribute labels a grouping class (value = group key)
    kBelow,   ///< attribute collapsed below frontier entry of spec_node
    kGlobal,  ///< attribute in a root tree without grouping classes
  };

  FRep rep{FTree{}};   ///< factorised distinct groups (grouping classes only)
  AttrSet group_attrs; ///< the GROUP BY attributes
  std::vector<AggSpec> specs;

  // Per-entry collapsed payloads, indexed by rep-wide entry index.
  std::vector<uint64_t> entry_count;
  std::vector<std::vector<double>> entry_sum;  ///< [spec][entry]
  std::vector<std::vector<Value>> entry_min;   ///< [spec][entry]
  std::vector<std::vector<Value>> entry_max;   ///< [spec][entry]

  std::vector<Where> spec_where;  ///< per spec
  std::vector<int> spec_node;     ///< grouping node id (kGroup / kBelow)

  // Root trees without grouping classes, collapsed into multipliers that
  // apply to every group: global_count is the product of their tuple
  // counts; global_sum[j] is the sum of spec j's attribute over their
  // product (0 unless spec j is kGlobal).
  uint64_t global_count = 1;
  std::vector<double> global_sum;
  std::vector<Value> global_min;
  std::vector<Value> global_max;

  /// Number of distinct groups (tuples of `rep`).
  uint64_t NumGroups() const;

  /// Flattens to one row per group: group keys (ascending attribute order)
  /// plus one double per spec. Throws FdbError if a per-group count
  /// overflows uint64. The parameterless overload runs sequentially; the
  /// EnumerateOptions overload splits the group forest with the morsel
  /// planner (core/parallel_enumerate.h) and materialises the chunks on
  /// the shared thread pool, concatenated in chunk order — the row order
  /// is identical to the sequential walk for every thread count.
  GroupedTable Materialize() const;
  GroupedTable Materialize(const EnumerateOptions& opts) const;
};

/// Grouped aggregation inside the factorisation (restructure-then-collapse,
/// see the header comment). Every attribute of `group_attrs` and of the
/// non-COUNT specs must label an alive node of the f-tree. Empty
/// `group_attrs` computes the single global group (equal to Count/Sum/...
/// of the whole representation); the empty relation yields zero groups.
///
/// `solver` (optional) ranks candidate restructuring swaps by the s(T) of
/// the resulting tree; without it a scratch solver is used. The swaps
/// applied are appended to `plan_out` when given.
GroupedRep GroupByAggregate(const FRep& in, AttrSet group_attrs,
                            std::vector<AggSpec> specs,
                            EdgeCoverSolver* solver = nullptr,
                            FPlan* plan_out = nullptr);

}  // namespace fdb

#endif  // FDB_CORE_AGGREGATE_H_
