#include "core/print.h"

#include <sstream>

namespace fdb {

namespace {

class Printer {
 public:
  Printer(const FRep& rep, const PrintOptions& opts)
      : rep_(rep), opts_(opts) {}

  std::string Run() {
    if (rep_.empty()) return opts_.unicode ? "∅" : "{}";
    if (rep_.roots().empty()) return opts_.unicode ? "⟨⟩" : "<>";
    for (size_t i = 0; i < rep_.roots().size(); ++i) {
      if (i) os_ << Times();
      PrintUnion(rep_.roots()[i], /*parenthesise=*/rep_.roots().size() > 1);
      if (Truncated()) break;
    }
    std::string s = os_.str();
    if (opts_.max_chars > 0 && s.size() > opts_.max_chars) {
      s.resize(opts_.max_chars);
      s += "...";
    }
    return s;
  }

 private:
  const char* Times() const { return opts_.unicode ? " × " : " x "; }
  const char* Cup() const { return opts_.unicode ? " ∪ " : " u "; }

  bool Truncated() {
    return opts_.max_chars > 0 &&
           os_.tellp() > static_cast<std::streamoff>(opts_.max_chars);
  }

  void PrintSingletons(const FTreeNode& nd, Value v) {
    bool first = true;
    for (AttrId a : nd.attrs) {
      if (!first) os_ << Times();
      first = false;
      os_ << (opts_.unicode ? "⟨" : "<");
      bool is_string = false;
      if (opts_.catalog != nullptr) {
        if (opts_.attr_names) os_ << opts_.catalog->attr(a).name << ':';
        is_string = opts_.catalog->attr(a).is_string;
      }
      if (is_string && opts_.dict != nullptr && opts_.dict->Contains(v)) {
        os_ << opts_.dict->Decode(v);
      } else {
        os_ << v;
      }
      os_ << (opts_.unicode ? "⟩" : ">");
    }
  }

  void PrintUnion(uint32_t id, bool parenthesise) {
    UnionRef un = rep_.u(id);
    const FTreeNode& nd = rep_.tree().node(un.node());
    const size_t k = nd.children.size();
    bool paren = parenthesise && un.size() > 1;
    if (paren) os_ << '(';
    for (size_t e = 0; e < un.size(); ++e) {
      if (e) os_ << Cup();
      PrintSingletons(nd, un.value(e));
      for (size_t j = 0; j < k; ++j) {
        os_ << Times();
        PrintUnion(un.Child(e, j, k), /*parenthesise=*/true);
      }
      if (Truncated()) break;
    }
    if (paren) os_ << ')';
  }

  const FRep& rep_;
  const PrintOptions& opts_;
  std::ostringstream os_;
};

}  // namespace

std::string ToExpressionString(const FRep& rep, const PrintOptions& opts) {
  return Printer(rep, opts).Run();
}

}  // namespace fdb
