// Serialisation of f-representations.
//
// §1 motivates *compiled databases*: static data sets (the paper cites the
// human genome database) aggressively factorised once and then queried many
// times. That workflow needs factorised representations to be stored and
// reloaded without re-grounding; this module provides a line-based text
// format with full fidelity (f-tree shape, dependency bookkeeping, union
// pool) and a strict, validating reader.
//
// Format (one record per line, '#' starts a comment):
//   fdb-frep 1
//   node <id> attrs=<hex> visible=<hex> cover=<hex> dep=<hex> const=<0|1>
//        parent=<id|-1>
//   troot <node id>                     (tree roots, in order)
//   empty | nonempty
//   union <id> node=<node id> values=<v,...> children=<u,...>
//   uroot <union id>                    (root unions, in order)
//   end
#ifndef FDB_CORE_SERIALIZE_H_
#define FDB_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "core/frep.h"

namespace fdb {

/// Writes `rep` to `out`; the result round-trips through ReadFRep.
void WriteFRep(std::ostream& out, const FRep& rep);

/// Parses an f-representation; throws FdbError on malformed input. The
/// result is Validate()d before being returned, so corrupted files cannot
/// produce an inconsistent representation.
FRep ReadFRep(std::istream& in);

/// File-path convenience wrappers.
void WriteFRepFile(const std::string& path, const FRep& rep);
FRep ReadFRepFile(const std::string& path);

}  // namespace fdb

#endif  // FDB_CORE_SERIALIZE_H_
