#include "core/frep.h"

#include <algorithm>

namespace fdb {

namespace {

// Operators may leave unreachable (dropped-entry or abandoned) unions in the
// header table, so statistics walk only what the roots reach; shared unions
// count once.
template <typename Fn>
void ForEachReachable(const FRep& rep, Fn fn) {
  std::vector<char> seen(rep.NumUnions(), 0);
  std::vector<uint32_t> stack(rep.roots().begin(), rep.roots().end());
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    UnionRef un = rep.u(id);
    fn(un);
    const uint32_t* kids = un.children();
    for (size_t i = 0; i < un.num_children(); ++i) stack.push_back(kids[i]);
  }
}

}  // namespace

void FRep::MarkEmpty() {
  FDB_CHECK_MSG(scratch_top_ == 0, "MarkEmpty with open builders");
  empty_ = true;
  // Swap-with-empty releases capacity: an intermediate that became empty
  // mid-f-plan must not keep its peak arena allocation alive.
  std::vector<uint32_t>().swap(roots_);
  std::vector<Value>().swap(values_);
  std::vector<uint32_t>().swap(children_);
  std::vector<UnionHeader>().swap(headers_);
  std::vector<std::unique_ptr<Scratch>>().swap(scratch_);
}

size_t FRep::NumSingletons() const {
  if (empty_) return 0;
  size_t total = 0;
  ForEachReachable(*this, [&](const UnionRef& un) {
    total += un.size() *
             static_cast<size_t>(tree_.node(un.node()).visible.Size());
  });
  return total;
}

size_t FRep::NumValues() const {
  if (empty_) return 0;
  size_t total = 0;
  ForEachReachable(*this, [&](const UnionRef& un) { total += un.size(); });
  return total;
}

size_t FRep::MemoryBytes() const {
  size_t total = values_.capacity() * sizeof(Value) +
                 children_.capacity() * sizeof(uint32_t) +
                 headers_.capacity() * sizeof(UnionHeader) +
                 roots_.capacity() * sizeof(uint32_t) +
                 scratch_.capacity() * sizeof(scratch_[0]);
  for (const auto& s : scratch_) {
    total += sizeof(Scratch) + s->vals.capacity() * sizeof(Value) +
             s->kids.capacity() * sizeof(uint32_t);
  }
  return total;
}

double FRep::CountTuples() const {
  if (empty_) return 0.0;
  if (roots_.empty()) return 1.0;  // the nullary tuple <>
  std::vector<double> memo(headers_.size(), -1.0);
  // Iterative post-order over the DAG of unions (operators may share
  // subtrees, e.g. push-up hoists one copy).
  std::vector<uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    uint32_t id = stack.back();
    UnionRef un = u(id);
    if (memo[id] >= 0.0) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    const uint32_t* kids = un.children();
    for (size_t i = 0; i < un.num_children(); ++i) {
      if (memo[kids[i]] < 0.0) {
        if (ready) ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    const size_t k = tree_.node(un.node()).children.size();
    double total = 0.0;
    for (size_t e = 0; e < un.size(); ++e) {
      double prod = 1.0;
      for (size_t j = 0; j < k; ++j) prod *= memo[un.Child(e, j, k)];
      total += prod;
    }
    memo[id] = total;
    stack.pop_back();
  }
  double result = 1.0;
  for (uint32_t r : roots_) result *= memo[r];
  return result;
}

void FRep::Validate() const {
  tree_.Validate();
  FDB_CHECK_MSG(scratch_top_ == 0, "Validate with open builders");
  if (empty_) {
    FDB_CHECK_MSG(roots_.empty() && headers_.empty(),
                  "empty representation must have no unions");
    return;
  }
  FDB_CHECK_MSG(roots_.size() == tree_.roots().size(),
                "root unions must align with tree roots");
  // Walk every reachable union once.
  std::vector<char> seen(headers_.size(), 0);
  std::vector<uint32_t> stack;
  for (size_t i = 0; i < roots_.size(); ++i) {
    FDB_CHECK(roots_[i] < headers_.size());
    FDB_CHECK_MSG(headers_[roots_[i]].node == tree_.roots()[i],
                  "root union bound to wrong tree node");
    stack.push_back(roots_[i]);
  }
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;  // sharing is allowed (push-up hoists copies)
    seen[id] = 1;
    UnionRef un = u(id);
    const FTreeNode& nd = tree_.node(un.node());
    FDB_CHECK_MSG(nd.alive, "union bound to dead tree node");
    FDB_CHECK_MSG(!un.empty(), "empty union inside non-empty rep");
    FDB_CHECK_MSG(un.num_children() == un.size() * nd.children.size(),
                  "child slot count mismatch");
    for (size_t e = 1; e < un.size(); ++e) {
      FDB_CHECK_MSG(un.value(e - 1) < un.value(e),
                    "union values not strictly increasing");
    }
    const size_t k = nd.children.size();
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        uint32_t c = un.Child(e, j, k);
        FDB_CHECK(c < headers_.size());
        FDB_CHECK_MSG(headers_[c].node == nd.children[j],
                      "child union bound to wrong tree node");
        stack.push_back(c);
      }
    }
  }
}

}  // namespace fdb
