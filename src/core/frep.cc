#include "core/frep.h"

#include <algorithm>

namespace fdb {

namespace {

// Operators may leave unreachable (dropped-entry or abandoned) unions in the
// header table, so statistics walk only what the roots reach; shared unions
// count once.
template <typename Fn>
void ForEachReachable(const FRep& rep, Fn fn) {
  std::vector<char> seen(rep.NumUnions(), 0);
  std::vector<uint32_t> stack(rep.roots().begin(), rep.roots().end());
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    UnionRef un = rep.u(id);
    fn(un);
    const uint32_t* kids = un.children();
    for (size_t i = 0; i < un.num_children(); ++i) stack.push_back(kids[i]);
  }
}

}  // namespace

void FRep::MarkEmpty() {
  FDB_CHECK_MSG(scratch_top_ == 0, "MarkEmpty with open builders");
  empty_ = true;
  // Swap-with-empty releases capacity: an intermediate that became empty
  // mid-f-plan must not keep its peak arena allocation alive.
  std::vector<uint32_t>().swap(roots_);
  std::vector<Value>().swap(values_);
  std::vector<uint32_t>().swap(children_);
  std::vector<UnionHeader>().swap(headers_);
  std::vector<std::unique_ptr<Scratch>>().swap(scratch_);
}

size_t FRep::NumSingletons() const {
  if (empty_) return 0;
  size_t total = 0;
  ForEachReachable(*this, [&](const UnionRef& un) {
    total += un.size() *
             static_cast<size_t>(tree_.node(un.node()).visible.Size());
  });
  return total;
}

size_t FRep::NumValues() const {
  if (empty_) return 0;
  size_t total = 0;
  ForEachReachable(*this, [&](const UnionRef& un) { total += un.size(); });
  return total;
}

size_t FRep::MemoryBytes() const {
  size_t total = values_.capacity() * sizeof(Value) +
                 children_.capacity() * sizeof(uint32_t) +
                 headers_.capacity() * sizeof(UnionHeader) +
                 roots_.capacity() * sizeof(uint32_t) +
                 scratch_.capacity() * sizeof(scratch_[0]);
  for (const auto& s : scratch_) {
    total += sizeof(Scratch) + s->vals.capacity() * sizeof(Value) +
             s->kids.capacity() * sizeof(uint32_t);
  }
  return total;
}

namespace {

// Shared iterative post-order DP over the union DAG (operators may share
// subtrees, e.g. push-up hoists one copy). `Num` is the accumulator type;
// `mul`/`add` fold two values and return false on saturation, which aborts
// the whole pass.
template <typename Num, typename Mul, typename Add>
bool CountDp(const FRep& rep, Num one, Mul mul, Add add, Num* out) {
  std::vector<Num> memo(rep.NumUnions(), Num{});
  std::vector<char> done(rep.NumUnions(), 0);
  std::vector<uint32_t> stack(rep.roots().begin(), rep.roots().end());
  // Governance probe: the DP touches every reachable union, so large reps
  // make it a cancellation window in its own right.
  ExecContext* const ctx = ExecContext::Current();
  uint32_t tick = 0;
  while (!stack.empty()) {
    if (ctx != nullptr && (++tick & 255u) == 0) ctx->CheckCancelled();
    uint32_t id = stack.back();
    UnionRef un = rep.u(id);
    if (done[id]) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    const uint32_t* kids = un.children();
    for (size_t i = 0; i < un.num_children(); ++i) {
      if (!done[kids[i]]) {
        if (ready) ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    const size_t k = rep.tree().node(un.node()).children.size();
    Num total{};
    for (size_t e = 0; e < un.size(); ++e) {
      Num prod = one;
      for (size_t j = 0; j < k; ++j) {
        if (!mul(prod, memo[un.Child(e, j, k)], &prod)) return false;
      }
      if (!add(total, prod, &total)) return false;
    }
    memo[id] = total;
    done[id] = 1;
    stack.pop_back();
  }
  Num result = one;
  for (uint32_t r : rep.roots()) {
    if (!mul(result, memo[r], &result)) return false;
  }
  *out = result;
  return true;
}

bool TryCountU64(const FRep& rep, uint64_t* out) {
  auto mul = [](uint64_t a, uint64_t b, uint64_t* o) {
    return !U64MulOverflow(a, b, o);
  };
  auto add = [](uint64_t a, uint64_t b, uint64_t* o) {
    return !U64AddOverflow(a, b, o);
  };
  return CountDp<uint64_t>(rep, 1, mul, add, out);
}

}  // namespace

double FRep::CountTuples(bool* exact) const {
  if (exact != nullptr) *exact = true;
  if (empty_) return 0.0;
  if (roots_.empty()) return 1.0;  // the nullary tuple <>
  uint64_t exact_count = 0;
  if (TryCountU64(*this, &exact_count)) {
    double d = static_cast<double>(exact_count);
    if (exact != nullptr) {
      // Equal to the true count iff the uint64 -> double round trip is
      // lossless (always below 2^53, and for round values above).
      *exact = d < 18446744073709551616.0 &&
               static_cast<uint64_t>(d) == exact_count;
    }
    return d;
  }
  // Saturated uint64: fall back to (approximate) double accumulation.
  if (exact != nullptr) *exact = false;
  auto mul = [](double a, double b, double* o) {
    *o = a * b;
    return true;
  };
  auto add = [](double a, double b, double* o) {
    *o = a + b;
    return true;
  };
  double approx = 0.0;
  CountDp<double>(*this, 1.0, mul, add, &approx);
  return approx;
}

std::vector<double> FRep::SubtreeTupleCounts(
    const std::vector<char>* keep) const {
  std::vector<double> memo(NumUnions(), 0.0);
  if (empty_) return memo;
  // Same iterative post-order walk as CountDp, but keep-masked (skipped
  // child slots multiply by 1 and are never visited) and with the whole
  // memo exposed rather than just the root fold.
  std::vector<char> done(NumUnions(), 0);
  std::vector<uint32_t> stack;
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (keep == nullptr || (*keep)[static_cast<size_t>(tree_.roots()[i])]) {
      stack.push_back(roots_[i]);
    }
  }
  ExecContext* const ctx = ExecContext::Current();
  uint32_t tick = 0;
  while (!stack.empty()) {
    if (ctx != nullptr && (++tick & 255u) == 0) ctx->CheckCancelled();
    uint32_t id = stack.back();
    if (done[id]) {
      stack.pop_back();
      continue;
    }
    UnionRef un = u(id);
    const std::vector<int>& ch = tree_.node(un.node()).children;
    const size_t k = ch.size();
    bool ready = true;
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        if (keep != nullptr && !(*keep)[static_cast<size_t>(ch[j])]) continue;
        uint32_t c = un.Child(e, j, k);
        if (!done[c]) {
          if (ready) ready = false;
          stack.push_back(c);
        }
      }
    }
    if (!ready) continue;
    double total = 0.0;
    for (size_t e = 0; e < un.size(); ++e) {
      double prod = 1.0;
      for (size_t j = 0; j < k; ++j) {
        if (keep != nullptr && !(*keep)[static_cast<size_t>(ch[j])]) continue;
        prod *= memo[un.Child(e, j, k)];
      }
      total += prod;
    }
    memo[id] = total;
    done[id] = 1;
    stack.pop_back();
  }
  return memo;
}

uint64_t FRep::CountTuplesExact() const {
  if (empty_) return 0;
  if (roots_.empty()) return 1;  // the nullary tuple <>
  uint64_t count = 0;
  FDB_CHECK_MSG(TryCountU64(*this, &count),
                "tuple count overflows uint64 — the representation encodes "
                "more than 2^64 tuples");
  return count;
}

void FRep::Validate() const {
  tree_.Validate();
  FDB_CHECK_MSG(scratch_top_ == 0, "Validate with open builders");
  if (empty_) {
    FDB_CHECK_MSG(roots_.empty() && headers_.empty(),
                  "empty representation must have no unions");
    return;
  }
  FDB_CHECK_MSG(roots_.size() == tree_.roots().size(),
                "root unions must align with tree roots");
  // Walk every reachable union once.
  std::vector<char> seen(headers_.size(), 0);
  std::vector<uint32_t> stack;
  for (size_t i = 0; i < roots_.size(); ++i) {
    FDB_CHECK(roots_[i] < headers_.size());
    FDB_CHECK_MSG(headers_[roots_[i]].node == tree_.roots()[i],
                  "root union bound to wrong tree node");
    stack.push_back(roots_[i]);
  }
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;  // sharing is allowed (push-up hoists copies)
    seen[id] = 1;
    UnionRef un = u(id);
    const FTreeNode& nd = tree_.node(un.node());
    FDB_CHECK_MSG(nd.alive, "union bound to dead tree node");
    FDB_CHECK_MSG(!un.empty(), "empty union inside non-empty rep");
    FDB_CHECK_MSG(un.num_children() == un.size() * nd.children.size(),
                  "child slot count mismatch");
    for (size_t e = 1; e < un.size(); ++e) {
      FDB_CHECK_MSG(un.value(e - 1) < un.value(e),
                    "union values not strictly increasing");
    }
    const size_t k = nd.children.size();
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        uint32_t c = un.Child(e, j, k);
        FDB_CHECK(c < headers_.size());
        FDB_CHECK_MSG(headers_[c].node == nd.children[j],
                      "child union bound to wrong tree node");
        stack.push_back(c);
      }
    }
  }
}

}  // namespace fdb
