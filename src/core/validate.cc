#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/enumerate.h"

namespace fdb {

namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& detail) {
  throw FdbError(what + ": " + detail);
}

std::string UnionStr(uint32_t id) {
  std::ostringstream os;
  os << "union " << id;
  return os.str();
}

// ---- ValidateFTree ------------------------------------------------------

void CheckTree(const FTree& t) {
  t.Validate();  // parent/child symmetry, attribute partition, root list
  const auto fail = [](int n, const std::string& detail) {
    std::ostringstream os;
    os << "node " << n << " " << detail;
    Fail("ValidateFTree", os.str());
  };
  for (int n : t.AliveNodes()) {
    const FTreeNode& nd = t.node(n);
    if (!nd.attrs.ContainsAll(nd.visible)) {
      fail(n, "has visible attributes outside its class " +
                  nd.visible.Minus(nd.attrs).ToString());
    }
    if (!nd.dep_rels.ContainsAll(nd.cover_rels)) {
      fail(n, "has covering relations missing from dep_rels " +
                  nd.cover_rels.Minus(nd.dep_rels).ToString());
    }
    std::vector<int> ch = nd.children;
    std::sort(ch.begin(), ch.end());
    if (std::adjacent_find(ch.begin(), ch.end()) != ch.end()) {
      fail(n, "lists a child twice");
    }
  }
  // Reachability + parent-chain acyclicity: walking up from every alive
  // node must reach a root in at most pool_size() steps. (t.Validate()
  // checks local parent/child symmetry; a parent cycle detached from the
  // root list would still pass it node by node.)
  for (int n : t.AliveNodes()) {
    int cur = n;
    size_t steps = 0;
    while (t.node(cur).parent != -1) {
      cur = t.node(cur).parent;
      if (++steps > t.pool_size()) {
        fail(n, "sits on a parent cycle (never reaches a root)");
      }
    }
  }
}

// ---- ValidateDeep -------------------------------------------------------

// One reachable union's geometry, validated before any value dereference.
void CheckHeader(const FRep& rep, uint32_t id) {
  const UnionHeader& h = rep.HeaderOf(id);
  if (h.node < 0 ||
      static_cast<size_t>(h.node) >= rep.tree().pool_size()) {
    Fail("ValidateDeep", UnionStr(id) + " is bound to out-of-range tree node");
  }
  const size_t vals = rep.ValueArenaSize();
  if (h.len > vals || h.val_off > vals - h.len) {
    std::ostringstream os;
    os << UnionStr(id) << " value window [" << h.val_off << ", "
       << h.val_off + h.len << ") exceeds the value arena (size " << vals
       << ")";
    Fail("ValidateDeep", os.str());
  }
  const size_t kids = rep.ChildArenaSize();
  if (h.num_children > kids || h.child_off > kids - h.num_children) {
    std::ostringstream os;
    os << UnionStr(id) << " child window [" << h.child_off << ", "
       << h.child_off + h.num_children << ") exceeds the child arena (size "
       << kids << ")";
    Fail("ValidateDeep", os.str());
  }
}

void CheckDeep(const FRep& rep) {
  if (rep.OpenBuilders() != 0) {
    Fail("ValidateDeep", "representation has open builders (arenas may move)");
  }
  CheckTree(rep.tree());
  const FTree& t = rep.tree();
  if (rep.empty()) {
    if (!rep.roots().empty() || rep.NumUnions() != 0 ||
        rep.ValueArenaSize() != 0 || rep.ChildArenaSize() != 0) {
      Fail("ValidateDeep",
           "empty representation still holds unions or arena data");
    }
    return;
  }
  if (rep.roots().size() != t.roots().size()) {
    std::ostringstream os;
    os << "representation has " << rep.roots().size()
       << " root unions for " << t.roots().size() << " tree roots";
    Fail("ValidateDeep", os.str());
  }
  const size_t nu = rep.NumUnions();
  for (size_t i = 0; i < rep.roots().size(); ++i) {
    if (rep.roots()[i] >= nu) {
      Fail("ValidateDeep",
           "root " + UnionStr(rep.roots()[i]) + " is out of range");
    }
  }

  // Iterative DFS with an explicit on-path mark: a gray union reached
  // again through a child edge is a cycle, which the recursive walkers
  // (CountTuples DP, enumerators) must never be exposed to. Black unions
  // are fully validated; re-reaching them is legal sharing.
  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(nu, kWhite);
  struct Frame {
    uint32_t id;
    size_t next_child;  // index into the child window
  };
  std::vector<Frame> stack;
  for (size_t i = 0; i < rep.roots().size(); ++i) {
    const uint32_t r = rep.roots()[i];
    if (rep.HeaderOf(r).node != t.roots()[i]) {
      std::ostringstream os;
      os << "root " << UnionStr(r) << " is bound to tree node "
         << rep.HeaderOf(r).node << ", expected root node " << t.roots()[i];
      Fail("ValidateDeep", os.str());
    }
    if (color[r] == kBlack) continue;
    stack.push_back({r, 0});
    color[r] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const uint32_t id = f.id;
      if (f.next_child == 0) {
        // First visit: geometry first (safe to do before dereferencing),
        // then the entry-level invariants.
        CheckHeader(rep, id);
        const UnionHeader& h = rep.HeaderOf(id);
        const FTreeNode& nd = t.node(h.node);
        if (!nd.alive) {
          Fail("ValidateDeep", UnionStr(id) + " is bound to a dead tree node");
        }
        if (h.len == 0) {
          Fail("ValidateDeep", UnionStr(id) +
                                   " is empty inside a non-empty "
                                   "representation (emptiness must propagate)");
        }
        if (nd.constant && h.len != 1) {
          std::ostringstream os;
          os << UnionStr(id) << " has " << h.len
             << " entries for constant tree node " << h.node
             << " (selection pins one value)";
          Fail("ValidateDeep", os.str());
        }
        if (h.num_children != h.len * nd.children.size()) {
          std::ostringstream os;
          os << UnionStr(id) << " commits " << h.num_children
             << " child slots for " << h.len << " entries x "
             << nd.children.size() << " tree children";
          Fail("ValidateDeep", os.str());
        }
        const UnionRef u = rep.u(id);
        for (size_t e = 1; e < h.len; ++e) {
          if (!(u.value(e - 1) < u.value(e))) {
            std::ostringstream os;
            os << UnionStr(id) << " values not strictly increasing at entry "
               << e;
            Fail("ValidateDeep", os.str());
          }
        }
      }
      const UnionHeader& h = rep.HeaderOf(id);
      if (f.next_child >= h.num_children) {
        color[id] = kBlack;
        stack.pop_back();
        continue;
      }
      const size_t slot_count = t.node(h.node).children.size();
      const size_t j = f.next_child % slot_count;
      const uint32_t c = rep.u(id).child(f.next_child);
      ++f.next_child;
      if (c >= nu) {
        std::ostringstream os;
        os << UnionStr(id) << " references out-of-range child " << UnionStr(c)
           << " (representation has " << nu << " unions)";
        Fail("ValidateDeep", os.str());
      }
      if (color[c] == kGray) {
        std::ostringstream os;
        os << "cyclic reference: " << UnionStr(c)
           << " reaches itself through " << UnionStr(id);
        Fail("ValidateDeep", os.str());
      }
      const int expect = t.node(h.node).children[j];
      if (rep.HeaderOf(c).node != expect) {
        std::ostringstream os;
        os << UnionStr(id) << " child slot " << j << " holds " << UnionStr(c)
           << " of tree node " << rep.HeaderOf(c).node << ", expected node "
           << expect;
        Fail("ValidateDeep", os.str());
      }
      if (color[c] == kWhite) {
        color[c] = kGray;
        stack.push_back({c, 0});
      }
    }
  }

  // Distinct reachable unions must own disjoint value windows: an aliased
  // window means two unions disagree about who owns those arena entries
  // (and per-entry side arrays keyed by arena_offset would collide).
  std::vector<uint32_t> reachable;
  for (uint32_t id = 0; id < nu; ++id) {
    if (color[id] == kBlack) reachable.push_back(id);
  }
  std::sort(reachable.begin(), reachable.end(), [&](uint32_t a, uint32_t b) {
    return rep.HeaderOf(a).val_off < rep.HeaderOf(b).val_off;
  });
  for (size_t i = 1; i < reachable.size(); ++i) {
    const UnionHeader& prev = rep.HeaderOf(reachable[i - 1]);
    const UnionHeader& cur = rep.HeaderOf(reachable[i]);
    if (prev.val_off + prev.len > cur.val_off) {
      std::ostringstream os;
      os << UnionStr(reachable[i - 1]) << " and " << UnionStr(reachable[i])
         << " overlap in the value arena";
      Fail("ValidateDeep", os.str());
    }
  }
}

// ---- ValidateGroupedRep -------------------------------------------------

void CheckGrouped(const GroupedRep& g) {
  CheckDeep(g.rep);
  const size_t ns = g.specs.size();
  const auto fail = [](const std::string& detail) {
    Fail("ValidateGroupedRep", detail);
  };
  const auto check_spec_arity = [&](size_t got, const char* name) {
    if (got != ns) {
      std::ostringstream os;
      os << name << " has " << got << " slots for " << ns << " specs";
      fail(os.str());
    }
  };
  check_spec_arity(g.spec_where.size(), "spec_where");
  check_spec_arity(g.spec_node.size(), "spec_node");
  check_spec_arity(g.entry_sum.size(), "entry_sum");
  check_spec_arity(g.entry_min.size(), "entry_min");
  check_spec_arity(g.entry_max.size(), "entry_max");
  check_spec_arity(g.global_sum.size(), "global_sum");
  check_spec_arity(g.global_min.size(), "global_min");
  check_spec_arity(g.global_max.size(), "global_max");

  // One payload per committed entry: collapse appends payloads in arena
  // commit order, so the arrays and the value arena must have grown in
  // lockstep.
  const size_t entries = g.rep.ValueArenaSize();
  if (g.entry_count.size() != entries) {
    std::ostringstream os;
    os << "entry_count covers " << g.entry_count.size()
       << " entries but the group arena holds " << entries;
    fail(os.str());
  }
  for (size_t s = 0; s < ns; ++s) {
    if (g.entry_sum[s].size() != entries || g.entry_min[s].size() != entries ||
        g.entry_max[s].size() != entries) {
      std::ostringstream os;
      os << "per-entry payload arrays of spec " << s
         << " do not cover the group arena";
      fail(os.str());
    }
  }
  for (size_t i = 0; i < entries; ++i) {
    if (g.entry_count[i] == 0) {
      std::ostringstream os;
      os << "entry " << i << " has zero collapsed tuples (no empty unions "
         << "below the frontier)";
      fail(os.str());
    }
  }
  if (g.global_count == 0) {
    fail("global_count is zero (a group forest with zero-count multipliers "
         "must be the empty representation)");
  }
  for (size_t s = 0; s < ns; ++s) {
    const GroupedRep::Where w = g.spec_where[s];
    if (w == GroupedRep::Where::kGroup || w == GroupedRep::Where::kBelow) {
      const int n = g.spec_node[s];
      if (n < 0 || static_cast<size_t>(n) >= g.rep.tree().pool_size() ||
          !g.rep.tree().node(n).alive) {
        std::ostringstream os;
        os << "spec " << s << " is placed on dead or out-of-range node " << n;
        fail(os.str());
      }
      if (w == GroupedRep::Where::kGroup &&
          !g.rep.tree().node(n).attrs.Contains(g.specs[s].attr)) {
        std::ostringstream os;
        os << "spec " << s << " claims group node " << n
           << " but the node's class lacks attribute "
           << static_cast<int>(g.specs[s].attr);
        fail(os.str());
      }
    }
    if (w != GroupedRep::Where::kNone && g.specs[s].fn == AggFn::kCount) {
      std::ostringstream os;
      os << "COUNT spec " << s << " has an attribute placement";
      fail(os.str());
    }
  }
  // Every alive node of the group forest must carry a grouping attribute:
  // the collapse removed everything else.
  for (int n : g.rep.tree().AliveNodes()) {
    if (!g.rep.tree().node(n).attrs.Intersects(g.group_attrs)) {
      std::ostringstream os;
      os << "group forest keeps node " << n
         << " whose class has no GROUP BY attribute";
      fail(os.str());
    }
  }
}

// ---- ValidateMorselPlan -------------------------------------------------

// Mirrors the arithmetic of the planner (core/parallel_enumerate.cc) over
// the frames/counts it derived from SubtreeTupleCounts.
struct MorselCtx {
  const FRep& rep;
  const std::vector<PreOrderFrame>& frames;
  const std::vector<double>& counts;
  const std::vector<char>* keep;
};

bool Kept(const MorselCtx& c, int node) {
  return c.keep == nullptr || (*c.keep)[static_cast<size_t>(node)];
}

// Stream tuples below entry `e` of union `u` (product of the restricted
// counts of its kept children).
double ExtCount(const MorselCtx& c, const UnionRef& u, size_t e) {
  const std::vector<int>& ch = c.rep.tree().node(u.node()).children;
  const size_t k = ch.size();
  double p = 1.0;
  for (size_t j = 0; j < k; ++j) {
    if (!Kept(c, ch[j])) continue;
    p *= c.counts[u.Child(e, j, k)];
  }
  return p;
}

// Resolves the union of frame `f` under the pinned prefix `bounds[0, f)`,
// exactly like the planner and the range-restricted TupleEnumerator do.
// `chain` caches the resolved union per frame.
uint32_t ResolveUnion(const MorselCtx& c, const std::vector<EntryBound>& bounds,
                      const std::vector<uint32_t>& chain, size_t f) {
  const PreOrderFrame& pf = c.frames[f];
  if (pf.parent_pos < 0) return c.rep.roots()[pf.slot];
  const size_t p = static_cast<size_t>(pf.parent_pos);
  const UnionRef pu = c.rep.u(chain[p]);
  const size_t k = c.rep.tree().node(c.frames[p].node).children.size();
  return pu.Child(bounds[p].begin, pf.slot, k);
}

void FailMorsel(size_t m, const std::string& detail) {
  std::ostringstream os;
  os << "morsel " << m << " " << detail;
  Fail("ValidateMorselPlan", os.str());
}

void CheckMorsels(const FRep& rep, bool visible_only, const MorselPlan& plan) {
  CheckDeep(rep);
  if (rep.empty()) {
    if (!plan.morsels.empty()) {
      Fail("ValidateMorselPlan",
           "plan over the empty representation has morsels");
    }
    return;
  }
  std::vector<char> keep;
  const std::vector<char>* keep_ptr = nullptr;
  if (visible_only) {
    keep = VisibleKeepMask(rep.tree());
    keep_ptr = &keep;
  }
  const std::vector<PreOrderFrame> frames =
      BuildPreOrderFrames(rep.tree(), keep_ptr);
  if (plan.morsels.empty()) {
    Fail("ValidateMorselPlan",
         "plan over a non-empty representation has no morsels");
  }
  // A single morsel with an empty bound chain denotes the whole stream
  // (nullary representations and the sequential fallback).
  if (plan.morsels.size() == 1 && plan.morsels[0].bounds.empty()) return;
  if (frames.empty()) {
    Fail("ValidateMorselPlan",
         "nullary stream split into more than the whole-stream morsel");
  }

  const std::vector<double> counts = rep.SubtreeTupleCounts(keep_ptr);
  MorselCtx ctx{rep, frames, counts, keep_ptr};

  // Per-morsel: resolve the chain, check the pin/range shape and that
  // every bound lies inside its union; recompute the estimate.
  std::vector<std::vector<uint32_t>> chains(plan.morsels.size());
  for (size_t m = 0; m < plan.morsels.size(); ++m) {
    const Morsel& mo = plan.morsels[m];
    if (mo.bounds.empty()) {
      FailMorsel(m, "has an empty bound chain in a multi-morsel plan");
    }
    if (mo.bounds.size() > frames.size()) {
      std::ostringstream os;
      os << "restricts " << mo.bounds.size() << " frames but the walk has "
         << frames.size();
      FailMorsel(m, os.str());
    }
    std::vector<uint32_t>& chain = chains[m];
    chain.resize(mo.bounds.size());
    for (size_t i = 0; i < mo.bounds.size(); ++i) {
      chain[i] = ResolveUnion(ctx, mo.bounds, chain, i);
      const EntryBound& b = mo.bounds[i];
      const size_t len = rep.u(chain[i]).size();
      if (!(b.begin < b.end)) {
        std::ostringstream os;
        os << "frame " << i << " bound [" << b.begin << ", " << b.end
           << ") is empty";
        FailMorsel(m, os.str());
      }
      if (b.end > len) {
        std::ostringstream os;
        os << "frame " << i << " bound [" << b.begin << ", " << b.end
           << ") exceeds the union length " << len;
        FailMorsel(m, os.str());
      }
      if (i + 1 < mo.bounds.size() && b.begin + 1 != b.end) {
        std::ostringstream os;
        os << "frame " << i << " bound [" << b.begin << ", " << b.end
           << ") does not pin one entry (only the last bound may range)";
        FailMorsel(m, os.str());
      }
    }
    // Estimate consistency: replay the planner's arithmetic — the stream
    // weight of one subtree tuple at the chain head, narrowed by each
    // pinned entry — and compare with a relative tolerance (the planner
    // accumulates in a different association order).
    const uint32_t u0 = rep.roots()[frames[0].slot];
    double total = 1.0;
    const std::vector<int>& troots = rep.tree().roots();
    for (size_t i = 0; i < troots.size(); ++i) {
      if (Kept(ctx, troots[i])) total *= counts[rep.roots()[i]];
    }
    double mult = counts[u0] > 0 ? total / counts[u0] : total;
    for (size_t i = 0; i + 1 < mo.bounds.size(); ++i) {
      const double w =
          mult * ExtCount(ctx, rep.u(chain[i]), mo.bounds[i].begin);
      const double cn = counts[chain[i + 1]];
      mult = cn > 0 ? w / cn : w;
    }
    const size_t last = mo.bounds.size() - 1;
    double est = 0.0;
    const UnionRef lu = rep.u(chain[last]);
    for (uint32_t e = mo.bounds[last].begin; e < mo.bounds[last].end; ++e) {
      est += mult * ExtCount(ctx, lu, e);
    }
    if (std::isfinite(est) && std::isfinite(mo.est_tuples)) {
      const double tol = 1e-6 * std::max({1.0, est, mo.est_tuples});
      if (std::abs(est - mo.est_tuples) > tol) {
        std::ostringstream os;
        os << "estimates " << mo.est_tuples << " tuples where the subtree "
           << "counts give " << est;
        FailMorsel(m, os.str());
      }
    }
  }

  // Tiling: morsels must partition the stream in lexicographic odometer
  // order. First morsel starts at the stream start, last ends at the
  // stream end, and each consecutive pair is adjacent: at the first
  // level where the chains differ, the successor picks up exactly where
  // the predecessor stopped, with everything deeper exhausted (a) or
  // fresh (b).
  const std::vector<EntryBound>& first = plan.morsels.front().bounds;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].begin != 0) {
      std::ostringstream os;
      os << "does not start at the stream start (frame " << i
         << " begins at entry " << first[i].begin << ")";
      FailMorsel(0, os.str());
    }
  }
  const size_t last_m = plan.morsels.size() - 1;
  const std::vector<EntryBound>& last = plan.morsels[last_m].bounds;
  for (size_t i = 0; i < last.size(); ++i) {
    const size_t len = rep.u(chains[last_m][i]).size();
    if (last[i].end != len) {
      std::ostringstream os;
      os << "does not end at the stream end (frame " << i << " stops at entry "
         << last[i].end << " of " << len << ")";
      FailMorsel(last_m, os.str());
    }
  }
  for (size_t m = 1; m < plan.morsels.size(); ++m) {
    const std::vector<EntryBound>& a = plan.morsels[m - 1].bounds;
    const std::vector<EntryBound>& b = plan.morsels[m].bounds;
    size_t j = 0;
    while (j < a.size() && j < b.size() && a[j].begin == b[j].begin &&
           a[j].end == b[j].end) {
      ++j;
    }
    if (j == a.size() || j == b.size()) {
      FailMorsel(m, "is nested inside its predecessor (chains must diverge)");
    }
    if (b[j].begin != a[j].end) {
      std::ostringstream os;
      os << "is not adjacent to its predecessor at frame " << j
         << " (predecessor ends at entry " << a[j].end << ", successor "
         << "begins at " << b[j].begin << ")";
      FailMorsel(m, os.str());
    }
    for (size_t i = j + 1; i < a.size(); ++i) {
      const size_t len = rep.u(chains[m - 1][i]).size();
      if (a[i].end != len) {
        std::ostringstream os;
        os << "ascends past frame " << i << " of its predecessor before the "
           << "frame is exhausted (stops at entry " << a[i].end << " of "
           << len << ")";
        FailMorsel(m, os.str());
      }
    }
    for (size_t i = j + 1; i < b.size(); ++i) {
      if (b[i].begin != 0) {
        std::ostringstream os;
        os << "descends into frame " << i << " mid-union (begins at entry "
           << b[i].begin << ")";
        FailMorsel(m, os.str());
      }
    }
  }
}

}  // namespace

void ValidateDeep(const FRep& rep) { CheckDeep(rep); }
void ValidateFTree(const FTree& t) { CheckTree(t); }
void ValidateGroupedRep(const GroupedRep& g) { CheckGrouped(g); }
void ValidateMorselPlan(const FRep& rep, bool visible_only,
                        const MorselPlan& plan) {
  CheckMorsels(rep, visible_only, plan);
}

}  // namespace fdb
