// Factorisation trees (f-trees, §2 Def. 2).
//
// An f-tree is an unordered rooted forest whose nodes are labelled by
// attribute equivalence classes. It is the schema of a factorised
// representation: it fixes the nesting structure (group by the root class,
// factor out the common values, recurse). FDB represents f-trees as a pool
// of nodes with stable indices; operators mark nodes dead rather than
// reindexing, so f-representations and f-plans can refer to nodes across
// transformations.
//
// Dependency bookkeeping. Each node carries two relation sets:
//   * cover_rels — relations with an attribute in the node's class; these
//     are the hyperedges available to the edge-cover LP that defines s(T).
//   * dep_rels   — relations used for dependency tests (push-up/swap
//     legality and the path constraint). Normally equal to cover_rels, but
//     when projection removes a fully-projected leaf, the leaf's dep_rels
//     are inherited by its parent so that transitively dependent nodes stay
//     on one path (the A—B—C example of §3.4).
// Nodes whose values are fixed by an equality-with-constant selection are
// flagged `constant`; they are independent of every other node (§3.3) and
// are ignored by both dependency tests and the cost function.
#ifndef FDB_CORE_FTREE_H_
#define FDB_CORE_FTREE_H_

#include <string>
#include <vector>

#include "common/attrset.h"
#include "common/types.h"
#include "lp/edge_cover.h"
#include "storage/catalog.h"
#include "storage/query.h"

namespace fdb {

/// One f-tree node: an attribute equivalence class plus bookkeeping.
struct FTreeNode {
  AttrSet attrs;      ///< full class, including projected-away attributes
  AttrSet visible;    ///< attributes still in the output schema (subset)
  RelSet cover_rels;  ///< relations with an attribute in `attrs`
  RelSet dep_rels;    ///< relations for dependency tests (>= cover_rels)
  bool constant = false;  ///< all values equal one constant (sigma_{A=c})
  bool alive = true;
  int parent = -1;            ///< -1 for roots and dead nodes
  std::vector<int> children;  ///< order defines child slots in f-reps
};

/// An f-tree (forest). Node ids are stable for the lifetime of the tree.
class FTree {
 public:
  FTree() = default;

  /// Creates a detached node; attach it with AttachRoot/AttachChild.
  int NewNode(AttrSet attrs, AttrSet visible, RelSet cover_rels,
              RelSet dep_rels);

  void AttachRoot(int n);
  void AttachChild(int parent, int n);

  /// Unlinks `n` from its parent (or the root list); keeps it alive.
  void Detach(int n);

  /// Marks a detached, childless node dead.
  void Kill(int n);

  const std::vector<int>& roots() const { return roots_; }
  size_t pool_size() const { return nodes_.size(); }

  FTreeNode& node(int n) { return nodes_[static_cast<size_t>(n)]; }
  const FTreeNode& node(int n) const { return nodes_[static_cast<size_t>(n)]; }

  /// Ids of alive nodes, ascending.
  std::vector<int> AliveNodes() const;
  int NumAlive() const;

  /// Node whose class contains `attr`, or -1.
  int FindAttr(AttrId attr) const;

  bool IsAncestor(int anc, int desc) const;
  int Depth(int n) const;

  /// Lowest common ancestor of two alive nodes; -1 when they live in
  /// different trees of the forest (or one of them is a root above the
  /// other... then the ancestor itself is returned).
  int Lca(int x, int y) const;

  /// Pre-order ids (roots in root-list order, children in child order).
  std::vector<int> PreOrder() const;

  /// Union of dep_rels over the subtree rooted at `n`, skipping constant
  /// nodes (constants are independent of everything).
  RelSet SubtreeDepRels(int n) const;

  /// True if node `a` is dependent on the subtree rooted at `b`:
  /// a shares a relation with some non-constant node under b (§3.1).
  bool DependentOnSubtree(int a, int b) const;

  /// Push-up legality: `b` has a parent that is not dependent on b's subtree.
  bool CanPushUp(int b) const;

  // ---- Tree-level transformations (f-representation counterparts live in
  // core/ops_*.cc and call these to keep trees byte-identical). ----

  /// psi_B: moves `b` one level up, making it a sibling of its parent.
  /// Caller must ensure CanPushUp(b).
  void PushUpTree(int b);

  /// Repeated push-ups until no node can be lifted (eta). Scans alive nodes
  /// in id order and restarts after every push, so the result is
  /// deterministic. Returns the number of push-ups performed.
  int NormalizeTree();

  /// True if no push-up is possible (Def. 3).
  bool IsNormalized() const;

  /// chi_{A,B}: exchanges child `b` with its parent `a`. b takes a's
  /// position; a becomes b's last child; b's children that depend on a
  /// move to the end of a's child list (Fig. 3(b)).
  void SwapTree(int a, int b);

  /// mu_{A,B}: merges sibling (or both-root) node `b` into `a`; b's children
  /// are appended to a's. Returns the surviving node id (= a).
  int MergeTree(int a, int b);

  /// Splices node `b` out: b's attrs/rels move into its ancestor `a`, b's
  /// children take b's position under b's parent. This is the structural
  /// half of absorb (Fig. 3(d) before normalisation).
  void FuseTree(int a, int b);

  /// Removes a fully-projected leaf; its dep_rels are inherited by the
  /// parent (transitive-dependence preservation, §3.4).
  void RemoveLeaf(int n);

  // ---- Constraints and cost. ----

  /// Shifts every relation index by `offset` (cover and dep sets of alive
  /// nodes). Needed before taking the product of two independently built
  /// representations, whose query-local relation indices both start at 0.
  void ShiftRelIndices(int offset);

  /// Largest relation index mentioned by an alive node, or -1.
  int MaxRelIndex() const;

  /// Path constraint (Prop. 1): for every relation, the non-constant nodes
  /// whose dep_rels contain it lie on a single root-to-leaf path.
  bool SatisfiesPathConstraint() const;

  /// s(T): the maximum fractional edge cover number over root-to-leaf
  /// paths (§2). Constant nodes are skipped.
  double Cost(EdgeCoverSolver& solver) const;

  /// All attributes / visible attributes of alive nodes.
  AttrSet AllAttrs() const;
  AttrSet VisibleAttrs() const;

  /// Canonical encoding of the unordered forest; equal trees (up to sibling
  /// order and node ids) get equal keys. Used to deduplicate optimiser
  /// states.
  std::string CanonicalKey() const;

  /// Indented rendering; attribute names resolved via `cat` when given.
  std::string ToString(const Catalog* cat = nullptr) const;

  /// Structural sanity checks (parent/child symmetry, attribute disjointness,
  /// alive bookkeeping). Throws FdbError on violation.
  void Validate() const;

 private:
  void CanonicalKeyRec(int n, std::string* out) const;
  double PathCostRec(int n, std::vector<uint64_t>* stack,
                     EdgeCoverSolver& solver) const;

  std::vector<FTreeNode> nodes_;
  std::vector<int> roots_;
};

/// Builds the f-tree of a single relation: one chain of singleton classes
/// in `schema` order (all attributes of a relation are mutually dependent,
/// so its f-tree must be a path). `rel` is the query-local relation index.
FTree PathFTree(const std::vector<AttrId>& schema, int rel);

/// Builds an f-tree over the query's attribute classes with the given
/// parent relation (query info supplies classes and covering relations);
/// the shape is determined by `parent_of`: parent_of[i] is the index of the
/// parent class of class i, or -1 for roots. Used by tests and the
/// optimiser.
FTree FTreeFromShape(const QueryInfo& info,
                     const std::vector<AttrSet>& classes,
                     const std::vector<int>& parent_of);

}  // namespace fdb

#endif  // FDB_CORE_FTREE_H_
