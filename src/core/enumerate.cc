#include "core/enumerate.h"

#include <algorithm>

namespace fdb {

std::vector<PreOrderFrame> BuildPreOrderFrames(const FTree& t,
                                               const std::vector<char>* keep) {
  std::vector<PreOrderFrame> frames;
  std::vector<int> order = t.PreOrder();
  std::vector<int> frame_of(t.pool_size(), -1);
  frames.reserve(order.size());
  for (int n : order) {
    if (keep != nullptr && !(*keep)[static_cast<size_t>(n)]) continue;
    PreOrderFrame f;
    f.node = n;
    int p = t.node(n).parent;
    if (p == -1) {
      f.parent_pos = -1;
      const auto& roots = t.roots();
      f.slot = static_cast<size_t>(
          std::find(roots.begin(), roots.end(), n) - roots.begin());
    } else {
      f.parent_pos = frame_of[static_cast<size_t>(p)];
      const auto& ch = t.node(p).children;
      f.slot = static_cast<size_t>(
          std::find(ch.begin(), ch.end(), n) - ch.begin());
    }
    frame_of[static_cast<size_t>(n)] = static_cast<int>(frames.size());
    frames.push_back(f);
  }
  return frames;
}

TupleEnumerator::TupleEnumerator(const FRep& rep, bool visible_only)
    : rep_(&rep), current_(kMaxAttrs, 0) {
  if (rep.empty()) {
    done_ = true;
    return;
  }
  const FTree& t = rep.tree();
  // In visible_only mode, whole subtrees without a visible attribute get
  // no frames: their assignments never change the visible tuple, so
  // enumerating them would only repeat it (see the contract in
  // enumerate.h).
  std::vector<char> keep;
  if (visible_only) {
    keep.assign(t.pool_size(), 1);
    std::vector<int> order = t.PreOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const FTreeNode& nd = t.node(*it);
      bool vis = !nd.visible.Empty();
      for (int c : nd.children) vis = vis || keep[static_cast<size_t>(c)];
      keep[static_cast<size_t>(*it)] = vis ? 1 : 0;
    }
  }
  for (const PreOrderFrame& pf :
       BuildPreOrderFrames(t, visible_only ? &keep : nullptr)) {
    Frame f;
    static_cast<PreOrderFrame&>(f) = pf;
    frames_.push_back(f);
  }
  if (frames_.empty()) {
    // The nullary relation <>, or a non-empty rep whose attributes are all
    // invisible: exactly one (empty) visible tuple.
    nullary_pending_ = true;
  }
}

void TupleEnumerator::ResetFrame(size_t i) {
  Frame& f = frames_[i];
  if (f.parent_pos < 0) {
    f.union_id = rep_->roots()[f.slot];
  } else {
    const Frame& pf = frames_[static_cast<size_t>(f.parent_pos)];
    UnionRef pu = rep_->u(pf.union_id);
    const size_t k = rep_->tree().node(pf.node).children.size();
    f.union_id = pu.Child(pf.entry, f.slot, k);
  }
  f.entry = 0;
  WriteValues(i);
}

void TupleEnumerator::WriteValues(size_t i) {
  const Frame& f = frames_[i];
  Value v = rep_->u(f.union_id).value(f.entry);
  for (AttrId a : rep_->tree().node(f.node).attrs) current_[a] = v;
}

bool TupleEnumerator::Next() {
  if (done_) return false;
  if (nullary_pending_) {
    nullary_pending_ = false;
    done_ = true;
    return true;  // yields the nullary tuple once
  }
  if (frames_.empty()) {
    done_ = true;
    return false;
  }
  if (!started_) {
    started_ = true;
    for (size_t i = 0; i < frames_.size(); ++i) ResetFrame(i);
    return true;
  }
  // Odometer: advance the deepest frame with a next entry; reset the rest.
  size_t i = frames_.size();
  while (i > 0) {
    Frame& f = frames_[i - 1];
    if (f.entry + 1 < rep_->u(f.union_id).size()) {
      ++f.entry;
      WriteValues(i - 1);
      for (size_t j = i; j < frames_.size(); ++j) ResetFrame(j);
      return true;
    }
    --i;
  }
  done_ = true;
  return false;
}

Relation MaterializeVisible(const FRep& rep) {
  AttrSet visible = rep.tree().VisibleAttrs();
  std::vector<AttrId> schema = visible.ToVector();
  Relation out(schema);
  TupleEnumerator en(rep, /*visible_only=*/true);
  std::vector<Value> tuple(schema.size());
  while (en.Next()) {
    for (size_t c = 0; c < schema.size(); ++c) tuple[c] = en.ValueOf(schema[c]);
    out.AddTuple(tuple);
  }
  out.SortLex();  // relations are sets: sort + dedup
  return out;
}

}  // namespace fdb
