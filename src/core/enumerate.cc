#include "core/enumerate.h"

#include <algorithm>
#include <utility>

namespace fdb {

std::vector<PreOrderFrame> BuildPreOrderFrames(const FTree& t,
                                               const std::vector<char>* keep) {
  std::vector<PreOrderFrame> frames;
  std::vector<int> order = t.PreOrder();
  std::vector<int> frame_of(t.pool_size(), -1);
  frames.reserve(order.size());
  for (int n : order) {
    if (keep != nullptr && !(*keep)[static_cast<size_t>(n)]) continue;
    PreOrderFrame f;
    f.node = n;
    int p = t.node(n).parent;
    if (p == -1) {
      f.parent_pos = -1;
      const auto& roots = t.roots();
      f.slot = static_cast<size_t>(
          std::find(roots.begin(), roots.end(), n) - roots.begin());
    } else {
      f.parent_pos = frame_of[static_cast<size_t>(p)];
      const auto& ch = t.node(p).children;
      f.slot = static_cast<size_t>(
          std::find(ch.begin(), ch.end(), n) - ch.begin());
    }
    frame_of[static_cast<size_t>(n)] = static_cast<int>(frames.size());
    frames.push_back(f);
  }
  return frames;
}

std::vector<char> VisibleKeepMask(const FTree& t) {
  // A subtree is kept iff it contains a visible attribute: its assignments
  // never change the visible tuple otherwise, so enumerating it would only
  // repeat it (see the contract in enumerate.h).
  std::vector<char> keep(t.pool_size(), 1);
  std::vector<int> order = t.PreOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const FTreeNode& nd = t.node(*it);
    bool vis = !nd.visible.Empty();
    for (int c : nd.children) vis = vis || keep[static_cast<size_t>(c)];
    keep[static_cast<size_t>(*it)] = vis ? 1 : 0;
  }
  return keep;
}

TupleEnumerator::TupleEnumerator(const FRep& rep, bool visible_only)
    : TupleEnumerator(rep, visible_only, {}) {}

TupleEnumerator::TupleEnumerator(const FRep& rep, bool visible_only,
                                 std::vector<EntryBound> bounds)
    : rep_(&rep), current_(kMaxAttrs, 0), bounds_(std::move(bounds)) {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    FDB_CHECK_MSG(bounds_[i].begin < bounds_[i].end,
                  "empty entry bound on an enumeration frame");
    FDB_CHECK_MSG(i + 1 == bounds_.size() ||
                      bounds_[i].begin + 1 == bounds_[i].end,
                  "all entry bounds but the last must pin a single entry");
  }
  if (rep.empty()) {
    done_ = true;
    return;
  }
  const FTree& t = rep.tree();
  std::vector<char> keep;
  if (visible_only) keep = VisibleKeepMask(t);
  for (const PreOrderFrame& pf :
       BuildPreOrderFrames(t, visible_only ? &keep : nullptr)) {
    Frame f;
    static_cast<PreOrderFrame&>(f) = pf;
    frames_.push_back(f);
  }
  FDB_CHECK_MSG(bounds_.size() <= frames_.size(),
                "more entry bounds than enumeration frames");
  if (frames_.empty()) {
    // The nullary relation <>, or a non-empty rep whose attributes are all
    // invisible: exactly one (empty) visible tuple.
    nullary_pending_ = true;
  }
}

bool TupleEnumerator::ResetFrame(size_t i) {
  Frame& f = frames_[i];
  if (f.parent_pos < 0) {
    f.union_id = rep_->roots()[f.slot];
  } else {
    const Frame& pf = frames_[static_cast<size_t>(f.parent_pos)];
    UnionRef pu = rep_->u(pf.union_id);
    const size_t k = rep_->tree().node(pf.node).children.size();
    f.union_id = pu.Child(pf.entry, f.slot, k);
  }
  size_t begin = 0;
  size_t limit = rep_->u(f.union_id).size();
  if (i < bounds_.size()) {
    begin = bounds_[i].begin;
    limit = std::min<size_t>(limit, bounds_[i].end);
  }
  f.entry = begin;
  f.limit = limit;
  if (begin >= limit) return false;
  WriteValues(i);
  return true;
}

void TupleEnumerator::WriteValues(size_t i) {
  const Frame& f = frames_[i];
  Value v = rep_->u(f.union_id).value(f.entry);
  for (AttrId a : rep_->tree().node(f.node).attrs) current_[a] = v;
}

bool TupleEnumerator::Next() {
  if (done_) return false;
  if (nullary_pending_) {
    nullary_pending_ = false;
    done_ = true;
    return true;  // yields the nullary tuple once
  }
  if (frames_.empty()) {
    done_ = true;
    return false;
  }
  if (!started_) {
    started_ = true;
    // The first pass doubles as bound validation: bounded frames form a
    // pinned chain whose unions never change afterwards, so a bound that
    // survives here can never miss on a mid-odometer reset.
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (!ResetFrame(i)) {
        done_ = true;  // bound misses the union: empty stream
        return false;
      }
    }
    return true;
  }
  // Odometer: advance the deepest frame with a next entry; reset the rest.
  size_t i = frames_.size();
  while (i > 0) {
    // The advance limit was folded into the frame at reset (min of union
    // size and bound end), so the unrestricted hot path pays no per-frame
    // header read or bound clamp here.
    Frame& f = frames_[i - 1];
    if (f.entry + 1 < f.limit) {
      ++f.entry;
      WriteValues(i - 1);
      for (size_t j = i; j < frames_.size(); ++j) ResetFrame(j);
      return true;
    }
    --i;
  }
  done_ = true;
  return false;
}

Relation internal::MaterializeVisibleSized(const FRep& rep, double est_rows) {
  std::vector<AttrId> schema = rep.tree().VisibleAttrs().ToVector();
  Relation out(schema);
  // Reserve the pre-dedup row count up front; skip the reservation when
  // the count is unknown or approximate-huge (those results do not fit
  // memory anyway).
  if (!schema.empty() && est_rows > 0.0 && est_rows < 1e9) {
    out.Reserve(static_cast<size_t>(est_rows));
  }
  TupleEnumerator en(rep, /*visible_only=*/true);
  std::vector<Value> tuple(schema.size());
  while (en.Next()) {
    for (size_t c = 0; c < schema.size(); ++c) tuple[c] = en.ValueOf(schema[c]);
    out.AddTuple(tuple);
  }
  out.SortLex();  // relations are sets: sort + dedup
  return out;
}

Relation MaterializeVisible(const FRep& rep) {
  double rows = -1.0;
  if (!rep.empty()) {
    // The exact pre-dedup row count: the product over the kept root trees
    // of their visible-restricted tuple counts (the CountTuples DP with
    // invisible-only subtrees masked out).
    std::vector<char> keep = VisibleKeepMask(rep.tree());
    std::vector<double> counts = rep.SubtreeTupleCounts(&keep);
    rows = 1.0;
    const auto& roots = rep.tree().roots();
    for (size_t i = 0; i < roots.size(); ++i) {
      if (keep[static_cast<size_t>(roots[i])]) rows *= counts[rep.roots()[i]];
    }
  }
  return internal::MaterializeVisibleSized(rep, rows);
}

}  // namespace fdb
