#include "core/ftree.h"

#include <algorithm>
#include <sstream>

namespace fdb {

int FTree::NewNode(AttrSet attrs, AttrSet visible, RelSet cover_rels,
                   RelSet dep_rels) {
  FDB_CHECK_MSG(attrs.ContainsAll(visible), "visible must be a subset of attrs");
  FDB_CHECK_MSG(dep_rels.ContainsAll(cover_rels),
                "dep_rels must include cover_rels");
  FTreeNode n;
  n.attrs = attrs;
  n.visible = visible;
  n.cover_rels = cover_rels;
  n.dep_rels = dep_rels;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void FTree::AttachRoot(int n) {
  FDB_CHECK(node(n).parent == -1);
  roots_.push_back(n);
}

void FTree::AttachChild(int parent, int n) {
  FDB_CHECK(node(n).parent == -1);
  node(parent).children.push_back(n);
  node(n).parent = parent;
}

void FTree::Detach(int n) {
  int p = node(n).parent;
  std::vector<int>& siblings = p == -1 ? roots_ : node(p).children;
  auto it = std::find(siblings.begin(), siblings.end(), n);
  FDB_CHECK_MSG(it != siblings.end(), "node not linked where expected");
  siblings.erase(it);
  node(n).parent = -1;
}

void FTree::Kill(int n) {
  FDB_CHECK(node(n).parent == -1);
  FDB_CHECK(node(n).children.empty());
  FDB_CHECK(std::find(roots_.begin(), roots_.end(), n) == roots_.end());
  node(n).alive = false;
}

std::vector<int> FTree::AliveNodes() const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) out.push_back(static_cast<int>(i));
  }
  return out;
}

int FTree::NumAlive() const {
  int c = 0;
  for (const FTreeNode& n : nodes_) c += n.alive ? 1 : 0;
  return c;
}

int FTree::FindAttr(AttrId attr) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && nodes_[i].attrs.Contains(attr)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool FTree::IsAncestor(int anc, int desc) const {
  for (int x = node(desc).parent; x != -1; x = node(x).parent) {
    if (x == anc) return true;
  }
  return false;
}

int FTree::Depth(int n) const {
  int d = 0;
  for (int x = node(n).parent; x != -1; x = node(x).parent) ++d;
  return d;
}

int FTree::Lca(int x, int y) const {
  std::vector<char> seen(nodes_.size(), 0);
  for (int a = x; a != -1; a = node(a).parent) seen[static_cast<size_t>(a)] = 1;
  for (int b = y; b != -1; b = node(b).parent) {
    if (seen[static_cast<size_t>(b)]) return b;
  }
  return -1;
}

std::vector<int> FTree::PreOrder() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  std::vector<int> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const auto& ch = node(n).children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

RelSet FTree::SubtreeDepRels(int n) const {
  RelSet out;
  std::vector<int> stack{n};
  while (!stack.empty()) {
    int x = stack.back();
    stack.pop_back();
    if (!node(x).constant) out = out.Union(node(x).dep_rels);
    for (int c : node(x).children) stack.push_back(c);
  }
  return out;
}

bool FTree::DependentOnSubtree(int a, int b) const {
  if (node(a).constant) return false;
  return node(a).dep_rels.Intersects(SubtreeDepRels(b));
}

bool FTree::CanPushUp(int b) const {
  int a = node(b).parent;
  if (a == -1) return false;
  return !DependentOnSubtree(a, b);
}

void FTree::PushUpTree(int b) {
  int a = node(b).parent;
  FDB_CHECK_MSG(a != -1, "cannot push up a root");
  Detach(b);
  int gp = node(a).parent;
  if (gp == -1) {
    // b becomes a root; keep it adjacent to a for readable output.
    auto it = std::find(roots_.begin(), roots_.end(), a);
    FDB_CHECK(it != roots_.end());
    roots_.insert(it + 1, b);
  } else {
    node(gp).children.push_back(b);
    node(b).parent = gp;
  }
}

int FTree::NormalizeTree() {
  int pushes = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      int n = static_cast<int>(i);
      if (!nodes_[i].alive) continue;
      if (CanPushUp(n)) {
        PushUpTree(n);
        ++pushes;
        changed = true;
        break;  // restart the scan: indices above may now be liftable
      }
    }
  }
  return pushes;
}

bool FTree::IsNormalized() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && CanPushUp(static_cast<int>(i))) return false;
  }
  return true;
}

void FTree::SwapTree(int a, int b) {
  FDB_CHECK_MSG(node(b).parent == a, "swap requires b to be a child of a");

  // Partition b's children: those dependent on a move under a (T_AB).
  std::vector<int> tb, tab;
  for (int c : node(b).children) {
    if (DependentOnSubtree(a, c)) {
      tab.push_back(c);
    } else {
      tb.push_back(c);
    }
  }

  // b takes a's position.
  int gp = node(a).parent;
  std::vector<int>& slots = gp == -1 ? roots_ : node(gp).children;
  auto it = std::find(slots.begin(), slots.end(), a);
  FDB_CHECK(it != slots.end());
  *it = b;
  node(b).parent = gp;
  node(a).parent = -1;

  // a keeps T_A (its other children, minus b) and gains T_AB at the end.
  auto& ac = node(a).children;
  ac.erase(std::find(ac.begin(), ac.end(), b));
  for (int c : tab) {
    node(c).parent = a;
    ac.push_back(c);
  }
  // b keeps T_B and gains a as its last child.
  node(b).children = tb;
  node(b).children.push_back(a);
  node(a).parent = b;
}

int FTree::MergeTree(int a, int b) {
  FDB_CHECK_MSG(node(a).parent == node(b).parent,
                "merge requires siblings (or two roots)");
  FDB_CHECK_MSG(a != b, "cannot merge a node with itself");
  FTreeNode& na = node(a);
  FTreeNode& nb = node(b);
  na.attrs = na.attrs.Union(nb.attrs);
  na.visible = na.visible.Union(nb.visible);
  na.cover_rels = na.cover_rels.Union(nb.cover_rels);
  na.dep_rels = na.dep_rels.Union(nb.dep_rels);
  na.constant = na.constant && nb.constant;
  for (int c : nb.children) {
    node(c).parent = a;
    na.children.push_back(c);
  }
  nb.children.clear();
  Detach(b);
  Kill(b);
  return a;
}

void FTree::FuseTree(int a, int b) {
  FDB_CHECK_MSG(a == node(b).parent || IsAncestor(a, b),
                "fuse requires a to be a proper ancestor of b");
  FTreeNode& na = node(a);
  FTreeNode& nb = node(b);
  na.attrs = na.attrs.Union(nb.attrs);
  na.visible = na.visible.Union(nb.visible);
  na.cover_rels = na.cover_rels.Union(nb.cover_rels);
  na.dep_rels = na.dep_rels.Union(nb.dep_rels);

  // b's children take b's position under b's parent.
  int p = node(b).parent;
  std::vector<int>& slots = node(p).children;
  auto it = std::find(slots.begin(), slots.end(), b);
  FDB_CHECK(it != slots.end());
  size_t pos = static_cast<size_t>(it - slots.begin());
  slots.erase(it);
  node(b).parent = -1;
  std::vector<int> moved = nb.children;
  nb.children.clear();
  slots.insert(slots.begin() + static_cast<ptrdiff_t>(pos), moved.begin(),
               moved.end());
  for (int c : moved) node(c).parent = p;
  Kill(b);
}

void FTree::RemoveLeaf(int n) {
  FDB_CHECK_MSG(node(n).children.empty(), "RemoveLeaf requires a leaf");
  int p = node(n).parent;
  if (p != -1) {
    node(p).dep_rels = node(p).dep_rels.Union(node(n).dep_rels);
  }
  Detach(n);
  Kill(n);
}

void FTree::ShiftRelIndices(int offset) {
  FDB_CHECK(offset >= 0);
  for (FTreeNode& n : nodes_) {
    if (!n.alive) continue;
    RelSet cover, dep;
    for (AttrId r : n.cover_rels) {
      FDB_CHECK_MSG(r + static_cast<AttrId>(offset) < kMaxRels,
                    "relation index overflow while shifting");
      cover.Add(r + static_cast<AttrId>(offset));
    }
    for (AttrId r : n.dep_rels) dep.Add(r + static_cast<AttrId>(offset));
    n.cover_rels = cover;
    n.dep_rels = dep;
  }
}

int FTree::MaxRelIndex() const {
  int best = -1;
  for (const FTreeNode& n : nodes_) {
    if (!n.alive) continue;
    for (AttrId r : n.dep_rels) best = std::max(best, static_cast<int>(r));
  }
  return best;
}

bool FTree::SatisfiesPathConstraint() const {
  // For each relation bit, the non-constant alive nodes that mention it must
  // form a chain under the ancestor relation.
  RelSet all;
  for (const FTreeNode& n : nodes_) {
    if (n.alive && !n.constant) all = all.Union(n.dep_rels);
  }
  for (AttrId r : all) {
    std::vector<int> hits;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const FTreeNode& n = nodes_[i];
      if (n.alive && !n.constant && n.dep_rels.Contains(r)) {
        hits.push_back(static_cast<int>(i));
      }
    }
    // Sort by depth; each must be an ancestor of the next.
    std::sort(hits.begin(), hits.end(),
              [&](int x, int y) { return Depth(x) < Depth(y); });
    for (size_t i = 0; i + 1 < hits.size(); ++i) {
      if (!IsAncestor(hits[i], hits[i + 1])) return false;
    }
  }
  return true;
}

double FTree::PathCostRec(int n, std::vector<uint64_t>* stack,
                          EdgeCoverSolver& solver) const {
  const FTreeNode& nd = node(n);
  size_t pushed = 0;
  if (!nd.constant) {
    FDB_CHECK_MSG(!nd.cover_rels.Empty(),
                  "non-constant f-tree node with no covering relation");
    stack->push_back(nd.cover_rels.bits());
    pushed = 1;
  }
  double best;
  if (nd.children.empty()) {
    best = solver.Solve(*stack);  // a root-to-leaf path ends here
  } else {
    best = 0.0;
    for (int c : nd.children) {
      best = std::max(best, PathCostRec(c, stack, solver));
    }
  }
  if (pushed) stack->pop_back();
  return best;
}

double FTree::Cost(EdgeCoverSolver& solver) const {
  double best = 0.0;
  std::vector<uint64_t> stack;
  for (int r : roots_) {
    best = std::max(best, PathCostRec(r, &stack, solver));
  }
  return best;
}

AttrSet FTree::AllAttrs() const {
  AttrSet out;
  for (const FTreeNode& n : nodes_) {
    if (n.alive) out = out.Union(n.attrs);
  }
  return out;
}

AttrSet FTree::VisibleAttrs() const {
  AttrSet out;
  for (const FTreeNode& n : nodes_) {
    if (n.alive) out = out.Union(n.visible);
  }
  return out;
}

void FTree::CanonicalKeyRec(int n, std::string* out) const {
  const FTreeNode& nd = node(n);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%llx;%llx;%llx;%llx;%d",
                static_cast<unsigned long long>(nd.attrs.bits()),
                static_cast<unsigned long long>(nd.visible.bits()),
                static_cast<unsigned long long>(nd.cover_rels.bits()),
                static_cast<unsigned long long>(nd.dep_rels.bits()),
                nd.constant ? 1 : 0);
  out->append(buf);
  std::vector<std::string> keys;
  keys.reserve(nd.children.size());
  for (int c : nd.children) {
    std::string k;
    CanonicalKeyRec(c, &k);
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& k : keys) out->append(k);
  out->push_back(')');
}

std::string FTree::CanonicalKey() const {
  std::vector<std::string> keys;
  keys.reserve(roots_.size());
  for (int r : roots_) {
    std::string k;
    CanonicalKeyRec(r, &k);
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const std::string& k : keys) out.append(k);
  return out;
}

std::string FTree::ToString(const Catalog* cat) const {
  std::ostringstream os;
  auto label = [&](int n) {
    const FTreeNode& nd = node(n);
    std::string s;
    if (cat != nullptr) {
      s = cat->ClassName(nd.attrs);
    } else {
      s = nd.attrs.ToString();
    }
    if (nd.constant) s += " [const]";
    if (nd.visible != nd.attrs) {
      s += " [vis " + (cat ? cat->ClassName(nd.visible) : nd.visible.ToString()) + "]";
    }
    return s;
  };
  // Depth-first with indentation.
  struct Frame {
    int n;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    for (int i = 0; i < f.depth; ++i) os << "  ";
    os << label(f.n) << '\n';
    const auto& ch = node(f.n).children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return os.str();
}

void FTree::Validate() const {
  AttrSet seen;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const FTreeNode& n = nodes_[i];
    if (!n.alive) continue;
    FDB_CHECK_MSG(!n.attrs.Empty(), "alive node with empty class");
    FDB_CHECK_MSG(!seen.Intersects(n.attrs),
                  "attribute labels two alive nodes");
    seen = seen.Union(n.attrs);
    for (int c : n.children) {
      FDB_CHECK_MSG(node(c).alive, "dead child");
      FDB_CHECK_MSG(node(c).parent == static_cast<int>(i),
                    "parent/child mismatch");
    }
    if (n.parent == -1) {
      bool is_root =
          std::find(roots_.begin(), roots_.end(), static_cast<int>(i)) !=
          roots_.end();
      FDB_CHECK_MSG(is_root, "alive parentless node missing from roots");
    }
  }
  for (int r : roots_) {
    FDB_CHECK_MSG(node(r).alive && node(r).parent == -1, "bad root entry");
  }
}

FTree PathFTree(const std::vector<AttrId>& schema, int rel) {
  FTree t;
  RelSet rs = RelSet::Of({static_cast<AttrId>(rel)});
  int prev = -1;
  for (AttrId a : schema) {
    AttrSet cls = AttrSet::Of({a});
    int n = t.NewNode(cls, cls, rs, rs);
    if (prev == -1) {
      t.AttachRoot(n);
    } else {
      t.AttachChild(prev, n);
    }
    prev = n;
  }
  return t;
}

FTree FTreeFromShape(const QueryInfo& info,
                     const std::vector<AttrSet>& classes,
                     const std::vector<int>& parent_of) {
  FDB_CHECK(classes.size() == parent_of.size());
  FTree t;
  std::vector<int> ids;
  ids.reserve(classes.size());
  for (const AttrSet& cls : classes) {
    RelSet cover = info.RelsCovering(cls);
    ids.push_back(t.NewNode(cls, cls.Intersect(info.projection), cover, cover));
  }
  for (size_t i = 0; i < classes.size(); ++i) {
    if (parent_of[i] == -1) {
      t.AttachRoot(ids[i]);
    } else {
      t.AttachChild(ids[static_cast<size_t>(parent_of[i])], ids[i]);
    }
  }
  t.Validate();
  return t;
}

}  // namespace fdb
