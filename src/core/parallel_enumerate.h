// Parallel chunked enumeration: morsel-driven multi-core tuple streaming
// from f-representations.
//
// Constant-delay enumeration (core/enumerate.h) is a lexicographic
// odometer over the pre-order frames of the f-tree, which makes it
// embarrassingly partitionable over the *top* frames: restricting the
// first frame's union to an entry range [b, e) — and, when one entry
// dominates, pinning it and recursing one level down — carves the tuple
// stream into contiguous, disjoint slices. The planner (PlanMorsels)
// builds such slices ("morsels", after Leis et al., Morsel-Driven
// Parallelism, SIGMOD'14 — see PAPERS.md) of bounded estimated output
// using the per-subtree tuple counts of the CountTuples DP
// (FRep::SubtreeTupleCounts), and ParallelEnumerator runs one
// range-restricted TupleEnumerator per morsel on the shared thread pool
// (common/thread_pool.h).
//
// Determinism: morsels partition the stream in lexicographic odometer
// order, so concatenating per-chunk results by chunk index reproduces the
// sequential enumeration byte for byte, regardless of thread count or
// scheduling (tests/parallel_enumerate_test.cc asserts this tuple for
// tuple; the TSan CI job runs it under ThreadSanitizer).
#ifndef FDB_CORE_PARALLEL_ENUMERATE_H_
#define FDB_CORE_PARALLEL_ENUMERATE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/trace.h"
#include "core/enumerate.h"
#include "core/frep.h"
#include "storage/relation.h"

namespace fdb {

class EnumKernel;  // core/kernel.h

/// Knobs of one (possibly parallel) enumeration.
struct EnumerateOptions {
  /// Maximum threads enumerating concurrently (including the caller).
  /// 0 = size of the shared pool + 1; 1 = sequential on the caller.
  int threads = 0;

  /// Estimated output (tuples) below which enumeration stays on the
  /// calling thread — morsel planning and thread handoff are not worth it
  /// for small results.
  double parallel_cutoff = 32768;

  /// Morsels per thread the planner aims for; more morsels = better load
  /// balance, more per-chunk overhead.
  int morsels_per_thread = 8;

  /// Override of the target tuples per morsel (0 = derived from the total
  /// estimate, threads and morsels_per_thread). Mainly for tests.
  double target_morsel_tuples = 0;
};

/// One work slice: a restriction chain on the top pre-order frames (see
/// the TupleEnumerator bounds constructor) plus its estimated output.
/// An empty bounds vector denotes the whole stream.
struct Morsel {
  std::vector<EntryBound> bounds;
  double est_tuples = 0;
};

/// A partition of the enumeration stream. Morsels are in lexicographic
/// odometer order: concatenating their streams by index reproduces the
/// sequential enumeration exactly.
struct MorselPlan {
  std::vector<Morsel> morsels;
  double est_total = 0;  ///< estimated stream length (restricted count)
};

/// Splits the enumeration stream of `rep` (frames as per `visible_only`)
/// into morsels of roughly `target_tuples` estimated output each. Entries
/// of the first frame's union are packed greedily; an entry whose subtree
/// alone exceeds the target is pinned and the next frame is split
/// recursively. Always returns at least one morsel for a non-empty rep;
/// the empty rep yields an empty plan.
MorselPlan PlanMorsels(const FRep& rep, bool visible_only,
                       double target_tuples);

/// Runs range-restricted TupleEnumerators over a morsel plan, one chunk
/// per morsel, on the shared thread pool.
class ParallelEnumerator {
 public:
  /// Plans the enumeration. Falls back to one whole-stream chunk when the
  /// resolved thread count is 1, the estimate is below
  /// opts.parallel_cutoff, or the rep has no splittable frames (nullary).
  ParallelEnumerator(const FRep& rep, EnumerateOptions opts = {},
                     bool visible_only = false);

  /// Number of chunks Enumerate() will deliver (0 for the empty rep).
  size_t num_chunks() const { return plan_.morsels.size(); }

  /// Resolved maximum concurrency (including the caller thread).
  int threads() const { return threads_; }

  const MorselPlan& plan() const { return plan_; }

  /// Calls consume(chunk, enumerator) for every chunk in [0, num_chunks()),
  /// concurrently on up to threads() threads. `consume` must be safe to
  /// run concurrently for distinct chunks; chunk index order equals
  /// sequential stream order, so writing chunk results into per-index
  /// slots and concatenating reproduces sequential output exactly.
  /// Rethrows the first exception a chunk throws.
  void Enumerate(
      const std::function<void(size_t, TupleEnumerator&)>& consume) const;

  /// Lower-level scheduling hook: calls fn(chunk) for every chunk index,
  /// concurrently on up to threads() threads, without constructing
  /// enumerators — for consumers that run their own per-morsel walk (the
  /// compiled-kernel materialisation reads plan().morsels[chunk].bounds).
  /// Same concurrency and exception contract as Enumerate().
  void ForEachChunk(const std::function<void(size_t)>& fn) const;

 private:
  const FRep* rep_;
  bool visible_only_;
  int threads_;
  MorselPlan plan_;
};

/// Parallel MaterializeVisible: identical output to the sequential
/// overload in core/enumerate.h (same rows, same sort), enumerated on up
/// to opts.threads cores for large representations.
Relation MaterializeVisible(const FRep& rep, const EnumerateOptions& opts);

/// Kernel-accelerated MaterializeVisible: when `kernel` is a visible-mode
/// kernel whose compiled shape matches rep.tree() (EnumKernel::Matches),
/// rows are emitted by one kernel run per morsel — extraction fused into
/// emission — on up to opts.threads cores; otherwise rows come from the
/// interpreted enumerator (null kernels are fine). Output is identical
/// either way. A non-null `trace` records a "morsel-plan" span (rows =
/// chunk count) and an "enumerate" span (rows = output rows), both opened
/// on the calling thread around the whole fan-out — per-morsel work is
/// aggregated, never one span per morsel (common/trace.h).
Relation MaterializeVisible(const FRep& rep, const EnumerateOptions& opts,
                            const EnumKernel* kernel,
                            QueryTrace* trace = nullptr);

}  // namespace fdb

#endif  // FDB_CORE_PARALLEL_ENUMERATE_H_
