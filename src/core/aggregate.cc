#include "core/aggregate.h"

#include <algorithm>
#include <limits>
#include <span>
#include <unordered_set>

#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "core/enumerate.h"
#include "core/ops.h"
#include "core/validate.h"

namespace fdb {

namespace {

constexpr const char* kCountOverflow =
    "aggregate tuple count overflows uint64 — a weighted aggregate over "
    "this representation would be silently inexact";

uint64_t MulCount(uint64_t a, uint64_t b) {
  uint64_t out;
  FDB_CHECK_MSG(!U64MulOverflow(a, b, &out), kCountOverflow);
  return out;
}

uint64_t AddCount(uint64_t a, uint64_t b) {
  uint64_t out;
  FDB_CHECK_MSG(!U64AddOverflow(a, b, &out), kCountOverflow);
  return out;
}

// DP over the union pool: for each union, the tuple count of the sub-
// representation and the sum of `attr` over its tuples. For an entry with
// value v and child counts c_1..c_k / child sums s_1..s_k:
//   count contribution:  prod_j c_j
//   sum contribution:    [node has attr] * v * prod_j c_j
//                        + sum_j s_j * prod_{j' != j} c_{j'}
// Counts accumulate in uint64_t and throw on overflow: past 2^64 the
// weighted sum recurrence would silently round, so SUM/AVG refuse.
struct CountSum {
  uint64_t count = 0;
  double sum = 0.0;
};

CountSum SolveUnion(const FRep& rep, uint32_t id, AttrId attr,
                    std::vector<CountSum>& memo, std::vector<char>& done) {
  if (done[id]) return memo[id];
  UnionRef un = rep.u(id);
  const FTreeNode& nd = rep.tree().node(un.node());
  const size_t k = nd.children.size();
  const bool has_attr = nd.attrs.Contains(attr);

  CountSum out;
  for (size_t e = 0; e < un.size(); ++e) {
    uint64_t prod = 1;
    double weighted = 0.0;  // sum_j s_j * prod_{j' != j} c_{j'}
    for (size_t j = 0; j < k; ++j) {
      CountSum c = SolveUnion(rep, un.Child(e, j, k), attr, memo, done);
      weighted = weighted * static_cast<double>(c.count) +
                 c.sum * static_cast<double>(prod);
      prod = MulCount(prod, c.count);
    }
    out.count = AddCount(out.count, prod);
    out.sum += weighted;
    if (has_attr) {
      out.sum += static_cast<double>(un.value(e)) * static_cast<double>(prod);
    }
  }
  memo[id] = out;
  done[id] = 1;
  return out;
}

// Combines the forest roots (a product): count multiplies; the sum of attr
// over a product is sum_i s_i * prod_{i' != i} c_{i'} — attr lives in
// exactly one root tree, so only one s_i is non-zero.
CountSum SolveForest(const FRep& rep, AttrId attr) {
  std::vector<CountSum> memo(rep.NumUnions());
  std::vector<char> done(rep.NumUnions(), 0);
  CountSum total{1, 0.0};
  for (uint32_t r : rep.roots()) {
    CountSum c = SolveUnion(rep, r, attr, memo, done);
    total.sum = total.sum * static_cast<double>(c.count) +
                c.sum * static_cast<double>(total.count);
    total.count = MulCount(total.count, c.count);
  }
  return total;
}

int NodeOfAttr(const FRep& rep, AttrId attr) {
  int n = rep.tree().FindAttr(attr);
  FDB_CHECK_MSG(n >= 0, "aggregate attribute not in the f-tree");
  return n;
}

template <typename Fn>
void ForEachUnionOfNode(const FRep& rep, int node, Fn fn) {
  std::vector<char> seen(rep.NumUnions(), 0);
  std::vector<uint32_t> stack(rep.roots().begin(), rep.roots().end());
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    UnionRef un = rep.u(id);
    if (un.node() == node) fn(un);
    for (size_t i = 0; i < un.num_children(); ++i) {
      stack.push_back(un.child(i));
    }
  }
}

}  // namespace

double Count(const FRep& rep) { return rep.CountTuples(); }

double Sum(const FRep& rep, AttrId attr) {
  NodeOfAttr(rep, attr);
  if (rep.empty()) return 0.0;
  return SolveForest(rep, attr).sum;
}

double Avg(const FRep& rep, AttrId attr) {
  NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "AVG over the empty relation");
  CountSum cs = SolveForest(rep, attr);
  return cs.sum / static_cast<double>(cs.count);
}

Value Min(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "MIN over the empty relation");
  Value best = std::numeric_limits<Value>::max();
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    best = std::min(best, un.value(0));  // values are sorted
  });
  return best;
}

Value Max(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "MAX over the empty relation");
  Value best = std::numeric_limits<Value>::min();
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    best = std::max(best, un.value(un.size() - 1));
  });
  return best;
}

size_t CountDistinct(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  if (rep.empty()) return 0;
  std::unordered_set<Value> seen;
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    seen.insert(un.values(), un.values() + un.size());
  });
  return seen.size();
}

// ---------------------------------------------------------------------------
// Grouped aggregation (restructure-then-collapse; see aggregate.h).
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kNoNewUnion = 0xFFFFFFFFu;

// Repeated chi swaps until every node whose class meets `group_attrs` has
// only such nodes as ancestors (the grouping classes become the f-tree's
// upper fragment). Swaps are always applicable to a (parent, child) pair;
// each one strictly shrinks the total number of non-group ancestors of
// group nodes, so the loop terminates. Among the applicable swaps the one
// whose resulting tree has the smallest s(T) is taken (greedy; mirrors the
// f-plan optimiser's cost measure without its equality-driven goal test).
FRep RestructureForGrouping(const FRep& in, AttrSet group_attrs,
                            EdgeCoverSolver& solver, FPlan* plan_out) {
  FRep cur = in;
  for (;;) {
    const FTree& t = cur.tree();
    int best_a = -1, best_b = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int b : t.AliveNodes()) {
      if (!t.node(b).attrs.Intersects(group_attrs)) continue;
      int a = t.node(b).parent;
      if (a == -1 || t.node(a).attrs.Intersects(group_attrs)) continue;
      FTree sim = t;
      sim.SwapTree(a, b);
      double cost = sim.Cost(solver);
      if (cost < best_cost) {
        best_cost = cost;
        best_a = a;
        best_b = b;
      }
    }
    if (best_b == -1) return cur;
    AttrId aa = t.node(best_a).attrs.Min();
    AttrId ba = t.node(best_b).attrs.Min();
    cur = Swap(cur, aa, ba);
    if (plan_out != nullptr) {
      plan_out->steps.push_back(PlanStep::MakeSwap(aa, ba));
    }
  }
}

// Memoised multi-spec statistics of whole sub-representations (the parts
// below the grouping frontier and the global root trees): tuple count plus
// per-spec sum/min/max of the spec's attribute. One pass over each
// reachable union, shared subtrees solved once.
struct CollapseCtx {
  const FRep& rep;
  const std::vector<AggSpec>& specs;
  // spec_slot[node][j]: -1 when spec j's attribute is in the node's own
  // class, a child-slot index when it lives in that child's subtree, -2
  // when absent from the subtree (or spec j is COUNT).
  std::vector<std::vector<int>> spec_slot;

  std::vector<char> done;
  std::vector<uint64_t> count;  ///< [union]
  std::vector<double> sum;      ///< [spec * NumUnions + union]
  std::vector<Value> mn, mx;    ///< [spec * NumUnions + union]
};

// Iterative post-order (shared subtrees solved once); the memo arrays of
// `c` start zeroed / at the min-max sentinels, so stats accumulate into
// the owning union's slots directly.
void SolveStats(CollapseCtx& c, uint32_t root) {
  if (c.done[root]) return;
  const size_t ns = c.specs.size();
  const size_t nu = c.rep.NumUnions();
  std::vector<uint32_t> stack{root};
  std::vector<double> weighted(ns);
  // Governance probe: the aggregate collapse visits every reachable union,
  // same cancellation window as the CountTuples DP.
  ExecContext* const ctx = ExecContext::Current();
  uint32_t tick = 0;
  while (!stack.empty()) {
    if (ctx != nullptr && (++tick & 255u) == 0) ctx->CheckCancelled();
    uint32_t id = stack.back();
    if (c.done[id]) {
      stack.pop_back();
      continue;
    }
    UnionRef un = c.rep.u(id);
    bool ready = true;
    const uint32_t* kids = un.children();
    for (size_t i = 0; i < un.num_children(); ++i) {
      if (!c.done[kids[i]]) {
        if (ready) ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;

    const FTreeNode& nd = c.rep.tree().node(un.node());
    const size_t k = nd.children.size();
    const std::vector<int>& slot =
        c.spec_slot[static_cast<size_t>(un.node())];
    uint64_t total_count = 0;
    for (size_t e = 0; e < un.size(); ++e) {
      uint64_t prod = 1;
      std::fill(weighted.begin(), weighted.end(), 0.0);
      for (size_t j = 0; j < k; ++j) {
        uint32_t ch = un.Child(e, j, k);
        for (size_t s = 0; s < ns; ++s) {
          weighted[s] = weighted[s] * static_cast<double>(c.count[ch]) +
                        c.sum[s * nu + ch] * static_cast<double>(prod);
        }
        prod = MulCount(prod, c.count[ch]);
      }
      total_count = AddCount(total_count, prod);
      for (size_t s = 0; s < ns; ++s) {
        c.sum[s * nu + id] += weighted[s];
        if (slot[s] == -1) {
          c.sum[s * nu + id] += static_cast<double>(un.value(e)) *
                                static_cast<double>(prod);
        } else if (slot[s] >= 0) {
          uint32_t ch = un.Child(e, static_cast<size_t>(slot[s]), k);
          c.mn[s * nu + id] = std::min(c.mn[s * nu + id], c.mn[s * nu + ch]);
          c.mx[s * nu + id] = std::max(c.mx[s * nu + id], c.mx[s * nu + ch]);
        }
      }
    }
    for (size_t s = 0; s < ns; ++s) {
      if (slot[s] == -1) {
        c.mn[s * nu + id] = un.value(0);  // values are sorted
        c.mx[s * nu + id] = un.value(un.size() - 1);
      }
    }
    c.count[id] = total_count;
    c.done[id] = 1;
    stack.pop_back();
  }
}

}  // namespace

uint64_t GroupedRep::NumGroups() const {
  return rep.empty() ? 0 : rep.CountTuplesExact();
}

namespace {

// The frame-odometer walk of GroupedRep::Materialize, restricted to
// `bounds` on the top pre-order frames (empty = whole group stream; same
// chain contract as the TupleEnumerator bounds constructor). Appends the
// covered groups' rows to *tbl in odometer order; `est_rows` pre-reserves
// the row storage.
void MaterializeRange(const GroupedRep& g, std::span<const EntryBound> bounds,
                      double est_rows, GroupedTable* tbl) {
  const FRep& rep = g.rep;
  const FTree& t = rep.tree();
  const size_t ns = g.specs.size();
  GroupedTable& out = *tbl;
  if (est_rows > 0.0 && est_rows < 1e9) {
    const size_t rows = static_cast<size_t>(est_rows);
    out.keys.reserve(out.keys.size() + rows * out.group_schema.size());
    out.aggs.reserve(out.aggs.size() + rows * ns);
  }

  // Pre-order frames over the group forest (shared with TupleEnumerator)
  // plus the per-frame odometer state of this walk.
  struct Frame : PreOrderFrame {
    uint32_t union_id = 0;
    size_t entry = 0;
    size_t off = 0;  ///< current union's arena offset
  };
  std::vector<Frame> frames;
  std::vector<int> frame_of(t.pool_size(), -1);
  for (const PreOrderFrame& pf : BuildPreOrderFrames(t)) {
    Frame f;
    static_cast<PreOrderFrame&>(f) = pf;
    frame_of[static_cast<size_t>(f.node)] = static_cast<int>(frames.size());
    frames.push_back(f);
  }

  std::vector<Value> cur_val(kMaxAttrs, 0);
  std::vector<Value> key(out.group_schema.size());
  std::vector<double> row(ns);
  // Per-depth scratch for the running per-spec sums (avoids per-entry
  // allocation in the recursion below).
  std::vector<std::vector<double>> sums_at(frames.size() + 1,
                                           std::vector<double>(ns, 0.0));

  const double g_count = static_cast<double>(g.global_count);

  auto emit = [&](uint64_t cnt, const std::vector<double>& sums) {
    uint64_t total = MulCount(cnt, g.global_count);
    for (size_t j = 0; j < ns; ++j) {
      const AggSpec& sp = g.specs[j];
      // Pair-combine of the group-local fold with the global multipliers:
      // SUM = sums[j] * G + global_sum[j] * cnt (exactly one term is
      // non-zero unless the spec's attribute is a group attribute).
      switch (sp.fn) {
        case AggFn::kCount:
          row[j] = static_cast<double>(total);
          break;
        case AggFn::kSum:
        case AggFn::kAvg: {
          double s = g.spec_where[j] == GroupedRep::Where::kGroup
                         ? static_cast<double>(cur_val[sp.attr]) *
                               static_cast<double>(total)
                         : sums[j] * g_count +
                               g.global_sum[j] * static_cast<double>(cnt);
          row[j] = sp.fn == AggFn::kSum ? s : s / static_cast<double>(total);
          break;
        }
        case AggFn::kMin:
        case AggFn::kMax: {
          Value v = 0;
          if (g.spec_where[j] == GroupedRep::Where::kGroup) {
            v = cur_val[sp.attr];
          } else if (g.spec_where[j] == GroupedRep::Where::kGlobal) {
            v = sp.fn == AggFn::kMin ? g.global_min[j] : g.global_max[j];
          } else {
            const Frame& f =
                frames[static_cast<size_t>(frame_of[g.spec_node[j]])];
            size_t gi = f.off + f.entry;
            v = sp.fn == AggFn::kMin ? g.entry_min[j][gi]
                                     : g.entry_max[j][gi];
          }
          row[j] = static_cast<double>(v);
          break;
        }
      }
    }
    for (size_t c = 0; c < key.size(); ++c) {
      key[c] = cur_val[out.group_schema[c]];
    }
    out.AddRow(key, row);
  };

  auto rec = [&](auto&& self, size_t i, uint64_t cnt) -> void {
    if (i == frames.size()) {
      emit(cnt, sums_at[i]);
      return;
    }
    Frame& f = frames[i];
    if (f.parent_pos < 0) {
      f.union_id = rep.roots()[f.slot];
    } else {
      const Frame& pf = frames[static_cast<size_t>(f.parent_pos)];
      UnionRef pu = rep.u(pf.union_id);
      const size_t k = t.node(pf.node).children.size();
      f.union_id = pu.Child(pf.entry, f.slot, k);
    }
    UnionRef un = rep.u(f.union_id);
    f.off = un.arena_offset();
    const AttrSet attrs = t.node(f.node).attrs;
    const std::vector<double>& sums = sums_at[i];
    std::vector<double>& next = sums_at[i + 1];
    // Entry bounds restrict the first bounds.size() frames, exactly as in
    // TupleEnumerator: pinned chain above, one ranged frame at the end.
    size_t lo = 0, hi = un.size();
    if (i < bounds.size()) {
      lo = bounds[i].begin;
      hi = std::min<size_t>(hi, bounds[i].end);
    }
    for (size_t e = lo; e < hi; ++e) {
      f.entry = e;
      for (AttrId a : attrs) cur_val[a] = un.value(e);
      const size_t gi = f.off + e;
      for (size_t s = 0; s < ns; ++s) {
        next[s] = sums[s] * static_cast<double>(g.entry_count[gi]) +
                  g.entry_sum[s][gi] * static_cast<double>(cnt);
      }
      self(self, i + 1, MulCount(cnt, g.entry_count[gi]));
    }
  };
  rec(rec, 0, 1);
}

}  // namespace

GroupedTable GroupedRep::Materialize() const {
  EnumerateOptions sequential;
  sequential.threads = 1;
  return Materialize(sequential);
}

GroupedTable GroupedRep::Materialize(const EnumerateOptions& opts) const {
  GroupedTable tbl;
  tbl.group_schema = group_attrs.ToVector();
  tbl.specs = specs;
  if (rep.empty()) return tbl;

  // The morsel planner partitions the group forest's odometer exactly as
  // it partitions tuple enumeration; chunks concatenate in plan order, so
  // the row order matches the sequential walk for every thread count.
  ParallelEnumerator pe(rep, opts, /*visible_only=*/false);
  const MorselPlan& plan = pe.plan();
  if (pe.num_chunks() <= 1) {
    MaterializeRange(*this, {}, plan.est_total, &tbl);
    return tbl;
  }
  std::vector<GroupedTable> parts(pe.num_chunks());
  ThreadPool::Shared().ParallelFor(
      pe.num_chunks(),
      [&](size_t i) {
        GroupedTable& part = parts[i];
        part.group_schema = tbl.group_schema;
        part.specs = tbl.specs;
        MaterializeRange(*this, plan.morsels[i].bounds,
                         plan.morsels[i].est_tuples, &part);
      },
      pe.threads());
  size_t rows = 0;
  for (const GroupedTable& part : parts) rows += part.num_rows;
  tbl.keys.reserve(rows * tbl.group_schema.size());
  tbl.aggs.reserve(rows * tbl.specs.size());
  for (const GroupedTable& part : parts) {
    tbl.keys.insert(tbl.keys.end(), part.keys.begin(), part.keys.end());
    tbl.aggs.insert(tbl.aggs.end(), part.aggs.begin(), part.aggs.end());
  }
  tbl.num_rows = rows;
  return tbl;
}

GroupedRep GroupByAggregate(const FRep& in, AttrSet group_attrs,
                            std::vector<AggSpec> specs,
                            EdgeCoverSolver* solver, FPlan* plan_out) {
  for (AttrId a : group_attrs) {
    FDB_CHECK_MSG(in.tree().FindAttr(a) >= 0,
                  "GROUP BY attribute not in the f-tree");
  }
  for (const AggSpec& s : specs) {
    if (s.fn == AggFn::kCount) continue;
    FDB_CHECK_MSG(in.tree().FindAttr(s.attr) >= 0,
                  std::string(AggFnName(s.fn)) +
                      " attribute not in the f-tree");
  }

  EdgeCoverSolver local_solver;
  FRep cur = RestructureForGrouping(
      in, group_attrs, solver != nullptr ? *solver : local_solver, plan_out);
  const FTree& t = cur.tree();
  const size_t ns = specs.size();

  std::vector<char> is_group(t.pool_size(), 0);
  for (int n : t.AliveNodes()) {
    if (t.node(n).attrs.Intersects(group_attrs)) {
      is_group[static_cast<size_t>(n)] = 1;
    }
  }

  // The group forest: copies of the grouping nodes with structure (and
  // child order) preserved. Pre-order guarantees parents come first; every
  // group node's parent is a group node after restructuring.
  std::vector<int> order = t.PreOrder();
  FTree gt;
  std::vector<int> new_node(t.pool_size(), -1);
  for (int n : order) {
    if (!is_group[static_cast<size_t>(n)]) continue;
    const FTreeNode& nd = t.node(n);
    int nn = gt.NewNode(nd.attrs, nd.visible, nd.cover_rels, nd.dep_rels);
    gt.node(nn).constant = nd.constant;
    new_node[static_cast<size_t>(n)] = nn;
    if (nd.parent == -1) {
      gt.AttachRoot(nn);
    } else {
      gt.AttachChild(new_node[static_cast<size_t>(nd.parent)], nn);
    }
  }

  // Attribute containment per subtree (reverse pre-order), used to place
  // each spec and to route MIN/MAX through the child that owns the attr.
  std::vector<AttrSet> sub_attrs(t.pool_size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const FTreeNode& nd = t.node(*it);
    AttrSet s = nd.attrs;
    for (int c : nd.children) s = s.Union(sub_attrs[static_cast<size_t>(c)]);
    sub_attrs[static_cast<size_t>(*it)] = s;
  }

  GroupedRep out;
  out.group_attrs = group_attrs;
  out.specs = std::move(specs);
  out.spec_where.assign(ns, GroupedRep::Where::kNone);
  out.spec_node.assign(ns, -1);
  out.entry_sum.assign(ns, {});
  out.entry_min.assign(ns, {});
  out.entry_max.assign(ns, {});
  out.global_sum.assign(ns, 0.0);
  out.global_min.assign(ns, std::numeric_limits<Value>::max());
  out.global_max.assign(ns, std::numeric_limits<Value>::min());

  for (size_t j = 0; j < ns; ++j) {
    if (out.specs[j].fn == AggFn::kCount) continue;
    int n = t.FindAttr(out.specs[j].attr);
    if (is_group[static_cast<size_t>(n)]) {
      out.spec_where[j] = GroupedRep::Where::kGroup;
      out.spec_node[j] = new_node[static_cast<size_t>(n)];
      continue;
    }
    // Climb to the top of the non-group region containing n.
    int p = n;
    while (t.node(p).parent != -1 &&
           !is_group[static_cast<size_t>(t.node(p).parent)]) {
      p = t.node(p).parent;
    }
    if (t.node(p).parent == -1) {
      out.spec_where[j] = GroupedRep::Where::kGlobal;
    } else {
      out.spec_where[j] = GroupedRep::Where::kBelow;
      out.spec_node[j] =
          new_node[static_cast<size_t>(t.node(p).parent)];
    }
  }

  if (cur.empty()) {
    out.rep = FRep{std::move(gt)};
    FDB_VALIDATE_GROUPED(out);
    return out;
  }

  // Collapse context (per-node spec routing plus the memoised DP).
  CollapseCtx ctx{cur, out.specs, {}, {}, {}, {}, {}, {}};
  ctx.spec_slot.assign(t.pool_size(), std::vector<int>(ns, -2));
  for (int n : t.AliveNodes()) {
    const FTreeNode& nd = t.node(n);
    for (size_t j = 0; j < ns; ++j) {
      if (out.specs[j].fn == AggFn::kCount) continue;
      AttrId a = out.specs[j].attr;
      if (nd.attrs.Contains(a)) {
        ctx.spec_slot[static_cast<size_t>(n)][j] = -1;
      } else {
        for (size_t c = 0; c < nd.children.size(); ++c) {
          if (sub_attrs[static_cast<size_t>(nd.children[c])].Contains(a)) {
            ctx.spec_slot[static_cast<size_t>(n)][j] = static_cast<int>(c);
            break;
          }
        }
      }
    }
  }
  const size_t nu = cur.NumUnions();
  ctx.done.assign(nu, 0);
  ctx.count.assign(nu, 0);
  ctx.sum.assign(ns * nu, 0.0);
  ctx.mn.assign(ns * nu, std::numeric_limits<Value>::max());
  ctx.mx.assign(ns * nu, std::numeric_limits<Value>::min());

  // Global root trees (no grouping class anywhere): collapse each whole
  // tree and pair-combine into the global multipliers.
  for (size_t i = 0; i < cur.roots().size(); ++i) {
    int rn = t.roots()[i];
    if (is_group[static_cast<size_t>(rn)]) continue;
    uint32_t rid = cur.roots()[i];
    SolveStats(ctx, rid);
    for (size_t s = 0; s < ns; ++s) {
      out.global_sum[s] =
          out.global_sum[s] * static_cast<double>(ctx.count[rid]) +
          ctx.sum[s * nu + rid] * static_cast<double>(out.global_count);
      if (out.specs[s].fn != AggFn::kCount &&
          sub_attrs[static_cast<size_t>(rn)].Contains(out.specs[s].attr)) {
        out.global_min[s] = ctx.mn[s * nu + rid];
        out.global_max[s] = ctx.mx[s * nu + rid];
      }
    }
    out.global_count = MulCount(out.global_count, ctx.count[rid]);
  }

  // Rebuild the group forest's unions, collapsing every removed child
  // slot into the owning entry's payload. Memoised so shared subtrees
  // (push-up hoists copies) stay shared in the grouped rep.
  FRep grep{std::move(gt)};
  grep.MarkNonEmpty();
  // Per-node slot split, aligned with the new tree's child order.
  std::vector<std::vector<size_t>> group_slots(t.pool_size());
  std::vector<std::vector<size_t>> removed_slots(t.pool_size());
  for (int n : t.AliveNodes()) {
    if (!is_group[static_cast<size_t>(n)]) continue;
    const auto& ch = t.node(n).children;
    for (size_t c = 0; c < ch.size(); ++c) {
      if (is_group[static_cast<size_t>(ch[c])]) {
        group_slots[static_cast<size_t>(n)].push_back(c);
      } else {
        removed_slots[static_cast<size_t>(n)].push_back(c);
      }
    }
  }

  std::vector<uint32_t> rebuilt(nu, kNoNewUnion);
  std::vector<double> esum(ns);
  auto rebuild = [&](auto&& self, uint32_t id) -> uint32_t {
    if (rebuilt[id] != kNoNewUnion) return rebuilt[id];
    UnionRef un = cur.u(id);
    const int n = un.node();
    const size_t k = t.node(n).children.size();
    const auto& gslots = group_slots[static_cast<size_t>(n)];
    const auto& rslots = removed_slots[static_cast<size_t>(n)];

    UnionBuilder nb = grep.StartUnion(new_node[static_cast<size_t>(n)]);
    nb.CopyValues(un);
    const size_t len = un.size();
    std::vector<uint64_t> pcount(len, 1);
    std::vector<double> psum(ns * len, 0.0);
    std::vector<Value> pmin(ns * len, std::numeric_limits<Value>::max());
    std::vector<Value> pmax(ns * len, std::numeric_limits<Value>::min());
    for (size_t e = 0; e < len; ++e) {
      for (size_t j : gslots) {
        nb.AddChild(self(self, un.Child(e, j, k)));
      }
      uint64_t cnt = 1;
      std::fill(esum.begin(), esum.end(), 0.0);
      for (size_t j : rslots) {
        uint32_t ch = un.Child(e, j, k);
        SolveStats(ctx, ch);
        for (size_t s = 0; s < ns; ++s) {
          esum[s] = esum[s] * static_cast<double>(ctx.count[ch]) +
                    ctx.sum[s * nu + ch] * static_cast<double>(cnt);
          if (out.specs[s].fn != AggFn::kCount &&
              sub_attrs[static_cast<size_t>(t.node(n).children[j])].Contains(
                  out.specs[s].attr)) {
            pmin[s * len + e] = ctx.mn[s * nu + ch];
            pmax[s * len + e] = ctx.mx[s * nu + ch];
          }
        }
        cnt = MulCount(cnt, ctx.count[ch]);
      }
      pcount[e] = cnt;
      for (size_t s = 0; s < ns; ++s) psum[s * len + e] = esum[s];
    }
    uint32_t nid = nb.Finish();
    const size_t off = grep.u(nid).arena_offset();
    // Commit order equals arena order, so the payload arrays grow exactly
    // in step with the value arena.
    FDB_CHECK(off == out.entry_count.size());
    out.entry_count.insert(out.entry_count.end(), pcount.begin(),
                           pcount.end());
    for (size_t s = 0; s < ns; ++s) {
      out.entry_sum[s].insert(out.entry_sum[s].end(), &psum[s * len],
                              &psum[s * len] + len);
      out.entry_min[s].insert(out.entry_min[s].end(), &pmin[s * len],
                              &pmin[s * len] + len);
      out.entry_max[s].insert(out.entry_max[s].end(), &pmax[s * len],
                              &pmax[s * len] + len);
    }
    rebuilt[id] = nid;
    return nid;
  };

  for (size_t i = 0; i < cur.roots().size(); ++i) {
    if (!is_group[static_cast<size_t>(t.roots()[i])]) continue;
    grep.roots().push_back(rebuild(rebuild, cur.roots()[i]));
  }
  out.rep = std::move(grep);
  FDB_VALIDATE_GROUPED(out);
  return out;
}

}  // namespace fdb
