#include "core/aggregate.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace fdb {

namespace {

// DP over the union pool: for each union, the tuple count of the sub-
// representation and the sum of `attr` over its tuples. For an entry with
// value v and child counts c_1..c_k / child sums s_1..s_k:
//   count contribution:  prod_j c_j
//   sum contribution:    [node has attr] * v * prod_j c_j
//                        + sum_j s_j * prod_{j' != j} c_{j'}
struct CountSum {
  double count = 0.0;
  double sum = 0.0;
};

CountSum SolveUnion(const FRep& rep, uint32_t id, AttrId attr,
                    std::vector<CountSum>& memo, std::vector<char>& done) {
  if (done[id]) return memo[id];
  UnionRef un = rep.u(id);
  const FTreeNode& nd = rep.tree().node(un.node());
  const size_t k = nd.children.size();
  const bool has_attr = nd.attrs.Contains(attr);

  CountSum out;
  for (size_t e = 0; e < un.size(); ++e) {
    double prod = 1.0;
    double weighted = 0.0;  // sum_j s_j * prod_{j' != j} c_{j'}
    for (size_t j = 0; j < k; ++j) {
      CountSum c = SolveUnion(rep, un.Child(e, j, k), attr, memo, done);
      weighted = weighted * c.count + c.sum * prod;
      prod *= c.count;
    }
    out.count += prod;
    out.sum += weighted;
    if (has_attr) {
      out.sum += static_cast<double>(un.value(e)) * prod;
    }
  }
  memo[id] = out;
  done[id] = 1;
  return out;
}

// Combines the forest roots (a product): count multiplies; the sum of attr
// over a product is sum_i s_i * prod_{i' != i} c_{i'} — attr lives in
// exactly one root tree, so only one s_i is non-zero.
CountSum SolveForest(const FRep& rep, AttrId attr) {
  std::vector<CountSum> memo(rep.NumUnions());
  std::vector<char> done(rep.NumUnions(), 0);
  CountSum total{1.0, 0.0};
  for (uint32_t r : rep.roots()) {
    CountSum c = SolveUnion(rep, r, attr, memo, done);
    total.sum = total.sum * c.count + c.sum * total.count;
    total.count *= c.count;
  }
  return total;
}

int NodeOfAttr(const FRep& rep, AttrId attr) {
  int n = rep.tree().FindAttr(attr);
  FDB_CHECK_MSG(n >= 0, "aggregate attribute not in the f-tree");
  return n;
}

template <typename Fn>
void ForEachUnionOfNode(const FRep& rep, int node, Fn fn) {
  std::vector<char> seen(rep.NumUnions(), 0);
  std::vector<uint32_t> stack(rep.roots().begin(), rep.roots().end());
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    UnionRef un = rep.u(id);
    if (un.node() == node) fn(un);
    for (size_t i = 0; i < un.num_children(); ++i) {
      stack.push_back(un.child(i));
    }
  }
}

}  // namespace

double Count(const FRep& rep) { return rep.CountTuples(); }

double Sum(const FRep& rep, AttrId attr) {
  NodeOfAttr(rep, attr);
  if (rep.empty()) return 0.0;
  if (rep.roots().empty()) return 0.0;  // nullary: no attributes (unreached)
  return SolveForest(rep, attr).sum;
}

double Avg(const FRep& rep, AttrId attr) {
  NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "AVG over the empty relation");
  CountSum cs = SolveForest(rep, attr);
  return cs.sum / cs.count;
}

Value Min(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "MIN over the empty relation");
  Value best = std::numeric_limits<Value>::max();
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    best = std::min(best, un.value(0));  // values are sorted
  });
  return best;
}

Value Max(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  FDB_CHECK_MSG(!rep.empty(), "MAX over the empty relation");
  Value best = std::numeric_limits<Value>::min();
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    best = std::max(best, un.value(un.size() - 1));
  });
  return best;
}

size_t CountDistinct(const FRep& rep, AttrId attr) {
  int node = NodeOfAttr(rep, attr);
  if (rep.empty()) return 0;
  std::unordered_set<Value> seen;
  ForEachUnionOfNode(rep, node, [&](const UnionRef& un) {
    seen.insert(un.values(), un.values() + un.size());
  });
  return seen.size();
}

}  // namespace fdb
