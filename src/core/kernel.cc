#include "core/kernel.h"

#include <algorithm>
#include <array>

#include "common/exec_context.h"
#include "common/fault.h"

namespace fdb {

namespace {

// Frames are one-per-alive-node and classes partition at most kMaxAttrs
// attributes, so the frame stack has a small static bound — the run-time
// state lives in a fixed stack array, no allocation per run.
constexpr size_t kMaxFrames = kMaxAttrs;

// Everything the lowered program depends on, flattened to integers: the
// frame list (order, parenthood, slots), each frame's child stride and its
// class/visibility bits (which fix the output columns). Two trees with
// equal signatures lower to byte-identical step programs.
std::vector<uint64_t> ShapeSignature(const FTree& t, bool visible_only,
                                     const std::vector<PreOrderFrame>& frames) {
  std::vector<uint64_t> sig;
  sig.reserve(2 + frames.size() * 6);
  sig.push_back(visible_only ? 1 : 0);
  sig.push_back(frames.size());
  for (const PreOrderFrame& f : frames) {
    const FTreeNode& nd = t.node(f.node);
    sig.push_back(static_cast<uint64_t>(static_cast<int64_t>(f.node)));
    sig.push_back(static_cast<uint64_t>(static_cast<int64_t>(f.parent_pos)));
    sig.push_back(f.slot);
    sig.push_back(nd.children.size());
    sig.push_back(nd.attrs.bits());
    sig.push_back(nd.visible.bits());
  }
  return sig;
}

std::vector<PreOrderFrame> FramesFor(const FTree& tree, bool visible_only) {
  std::vector<char> keep;
  const std::vector<char>* keep_ptr = nullptr;
  if (visible_only) {
    keep = VisibleKeepMask(tree);
    keep_ptr = &keep;
  }
  return BuildPreOrderFrames(tree, keep_ptr);
}

}  // namespace

EnumKernel EnumKernel::Compile(const FTree& tree, bool visible_only,
                               QueryTrace* trace) {
  QueryTrace::Scope span(trace, "kernel-compile");
  EnumKernel k;
  k.visible_only_ = visible_only;
  std::vector<PreOrderFrame> frames = FramesFor(tree, visible_only);
  FDB_CHECK_MSG(frames.size() <= kMaxFrames,
                "f-tree has more frames than attributes");
  const AttrSet schema_set =
      visible_only ? tree.VisibleAttrs() : tree.AllAttrs();
  k.schema_ = schema_set.ToVector();
  std::array<uint32_t, kMaxAttrs> col{};
  for (size_t c = 0; c < k.schema_.size(); ++c) {
    col[k.schema_[c]] = static_cast<uint32_t>(c);
  }
  k.steps_.reserve(frames.size());
  for (const PreOrderFrame& f : frames) {
    Step s;
    s.node = f.node;
    s.parent = f.parent_pos;
    s.slot = static_cast<uint32_t>(f.slot);
    s.nslots =
        f.parent_pos < 0
            ? 0
            : static_cast<uint32_t>(
                  tree.node(frames[static_cast<size_t>(f.parent_pos)].node)
                      .children.size());
    s.out_begin = static_cast<uint32_t>(k.out_cols_.size());
    for (AttrId a : tree.node(f.node).attrs) {
      if (schema_set.Contains(a)) k.out_cols_.push_back(col[a]);
    }
    s.out_end = static_cast<uint32_t>(k.out_cols_.size());
    k.steps_.push_back(s);
  }
  k.signature_ = ShapeSignature(tree, visible_only, frames);
  return k;
}

bool EnumKernel::Matches(const FTree& tree) const {
  std::vector<PreOrderFrame> frames = FramesFor(tree, visible_only_);
  if (2 + frames.size() * 6 != signature_.size()) return false;
  return ShapeSignature(tree, visible_only_, frames) == signature_;
}

template <bool kEmit>
uint64_t EnumKernel::Run(const FRep& rep, std::span<const EntryBound> bounds,
                         [[maybe_unused]] std::vector<Value>* out) const {
  // Same bounds contract (and validation) as the TupleEnumerator bounds
  // constructor: a pinned chain plus one trailing ranged frame.
  for (size_t i = 0; i < bounds.size(); ++i) {
    FDB_CHECK_MSG(bounds[i].begin < bounds[i].end,
                  "empty entry bound on an enumeration frame");
    FDB_CHECK_MSG(i + 1 == bounds.size() ||
                      bounds[i].begin + 1 == bounds[i].end,
                  "all entry bounds but the last must pin a single entry");
  }
  FDB_CHECK_MSG(bounds.size() <= steps_.size(),
                "more entry bounds than enumeration frames");
  FDB_FAULT_POINT("kernel_run");
  if (rep.empty()) return 0;
  const size_t n = steps_.size();
  if (n == 0) return 1;  // nullary stream: one empty row, nothing appended

  // Run-time frame state: raw arena windows, resolved once per reset. The
  // pointers stay valid for the whole run — enumeration never grows the
  // arenas (the representation is frozen).
  struct RunFrame {
    const Value* vals;
    const uint32_t* kids;
    uint32_t entry;
    uint32_t limit;  ///< min(union size, bound end); entry < limit
  };
  std::array<RunFrame, kMaxFrames> run{};
  std::array<Value, kMaxAttrs> row{};  // dense, indexed by output column

  auto reset = [&](size_t i) -> bool {
    const Step& s = steps_[i];
    const uint32_t uid =
        s.parent < 0
            ? rep.roots()[s.slot]
            : run[static_cast<size_t>(s.parent)]
                  .kids[run[static_cast<size_t>(s.parent)].entry * s.nslots +
                        s.slot];
    const UnionRef u = rep.u(uid);
    RunFrame& f = run[i];
    f.vals = u.values();
    f.kids = u.children();
    uint32_t begin = 0;
    uint32_t limit = static_cast<uint32_t>(u.size());
    if (i < bounds.size()) {
      begin = bounds[i].begin;
      limit = std::min(limit, bounds[i].end);
    }
    if (begin >= limit) return false;
    f.entry = begin;
    f.limit = limit;
    const Value v = f.vals[begin];
    for (uint32_t c = s.out_begin; c < s.out_end; ++c) row[out_cols_[c]] = v;
    return true;
  };

  // First pass doubles as bound validation, exactly like the interpreted
  // enumerator: bounded frames form a pinned chain whose unions never
  // change, so a bound that survives here cannot miss on a later reset
  // (and unions of a non-empty representation are never empty).
  for (size_t i = 0; i < n; ++i) {
    if (!reset(i)) return 0;  // a bound missed its union: empty stream
  }

  // Governance probe, hoisted and strided: one thread-local load per Run,
  // then a relaxed atomic load every 64th emitted run — cheap enough to
  // stay within noise on the warm path (BM_GovernanceOverhead) while
  // bounding time-to-cancel even for a single whole-stream morsel.
  ExecContext* const ctx = ExecContext::Current();
  uint32_t probe_tick = 0;

  uint64_t rows = 0;
  const size_t ncols = schema_.size();
  // Columns NOT owned by the innermost frame: constant across a run, so
  // the emit loop fills them with a strided splat and never rewrites them
  // in the per-entry pass.
  std::array<uint32_t, kMaxAttrs> steady{};
  size_t nsteady = 0;
  if constexpr (kEmit) {
    const Step& last = steps_[n - 1];
    std::array<bool, kMaxAttrs> inner{};
    for (uint32_t c = last.out_begin; c < last.out_end; ++c) {
      inner[out_cols_[c]] = true;
    }
    for (size_t c = 0; c < ncols; ++c) {
      if (!inner[c]) steady[nsteady++] = static_cast<uint32_t>(c);
    }
  }
  for (;;) {
    if (ctx != nullptr && (++probe_tick & 63u) == 0) ctx->CheckCancelled();
    RunFrame& lf = run[n - 1];
    if constexpr (kEmit) {
      // Innermost frame: emit the whole run at once. One resize per run
      // (not per row) keeps the vector's capacity check and end-pointer
      // update out of the hot loop.
      const Step& last = steps_[n - 1];
      const uint32_t* lcols = out_cols_.data() + last.out_begin;
      const uint32_t lcount = last.out_end - last.out_begin;
      const size_t run_len = lf.limit - lf.entry;
      const size_t pos = out->size();
      out->resize(pos + run_len * ncols);
      Value* dst = out->data() + pos;
      const Value* vals = lf.vals + lf.entry;
      // Column-strided emission: every column is either constant for the
      // whole run (outer frames) or a straight copy of the innermost
      // value window — both are simple strided fills with no per-row
      // row-buffer round trip.
      for (size_t s = 0; s < nsteady; ++s) {
        const uint32_t c = steady[s];
        const Value fixed = row[c];
        Value* p = dst + c;
        for (size_t i = 0; i < run_len; ++i, p += ncols) *p = fixed;
      }
      for (uint32_t c = 0; c < lcount; ++c) {
        Value* p = dst + lcols[c];
        for (size_t i = 0; i < run_len; ++i, p += ncols) *p = vals[i];
      }
    }
    rows += lf.limit - lf.entry;
    // Odometer over the outer frames: advance the deepest one with a next
    // entry, reset everything below it.
    size_t i = n - 1;
    for (;;) {
      if (i == 0) return rows;
      RunFrame& f = run[i - 1];
      if (f.entry + 1 < f.limit) {
        ++f.entry;
        const Step& s = steps_[i - 1];
        const Value v = f.vals[f.entry];
        for (uint32_t c = s.out_begin; c < s.out_end; ++c) {
          row[out_cols_[c]] = v;
        }
        for (size_t j = i; j < n; ++j) reset(j);
        break;
      }
      --i;
    }
  }
}

uint64_t EnumKernel::Emit(const FRep& rep, std::span<const EntryBound> bounds,
                          std::vector<Value>* out) const {
  return Run<true>(rep, bounds, out);
}

uint64_t EnumKernel::CountRows(const FRep& rep,
                               std::span<const EntryBound> bounds) const {
  return Run<false>(rep, bounds, nullptr);
}

}  // namespace fdb
