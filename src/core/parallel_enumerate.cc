#include "core/parallel_enumerate.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "common/exec_context.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/kernel.h"
#include "core/validate.h"

namespace fdb {

namespace {

// Deep chains of dominating single entries stop splitting here; a morsel
// can always fall back to "one pinned entry, whole range below".
constexpr size_t kMaxChainDepth = 16;

struct PlanCtx {
  const FRep& rep;
  const FTree& tree;
  const std::vector<PreOrderFrame>& frames;
  const std::vector<double>& counts;   // per-union restricted subtree counts
  const std::vector<char>* keep;       // node mask; null = all kept
  double target;                       // tuples per morsel aimed for
  std::vector<Morsel>* out;
  std::vector<EntryBound> prefix;      // pinned chain above the split frame
  std::vector<uint32_t> chain_unions;  // union id per chain frame
};

bool Kept(const PlanCtx& c, int node) {
  return c.keep == nullptr || (*c.keep)[static_cast<size_t>(node)];
}

// Stream tuples below entry `e` of union `u`: the product of the restricted
// counts of its kept children (1 for a leaf entry).
double ExtCount(const PlanCtx& c, const UnionRef& u, size_t e) {
  const std::vector<int>& ch = c.tree.node(u.node()).children;
  const size_t k = ch.size();
  double p = 1.0;
  for (size_t j = 0; j < k; ++j) {
    if (!Kept(c, ch[j])) continue;
    p *= c.counts[u.Child(e, j, k)];
  }
  return p;
}

// Union of frame `f` under the pinned prefix (every earlier chain frame is
// pinned to a single entry, so the resolution is unambiguous).
uint32_t ResolveUnion(const PlanCtx& c, size_t f) {
  const PreOrderFrame& pf = c.frames[f];
  if (pf.parent_pos < 0) return c.rep.roots()[pf.slot];
  const size_t p = static_cast<size_t>(pf.parent_pos);
  UnionRef pu = c.rep.u(c.chain_unions[p]);
  const size_t k = c.tree.node(c.frames[p].node).children.size();
  return pu.Child(c.prefix[p].begin, pf.slot, k);
}

// Splits the entries of `union_id` (the union of frame `frame` under the
// pinned prefix) into ranges of ~target estimated output. `mult` is the
// stream weight of one subtree tuple of this union — the product of every
// count outside the subtree under the pinned prefix — so entry `e` covers
// mult * ExtCount(e) stream tuples. Entries are packed greedily in order;
// an entry that alone exceeds the target is pinned and the next pre-order
// frame is split recursively, keeping the emitted morsels in lexicographic
// odometer order throughout.
void SplitFrame(PlanCtx& c, size_t frame, uint32_t union_id, double mult) {
  UnionRef u = c.rep.u(union_id);
  c.chain_unions.push_back(union_id);
  uint32_t begin = 0;
  double acc = 0.0;
  auto flush = [&](uint32_t end) {
    if (end > begin) {
      Morsel m;
      m.bounds = c.prefix;
      m.bounds.emplace_back(begin, end);
      m.est_tuples = acc;
      c.out->push_back(std::move(m));
    }
    begin = end;
    acc = 0.0;
  };
  const uint32_t len = static_cast<uint32_t>(u.size());
  for (uint32_t e = 0; e < len; ++e) {
    const double w = mult * ExtCount(c, u, e);
    // !(w <= target) rather than w > target: a non-finite estimate (counts
    // past double range) must also split rather than pack everything.
    const bool oversized = !(w <= c.target);
    if (oversized && frame + 1 < c.frames.size() &&
        c.prefix.size() + 1 < kMaxChainDepth) {
      flush(e);
      c.prefix.emplace_back(e, e + 1);
      const uint32_t nu = ResolveUnion(c, frame + 1);
      const double cn = c.counts[nu];
      SplitFrame(c, frame + 1, nu, cn > 0 ? w / cn : w);
      c.prefix.pop_back();
      begin = e + 1;
    } else {
      if (acc > 0.0 && !(acc + w <= c.target)) flush(e);
      acc += w;
    }
  }
  flush(len);
  c.chain_unions.pop_back();
}

// Length of the (possibly visible-restricted) enumeration stream: the
// product over kept root trees of their restricted subtree counts.
double RestrictedTotal(const FRep& rep, const std::vector<char>* keep,
                       const std::vector<double>& counts) {
  double total = 1.0;
  const std::vector<int>& roots = rep.tree().roots();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (keep == nullptr || (*keep)[static_cast<size_t>(roots[i])]) {
      total *= counts[rep.roots()[i]];
    }
  }
  return total;
}

// Splits an already-sized stream: `counts`/`keep`/`total` are the pieces
// the caller has computed (one DP pass shared between the cutoff decision
// and the planning).
MorselPlan PlanSizedMorsels(const FRep& rep, const std::vector<char>* keep,
                            const std::vector<double>& counts, double total,
                            double target_tuples) {
  MorselPlan plan;
  plan.est_total = total;
  std::vector<PreOrderFrame> frames = BuildPreOrderFrames(rep.tree(), keep);
  if (frames.empty()) {
    // Nullary stream (one empty tuple): nothing to split over.
    plan.morsels.push_back(Morsel{{}, plan.est_total});
    return plan;
  }
  if (!(target_tuples >= 1.0)) target_tuples = 1.0;
  PlanCtx ctx{rep,           rep.tree(),    frames, counts, keep,
              target_tuples, &plan.morsels, {},     {}};
  const uint32_t u0 = rep.roots()[frames[0].slot];
  const double c0 = counts[u0];
  SplitFrame(ctx, 0, u0, c0 > 0 ? plan.est_total / c0 : plan.est_total);
  return plan;
}

}  // namespace

MorselPlan PlanMorsels(const FRep& rep, bool visible_only,
                       double target_tuples) {
  if (rep.empty()) return {};
  std::vector<char> keep;
  const std::vector<char>* keep_ptr = nullptr;
  if (visible_only) {
    keep = VisibleKeepMask(rep.tree());
    keep_ptr = &keep;
  }
  std::vector<double> counts = rep.SubtreeTupleCounts(keep_ptr);
  MorselPlan plan = PlanSizedMorsels(rep, keep_ptr, counts,
                                     RestrictedTotal(rep, keep_ptr, counts),
                                     target_tuples);
  FDB_VALIDATE_MORSELS(rep, visible_only, plan);
  return plan;
}

ParallelEnumerator::ParallelEnumerator(const FRep& rep, EnumerateOptions opts,
                                       bool visible_only)
    : rep_(&rep), visible_only_(visible_only) {
  // Resolve against the hardware, not ThreadPool::Shared(): the shared
  // pool must not be spun up for enumerations that stay sequential.
  threads_ = opts.threads > 0
                 ? opts.threads
                 : static_cast<int>(
                       std::max(1u, std::thread::hardware_concurrency()));
  if (rep.empty()) return;  // zero chunks, Enumerate is a no-op
  if (threads_ > 1) {
    // One linear pass sizes the stream; below the cutoff the planning and
    // thread handoff are not worth it and the result stays on the caller.
    std::vector<char> keep;
    const std::vector<char>* keep_ptr = nullptr;
    if (visible_only) {
      keep = VisibleKeepMask(rep.tree());
      keep_ptr = &keep;
    }
    std::vector<double> counts = rep.SubtreeTupleCounts(keep_ptr);
    const double est = RestrictedTotal(rep, keep_ptr, counts);
    if (est >= opts.parallel_cutoff) {
      const double target =
          opts.target_morsel_tuples > 0
              ? opts.target_morsel_tuples
              : std::max(1.0, est / (static_cast<double>(threads_) *
                                     std::max(1, opts.morsels_per_thread)));
      plan_ = PlanSizedMorsels(rep, keep_ptr, counts, est, target);
    } else {
      plan_.est_total = est;
    }
  }
  if (plan_.morsels.empty()) {
    // Sequential fallback: one whole-stream chunk on the caller thread.
    plan_.morsels.push_back(Morsel{{}, plan_.est_total});
    threads_ = 1;
  }
  FDB_VALIDATE_MORSELS(rep, visible_only, plan_);
}

void ParallelEnumerator::ForEachChunk(
    const std::function<void(size_t)>& fn) const {
  const size_t n = plan_.morsels.size();
  if (n == 0) return;
  // Morsel tasks may run on pool threads, where the caller's governance
  // context is not ambient: capture it here and re-bind it inside every
  // chunk, so each worker observes the same cancellation flag and charges
  // the same budget. ParallelFor propagates the first exception back to
  // this caller; sibling morsels see the flagged context and stop at their
  // next probe, bounding reclaim time.
  ExecContext* const ctx = ExecContext::Current();
  auto governed = [&fn, ctx](size_t i) {
    ExecContext::Scope scope(ctx);
    if (ctx != nullptr) ctx->CheckCancelled();
    FDB_FAULT_POINT("enumerate_morsel");
    fn(i);
  };
  if (threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) governed(i);
    return;
  }
  ThreadPool::Shared().ParallelFor(n, governed, threads_);
}

void ParallelEnumerator::Enumerate(
    const std::function<void(size_t, TupleEnumerator&)>& consume) const {
  ForEachChunk([&](size_t i) {
    TupleEnumerator en(*rep_, visible_only_, plan_.morsels[i].bounds);
    consume(i, en);
  });
}

namespace {

// Interpreted emission over a planned enumeration (the pre-PR-7 path and
// the fallback for mismatching kernels).
Relation EmitInterpreted(const FRep& rep, const ParallelEnumerator& pe) {
  if (pe.num_chunks() <= 1) {
    // Sequential fallback. When the constructor already sized the stream
    // (small result below the cutoff), hand the estimate over instead of
    // letting the sequential overload re-run the DP.
    return pe.plan().est_total > 0
               ? internal::MaterializeVisibleSized(rep, pe.plan().est_total)
               : MaterializeVisible(rep);
  }

  std::vector<AttrId> schema = rep.tree().VisibleAttrs().ToVector();
  Relation out(schema);
  const size_t arity = schema.size();
  // Per-chunk value buffers, concatenated in chunk order below — the
  // pre-sort stream is byte-identical to the sequential enumeration.
  std::vector<std::vector<Value>> chunks(pe.num_chunks());
  pe.Enumerate([&](size_t c, TupleEnumerator& en) {
    ExecContext* const ctx = ExecContext::Current();
    uint32_t tick = 0;
    std::vector<Value>& buf = chunks[c];
    const double est =
        pe.plan().morsels[c].est_tuples * static_cast<double>(arity);
    if (est > 0.0 && est < 2e9) buf.reserve(static_cast<size_t>(est));
    while (en.Next()) {
      if (ctx != nullptr && (++tick & 8191u) == 0) ctx->CheckCancelled();
      for (AttrId a : schema) buf.push_back(en.ValueOf(a));
    }
  });
  size_t total_values = 0;
  for (const std::vector<Value>& b : chunks) total_values += b.size();
  out.Reserve(arity > 0 ? total_values / arity : 0);
  for (const std::vector<Value>& b : chunks) out.AppendRows(b);
  out.SortLex();  // relations are sets: sort + dedup
  return out;
}

// Kernel-accelerated emission over a planned enumeration.
Relation EmitWithKernel(const FRep& rep, const EnumKernel& kernel,
                        const ParallelEnumerator& pe) {
  const std::vector<AttrId>& schema = kernel.schema();
  Relation out(schema);
  if (rep.empty()) return out;
  const size_t arity = schema.size();
  if (arity == 0) {
    // Fully-invisible (or nullary) stream: the kernel reports the single
    // collapsed row count without appending values.
    std::vector<Value> none;
    const uint64_t rows = kernel.Emit(rep, {}, &none);
    for (uint64_t r = 0; r < rows; ++r) out.AddTuple({});
    out.SortLex();
    return out;
  }
  // One kernel run per morsel, restricted by the morsel's bound chain; the
  // per-chunk buffers concatenate in chunk order to the sequential stream.
  std::vector<std::vector<Value>> chunks(pe.num_chunks());
  pe.ForEachChunk([&](size_t c) {
    const Morsel& m = pe.plan().morsels[c];
    std::vector<Value>& buf = chunks[c];
    // Exact presize via the kernel's count mode — it skips the innermost
    // walk entirely, so it costs a fraction of a percent of the emit and
    // guarantees the emit never reallocates (the sequential-fallback
    // morsel carries no estimate, and estimates may run short).
    buf.reserve(kernel.CountRows(rep, m.bounds) * arity);
    kernel.Emit(rep, m.bounds, &buf);
  });
  // The first chunk moves into the relation (free for the common
  // single-chunk sequential case); the rest reserve-then-append.
  size_t total_values = 0;
  for (const std::vector<Value>& b : chunks) total_values += b.size();
  out.AdoptRows(std::move(chunks[0]));
  out.Reserve(total_values / arity);
  for (size_t c = 1; c < chunks.size(); ++c) out.AppendRows(chunks[c]);
  out.SortLex();  // relations are sets: sort + dedup
  return out;
}

}  // namespace

Relation MaterializeVisible(const FRep& rep, const EnumerateOptions& opts) {
  ParallelEnumerator pe(rep, opts, /*visible_only=*/true);
  return EmitInterpreted(rep, pe);
}

Relation MaterializeVisible(const FRep& rep, const EnumerateOptions& opts,
                            const EnumKernel* kernel, QueryTrace* trace) {
  // Fallback rules: no kernel, a full-tuple (not visible-mode) kernel, or a
  // shape mismatch (the rep's f-tree differs from the one compiled against)
  // all route to the interpreted path — the kernel is an accelerator, never
  // a requirement.
  const bool use_kernel = kernel != nullptr && kernel->visible_only() &&
                          kernel->Matches(rep.tree());
  std::optional<ParallelEnumerator> pe;
  {
    QueryTrace::Scope plan_span(trace, "morsel-plan");
    pe.emplace(rep, opts, /*visible_only=*/true);
    plan_span.SetRows(pe->num_chunks());
  }
  QueryTrace::Scope enum_span(trace, "enumerate");
  Relation out =
      use_kernel ? EmitWithKernel(rep, *kernel, *pe) : EmitInterpreted(rep, *pe);
  enum_span.SetRows(out.size());
  return out;
}

}  // namespace fdb
