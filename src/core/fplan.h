// F-plans: sequential compositions of f-plan operators (§3, §4).
//
// A plan step addresses f-tree nodes through representative attributes,
// which stay valid across restructuring (classes only grow). The optimiser
// reasons about plans on f-trees alone (SimulateStepOnTree) and the engine
// executes them on f-representations (ExecuteStep); both sides apply the
// identical tree transformation, so predicted and actual f-trees match
// exactly.
#ifndef FDB_CORE_FPLAN_H_
#define FDB_CORE_FPLAN_H_

#include <string>
#include <vector>

#include "core/frep.h"
#include "core/ops.h"

namespace fdb {

/// One f-plan operator application.
struct PlanStep {
  enum class Kind {
    kSwap,         ///< chi_{A,B}: b's node swaps above a's node
    kPushUp,       ///< psi_B
    kMerge,        ///< mu_{A,B}
    kAbsorb,       ///< alpha_{A,B}
    kNormalize,    ///< eta
    kSelectConst,  ///< sigma_{A theta c}
    kProject       ///< pi_keep
  };

  Kind kind;
  AttrId a = 0;
  AttrId b = 0;
  CmpOp op = CmpOp::kEq;
  Value value = 0;
  AttrSet keep;

  static PlanStep MakeSwap(AttrId parent, AttrId child) {
    return {Kind::kSwap, parent, child, CmpOp::kEq, 0, {}};
  }
  static PlanStep MakePushUp(AttrId node) {
    return {Kind::kPushUp, 0, node, CmpOp::kEq, 0, {}};
  }
  static PlanStep MakeMerge(AttrId a, AttrId b) {
    return {Kind::kMerge, a, b, CmpOp::kEq, 0, {}};
  }
  static PlanStep MakeAbsorb(AttrId a, AttrId b) {
    return {Kind::kAbsorb, a, b, CmpOp::kEq, 0, {}};
  }
  static PlanStep MakeNormalize() {
    return {Kind::kNormalize, 0, 0, CmpOp::kEq, 0, {}};
  }
  static PlanStep MakeSelectConst(AttrId attr, CmpOp op, Value v) {
    return {Kind::kSelectConst, attr, 0, op, v, {}};
  }
  static PlanStep MakeProject(AttrSet keep) {
    return {Kind::kProject, 0, 0, CmpOp::kEq, 0, keep};
  }

  std::string ToString(const Catalog* cat = nullptr) const;
};

/// A full plan plus bookkeeping filled in by the optimiser.
struct FPlan {
  std::vector<PlanStep> steps;

  /// max over intermediate f-trees of s(T_i), including input and output
  /// (the asymptotic cost measure s(f), §4.1). Filled by the optimiser.
  double cost_max_s = 0.0;
  /// s(T) of the final f-tree.
  double result_s = 0.0;

  std::string ToString(const Catalog* cat = nullptr) const;
};

/// Applies one step to an f-representation.
FRep ExecuteStep(const FRep& in, const PlanStep& step);

/// Applies a whole plan.
FRep ExecutePlan(const FRep& in, const FPlan& plan);

/// Tree-level twin of ExecuteStep; the returned tree is identical to
/// ExecuteStep(rep, step).tree() for any rep over `t`.
FTree SimulateStepOnTree(const FTree& t, const PlanStep& step);

}  // namespace fdb

#endif  // FDB_CORE_FPLAN_H_
