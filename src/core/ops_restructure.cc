#include <algorithm>
#include <queue>
#include <tuple>

#include "core/ops.h"
#include "core/ops_common.h"
#include "core/validate.h"

namespace fdb {

// CopyTree (ops_common) is deliberately unmemoised here: operators always
// produce tree-shaped representations (every union has exactly one parent
// reference), so plain duplication is exact. Swap deliberately duplicates
// the E_a subtrees per paired B-value — that is the size growth the paper's
// bounds account for.
using ops_internal::CopyTree;
using ops_internal::kNoUnion;
using ops_internal::SubtreeContains;

FRep PushUp(const FRep& in, AttrId b_attr) {
  const FTree& t = in.tree();
  const int b = t.FindAttr(b_attr);
  FDB_CHECK_MSG(b >= 0, "push-up attribute not in the f-tree");
  const int a = t.node(b).parent;
  FDB_CHECK_MSG(a != -1, "cannot push up a root node");
  FDB_CHECK_MSG(!t.DependentOnSubtree(a, b),
                "push-up would violate the path constraint: parent depends "
                "on the lifted subtree");

  const auto& a_children = t.node(a).children;
  const size_t slot_b = static_cast<size_t>(
      std::find(a_children.begin(), a_children.end(), b) - a_children.begin());
  const size_t ka = a_children.size();
  const int g = t.node(a).parent;

  FTree new_tree = t;
  new_tree.PushUpTree(b);

  FRep out(std::move(new_tree));
  if (in.empty()) return out;
  out.MarkNonEmpty();

  // Rebuilds one occurrence of A's union without its B slot; the hoisted
  // B-union is taken from the first entry (all copies are equal because
  // neither B nor its subtree depends on A).
  auto rebuild_a = [&](uint32_t id, uint32_t* hoisted_b) {
    UnionRef un = in.u(id);
    FDB_CHECK(un.node() == a);
    *hoisted_b = CopyTree(in, un.Child(0, slot_b, ka), &out);
    UnionBuilder na = out.StartUnion(a);
    na.CopyValues(un);
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < ka; ++j) {
        if (j == slot_b) continue;
        na.AddChild(CopyTree(in, un.Child(e, j, ka), &out));
      }
    }
    return na.Finish();
  };

  if (g == -1) {
    // A is a root: the hoisted B becomes a new root right after A.
    for (size_t i = 0; i < in.roots().size(); ++i) {
      uint32_t r = in.roots()[i];
      if (in.u(r).node() == a) {
        uint32_t hb = kNoUnion;
        uint32_t na = rebuild_a(r, &hb);
        out.roots().push_back(na);
        out.roots().push_back(hb);
      } else {
        out.roots().push_back(CopyTree(in, r, &out));
      }
    }
    return out;
  }

  // Otherwise rebuild along the path to G; each G-entry gains a new last
  // slot holding the B-union extracted from that entry's A-union.
  std::vector<char> on_path = SubtreeContains(t, g);
  const size_t kg = t.node(g).children.size();
  const auto& g_children = t.node(g).children;
  const size_t slot_a = static_cast<size_t>(
      std::find(g_children.begin(), g_children.end(), a) - g_children.begin());

  auto rec = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    if (un.node() == g) {
      UnionBuilder ng = out.StartUnion(g);
      ng.CopyValues(un);
      for (size_t e = 0; e < un.size(); ++e) {
        uint32_t hb = kNoUnion;
        for (size_t j = 0; j < kg; ++j) {
          uint32_t c = un.Child(e, j, kg);
          if (j == slot_a) {
            ng.AddChild(rebuild_a(c, &hb));
          } else {
            ng.AddChild(CopyTree(in, c, &out));
          }
        }
        ng.AddChild(hb);  // new last slot for B
      }
      return ng.Finish();
    }
    if (!on_path[static_cast<size_t>(un.node())]) {
      return CopyTree(in, id, &out);
    }
    const size_t k = t.node(un.node()).children.size();
    UnionBuilder nu = out.StartUnion(un.node());
    nu.CopyValues(un);
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        nu.AddChild(self(self, un.Child(e, j, k)));
      }
    }
    return nu.Finish();
  };

  for (uint32_t r : in.roots()) out.roots().push_back(rec(rec, r));
  FDB_VALIDATE_REP(out);
  return out;
}

FRep Normalize(const FRep& in) {
  FRep cur = in;
  for (;;) {
    const FTree& t = cur.tree();
    int pick = -1;
    for (size_t i = 0; i < t.pool_size(); ++i) {
      int n = static_cast<int>(i);
      if (t.node(n).alive && t.CanPushUp(n)) {
        pick = n;
        break;
      }
    }
    if (pick == -1) {
      FDB_VALIDATE_REP(cur);
      return cur;
    }
    cur = PushUp(cur, t.node(pick).attrs.Min());
  }
}

FRep Swap(const FRep& in, AttrId a_attr, AttrId b_attr) {
  const FTree& t = in.tree();
  const int a = t.FindAttr(a_attr);
  const int b = t.FindAttr(b_attr);
  FDB_CHECK_MSG(a >= 0 && b >= 0, "swap attribute not in the f-tree");
  FDB_CHECK_MSG(t.node(b).parent == a,
                "swap requires the second node to be a child of the first");

  const auto& a_children = t.node(a).children;
  const size_t ka = a_children.size();
  const size_t slot_b = static_cast<size_t>(
      std::find(a_children.begin(), a_children.end(), b) - a_children.begin());
  // T_A: A's other children, in order.
  std::vector<size_t> ta_slots;
  for (size_t j = 0; j < ka; ++j) {
    if (j != slot_b) ta_slots.push_back(j);
  }
  // Partition B's children exactly as SwapTree does (on the old tree).
  const auto& b_children = t.node(b).children;
  const size_t kb = b_children.size();
  std::vector<size_t> tb_slots, tab_slots;
  for (size_t j = 0; j < kb; ++j) {
    if (t.DependentOnSubtree(a, b_children[j])) {
      tab_slots.push_back(j);
    } else {
      tb_slots.push_back(j);
    }
  }

  FTree new_tree = t;
  new_tree.SwapTree(a, b);

  FRep out(std::move(new_tree));
  if (in.empty()) return out;
  out.MarkNonEmpty();

  // Fig. 4: regroups one occurrence of A's union by B-values using a
  // min-priority queue of (b value, A-entry index, position).
  auto swap_union = [&](uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    FDB_CHECK(un.node() == a);
    using Key = std::tuple<Value, size_t, size_t>;
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>> pq;
    for (size_t e = 0; e < un.size(); ++e) {
      pq.push({in.u(un.Child(e, slot_b, ka)).value(0), e, 0});
    }
    UnionBuilder nb = out.StartUnion(b);
    while (!pq.empty()) {
      const Value bmin = std::get<0>(pq.top());
      UnionBuilder va = out.StartUnion(a);  // the union V_bmin of paired A's
      std::vector<uint32_t> fb;             // T_B children of bmin, once
      bool captured = false;
      while (!pq.empty() && std::get<0>(pq.top()) == bmin) {
        auto [bv, e, pos] = pq.top();
        pq.pop();
        UnionRef ub = in.u(un.Child(e, slot_b, ka));
        if (!captured) {
          for (size_t j : tb_slots) {
            fb.push_back(CopyTree(in, ub.Child(pos, j, kb), &out));
          }
          captured = true;
        }
        // New A entry: value a_e with children T_A then T_AB.
        va.AddValue(un.value(e));
        for (size_t j : ta_slots) {
          va.AddChild(CopyTree(in, un.Child(e, j, ka), &out));
        }
        for (size_t j : tab_slots) {
          va.AddChild(CopyTree(in, ub.Child(pos, j, kb), &out));
        }
        if (pos + 1 < ub.size()) {
          pq.push({ub.value(pos + 1), e, pos + 1});
        }
      }
      uint32_t va_id = va.Finish();
      nb.AddValue(bmin);
      for (uint32_t f : fb) nb.AddChild(f);
      nb.AddChild(va_id);  // A is B's last child
    }
    return nb.Finish();
  };

  std::vector<char> on_path = SubtreeContains(t, a);
  auto rec = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    if (un.node() == a) return swap_union(id);
    if (!on_path[static_cast<size_t>(un.node())]) {
      return CopyTree(in, id, &out);
    }
    const size_t k = t.node(un.node()).children.size();
    UnionBuilder nu = out.StartUnion(un.node());
    nu.CopyValues(un);
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        nu.AddChild(self(self, un.Child(e, j, k)));
      }
    }
    return nu.Finish();
  };

  for (uint32_t r : in.roots()) out.roots().push_back(rec(rec, r));
  FDB_VALIDATE_REP(out);
  return out;
}

}  // namespace fdb
