// SIMD-friendly scans over the columnar value arenas.
//
// PR-2 made every union's values a contiguous window of the FRep value
// arena; the operators that scan those windows (merge's sorted
// intersection, absorb's point lookup, selection's predicate filter) can
// therefore run branch-free loops the compiler autovectorises. This header
// collects those loops in one place so the operator code stays readable
// and the vectorisation strategy is swappable.
//
// Dispatch: on x86-64 GCC/Clang the hot loops are compiled twice via
// __attribute__((target_clones)) — a baseline and an AVX2 clone — and the
// dynamic linker's ifunc resolver picks the widest one the host supports.
// Elsewhere (other ISAs, sanitizer builds, non-ELF targets) the attribute
// expands to nothing and the plain autovectorised baseline is used. The
// definitions live in simd.cc so each clone set is emitted exactly once.
#ifndef FDB_CORE_SIMD_H_
#define FDB_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "storage/query.h"

namespace fdb {

// Ifunc-based multi-versioning needs an ELF target with GNU ifunc support
// and interferes with sanitizer interceptors, so it is gated tightly.
#if defined(__x86_64__) && defined(__linux__) &&                     \
    (defined(__GNUC__) || defined(__clang__)) &&                     \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__clang__) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FDB_SIMD_CLONES
#endif
#endif
#ifndef FDB_SIMD_CLONES
#define FDB_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#else
#define FDB_SIMD_CLONES
#endif

namespace simd {

/// Writes `out[i] = (vals[i] op c)` for i in [0, n). One branch on `op`
/// outside the loop; the per-element compares are branch-free byte writes,
/// which GCC/Clang vectorise. `out` must hold n bytes.
void CmpMask(const Value* vals, size_t n, CmpOp op, Value c, uint8_t* out);

/// Index of the first element of the sorted window `v[0, n)` that is
/// >= `key` (n when none is). Branchless binary search: the probe offset
/// is added conditionally (cmov), no taken-branch misprediction per level.
size_t LowerBound(const Value* v, size_t n, Value key);

/// Index of `key` in the sorted window `v[0, n)`, or n when absent.
size_t FindValue(const Value* v, size_t n, Value key);

/// Appends to `out` every (i, j) with a[i] == b[j], in ascending order.
/// Both windows must be strictly increasing (the union value invariant),
/// so every match is unique. Balanced inputs run a branch-free two-pointer
/// merge (both cursors advance by comparison results, no mispredicted
/// pick-a-side branch); when one side is ≥ kGallopRatio times the other,
/// the scan gallops through the large side with LowerBound instead.
/// Returns the number of matches appended.
size_t IntersectSorted(const Value* a, size_t na, const Value* b, size_t nb,
                       std::vector<std::pair<uint32_t, uint32_t>>* out);

/// Size ratio beyond which IntersectSorted switches from the linear
/// two-pointer merge to galloping lookups into the larger side.
inline constexpr size_t kGallopRatio = 32;

}  // namespace simd
}  // namespace fdb

#endif  // FDB_CORE_SIMD_H_
