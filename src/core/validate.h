// Deep structural validation of the core data structures.
//
// FRep::Validate() (core/frep.h) is the *shallow* checker every operator
// already maintains: it walks reachable unions through UnionRef and checks
// the representation invariants assuming the arena geometry itself is sane.
// The validators here assume nothing: they bounds-check every header window
// against the arenas *before* dereferencing a single value, detect cyclic
// child references (which would send the CountTuples DP and the enumerators
// into unbounded recursion long before any shallow check fires), and extend
// the checks to the derived structures built on top of f-representations —
// grouped aggregates (GroupedRep) and morsel plans (MorselPlan).
//
// All validators throw FdbError with a diagnostic naming the offending
// object (union id, morsel index, spec index) and the violated invariant,
// so a corrupted intermediate is rejected at the operator boundary that
// produced it, not at the distant consumer that tripped over it.
//
// Cost: ValidateDeep is O(|E|) per call — linear in the representation, but
// called at every operator boundary it roughly doubles operator time. It is
// therefore compiled in only when FDB_VALIDATE is defined (the `debug` and
// `asan` CMake presets turn it on); in release builds the FDB_VALIDATE_*
// macros below expand to nothing and the bench numbers are unaffected.
#ifndef FDB_CORE_VALIDATE_H_
#define FDB_CORE_VALIDATE_H_

#include "core/aggregate.h"
#include "core/frep.h"
#include "core/ftree.h"
#include "core/parallel_enumerate.h"

namespace fdb {

/// Deep f-representation check. Everything FRep::Validate() checks, plus:
/// arena-bounds safety of every reachable header window (checked before any
/// dereference), no cyclic child references, no overlap between the value
/// windows of distinct unions, no open builders, constant-node unions of
/// length 1, and empty-representation geometry (no unions, empty arenas).
/// Throws FdbError naming the offending union and invariant.
void ValidateDeep(const FRep& rep);

/// Deep f-tree check. Everything FTree::Validate() checks, plus: visible
/// attributes are a subset of each node's class, dependency relations
/// include the covering relations, child lists contain no duplicates, the
/// parent graph is acyclic, and every alive node is reachable from a root.
void ValidateFTree(const FTree& t);

/// Grouped-aggregate check: the group representation passes ValidateDeep,
/// every per-spec array has one slot per spec, the per-entry payload
/// arrays cover the value arena exactly (one payload per committed entry),
/// entry and global counts are positive, and spec placement (spec_where /
/// spec_node) refers to alive grouping nodes that own the spec attribute.
void ValidateGroupedRep(const GroupedRep& g);

/// Morsel-plan check against the representation it was planned for: the
/// bound chains resolve (every bound but the last pins one entry, ranges
/// lie inside their resolved unions), the morsels tile the enumeration
/// stream — lexicographically ordered, disjoint and covering, first morsel
/// starts at the stream start, last ends at the stream end — and the
/// per-morsel estimates are consistent with FRep::SubtreeTupleCounts.
/// `visible_only` must match the PlanMorsels call that produced the plan.
void ValidateMorselPlan(const FRep& rep, bool visible_only,
                        const MorselPlan& plan);

}  // namespace fdb

// Operator-boundary hooks: active only under FDB_VALIDATE (Debug/ASan
// presets), so release builds pay nothing — not even an argument
// evaluation.
#ifdef FDB_VALIDATE
#define FDB_VALIDATE_REP(rep) ::fdb::ValidateDeep(rep)
#define FDB_VALIDATE_TREE(t) ::fdb::ValidateFTree(t)
#define FDB_VALIDATE_GROUPED(g) ::fdb::ValidateGroupedRep(g)
#define FDB_VALIDATE_MORSELS(rep, visible_only, plan) \
  ::fdb::ValidateMorselPlan((rep), (visible_only), (plan))
#else
#define FDB_VALIDATE_REP(rep) ((void)0)
#define FDB_VALIDATE_TREE(t) ((void)0)
#define FDB_VALIDATE_GROUPED(g) ((void)0)
#define FDB_VALIDATE_MORSELS(rep, visible_only, plan) ((void)0)
#endif

#endif  // FDB_CORE_VALIDATE_H_
