// Rendering f-representations in the paper's notation,
// e.g.  <Istanbul> x (<Adnan> u <Yasemin>)  (Example 1).
#ifndef FDB_CORE_PRINT_H_
#define FDB_CORE_PRINT_H_

#include <string>

#include "common/dictionary.h"
#include "core/frep.h"
#include "storage/catalog.h"

namespace fdb {

/// Rendering options.
struct PrintOptions {
  bool unicode = true;        ///< ⟨v⟩ ∪ × vs. <v> u x
  bool attr_names = false;    ///< ⟨item:Milk⟩ instead of ⟨Milk⟩
  const Catalog* catalog = nullptr;      ///< for attribute names / types
  const Dictionary* dict = nullptr;      ///< for decoding string values
  size_t max_chars = 0;       ///< truncate output (0 = unlimited)
};

/// Renders the f-representation as a factorised algebraic expression.
std::string ToExpressionString(const FRep& rep, const PrintOptions& opts = {});

}  // namespace fdb

#endif  // FDB_CORE_PRINT_H_
