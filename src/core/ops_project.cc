#include <algorithm>

#include "core/ops.h"
#include "core/ops_common.h"
#include "core/validate.h"

namespace fdb {

using ops_internal::CopyTree;
using ops_internal::SubtreeContains;

namespace {

// Removes a fully projected *leaf* node: its unions disappear and the
// parent's dependency set inherits the leaf's (§3.4). Dropping a leaf union
// never empties anything and never duplicates tuples — which is exactly why
// projection sinks marked nodes to the leaves first.
FRep RemoveInvisibleLeaf(const FRep& in, int n) {
  const FTree& t = in.tree();
  const int p = t.node(n).parent;

  FTree new_tree = t;
  new_tree.RemoveLeaf(n);

  FRep out(std::move(new_tree));
  if (in.empty()) return out;
  out.MarkNonEmpty();

  if (p == -1) {
    for (uint32_t r : in.roots()) {
      if (in.u(r).node() == n) continue;
      out.roots().push_back(CopyTree(in, r, &out));
    }
    return out;
  }

  std::vector<char> on_path = SubtreeContains(t, p);
  const auto& p_children = t.node(p).children;
  const size_t slot_n = static_cast<size_t>(
      std::find(p_children.begin(), p_children.end(), n) - p_children.begin());

  auto rec = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    if (!on_path[static_cast<size_t>(un.node())]) {
      return CopyTree(in, id, &out);
    }
    const size_t k = t.node(un.node()).children.size();
    UnionBuilder nu = out.StartUnion(un.node());
    nu.CopyValues(un);
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        if (un.node() == p && j == slot_n) continue;  // dropped slot
        nu.AddChild(self(self, un.Child(e, j, k)));
      }
    }
    return nu.Finish();
  };
  for (uint32_t r : in.roots()) out.roots().push_back(rec(rec, r));
  FDB_VALIDATE_REP(out);
  return out;
}

}  // namespace

// pi_keep (§3.4): mark attributes, sink fully marked nodes to the leaves by
// swapping them with a child, remove them there, then normalise.
FRep Project(const FRep& in, AttrSet keep) {
  FRep cur = in;
  for (size_t i = 0; i < cur.tree().pool_size(); ++i) {
    FTreeNode& nd = cur.tree().node(static_cast<int>(i));
    if (nd.alive) nd.visible = nd.visible.Intersect(keep);
  }

  for (;;) {
    // Deepest fully-invisible node first (fewer swaps to reach a leaf).
    int pick = -1, pick_depth = -1;
    for (int n : cur.tree().AliveNodes()) {
      if (!cur.tree().node(n).visible.Empty()) continue;
      int d = cur.tree().Depth(n);
      if (d > pick_depth) {
        pick = n;
        pick_depth = d;
      }
    }
    if (pick == -1) break;
    const FTreeNode& nd = cur.tree().node(pick);
    if (nd.children.empty()) {
      cur = RemoveInvisibleLeaf(cur, pick);
    } else {
      // chi_{pick, first child}: the child takes pick's place; pick sinks.
      AttrId pa = nd.attrs.Min();
      AttrId ca = cur.tree().node(nd.children.front()).attrs.Min();
      cur = Swap(cur, pa, ca);
    }
  }
  return Normalize(cur);
}

}  // namespace fdb
