// Internal helpers shared by the operator implementations.
#ifndef FDB_CORE_OPS_COMMON_H_
#define FDB_CORE_OPS_COMMON_H_

#include <cstdint>
#include <vector>

#include "core/frep.h"

namespace fdb {
namespace ops_internal {

/// Sentinel for "this union became empty".
inline constexpr uint32_t kNoUnion = 0xFFFFFFFFu;

/// Deep-copies the union `id` of `src` (with everything below) into `dst`
/// without memoisation: operators always produce tree-shaped
/// representations (every union has exactly one parent reference), so plain
/// duplication is exact there.
uint32_t CopyTree(const FRep& src, uint32_t id, FRep* dst);

/// Deep-copies the union `id` of `src` (with everything below) into `dst`.
/// `memo` must have src.NumUnions() entries initialised to kNoUnion; shared
/// subtrees stay shared.
uint32_t CopySubtree(const FRep& src, uint32_t id, FRep* dst,
                     std::vector<uint32_t>* memo);

/// True for every tree node whose subtree contains `target` (including
/// target itself). Indexed by tree node id.
std::vector<char> SubtreeContains(const FTree& tree, int target);

}  // namespace ops_internal
}  // namespace fdb

#endif  // FDB_CORE_OPS_COMMON_H_
