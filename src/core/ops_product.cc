#include "core/ops.h"
#include "core/ops_common.h"
#include "core/validate.h"

namespace fdb {

namespace {

// Appends t2's nodes to t1 (ids shifted); returns the id offset.
int AppendForest(FTree* t1, const FTree& t2) {
  int offset = static_cast<int>(t1->pool_size());
  for (size_t i = 0; i < t2.pool_size(); ++i) {
    const FTreeNode& n = t2.node(static_cast<int>(i));
    int id = t1->NewNode(n.attrs, n.visible, n.cover_rels, n.dep_rels);
    FTreeNode& nn = t1->node(id);
    nn.constant = n.constant;
    nn.alive = n.alive;
    nn.parent = n.parent == -1 ? -1 : n.parent + offset;
    nn.children.reserve(n.children.size());
    for (int c : n.children) nn.children.push_back(c + offset);
  }
  for (int r : t2.roots()) t1->AttachRoot(r + offset);
  return offset;
}

}  // namespace

FRep Product(const FRep& e1, const FRep& e2) {
  const FTree& t1 = e1.tree();
  const FTree& t2 = e2.tree();
  FDB_CHECK_MSG(!t1.AllAttrs().Intersects(t2.AllAttrs()),
                "product inputs must have disjoint attributes");
  // Relation indices must be disjoint too: dependency sets would otherwise
  // incorrectly link the two forests.
  RelSet r1, r2;
  for (int n : t1.AliveNodes()) r1 = r1.Union(t1.node(n).dep_rels);
  for (int n : t2.AliveNodes()) r2 = r2.Union(t2.node(n).dep_rels);
  FDB_CHECK_MSG(!r1.Intersects(r2),
                "product inputs must use disjoint relation indices");

  FTree tree = t1;
  AppendForest(&tree, t2);
  FRep out(std::move(tree));
  if (e1.empty() || e2.empty()) return out;  // empty x E = empty

  out.MarkNonEmpty();
  // Copy e1's unions as-is, then e2's with shifted tree-node ids.
  std::vector<uint32_t> memo1(e1.NumUnions(), ops_internal::kNoUnion);
  for (uint32_t r : e1.roots()) {
    out.roots().push_back(ops_internal::CopySubtree(e1, r, &out, &memo1));
  }
  const int node_offset = static_cast<int>(t1.pool_size());
  // CopySubtree keeps node ids; rebuild e2's with the offset applied.
  std::vector<uint32_t> memo2(e2.NumUnions(), ops_internal::kNoUnion);
  struct Copier {
    const FRep& src;
    FRep& dst;
    int offset;
    std::vector<uint32_t>& memo;
    uint32_t Run(uint32_t id) {
      if (memo[id] != ops_internal::kNoUnion) return memo[id];
      UnionRef un = src.u(id);
      UnionBuilder b = dst.StartUnion(un.node() + offset);
      b.CopyValues(un);
      for (size_t i = 0; i < un.num_children(); ++i) {
        b.AddChild(Run(un.child(i)));
      }
      return memo[id] = b.Finish();
    }
  } copier{e2, out, node_offset, memo2};
  for (uint32_t r : e2.roots()) out.roots().push_back(copier.Run(r));
  FDB_VALIDATE_REP(out);
  return out;
}

namespace ops_internal {

uint32_t CopyTree(const FRep& src, uint32_t id, FRep* dst) {
  UnionRef un = src.u(id);
  UnionBuilder b = dst->StartUnion(un.node());
  b.CopyValues(un);
  for (size_t i = 0; i < un.num_children(); ++i) {
    b.AddChild(CopyTree(src, un.child(i), dst));
  }
  return b.Finish();
}

uint32_t CopySubtree(const FRep& src, uint32_t id, FRep* dst,
                     std::vector<uint32_t>* memo) {
  if ((*memo)[id] != kNoUnion) return (*memo)[id];
  UnionRef un = src.u(id);
  UnionBuilder b = dst->StartUnion(un.node());
  b.CopyValues(un);
  for (size_t i = 0; i < un.num_children(); ++i) {
    b.AddChild(CopySubtree(src, un.child(i), dst, memo));
  }
  return (*memo)[id] = b.Finish();
}

std::vector<char> SubtreeContains(const FTree& tree, int target) {
  std::vector<char> out(tree.pool_size(), 0);
  out[static_cast<size_t>(target)] = 1;
  // Mark ancestors of target: a subtree contains target iff its root is an
  // ancestor of target (or target itself).
  for (int x = tree.node(target).parent; x != -1; x = tree.node(x).parent) {
    out[static_cast<size_t>(x)] = 1;
  }
  return out;
}

}  // namespace ops_internal

}  // namespace fdb
