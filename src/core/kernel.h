// Per-plan compiled enumeration kernels.
//
// The interpreted TupleEnumerator re-reads the f-tree shape on every frame
// advance: union headers are resolved per step, child-slot arithmetic uses
// the tree's child lists, and extracting a tuple re-indexes the sparse
// current_[] array once per attribute. The serve path pays that cost
// millions of times per second against a *fixed* shape — the PlanCache pins
// (query, f-tree) pairs, so the shape is known the first time a plan
// executes.
//
// EnumKernel specialises the enumeration loop for one shape. Compile()
// lowers the pre-order frame list (BuildPreOrderFrames) into a flat Step
// program: per frame the parent frame index, the child slot and stride, and
// the output columns its value feeds, resolved once. Running the program
// walks raw arena windows (UnionRef::values()/children() pointers — stable
// while the representation is frozen, which enumeration guarantees) with a
// fixed-size frame stack, and fuses visible-attribute extraction into row
// emission: each advance writes only the columns that changed and appends
// the assembled row directly, so MaterializeVisible never re-reads the
// enumerator per attribute.
//
// Morsel bounds (EntryBound, same contract as the TupleEnumerator bounds
// constructor: a pinned chain plus one ranged frame) restrict the run, so
// ParallelEnumerator executes one kernel run per morsel.
//
// Fallback rules: a kernel is only valid for representations whose f-tree
// matches the compiled shape — callers check Matches() (cheap: one frame
// rebuild + signature compare) and fall back to the interpreted enumerator
// otherwise. Uncached/ad-hoc queries never compile; the serve path compiles
// once per plan-cache miss and reuses the kernel warm (serve/plan_cache.h).
#ifndef FDB_CORE_KERNEL_H_
#define FDB_CORE_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/trace.h"
#include "core/enumerate.h"
#include "core/frep.h"

namespace fdb {

/// A shape-specialised enumeration program. Immutable after Compile();
/// safe to share between threads (runs carry all mutable state on the
/// stack), which is how ParallelEnumerator executes it per morsel.
class EnumKernel {
 public:
  /// Lowers the (optionally visible-restricted) pre-order frame program of
  /// `tree` into a kernel. `visible_only` matches the TupleEnumerator mode:
  /// subtrees without visible attributes are skipped and the output schema
  /// is the visible attributes in increasing id order; otherwise every
  /// alive node gets a frame and the schema is all attributes. A non-null
  /// `trace` records a "kernel-compile" span.
  static EnumKernel Compile(const FTree& tree, bool visible_only,
                            QueryTrace* trace = nullptr);

  bool visible_only() const { return visible_only_; }

  /// Output schema: one column per attribute, increasing id order.
  const std::vector<AttrId>& schema() const { return schema_; }

  /// True iff `tree` lowers to the same step program — the kernel then
  /// enumerates any representation over `tree` correctly. Callers must
  /// check this before running a kernel against a representation it was
  /// not compiled from (plan-cache entries outlive result trees).
  bool Matches(const FTree& tree) const;

  /// Runs the program restricted to `bounds` (same contract as the
  /// TupleEnumerator bounds constructor; empty = the whole stream) and
  /// appends each tuple's values to `out` in schema() order, rows
  /// concatenated flat (Relation::AppendRows format). Returns the number
  /// of rows emitted. The nullary stream appends nothing and returns 1.
  /// `rep.tree()` must satisfy Matches().
  uint64_t Emit(const FRep& rep, std::span<const EntryBound> bounds,
                std::vector<Value>* out) const;

  /// Row count of the restricted stream without materialising it; the
  /// innermost frame is counted by run length, not walked.
  uint64_t CountRows(const FRep& rep,
                     std::span<const EntryBound> bounds) const;

 private:
  /// One lowered pre-order frame. `out_cols_[out_begin, out_end)` are the
  /// output columns fed by this frame's value (every schema attribute of
  /// the frame's class).
  struct Step {
    int32_t node = -1;      ///< f-tree node (diagnostics only at run time)
    int32_t parent = -1;    ///< parent step index; -1 for roots
    uint32_t slot = 0;      ///< child slot under the parent / root slot
    uint32_t nslots = 0;    ///< parent's child count (child-array stride)
    uint32_t out_begin = 0;
    uint32_t out_end = 0;
  };

  template <bool kEmit>
  uint64_t Run(const FRep& rep, std::span<const EntryBound> bounds,
               std::vector<Value>* out) const;

  std::vector<Step> steps_;        ///< pre-order, one per kept frame
  std::vector<uint32_t> out_cols_; ///< flat per-step column lists
  std::vector<AttrId> schema_;     ///< output attributes, ascending
  std::vector<uint64_t> signature_;  ///< shape key compared by Matches()
  bool visible_only_ = false;
};

}  // namespace fdb

#endif  // FDB_CORE_KERNEL_H_
