#include <cstdint>
#include <vector>

#include "core/ops.h"
#include "core/ops_common.h"
#include "core/simd.h"
#include "core/validate.h"

namespace fdb {

using ops_internal::CopySubtree;
using ops_internal::kNoUnion;
using ops_internal::SubtreeContains;

// sigma_{A theta c} (§3.3): one pass over the representation. Unions of A's
// node drop the entries failing the comparison; an emptied union removes the
// enclosing entry, cascading upwards. For theta = '=' the node afterwards
// holds the single value c everywhere, so it is flagged constant and the
// final normalisation floats it towards the root.
FRep SelectConst(const FRep& in, AttrId attr, CmpOp op, Value c) {
  const FTree& t = in.tree();
  int x = t.FindAttr(attr);
  FDB_CHECK_MSG(x >= 0, "selection attribute not in the f-tree");

  FTree new_tree = t;
  if (op == CmpOp::kEq) new_tree.node(x).constant = true;

  FRep out(new_tree);
  if (in.empty()) {
    if (op == CmpOp::kEq) return Normalize(out);
    return out;
  }

  std::vector<char> on_path = SubtreeContains(t, x);
  std::vector<uint32_t> memo(in.NumUnions(), kNoUnion);

  // Predicate mask scratch, reused across X-unions. Safe to share: only
  // unions of X's node use it, and X's descendants are off-path (their
  // subtrees cannot contain X again), so the recursion never reaches a
  // second X-union while one is being filtered.
  std::vector<uint8_t> mask;

  // Returns the rebuilt union or kNoUnion if it became empty.
  auto rec = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    if (!on_path[static_cast<size_t>(un.node())]) {
      return CopySubtree(in, id, &out, &memo);
    }
    const size_t k = t.node(un.node()).children.size();
    const bool is_x = un.node() == x;
    if (is_x) {
      // Batched predicate evaluation over the contiguous value window
      // (one vectorised pass) instead of per-entry EvalCmp dispatch.
      mask.resize(un.size());
      simd::CmpMask(un.values(), un.size(), op, c, mask.data());
    }
    UnionBuilder nu = out.StartUnion(un.node());
    std::vector<uint32_t> kept_children;
    for (size_t e = 0; e < un.size(); ++e) {
      if (is_x && mask[e] == 0) continue;
      kept_children.clear();
      bool dead = false;
      for (size_t j = 0; j < k; ++j) {
        uint32_t nc = self(self, un.Child(e, j, k));
        if (nc == kNoUnion) {
          dead = true;
          break;
        }
        kept_children.push_back(nc);
      }
      if (dead) continue;
      nu.AddValue(un.value(e));
      for (uint32_t nc : kept_children) nu.AddChild(nc);
    }
    if (nu.empty()) {
      nu.Abandon();
      return kNoUnion;
    }
    return nu.Finish();
  };

  out.MarkNonEmpty();
  for (uint32_t r : in.roots()) {
    uint32_t nr = rec(rec, r);
    if (nr == kNoUnion) {
      out.MarkEmpty();
      break;
    }
    out.roots().push_back(nr);
  }
  if (op == CmpOp::kEq) return Normalize(out);
  FDB_VALIDATE_REP(out);
  return out;
}

}  // namespace fdb
