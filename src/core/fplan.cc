#include "core/fplan.h"

#include <sstream>

namespace fdb {

namespace {

std::string AttrName(AttrId a, const Catalog* cat) {
  if (cat != nullptr && a < cat->num_attrs()) return cat->attr(a).name;
  return "a" + std::to_string(a);
}

// Tree-level projection, mirroring ops_project.cc step for step.
void SimulateProjectOnTree(FTree* t, AttrSet keep) {
  for (size_t i = 0; i < t->pool_size(); ++i) {
    FTreeNode& nd = t->node(static_cast<int>(i));
    if (nd.alive) nd.visible = nd.visible.Intersect(keep);
  }
  for (;;) {
    int pick = -1, pick_depth = -1;
    for (int n : t->AliveNodes()) {
      if (!t->node(n).visible.Empty()) continue;
      int d = t->Depth(n);
      if (d > pick_depth) {
        pick = n;
        pick_depth = d;
      }
    }
    if (pick == -1) break;
    if (t->node(pick).children.empty()) {
      t->RemoveLeaf(pick);
    } else {
      t->SwapTree(pick, t->node(pick).children.front());
    }
  }
  t->NormalizeTree();
}

}  // namespace

std::string PlanStep::ToString(const Catalog* cat) const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kSwap:
      os << "swap(" << AttrName(a, cat) << "," << AttrName(b, cat) << ")";
      break;
    case Kind::kPushUp:
      os << "pushup(" << AttrName(b, cat) << ")";
      break;
    case Kind::kMerge:
      os << "merge(" << AttrName(a, cat) << "=" << AttrName(b, cat) << ")";
      break;
    case Kind::kAbsorb:
      os << "absorb(" << AttrName(a, cat) << "=" << AttrName(b, cat) << ")";
      break;
    case Kind::kNormalize:
      os << "normalize";
      break;
    case Kind::kSelectConst:
      os << "select(" << AttrName(a, cat) << CmpOpName(op) << value << ")";
      break;
    case Kind::kProject:
      os << "project(" << keep.ToString() << ")";
      break;
  }
  return os.str();
}

std::string FPlan::ToString(const Catalog* cat) const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i) os << " ; ";
    os << steps[i].ToString(cat);
  }
  return os.str();
}

FRep ExecuteStep(const FRep& in, const PlanStep& step) {
  switch (step.kind) {
    case PlanStep::Kind::kSwap:
      return Swap(in, step.a, step.b);
    case PlanStep::Kind::kPushUp:
      return PushUp(in, step.b);
    case PlanStep::Kind::kMerge:
      return Merge(in, step.a, step.b);
    case PlanStep::Kind::kAbsorb:
      return Absorb(in, step.a, step.b);
    case PlanStep::Kind::kNormalize:
      return Normalize(in);
    case PlanStep::Kind::kSelectConst:
      return SelectConst(in, step.a, step.op, step.value);
    case PlanStep::Kind::kProject:
      return Project(in, step.keep);
  }
  throw FdbError("unknown plan step");
}

FRep ExecutePlan(const FRep& in, const FPlan& plan) {
  FRep cur = in;
  for (const PlanStep& s : plan.steps) cur = ExecuteStep(cur, s);
  return cur;
}

FTree SimulateStepOnTree(const FTree& t, const PlanStep& step) {
  FTree out = t;
  switch (step.kind) {
    case PlanStep::Kind::kSwap: {
      int a = out.FindAttr(step.a), b = out.FindAttr(step.b);
      FDB_CHECK(a >= 0 && b >= 0);
      out.SwapTree(a, b);
      return out;
    }
    case PlanStep::Kind::kPushUp: {
      int b = out.FindAttr(step.b);
      FDB_CHECK(b >= 0);
      out.PushUpTree(b);
      return out;
    }
    case PlanStep::Kind::kMerge: {
      int a = out.FindAttr(step.a), b = out.FindAttr(step.b);
      FDB_CHECK(a >= 0 && b >= 0);
      if (a != b) out.MergeTree(a, b);
      return out;
    }
    case PlanStep::Kind::kAbsorb: {
      int a = out.FindAttr(step.a), b = out.FindAttr(step.b);
      FDB_CHECK(a >= 0 && b >= 0);
      if (a == b) return out;
      if (out.IsAncestor(b, a)) std::swap(a, b);
      out.FuseTree(a, b);
      out.NormalizeTree();
      return out;
    }
    case PlanStep::Kind::kNormalize:
      out.NormalizeTree();
      return out;
    case PlanStep::Kind::kSelectConst: {
      int a = out.FindAttr(step.a);
      FDB_CHECK(a >= 0);
      if (step.op == CmpOp::kEq) {
        out.node(a).constant = true;
        out.NormalizeTree();
      }
      return out;
    }
    case PlanStep::Kind::kProject:
      SimulateProjectOnTree(&out, step.keep);
      return out;
  }
  throw FdbError("unknown plan step");
}

}  // namespace fdb
