#include <algorithm>
#include <utility>
#include <vector>

#include "core/ops.h"
#include "core/ops_common.h"
#include "core/simd.h"
#include "core/validate.h"

namespace fdb {

using ops_internal::CopyTree;
using ops_internal::kNoUnion;
using ops_internal::SubtreeContains;

// mu_{A,B} (§3.3, Fig. 3(c)): sort-merge join of two sibling unions. The
// merged node keeps A's id; its child slots are A's followed by B's.
FRep Merge(const FRep& in, AttrId a_attr, AttrId b_attr) {
  const FTree& t = in.tree();
  const int a = t.FindAttr(a_attr);
  const int b = t.FindAttr(b_attr);
  FDB_CHECK_MSG(a >= 0 && b >= 0, "merge attribute not in the f-tree");
  if (a == b) return in;  // the condition already holds (same class)
  FDB_CHECK_MSG(t.node(a).parent == t.node(b).parent,
                "merge requires sibling nodes (or two roots)");

  const int p = t.node(a).parent;
  const size_t ka = t.node(a).children.size();
  const size_t kb = t.node(b).children.size();

  FTree new_tree = t;
  new_tree.MergeTree(a, b);

  FRep out(std::move(new_tree));
  if (in.empty()) return out;

  // Sort-merge two unions; kNoUnion when the intersection is empty. The
  // value intersection runs first over the two contiguous arena windows
  // (branch-free / galloping, core/simd.h) — the child-copying pass then
  // only touches matching entries.
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  auto merge_unions = [&](uint32_t ida, uint32_t idb) -> uint32_t {
    UnionRef ua = in.u(ida);
    UnionRef ub = in.u(idb);
    matches.clear();
    simd::IntersectSorted(ua.values(), ua.size(), ub.values(), ub.size(),
                          &matches);
    if (matches.empty()) return kNoUnion;
    UnionBuilder m = out.StartUnion(a);
    for (const auto& [i, j] : matches) {
      m.AddValue(ua.value(i));
      for (size_t s = 0; s < ka; ++s) {
        m.AddChild(CopyTree(in, ua.Child(i, s, ka), &out));
      }
      for (size_t s = 0; s < kb; ++s) {
        m.AddChild(CopyTree(in, ub.Child(j, s, kb), &out));
      }
    }
    return m.Finish();
  };

  out.MarkNonEmpty();
  if (p == -1) {
    // Two root unions join at the top level.
    uint32_t ida = kNoUnion, idb = kNoUnion;
    for (size_t i = 0; i < in.roots().size(); ++i) {
      int n = in.u(in.roots()[i]).node();
      if (n == a) ida = in.roots()[i];
      if (n == b) idb = in.roots()[i];
    }
    FDB_CHECK(ida != kNoUnion && idb != kNoUnion);
    uint32_t merged = merge_unions(ida, idb);
    if (merged == kNoUnion) {
      out.MarkEmpty();
      return out;
    }
    for (uint32_t r : in.roots()) {
      int n = in.u(r).node();
      if (n == a) {
        out.roots().push_back(merged);
      } else if (n == b) {
        continue;  // removed root
      } else {
        out.roots().push_back(CopyTree(in, r, &out));
      }
    }
    return out;
  }

  // Interior case: rebuild along the path to P; P-entries whose sibling
  // unions have an empty intersection are dropped, cascading upwards.
  std::vector<char> on_path = SubtreeContains(t, p);
  const size_t kp = t.node(p).children.size();
  const auto& p_children = t.node(p).children;
  const size_t slot_a = static_cast<size_t>(
      std::find(p_children.begin(), p_children.end(), a) - p_children.begin());
  const size_t slot_b = static_cast<size_t>(
      std::find(p_children.begin(), p_children.end(), b) - p_children.begin());

  auto rec = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = in.u(id);
    if (!on_path[static_cast<size_t>(un.node())]) {
      return CopyTree(in, id, &out);
    }
    const size_t k = t.node(un.node()).children.size();
    UnionBuilder nu = out.StartUnion(un.node());
    std::vector<uint32_t> kept;
    for (size_t e = 0; e < un.size(); ++e) {
      kept.clear();
      bool dead = false;
      if (un.node() == p) {
        uint32_t merged =
            merge_unions(un.Child(e, slot_a, kp), un.Child(e, slot_b, kp));
        if (merged == kNoUnion) continue;
        // New slot layout: old slots with B removed; merged union replaces A.
        for (size_t j = 0; j < kp; ++j) {
          if (j == slot_b) continue;
          if (j == slot_a) {
            kept.push_back(merged);
          } else {
            kept.push_back(CopyTree(in, un.Child(e, j, kp), &out));
          }
        }
      } else {
        for (size_t j = 0; j < k; ++j) {
          uint32_t nc = self(self, un.Child(e, j, k));
          if (nc == kNoUnion) {
            dead = true;
            break;
          }
          kept.push_back(nc);
        }
        if (dead) continue;
      }
      nu.AddValue(un.value(e));
      for (uint32_t c : kept) nu.AddChild(c);
    }
    if (nu.empty()) {
      nu.Abandon();
      return kNoUnion;
    }
    return nu.Finish();
  };

  for (uint32_t r : in.roots()) {
    uint32_t nr = rec(rec, r);
    if (nr == kNoUnion) {
      out.MarkEmpty();
      return out;
    }
    out.roots().push_back(nr);
  }
  FDB_VALIDATE_REP(out);
  return out;
}

// alpha_{A,B} (§3.3, Fig. 3(d)): restrict each B-union to the value of its
// A-ancestor, splice the now-degenerate B node out, then normalise.
FRep Absorb(const FRep& in, AttrId a_attr, AttrId b_attr) {
  const FTree& t = in.tree();
  int a = t.FindAttr(a_attr);
  int b = t.FindAttr(b_attr);
  FDB_CHECK_MSG(a >= 0 && b >= 0, "absorb attribute not in the f-tree");
  if (a == b) return in;  // same class: condition already holds
  if (t.IsAncestor(b, a)) std::swap(a, b);  // orient: a above b
  FDB_CHECK_MSG(t.IsAncestor(a, b),
                "absorb requires ancestor/descendant classes");

  // ---- Phase 1: restrict (tree unchanged). ----
  FRep mid(t);
  std::vector<char> on_path = SubtreeContains(t, b);
  if (!in.empty()) {
    mid.MarkNonEmpty();
    auto rec = [&](auto&& self, uint32_t id, Value a_val,
                   bool have_a) -> uint32_t {
      UnionRef un = in.u(id);
      if (!on_path[static_cast<size_t>(un.node())]) {
        return CopyTree(in, id, &mid);
      }
      const size_t k = t.node(un.node()).children.size();
      if (un.node() == b) {
        FDB_CHECK_MSG(have_a, "B-union outside the scope of its A-ancestor");
        // Branchless point lookup in the contiguous value window.
        const size_t e = simd::FindValue(un.values(), un.size(), a_val);
        if (e == un.size()) return kNoUnion;
        UnionBuilder nu = mid.StartUnion(b);
        nu.AddValue(a_val);
        for (size_t j = 0; j < k; ++j) {
          nu.AddChild(CopyTree(in, un.Child(e, j, k), &mid));
        }
        return nu.Finish();
      }
      UnionBuilder nu = mid.StartUnion(un.node());
      std::vector<uint32_t> kept;
      for (size_t e = 0; e < un.size(); ++e) {
        Value av = un.node() == a ? un.value(e) : a_val;
        bool ha = have_a || un.node() == a;
        kept.clear();
        bool dead = false;
        for (size_t j = 0; j < k; ++j) {
          uint32_t c = un.Child(e, j, k);
          uint32_t nc = on_path[static_cast<size_t>(in.u(c).node())]
                            ? self(self, c, av, ha)
                            : CopyTree(in, c, &mid);
          if (nc == kNoUnion) {
            dead = true;
            break;
          }
          kept.push_back(nc);
        }
        if (dead) continue;
        nu.AddValue(un.value(e));
        for (uint32_t c : kept) nu.AddChild(c);
      }
      if (nu.empty()) {
        nu.Abandon();
        return kNoUnion;
      }
      return nu.Finish();
    };
    for (uint32_t r : in.roots()) {
      uint32_t nr = rec(rec, r, 0, false);
      if (nr == kNoUnion) {
        mid.MarkEmpty();
        break;
      }
      mid.roots().push_back(nr);
    }
  }

  // ---- Phase 2: fuse B into A; B's children take B's slot under its
  // parent. Every surviving B-union has exactly one entry. ----
  const int p = t.node(b).parent;
  const size_t kb = t.node(b).children.size();
  const auto& p_children = t.node(p).children;
  const size_t slot_b = static_cast<size_t>(
      std::find(p_children.begin(), p_children.end(), b) - p_children.begin());

  FTree fused_tree = t;
  fused_tree.FuseTree(a, b);
  FRep out(std::move(fused_tree));
  if (mid.empty()) return Normalize(out);
  out.MarkNonEmpty();

  std::vector<char> to_p = SubtreeContains(t, p);
  auto rec2 = [&](auto&& self, uint32_t id) -> uint32_t {
    UnionRef un = mid.u(id);
    if (!to_p[static_cast<size_t>(un.node())]) {
      return CopyTree(mid, id, &out);
    }
    const size_t k = t.node(un.node()).children.size();
    UnionBuilder nu = out.StartUnion(un.node());
    nu.CopyValues(un);
    for (size_t e = 0; e < un.size(); ++e) {
      for (size_t j = 0; j < k; ++j) {
        uint32_t c = un.Child(e, j, k);
        if (un.node() == p && j == slot_b) {
          // Splice the single B entry's children into this slot.
          UnionRef ub = mid.u(c);
          FDB_CHECK(ub.size() == 1);
          for (size_t s = 0; s < kb; ++s) {
            nu.AddChild(CopyTree(mid, ub.Child(0, s, kb), &out));
          }
        } else {
          nu.AddChild(self(self, c));
        }
      }
    }
    return nu.Finish();
  };
  for (uint32_t r : mid.roots()) out.roots().push_back(rec2(rec2, r));

  // ---- Phase 3: normalise (push up what the fuse made independent). ----
  return Normalize(out);
}

}  // namespace fdb
