// Factorised representations (f-representations, §2 Def. 1–2).
//
// An f-representation over an f-tree T is stored as a pool of union nodes.
// One UnionNode materialises one occurrence of an f-tree node: the sorted
// distinct values of the grouping class in that context, and for every value
// one child union per child of the f-tree node (row-major in `children`).
//
// Invariants (checked by Validate(), preserved by every operator):
//   * values within a union are strictly increasing (the paper's order
//     constraint, required by the swap/merge algorithms);
//   * no union stored in a non-empty representation is empty — emptiness
//     propagates to the whole representation (`empty()`);
//   * the child count of every entry equals the f-tree node's child count,
//     and child unions belong to the corresponding child f-tree nodes.
//
// The empty relation over any tree is representable (empty() == true); the
// nullary relation <> is the non-empty representation over the empty forest.
#ifndef FDB_CORE_FREP_H_
#define FDB_CORE_FREP_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/ftree.h"

namespace fdb {

/// One occurrence of an f-tree node: a union of values with child unions.
struct UnionNode {
  int node = -1;                    ///< owning f-tree node id
  std::vector<Value> values;        ///< strictly increasing
  std::vector<uint32_t> children;   ///< values.size() * (#tree children)

  size_t size() const { return values.size(); }
  uint32_t Child(size_t entry, size_t slot, size_t nslots) const {
    return children[entry * nslots + slot];
  }
};

/// A factorised representation bound to an f-tree.
class FRep {
 public:
  /// The empty relation over `tree`.
  explicit FRep(FTree tree) : tree_(std::move(tree)) {}

  const FTree& tree() const { return tree_; }
  FTree& tree() { return tree_; }

  /// True for the empty relation (no tuples).
  bool empty() const { return empty_; }
  void MarkNonEmpty() { empty_ = false; }
  void MarkEmpty() {
    empty_ = true;
    roots_.clear();
    pool_.clear();
  }

  uint32_t NewUnion(int node) {
    UnionNode u;
    u.node = node;
    pool_.push_back(std::move(u));
    return static_cast<uint32_t>(pool_.size()) - 1;
  }

  UnionNode& u(uint32_t id) { return pool_[id]; }
  const UnionNode& u(uint32_t id) const { return pool_[id]; }

  /// Root unions, aligned with tree().roots() order.
  std::vector<uint32_t>& roots() { return roots_; }
  const std::vector<uint32_t>& roots() const { return roots_; }

  size_t NumUnions() const { return pool_.size(); }

  /// Number of singletons (the paper's |E|): every value of a union counts
  /// once per *visible* attribute of its class.
  size_t NumSingletons() const;

  /// Number of physically stored values (one per union entry).
  size_t NumValues() const;

  /// Number of represented tuples (over all attributes, visible or not),
  /// by dynamic programming over the pool. Exact up to 2^53.
  double CountTuples() const;

  /// Checks all representation invariants; throws FdbError on violation.
  void Validate() const;

 private:
  FTree tree_;
  std::vector<UnionNode> pool_;
  std::vector<uint32_t> roots_;
  bool empty_ = true;
};

}  // namespace fdb

#endif  // FDB_CORE_FREP_H_
