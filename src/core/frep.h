// Factorised representations (f-representations, §2 Def. 1–2).
//
// An f-representation over an f-tree T is stored *columnar*: instead of one
// heap-allocated node per union, FRep owns three contiguous arenas and every
// union is a (offset, length) window into them:
//
//   values_    [ v v v | v v | v v v v | ... ]   one Value per union entry
//   children_  [ c c c c c c | c c | ... ]       child union ids, row-major:
//                                                entry-major, slot-minor
//   headers_   [ {node, len, val_off, child_off, num_children} ... ]
//              one small header per union; the union id is its index here
//
// One UnionRef (a non-owning view: FRep pointer + union id) materialises one
// occurrence of an f-tree node: the sorted distinct values of the grouping
// class in that context, and for every value one child union per child of
// the f-tree node. Views stay valid across arena growth because they
// re-resolve offsets through the FRep on every access; raw `values()` /
// `children()` pointers are only valid until the next arena append.
//
// Construction goes through UnionBuilder (FRep::StartUnion): entries are
// staged in a small scratch buffer (recycled LIFO across unions, so steady-
// state construction performs no per-union allocation) and committed to the
// arena tail in one append on Finish(). Builders nest like the operator
// recursion that drives them: a child subtree is fully committed before its
// parent finishes, so each committed union occupies one contiguous window.
// Abandon() discards a union that turned out empty; its header stays as an
// unreachable zero-length stub, which walkers skip by reachability.
//
// Invariants (checked by Validate(), preserved by every operator):
//   * values within a union are strictly increasing (the paper's order
//     constraint, required by the swap/merge algorithms);
//   * no union stored in a non-empty representation is empty — emptiness
//     propagates to the whole representation (`empty()`);
//   * the child count of every entry equals the f-tree node's child count,
//     and child unions belong to the corresponding child f-tree nodes.
//
// The empty relation over any tree is representable (empty() == true); the
// nullary relation <> is the non-empty representation over the empty forest.
#ifndef FDB_CORE_FREP_H_
#define FDB_CORE_FREP_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/asan.h"
#include "common/exec_context.h"
#include "common/fault.h"
#include "common/types.h"
#include "core/ftree.h"

namespace fdb {

class FRep;

/// Per-union arena header: where this union's window lives.
struct UnionHeader {
  int32_t node = -1;         ///< owning f-tree node id
  uint32_t len = 0;          ///< number of entries (values)
  size_t val_off = 0;        ///< first value in the value arena
  size_t child_off = 0;      ///< first child id in the child arena
  size_t num_children = 0;   ///< committed child ids (len * #tree children)
};

/// Non-owning view of one union. Cheap to copy; stable across arena growth
/// (offsets are re-resolved through the FRep on every access).
class UnionRef {
 public:
  UnionRef() = default;

  int node() const;
  /// Number of entries (values) in the union.
  size_t size() const;
  bool empty() const { return size() == 0; }
  Value value(size_t entry) const;
  /// Contiguous value window, `size()` entries. Valid until the arena grows.
  const Value* values() const;

  size_t num_children() const;
  uint32_t child(size_t i) const;
  /// Contiguous child-id window, `num_children()` entries (entry-major,
  /// slot-minor). Valid until the arena grows.
  const uint32_t* children() const;
  /// Child union of `entry` in child slot `slot` of `nslots`.
  uint32_t Child(size_t entry, size_t slot, size_t nslots) const {
    return children()[entry * nslots + slot];
  }

  /// Offset of this union's window in the value arena: entry `e` has the
  /// rep-wide entry index arena_offset() + e. Stable once the union is
  /// committed (windows never move), which makes it usable as a key for
  /// per-entry side arrays (see GroupedRep in core/aggregate.h).
  size_t arena_offset() const;

  uint32_t id() const { return id_; }

 private:
  friend class FRep;
  UnionRef(const FRep* rep, uint32_t id) : rep_(rep), id_(id) {}

  const FRep* rep_ = nullptr;
  uint32_t id_ = 0;
};

/// Append-only staging handle for one union under construction. Move-only;
/// exactly one of Finish() / Abandon() ends the build (the destructor
/// abandons an open builder). Values and child ids may be appended in any
/// interleaving; Finish() commits both windows to the arena atomically.
class UnionBuilder {
 public:
  UnionBuilder(const UnionBuilder&) = delete;
  UnionBuilder& operator=(const UnionBuilder&) = delete;
  UnionBuilder(UnionBuilder&& other) noexcept;
  UnionBuilder& operator=(UnionBuilder&& other) noexcept;
  ~UnionBuilder();

  uint32_t id() const { return id_; }
  /// Entries staged so far.
  size_t size() const;
  bool empty() const { return size() == 0; }

  void AddValue(Value v);
  void AddChild(uint32_t child);
  void AddValues(const Value* v, size_t n);
  /// Bulk-appends every value of `u` (typically a union of another FRep).
  void CopyValues(const UnionRef& u);

  /// Commits the staged entries to the arena; returns the union id.
  uint32_t Finish();
  /// Discards the staged entries; the id remains an unreachable stub.
  void Abandon();

 private:
  friend class FRep;
  struct Scratch {
    std::vector<Value> vals;
    std::vector<uint32_t> kids;
  };
  UnionBuilder(FRep* rep, uint32_t id, Scratch* s)
      : rep_(rep), s_(s), id_(id) {}

  FRep* rep_ = nullptr;
  Scratch* s_ = nullptr;  ///< null once finished/abandoned/moved-from
  uint32_t id_ = 0;
};

/// A factorised representation bound to an f-tree.
class FRep {
 public:
  /// The empty relation over `tree`.
  explicit FRep(FTree tree) : tree_(std::move(tree)) {}

  // Copies duplicate the arenas (three buffer memcpys); builder scratch is
  // never copied and no builder may be open on the source.
  FRep(const FRep& o)
      : tree_(o.tree_),
        values_(o.values_),
        children_(o.children_),
        headers_(o.headers_),
        roots_(o.roots_),
        empty_(o.empty_) {
    FDB_CHECK_MSG(o.scratch_top_ == 0, "cannot copy an FRep with open builders");
    // The freshly copied buffers carry no poison; re-arm their slack.
    asan::PoisonTail(values_);
    asan::PoisonTail(children_);
    asan::PoisonTail(headers_);
  }
  FRep& operator=(const FRep& o) {
    if (this != &o) *this = FRep(o);
    return *this;
  }
  // Moves relocate the arenas a live UnionBuilder points into, so they are
  // guarded like copies. Deliberately not noexcept: misuse must surface as
  // an FdbError, and containers fall back to the (equally guarded) copy.
  FRep(FRep&& o)
      : tree_(std::move(o.tree_)),
        values_(std::move(o.values_)),
        children_(std::move(o.children_)),
        headers_(std::move(o.headers_)),
        roots_(std::move(o.roots_)),
        empty_(o.empty_),
        scratch_(std::move(o.scratch_)) {
    FDB_CHECK_MSG(o.scratch_top_ == 0, "cannot move an FRep with open builders");
  }
  FRep& operator=(FRep&& o) {
    if (this != &o) {
      FDB_CHECK_MSG(scratch_top_ == 0 && o.scratch_top_ == 0,
                    "cannot move an FRep with open builders");
      tree_ = std::move(o.tree_);
      values_ = std::move(o.values_);
      children_ = std::move(o.children_);
      headers_ = std::move(o.headers_);
      roots_ = std::move(o.roots_);
      empty_ = o.empty_;
      scratch_ = std::move(o.scratch_);
    }
    return *this;
  }

  const FTree& tree() const { return tree_; }
  FTree& tree() { return tree_; }

  /// True for the empty relation (no tuples).
  bool empty() const { return empty_; }
  void MarkNonEmpty() { empty_ = false; }
  /// Empties the representation and *releases* arena capacity
  /// (shrink_to_fit semantics), so emptied intermediates inside f-plan
  /// execution do not pin peak memory.
  void MarkEmpty();

  /// Opens a builder for a new union of f-tree node `node`. The id is
  /// assigned immediately; the data window is committed on Finish().
  UnionBuilder StartUnion(int node);

  /// View of union `id`.
  UnionRef u(uint32_t id) const { return UnionRef(this, id); }

  /// Root unions, aligned with tree().roots() order.
  std::vector<uint32_t>& roots() { return roots_; }
  const std::vector<uint32_t>& roots() const { return roots_; }

  size_t NumUnions() const { return headers_.size(); }

  // Read-only arena geometry, for the deep structural checker
  // (core/validate.h): it must bounds-check every header window against the
  // arenas *before* dereferencing values/children through UnionRef.
  const UnionHeader& HeaderOf(uint32_t id) const { return headers_[id]; }
  size_t ValueArenaSize() const { return values_.size(); }
  size_t ChildArenaSize() const { return children_.size(); }
  /// Allocated (not just live) value-arena entries. The slack
  /// [ValueArenaSize(), ValueArenaCapacity()) is ASan-poisoned between
  /// mutations (common/asan.h); tests/asan_poison_test.cc probes it.
  size_t ValueArenaCapacity() const { return values_.capacity(); }
  /// Builders currently open (non-zero means arenas may still move).
  size_t OpenBuilders() const { return scratch_top_; }

  /// Number of singletons (the paper's |E|): every value of a union counts
  /// once per *visible* attribute of its class.
  size_t NumSingletons() const;

  /// Number of physically stored values (one per union entry).
  size_t NumValues() const;

  /// Heap bytes held by this representation: value arena + child arena +
  /// union headers + roots + recycled builder scratch, capacity-based (what
  /// the allocator actually handed out, not just live data).
  size_t MemoryBytes() const;

  /// Number of represented tuples (over all attributes, visible or not),
  /// by dynamic programming over the union DAG. The DP accumulates in
  /// uint64_t, so the count is computed exactly whenever it fits 64 bits;
  /// past that it falls back to double accumulation. When `exact` is given
  /// it is set to true iff the returned double equals the true count.
  double CountTuples(bool* exact = nullptr) const;

  /// Exact tuple count; throws FdbError when the count overflows uint64_t
  /// (product-heavy representations can exceed 2^64 tuples).
  uint64_t CountTuplesExact() const;

  /// The per-union memo of the CountTuples DP: out[id] = number of tuples
  /// represented by the subtree rooted at union id, accumulated in double
  /// (exact below 2^53). When `keep` is given (indexed by f-tree node id,
  /// closed under parents), child slots whose node is masked out
  /// contribute factor 1 — the count of the enumeration stream restricted
  /// to kept frames (TupleEnumerator's visible_only mode). Unreachable
  /// unions stay 0. Feeds the morsel planner in core/parallel_enumerate.h
  /// and the output reservation of MaterializeVisible.
  std::vector<double> SubtreeTupleCounts(
      const std::vector<char>* keep = nullptr) const;

  /// Checks all representation invariants; throws FdbError on violation.
  void Validate() const;

 private:
  friend class UnionRef;
  friend class UnionBuilder;
  using Scratch = UnionBuilder::Scratch;

  const UnionHeader& header(uint32_t id) const { return headers_[id]; }

  Scratch* AcquireScratch();
  void ReleaseScratch(Scratch* s);
  void CommitUnion(uint32_t id, const Scratch& s);

  FTree tree_;
  std::vector<Value> values_;        ///< value arena
  std::vector<uint32_t> children_;   ///< child-id arena
  std::vector<UnionHeader> headers_; ///< union id -> window
  std::vector<uint32_t> roots_;
  bool empty_ = true;
  // LIFO pool of staging buffers for open builders; entries keep their
  // capacity across unions so steady-state building does not allocate.
  std::vector<std::unique_ptr<Scratch>> scratch_;
  size_t scratch_top_ = 0;  ///< scratch_[0, scratch_top_) are in use
};

// ---- UnionRef inline accessors (need FRep complete) ----

inline int UnionRef::node() const { return rep_->header(id_).node; }
inline size_t UnionRef::size() const { return rep_->header(id_).len; }
inline Value UnionRef::value(size_t entry) const {
  return rep_->values_[rep_->header(id_).val_off + entry];
}
inline const Value* UnionRef::values() const {
  return rep_->values_.data() + rep_->header(id_).val_off;
}
inline size_t UnionRef::num_children() const {
  return rep_->header(id_).num_children;
}
inline uint32_t UnionRef::child(size_t i) const {
  return rep_->children_[rep_->header(id_).child_off + i];
}
inline const uint32_t* UnionRef::children() const {
  return rep_->children_.data() + rep_->header(id_).child_off;
}
inline size_t UnionRef::arena_offset() const {
  return rep_->header(id_).val_off;
}

// ---- UnionBuilder inline members ----

inline size_t UnionBuilder::size() const { return s_->vals.size(); }
inline void UnionBuilder::AddValue(Value v) { s_->vals.push_back(v); }
inline void UnionBuilder::AddChild(uint32_t child) {
  s_->kids.push_back(child);
}
inline void UnionBuilder::AddValues(const Value* v, size_t n) {
  s_->vals.insert(s_->vals.end(), v, v + n);
}
inline void UnionBuilder::CopyValues(const UnionRef& u) {
  AddValues(u.values(), u.size());
}

inline UnionBuilder::UnionBuilder(UnionBuilder&& other) noexcept
    : rep_(other.rep_), s_(other.s_), id_(other.id_) {
  other.s_ = nullptr;
}
inline UnionBuilder& UnionBuilder::operator=(UnionBuilder&& other) noexcept {
  if (this != &other) {
    if (s_ != nullptr) Abandon();
    rep_ = other.rep_;
    s_ = other.s_;
    id_ = other.id_;
    other.s_ = nullptr;
  }
  return *this;
}
inline UnionBuilder::~UnionBuilder() {
  if (s_ != nullptr) Abandon();
}

inline uint32_t UnionBuilder::Finish() {
  FDB_CHECK_MSG(s_ != nullptr, "Finish() on a closed UnionBuilder");
  rep_->CommitUnion(id_, *s_);
  rep_->ReleaseScratch(s_);
  s_ = nullptr;
  return id_;
}

inline void UnionBuilder::Abandon() {
  FDB_CHECK_MSG(s_ != nullptr, "Abandon() on a closed UnionBuilder");
  rep_->ReleaseScratch(s_);
  s_ = nullptr;
}

// ---- FRep inline builder plumbing ----

inline UnionBuilder FRep::StartUnion(int node) {
  ChargeAmbientMemory(sizeof(UnionHeader));
  UnionHeader h;
  h.node = node;
  asan::UnpoisonTail(headers_);
  headers_.push_back(h);
  asan::PoisonTail(headers_);
  return UnionBuilder(this, static_cast<uint32_t>(headers_.size()) - 1,
                      AcquireScratch());
}

inline FRep::Scratch* FRep::AcquireScratch() {
  if (scratch_top_ == scratch_.size()) {
    scratch_.push_back(std::make_unique<Scratch>());
  }
  Scratch* s = scratch_[scratch_top_++].get();
  // Recycled buffers are poisoned while parked (ReleaseScratch); re-admit
  // them before the builder starts staging into them.
  asan::UnpoisonBuffer(s->vals);
  asan::UnpoisonBuffer(s->kids);
  return s;
}

inline void FRep::ReleaseScratch(Scratch* s) {
  // Builders nest with the operator recursion, so the released buffer is
  // almost always top-of-stack; out-of-order release (e.g. builders stored
  // in a container) is tolerated by swapping the slot to the top. Never
  // throws: this runs inside UnionBuilder's destructor.
  s->vals.clear();
  s->kids.clear();
  // Parked scratch is logically dead until the next AcquireScratch; poison
  // the whole buffers so a stale builder reference faults instead of
  // reading recycled bytes.
  asan::PoisonBuffer(s->vals);
  asan::PoisonBuffer(s->kids);
  for (size_t i = scratch_top_; i > 0; --i) {
    if (scratch_[i - 1].get() == s) {
      std::swap(scratch_[i - 1], scratch_[scratch_top_ - 1]);
      --scratch_top_;
      return;
    }
  }
}

inline void FRep::CommitUnion(uint32_t id, const Scratch& s) {
  // Governance probe at arena-growth granularity: check for cancellation
  // and charge the appended bytes *before* mutating the arenas, so an
  // unwinding commit leaves the rep discardable rather than half-written
  // (the caller's UnionBuilder still owns the scratch and Abandons it).
  if (ExecContext* ctx = ExecContext::Current()) {
    ctx->CheckCancelled();
    ctx->ChargeMemory(s.vals.size() * sizeof(Value) +
                      s.kids.size() * sizeof(uint32_t));
  }
  FDB_FAULT_POINT("frep_arena_commit");
  UnionHeader& h = headers_[id];
  h.val_off = values_.size();
  h.child_off = children_.size();
  h.len = static_cast<uint32_t>(s.vals.size());
  h.num_children = s.kids.size();
  // The appends construct elements inside the (poisoned) slack when
  // capacity suffices; open the slack for the writes, then re-arm it. A
  // reallocating append frees the old buffer (ASan unpoisons on free) and
  // the fresh one starts clean, so PoisonTail is correct either way.
  asan::UnpoisonTail(values_);
  values_.insert(values_.end(), s.vals.begin(), s.vals.end());
  asan::PoisonTail(values_);
  asan::UnpoisonTail(children_);
  children_.insert(children_.end(), s.kids.begin(), s.kids.end());
  asan::PoisonTail(children_);
}

}  // namespace fdb

#endif  // FDB_CORE_FREP_H_
