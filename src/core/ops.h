// F-plan operators (§3): the algorithms that evaluate SPJ queries directly
// on factorised representations.
//
// Every operator consumes an f-representation and produces a fresh one over
// a transformed f-tree; the represented relation changes exactly as the
// relational semantics of the operator prescribes (restructuring operators
// preserve it). All operators preserve the representation invariants (value
// order, no empty unions, path constraint) and f-tree normalisation, and run
// in time (quasi)linear in input + output size (Prop. 2).
//
// Nodes are addressed by any attribute of their class, which is stable
// across restructuring (classes only ever grow, by merge/absorb).
#ifndef FDB_CORE_OPS_H_
#define FDB_CORE_OPS_H_

#include "core/frep.h"
#include "storage/query.h"

namespace fdb {

/// Cartesian product: concatenates the two forests (§3.2). The attribute
/// and relation-index universes of the inputs must be disjoint.
FRep Product(const FRep& e1, const FRep& e2);

/// psi_B: lifts the node of `b_attr` one level up (§3.1, Fig. 3(a)).
/// Requires CanPushUp on the node: its parent must not depend on the
/// node's subtree.
FRep PushUp(const FRep& in, AttrId b_attr);

/// eta: repeated push-ups until the f-tree is normalised (Def. 3).
FRep Normalize(const FRep& in);

/// chi_{A,B}: swaps the node of `b_attr` with its parent, the node of
/// `a_attr` (§3.1, Fig. 3(b) and Fig. 4). Regroups the representation by B
/// before A.
FRep Swap(const FRep& in, AttrId a_attr, AttrId b_attr);

/// mu_{A,B}: merge selection a_attr = b_attr for sibling classes (§3.3,
/// Fig. 3(c)); sort-merge join of the sibling unions.
FRep Merge(const FRep& in, AttrId a_attr, AttrId b_attr);

/// alpha_{A,B}: absorb selection a_attr = b_attr where A's class is a
/// proper ancestor of B's (§3.3, Fig. 3(d)); restricts each B-union to the
/// current A-value, splices B out, and normalises.
FRep Absorb(const FRep& in, AttrId a_attr, AttrId b_attr);

/// sigma_{A theta c}: selection with a constant (§3.3). For equality the
/// node becomes constant and floats up during the final normalisation.
FRep SelectConst(const FRep& in, AttrId attr, CmpOp op, Value c);

/// pi: keeps only the attributes in `keep` (§3.4). Fully projected nodes
/// are swapped down to leaves and removed; their dependency sets are
/// inherited by the parent (transitive dependence).
FRep Project(const FRep& in, AttrSet keep);

}  // namespace fdb

#endif  // FDB_CORE_OPS_H_
