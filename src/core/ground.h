// Grounding: computing the f-representation of a join query directly from
// flat relations, over a chosen f-tree (§2; the O(|Q|·|D|^{s(T)}) algorithm
// of [19] realised as a multi-way sorted intersection per f-tree node).
//
// Each relation's attribute classes lie on a single root-to-leaf path of
// the f-tree (the path constraint), so sorting the relation by its classes
// in ancestor-first order makes the tuples matching any partial context a
// contiguous range. Grounding then walks the f-tree: at each node it
// intersects (leapfrog-style) the distinct values of the covering
// relations' current ranges, narrows the ranges for each value, and
// recurses into the children; values whose children turn out empty are
// dropped. This avoids ever materialising flat intermediate results.
#ifndef FDB_CORE_GROUND_H_
#define FDB_CORE_GROUND_H_

#include <vector>

#include "common/trace.h"
#include "core/frep.h"
#include "storage/query.h"
#include "storage/relation.h"

namespace fdb {

/// Computes the factorised result of the natural join prescribed by `tree`
/// over the given relations.
///
/// `rels[i]` is the relation with query-local index i (matching the
/// `cover_rels` bits of the tree). `preds` are constant predicates applied
/// while loading. Relations are copied, filtered and sorted internally;
/// pass `presorted = true` when every relation is already sorted by its
/// class path order (saves the copy, used by benchmarks that reuse inputs).
/// A non-null `trace` records a "ground" span carrying the result's
/// MemoryBytes (common/trace.h).
FRep GroundQuery(const FTree& tree, const std::vector<const Relation*>& rels,
                 const std::vector<ConstPred>& preds = {},
                 QueryTrace* trace = nullptr);

/// Factorises a single relation over its path f-tree (trie): the canonical
/// way to turn flat input into an f-representation before applying f-plan
/// operators. `rel_index` is the query-local relation index to record in
/// the f-tree.
FRep GroundRelation(const Relation& rel, int rel_index,
                    QueryTrace* trace = nullptr);

}  // namespace fdb

#endif  // FDB_CORE_GROUND_H_
