#include "core/ground.h"

#include <limits>

#include <algorithm>

#include "common/exec_context.h"
#include "common/fault.h"
#include "core/ops_common.h"
#include "core/validate.h"

namespace fdb {

using ops_internal::kNoUnion;

namespace {

struct RelState {
  Relation rel;                 // filtered + sorted working copy
  std::vector<size_t> node_col; // f-tree node id -> column, SIZE_MAX if none
};

}  // namespace

FRep GroundQuery(const FTree& tree, const std::vector<const Relation*>& rels,
                 const std::vector<ConstPred>& preds, QueryTrace* trace) {
  QueryTrace::Scope span(trace, "ground");
  tree.Validate();
  FDB_CHECK_MSG(tree.SatisfiesPathConstraint(),
                "grounding requires an f-tree satisfying the path constraint");

  const size_t nrels = rels.size();
  std::vector<RelState> st;
  st.reserve(nrels);

  // Which tree nodes each relation covers, ancestor-first.
  std::vector<std::vector<int>> rel_nodes(nrels);
  for (int n : tree.AliveNodes()) {
    const FTreeNode& nd = tree.node(n);
    FDB_CHECK_MSG(nd.constant || !nd.cover_rels.Empty(),
                  "f-tree node with no covering relation");
    for (AttrId r : nd.cover_rels) {
      FDB_CHECK_MSG(r < nrels, "f-tree references a missing relation");
      rel_nodes[r].push_back(n);
    }
  }
  for (auto& nodes : rel_nodes) {
    std::sort(nodes.begin(), nodes.end(),
              [&](int x, int y) { return tree.Depth(x) < tree.Depth(y); });
  }

  // Governance: grounding dominates pathological queries, so it probes the
  // ambient ExecContext (common/exec_context.h) at two granularities — per
  // relation prepared (each filter+sort is one uninterruptible block) and
  // per leapfrog iteration inside build (a relaxed atomic load; the clock
  // is strided inside CheckCancelled).
  ExecContext* const ctx = ExecContext::Current();

  for (size_t r = 0; r < nrels; ++r) {
    if (ctx != nullptr) ctx->CheckCancelled();
    FDB_FAULT_POINT("ground_prepare_relation");
    RelState s{*rels[r], std::vector<size_t>(tree.pool_size(), SIZE_MAX)};
    // Constant predicates on this relation's attributes.
    for (const ConstPred& p : preds) {
      if (!s.rel.HasAttr(p.attr)) continue;
      size_t col = s.rel.ColumnOf(p.attr);
      s.rel.Filter([&](size_t row) {
        return EvalCmp(s.rel.At(row, col), p.op, p.value);
      });
    }
    // Intra-relation equalities: several attributes of this relation in one
    // class must agree; the first becomes the representative column.
    std::vector<size_t> sort_cols;
    for (int n : rel_nodes[r]) {
      const FTreeNode& nd = tree.node(n);
      std::vector<size_t> cols;
      for (AttrId a : nd.attrs) {
        if (s.rel.HasAttr(a)) cols.push_back(s.rel.ColumnOf(a));
      }
      FDB_CHECK(!cols.empty());
      if (cols.size() > 1) {
        s.rel.Filter([&](size_t row) {
          for (size_t i = 1; i < cols.size(); ++i) {
            if (s.rel.At(row, cols[i]) != s.rel.At(row, cols[0])) return false;
          }
          return true;
        });
      }
      s.node_col[static_cast<size_t>(n)] = cols[0];
      sort_cols.push_back(cols[0]);
    }
    s.rel.SortByColumns(sort_cols);
    st.push_back(std::move(s));
  }

  FRep out{FTree(tree)};

  // Current row range per relation, narrowed as we bind values down a path.
  std::vector<std::pair<size_t, size_t>> range(nrels);
  for (size_t r = 0; r < nrels; ++r) range[r] = {0, st[r].rel.size()};

  // Builds the union for tree node n under the current ranges; kNoUnion if
  // no value survives.
  auto build = [&](auto&& self, int n) -> uint32_t {
    const FTreeNode& nd = tree.node(n);
    std::vector<AttrId> here = nd.cover_rels.ToVector();
    FDB_CHECK(!here.empty());
    FDB_FAULT_POINT("ground_build_union");
    UnionBuilder nu = out.StartUnion(n);

    // Leapfrog over the covering relations' sorted columns.
    std::vector<size_t> cursor(here.size());
    for (size_t i = 0; i < here.size(); ++i) {
      cursor[i] = range[here[i]].first;
    }
    for (;;) {
      if (ctx != nullptr) ctx->CheckCancelled();
      // Propose the max of the current heads; stop if any range is done.
      bool exhausted = false;
      Value v = std::numeric_limits<Value>::min();
      for (size_t i = 0; i < here.size(); ++i) {
        size_t r = here[i];
        if (cursor[i] >= range[r].second) {
          exhausted = true;
          break;
        }
        v = std::max(v, st[r].rel.At(cursor[i], st[r].node_col[static_cast<size_t>(n)]));
      }
      if (exhausted) break;
      // Advance every head to >= v; if any overshoots, retry with larger v.
      bool agree = true;
      for (size_t i = 0; i < here.size(); ++i) {
        size_t r = here[i];
        size_t col = st[r].node_col[static_cast<size_t>(n)];
        cursor[i] = st[r].rel.LowerBound(cursor[i], range[r].second, col, v);
        if (cursor[i] >= range[r].second) {
          agree = false;
          exhausted = true;
          break;
        }
        if (st[r].rel.At(cursor[i], col) != v) agree = false;
      }
      if (exhausted) break;
      if (!agree) continue;

      // All covering relations contain v: narrow and recurse.
      std::vector<std::pair<size_t, size_t>> saved(here.size());
      for (size_t i = 0; i < here.size(); ++i) {
        size_t r = here[i];
        size_t col = st[r].node_col[static_cast<size_t>(n)];
        saved[i] = range[r];
        size_t end = st[r].rel.LowerBound(cursor[i], range[r].second, col, v + 1);
        range[r] = {cursor[i], end};
      }
      std::vector<uint32_t> kids;
      bool dead = false;
      for (int c : nd.children) {
        uint32_t cid = self(self, c);
        if (cid == kNoUnion) {
          dead = true;
          break;
        }
        kids.push_back(cid);
      }
      // Restore: continue after v's block.
      for (size_t i = 0; i < here.size(); ++i) {
        size_t r = here[i];
        cursor[i] = range[r].second;
        range[r] = saved[i];
      }
      if (!dead) {
        nu.AddValue(v);
        for (uint32_t kid : kids) nu.AddChild(kid);
      }
    }
    if (nu.empty()) {
      nu.Abandon();
      return kNoUnion;
    }
    return nu.Finish();
  };

  out.MarkNonEmpty();
  for (int root : tree.roots()) {
    uint32_t rid = build(build, root);
    if (rid == kNoUnion) {
      out.MarkEmpty();
      span.SetBytes(out.MemoryBytes());
      return out;
    }
    out.roots().push_back(rid);
  }
  FDB_VALIDATE_REP(out);
  span.SetBytes(out.MemoryBytes());
  return out;
}

FRep GroundRelation(const Relation& rel, int rel_index, QueryTrace* trace) {
  FDB_CHECK_MSG(rel.arity() > 0, "cannot factorise a nullary relation");
  FTree tree = PathFTree(rel.schema(), rel_index);
  std::vector<const Relation*> rels(static_cast<size_t>(rel_index) + 1,
                                    nullptr);
  // Only the slot at rel_index is used; earlier slots are placeholders for
  // queries where this relation is not the first.
  Relation empty({});
  for (auto& p : rels) p = &empty;
  rels[static_cast<size_t>(rel_index)] = &rel;
  return GroundQuery(tree, rels, {}, trace);
}

}  // namespace fdb
