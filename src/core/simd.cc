#include "core/simd.h"

namespace fdb {
namespace simd {

FDB_SIMD_CLONES
void CmpMask(const Value* vals, size_t n, CmpOp op, Value c, uint8_t* out) {
  switch (op) {
    case CmpOp::kEq:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] == c;
      break;
    case CmpOp::kNe:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] != c;
      break;
    case CmpOp::kLt:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] < c;
      break;
    case CmpOp::kLe:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] <= c;
      break;
    case CmpOp::kGt:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] > c;
      break;
    case CmpOp::kGe:
      for (size_t i = 0; i < n; ++i) out[i] = vals[i] >= c;
      break;
  }
}

size_t LowerBound(const Value* v, size_t n, Value key) {
  if (n == 0) return 0;
  size_t base = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    // Conditional add compiles to cmov: no data-dependent branch.
    base += v[base + half - 1] < key ? half : 0;
    len -= half;
  }
  return base + (v[base] < key ? 1 : 0);
}

size_t FindValue(const Value* v, size_t n, Value key) {
  const size_t i = LowerBound(v, n, key);
  return i < n && v[i] == key ? i : n;
}

namespace {

// One-sided gallop: scan the small side, LowerBound into the large side
// resuming past the previous hit (windows are strictly increasing).
template <bool kSwapped>
size_t GallopIntersect(const Value* small, size_t ns, const Value* large,
                       size_t nl, std::vector<std::pair<uint32_t, uint32_t>>* out) {
  size_t matches = 0;
  size_t from = 0;
  for (size_t i = 0; i < ns && from < nl; ++i) {
    const size_t j = from + LowerBound(large + from, nl - from, small[i]);
    if (j < nl && large[j] == small[i]) {
      if constexpr (kSwapped) {
        out->emplace_back(static_cast<uint32_t>(j), static_cast<uint32_t>(i));
      } else {
        out->emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
      ++matches;
    }
    from = j;
  }
  return matches;
}

}  // namespace

FDB_SIMD_CLONES
size_t IntersectSorted(const Value* a, size_t na, const Value* b, size_t nb,
                       std::vector<std::pair<uint32_t, uint32_t>>* out) {
  if (na == 0 || nb == 0) return 0;
  if (na >= kGallopRatio * nb) return GallopIntersect<true>(b, nb, a, na, out);
  if (nb >= kGallopRatio * na) return GallopIntersect<false>(a, na, b, nb, out);
  size_t matches = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const Value va = a[i];
    const Value vb = b[j];
    if (va == vb) {
      out->emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      ++matches;
    }
    // Branch-free advance: on a match both move, otherwise the smaller one.
    i += va <= vb ? 1 : 0;
    j += vb <= va ? 1 : 0;
  }
  return matches;
}

}  // namespace simd
}  // namespace fdb
