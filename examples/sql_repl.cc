// A minimal SQL shell over factorised evaluation.
//
//   $ ./build/examples/sql_repl [csv files...]
//
// Each CSV file is loaded as a relation named after the file stem. Then
// SPJ SQL queries are read line by line from stdin; every query is
// answered by FDB (factorised expression + stats) and cross-checked by the
// RDB baseline. EXPLAIN ANALYZE <query> prints the query's phase span tree
// (common/trace.h) instead. Without arguments a demo database is
// preloaded. Commands:
//   \d          list relations
//   \q          quit
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "api/database.h"
#include "api/engine.h"
#include "core/print.h"

using namespace fdb;

namespace {

void LoadDemo(Database* db) {
  RelId orders = db->CreateRelation("orders", {"oid", "item:str"});
  RelId stock = db->CreateRelation("stock", {"sitem:str", "warehouse:str"});
  db->Insert(orders, {int64_t{1}, "Milk"});
  db->Insert(orders, {int64_t{1}, "Cheese"});
  db->Insert(orders, {int64_t{2}, "Melon"});
  db->Insert(stock, {"Milk", "North"});
  db->Insert(stock, {"Milk", "South"});
  db->Insert(stock, {"Cheese", "South"});
  db->Insert(stock, {"Melon", "North"});
  std::cout << "demo database loaded: orders(oid, item), "
               "stock(sitem, warehouse)\n"
            << "try: SELECT * FROM orders, stock WHERE item = sitem\n";
}

void ListRelations(const Database& db) {
  for (size_t r = 0; r < db.num_relations(); ++r) {
    const RelInfo& info = db.catalog().rel(static_cast<RelId>(r));
    std::cout << "  " << info.name << "(";
    for (size_t c = 0; c < info.attrs.size(); ++c) {
      if (c) std::cout << ", ";
      std::cout << db.catalog().attr(info.attrs[c]).name;
    }
    std::cout << ") — " << db.relation(static_cast<RelId>(r)).size()
              << " tuples\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::string path = argv[i];
      std::string name = std::filesystem::path(path).stem().string();
      db.LoadCsv(path, name);
      std::cout << "loaded " << name << " from " << path << "\n";
    }
  } else {
    LoadDemo(&db);
  }

  Engine engine(&db);
  PrintOptions popts;
  popts.catalog = &db.catalog();
  popts.dict = &db.dict();
  popts.max_chars = 2000;

  std::string line;
  std::cout << "fdb> " << std::flush;
  while (std::getline(std::cin, line)) {
    std::string q = line;
    if (q == "\\q" || q == "quit" || q == "exit") break;
    if (q == "\\d") {
      ListRelations(db);
    } else if (!q.empty()) {
      try {
        FdbResult res = engine.Execute(q);
        if (res.explain.has_value()) {
          // EXPLAIN ANALYZE: print the span tree; the baselines measure
          // nothing comparable, so the cross-checks are skipped.
          std::cout << *res.explain;
        } else if (res.aggregate.has_value()) {
          const GroupedTable& tbl = *res.aggregate;
          for (AttrId a : tbl.group_schema) {
            std::cout << db.catalog().attr(a).name << "  ";
          }
          for (const AggSpec& s : tbl.specs) {
            std::cout << AggFnName(s.fn) << "("
                      << (s.fn == AggFn::kCount ? "*"
                                                : db.catalog().attr(s.attr).name)
                      << ")  ";
          }
          std::cout << "\n";
          for (size_t r = 0; r < tbl.num_rows; ++r) {
            for (size_t c = 0; c < tbl.group_schema.size(); ++c) {
              Value v = tbl.KeyAt(r, c);
              if (db.catalog().attr(tbl.group_schema[c]).is_string &&
                  db.dict().Contains(v)) {
                std::cout << db.dict().Decode(v) << "  ";
              } else {
                std::cout << v << "  ";
              }
            }
            for (size_t c = 0; c < tbl.specs.size(); ++c) {
              std::cout << tbl.AggAt(r, c) << "  ";
            }
            std::cout << "\n";
          }
          std::cout << "-- " << tbl.num_rows << " groups, optimise "
                    << res.optimize_seconds * 1e3 << " ms, evaluate "
                    << res.evaluate_seconds * 1e3 << " ms\n";
          // Cross-check against the flat enumerate-then-hash baseline.
          Query aq = engine.Parse(q);
          RdbResult flat = engine.ExecuteRdb(aq.SpjCore());
          if (!(tbl == HashGroupBy(flat.relation, aq.group_by,
                                   aq.aggregates))) {
            std::cout << "!! baseline mismatch: RDB hash aggregation "
                         "disagrees\n";
          }
        } else {
          std::cout << ToExpressionString(res.rep, popts) << "\n"
                    << "-- " << res.NumSingletons() << " singletons, "
                    << res.FlatTuples() << " tuples, optimise "
                    << res.optimize_seconds * 1e3 << " ms, evaluate "
                    << res.evaluate_seconds * 1e3 << " ms\n";
          RdbResult check = engine.ExecuteRdb(engine.Parse(q));
          if (static_cast<double>(check.NumTuples()) != res.FlatTuples()) {
            std::cout << "!! baseline mismatch: RDB reports "
                      << check.NumTuples() << " tuples\n";
          }
        }
      } catch (const FdbError& e) {
        std::cout << "error: " << e.what() << "\n";
      }
    }
    std::cout << "fdb> " << std::flush;
  }
  std::cout << "\n";
  return 0;
}
