// Compiled databases (§1): factorise once, query and aggregate many times.
//
// The paper motivates aggressively factorising a *static* database (its
// example: the human genome database) so a scientific workload can run on
// the compact form. This example compiles a many-to-many join result to a
// .frep file, reloads it, and answers aggregate and selection queries
// straight off the factorised form — no flat materialisation at any point.
//
//   $ ./build/examples/compiled_db
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "common/rng.h"
#include "core/aggregate.h"
#include "core/serialize.h"

using namespace fdb;

int main() {
  // A gene/protein/tissue toy schema with many-to-many links.
  Database db;
  Rng rng(7);
  RelId gp = db.CreateRelation("GeneProtein", {"gene", "protein"});
  RelId pt = db.CreateRelation("ProteinTissue", {"tprotein", "tissue"});
  RelId te = db.CreateRelation("TissueExpr", {"etissue", "expr"});
  for (int i = 0; i < 400; ++i) {
    db.relation(gp).AddTuple({rng.Uniform(1, 50), rng.Uniform(1, 40)});
    db.relation(pt).AddTuple({rng.Uniform(1, 40), rng.Uniform(1, 12)});
    db.relation(te).AddTuple({rng.Uniform(1, 12), rng.Uniform(1, 1000)});
  }

  Engine engine(&db);
  Query q;
  q.rels = {gp, pt, te};
  q.equalities = {{db.Attr("protein"), db.Attr("tprotein")},
                  {db.Attr("tissue"), db.Attr("etissue")}};

  // Compile: factorise the join result and store it.
  FdbResult compiled = engine.EvaluateFlat(q);
  const std::string path = "/tmp/fdb_compiled_genes.frep";
  WriteFRepFile(path, compiled.rep);
  std::cout << "compiled " << compiled.FlatTuples() << " join tuples into "
            << compiled.NumSingletons() << " singletons -> " << path << "\n";

  // Reload and aggregate without ever flattening.
  FRep rep = ReadFRepFile(path);
  AttrId expr = db.Attr("expr"), gene = db.Attr("gene");
  std::cout << "COUNT(*)              = " << Count(rep) << "\n";
  std::cout << "COUNT(DISTINCT gene)  = " << CountDistinct(rep, gene) << "\n";
  std::cout << "SUM(expr)             = " << Sum(rep, expr) << "\n";
  std::cout << "AVG(expr)             = " << Avg(rep, expr) << "\n";
  std::cout << "MIN/MAX(expr)         = " << Min(rep, expr) << " / "
            << Max(rep, expr) << "\n";

  // Follow-up selection on the compiled form (f-plan operators only).
  FdbResult filtered =
      engine.EvaluateOnFRep(rep, {}, {{gene, CmpOp::kLe, 10}});
  std::cout << "after sigma_{gene<=10}: " << filtered.FlatTuples()
            << " tuples as " << filtered.NumSingletons() << " singletons\n";
  return 0;
}
