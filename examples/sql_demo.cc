// SQL demo: load relations from CSV files, run SPJ SQL against FDB and the
// two baseline engines, and compare result shapes.
//
//   $ ./build/examples/sql_demo [data_dir]
//
// Without arguments the example writes its own small CSV files to /tmp and
// loads them back, exercising the full text -> dictionary -> factorised
// pipeline.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "core/print.h"

using namespace fdb;

namespace {

std::string WriteTempCsv(const std::string& name, const std::string& body) {
  std::string path = "/tmp/fdb_sql_demo_" + name + ".csv";
  std::ofstream out(path);
  out << body;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (argc > 1) {
    std::string dir = argv[1];
    db.LoadCsv(dir + "/orders.csv", "Orders");
    db.LoadCsv(dir + "/stock.csv", "Stock");
  } else {
    db.LoadCsv(WriteTempCsv("orders",
                            "oid,item:str\n"
                            "1,Milk\n1,Cheese\n2,Melon\n3,Cheese\n3,Melon\n"),
               "Orders");
    db.LoadCsv(WriteTempCsv("stock",
                            "sitem:str,warehouse:str,qty\n"
                            "Milk,North,10\nMilk,South,4\nCheese,South,7\n"
                            "Melon,North,2\nMelon,South,5\n"),
               "Stock");
  }

  Engine engine(&db);
  const std::string sql =
      "SELECT oid, item, warehouse FROM Orders, Stock "
      "WHERE item = sitem AND qty >= 4";
  std::cout << "SQL> " << sql << "\n\n";

  FdbResult res = engine.Execute(sql);
  PrintOptions opts;
  opts.catalog = &db.catalog();
  opts.dict = &db.dict();
  std::cout << "FDB factorised result (" << res.NumSingletons()
            << " singletons, " << res.FlatTuples() << " tuples):\n  "
            << ToExpressionString(res.rep, opts) << "\n\n";

  Query q = engine.Parse(sql);
  RdbResult rdb = engine.ExecuteRdb(q);
  VdbResult vdb = engine.ExecuteVdb(q);
  std::cout << "RDB flat result: " << rdb.NumTuples() << " tuples ("
            << rdb.NumDataElements() << " data elements)\n";
  std::cout << "VDB flat result: " << vdb.NumTuples() << " tuples\n";
  return 0;
}
