// The running example of the paper (Examples 1 and 2): the grocery
// retailer database of Fig. 1, the queries Q1 and Q2, their factorised
// results over the f-trees of Fig. 2, and the join Q1 |x|_{item, location}
// Q2 evaluated *directly on the factorised results* with restructuring
// operators (swap, merge) — no flat intermediate result is ever built.
//
//   $ ./build/examples/grocery_retailer
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "core/ground.h"
#include "core/ops.h"
#include "core/print.h"

using namespace fdb;

namespace {

Database MakeGroceryDb() {
  Database db;
  RelId orders = db.CreateRelation("Orders", {"oid", "o_item:str"});
  RelId store = db.CreateRelation("Store", {"s_location:str", "s_item:str"});
  RelId disp = db.CreateRelation("Disp", {"dispatcher:str", "d_location:str"});
  RelId produce = db.CreateRelation("Produce", {"supplier:str", "p_item:str"});
  RelId serve =
      db.CreateRelation("Serve", {"sv_supplier:str", "sv_location:str"});

  for (auto [oid, item] : std::initializer_list<std::pair<int, const char*>>{
           {1, "Milk"}, {1, "Cheese"}, {2, "Melon"}, {3, "Cheese"},
           {3, "Melon"}}) {
    db.Insert(orders, {int64_t{oid}, item});
  }
  for (auto [loc, item] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
           {"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}}) {
    db.Insert(store, {loc, item});
  }
  for (auto [who, loc] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"},
           {"Volkan", "Antalya"}}) {
    db.Insert(disp, {who, loc});
  }
  for (auto [sup, item] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"Guney", "Milk"}, {"Guney", "Cheese"}, {"Dikici", "Milk"},
           {"Byzantium", "Melon"}}) {
    db.Insert(produce, {sup, item});
  }
  for (auto [sup, loc] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"Guney", "Antalya"}, {"Dikici", "Istanbul"}, {"Dikici", "Izmir"},
           {"Dikici", "Antalya"}, {"Byzantium", "Istanbul"}}) {
    db.Insert(serve, {sup, loc});
  }
  return db;
}

void Show(const std::string& title, const FRep& rep, const Database& db) {
  PrintOptions opts;
  opts.catalog = &db.catalog();
  opts.dict = &db.dict();
  opts.max_chars = 600;
  std::cout << title << "\n  " << ToExpressionString(rep, opts) << "\n"
            << "  [" << rep.NumSingletons() << " singletons, "
            << rep.CountTuples() << " tuples]\n\n";
}

}  // namespace

int main() {
  Database db = MakeGroceryDb();
  Engine engine(&db);

  // ---- Example 1: Q1 = Orders |x|_item Store |x|_location Disp,
  // factorised over the paper's f-tree T1: item root with children oid and
  // location; dispatcher under location. ----
  AttrSet c_item = AttrSet::Of({db.Attr("o_item"), db.Attr("s_item")});
  AttrSet c_loc = AttrSet::Of({db.Attr("s_location"), db.Attr("d_location")});
  FTree t1;
  int n_item = t1.NewNode(c_item, c_item, RelSet::Of({0, 1}),
                          RelSet::Of({0, 1}));
  int n_oid = t1.NewNode(AttrSet::Of({db.Attr("oid")}),
                         AttrSet::Of({db.Attr("oid")}), RelSet::Of({0}),
                         RelSet::Of({0}));
  int n_loc = t1.NewNode(c_loc, c_loc, RelSet::Of({1, 2}),
                         RelSet::Of({1, 2}));
  int n_disp = t1.NewNode(AttrSet::Of({db.Attr("dispatcher")}),
                          AttrSet::Of({db.Attr("dispatcher")}),
                          RelSet::Of({2}), RelSet::Of({2}));
  t1.AttachRoot(n_item);
  t1.AttachChild(n_item, n_oid);
  t1.AttachChild(n_item, n_loc);
  t1.AttachChild(n_loc, n_disp);

  std::vector<const Relation*> q1_rels = {&db.relation(0), &db.relation(1),
                                          &db.relation(2)};
  FdbResult r1{GroundQuery(t1, q1_rels), FPlan{}, 0.0, 0.0, {}, {}};
  std::cout << "f-tree T1 for Q1:\n" << t1.ToString(&db.catalog()) << "\n";
  Show("Q1 factorised over T1 (compare Example 1):", r1.rep, db);

  // chi_{item, location}: regroup by location first (T1 -> T2, Example 8).
  FRep over_t2 = Swap(r1.rep, db.Attr("o_item"), db.Attr("s_location"));
  Show("Q1 regrouped over T2 (locations outermost):", over_t2, db);

  // ---- Q2 = Produce |x|_supplier Serve over T3. ----
  Query q2;
  q2.rels = {3, 4};
  q2.equalities = {{db.Attr("supplier"), db.Attr("sv_supplier")}};
  FdbResult r2 = engine.EvaluateFlat(q2);
  std::cout << "f-tree T3 for Q2 (s(T3) = " << r2.plan.result_s
            << ", linear-size factorisation):\n"
            << r2.rep.tree().ToString(&db.catalog()) << "\n";
  Show("Q2 factorised over T3:", r2.rep, db);

  // ---- Example 2: Q1 |x|_{item, location} Q2 on factorised inputs. ----
  FdbResult joined = engine.JoinFactorised(
      r1.rep, r2.rep,
      {{db.Attr("o_item"), db.Attr("p_item")},
       {db.Attr("s_location"), db.Attr("sv_location")}});
  std::cout << "f-plan for the join on factorised inputs (swap chi to "
               "regroup suppliers under items, then merge):\n  "
            << joined.plan.ToString(&db.catalog()) << "\n\n";
  std::cout << "f-tree T6 of the joined result:\n"
            << joined.rep.tree().ToString(&db.catalog()) << "\n";
  Show("Q1 |x| Q2 factorised over T6:", joined.rep, db);
  return 0;
}
