// Example 6 of the paper: chain queries and the exponential gap.
//
// Q_n = sigma_{B_1=A_2 and ... and B_{n-1}=A_n} (R_1 x ... x R_n) over
// relations R_i(A_i, B_i). The flat result can reach |D|^Theta(n) tuples,
// while s(Q_n) = Theta(log n): factorised results stay polynomial. This
// example evaluates chains of growing length over small random relations
// and prints flat vs factorised sizes side by side.
//
//   $ ./build/examples/chain_query
#include <iomanip>
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "common/rng.h"

using namespace fdb;

int main() {
  std::cout << "chain query Q_n: R_1(A_1,B_1) |x| ... |x| R_n(A_n,B_n), "
               "B_i = A_{i+1}\n"
            << "relations: 40 tuples each, values in [1..8]\n\n";
  std::cout << std::left << std::setw(4) << "n" << std::setw(10) << "s(Q_n)"
            << std::setw(16) << "flat tuples" << std::setw(18)
            << "flat elements" << std::setw(16) << "FDB singletons"
            << "gap\n";

  for (int n = 2; n <= 7; ++n) {
    Database db;
    Rng rng(static_cast<uint64_t>(n) * 17);
    Query q;
    for (int i = 0; i < n; ++i) {
      RelId rid = db.CreateRelation(
          "R" + std::to_string(i),
          {"A" + std::to_string(i), "B" + std::to_string(i)});
      Relation& rel = db.relation(rid);
      for (int row = 0; row < 40; ++row) {
        rel.AddTuple({rng.Uniform(1, 8), rng.Uniform(1, 8)});
      }
      q.rels.push_back(rid);
      if (i > 0) {
        q.equalities.emplace_back(db.Attr("B" + std::to_string(i - 1)),
                                  db.Attr("A" + std::to_string(i)));
      }
    }

    Engine engine(&db);
    FdbResult fdb = engine.EvaluateFlat(q);
    double flat_tuples = fdb.FlatTuples();  // counted, never materialised
    double flat_elements = flat_tuples * (2.0 * n);
    double singletons = static_cast<double>(fdb.NumSingletons());

    std::cout << std::left << std::setw(4) << n << std::setw(10)
              << fdb.plan.result_s << std::setw(16) << flat_tuples
              << std::setw(18) << flat_elements << std::setw(16) << singletons
              << std::fixed << std::setprecision(1)
              << flat_elements / singletons << "x\n"
              << std::defaultfloat << std::setprecision(6);
  }

  std::cout << "\nThe factorised size grows polynomially (s(Q_n) = "
               "Theta(log n)) while the flat result grows exponentially "
               "with the chain length.\n";
  return 0;
}
