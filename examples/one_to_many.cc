// One-to-many joins (the paper's §5 TPC-H remark): with key/foreign-key
// joins the result size is linear in the input, so factorisation buys a
// small constant factor (about the number of relations), not orders of
// magnitude. This example builds a Customer <- Orders <- Lineitem chain and
// prints the sizes side by side, contrasting it with a many-to-many join on
// the same data.
//
//   $ ./build/examples/one_to_many
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "common/rng.h"

using namespace fdb;

int main() {
  Database db;
  Rng rng(4242);
  const int64_t customers = 50, orders = 200, lineitems = 1000;

  RelId c = db.CreateRelation("Customer", {"ck", "nation"});
  RelId o = db.CreateRelation("Orders", {"ok", "o_ck", "priority"});
  RelId l = db.CreateRelation("Lineitem", {"lk", "l_ok", "qty"});
  for (int64_t i = 1; i <= customers; ++i) {
    db.relation(c).AddTuple({i, rng.Uniform(1, 25)});
  }
  for (int64_t i = 1; i <= orders; ++i) {
    db.relation(o).AddTuple({i, rng.Uniform(1, customers), rng.Uniform(1, 5)});
  }
  for (int64_t i = 1; i <= lineitems; ++i) {
    db.relation(l).AddTuple({i, rng.Uniform(1, orders), rng.Uniform(1, 50)});
  }

  Engine engine(&db);

  // Key/foreign-key chain: one-to-many joins, linear result.
  Query kfk;
  kfk.rels = {c, o, l};
  kfk.equalities = {{db.Attr("ck"), db.Attr("o_ck")},
                    {db.Attr("ok"), db.Attr("l_ok")}};
  FdbResult fdb1 = engine.EvaluateFlat(kfk);
  RdbResult rdb1 = engine.ExecuteRdb(kfk);
  std::cout << "key/foreign-key chain Customer |x| Orders |x| Lineitem:\n"
            << "  flat:       " << rdb1.NumTuples() << " tuples = "
            << rdb1.NumDataElements() << " data elements\n"
            << "  factorised: " << fdb1.NumSingletons() << " singletons ("
            << static_cast<double>(rdb1.NumDataElements()) /
                   static_cast<double>(fdb1.NumSingletons())
            << "x smaller — roughly the number of relations)\n\n";

  // Many-to-many join on non-key attributes: the factorisation gap opens.
  Query m2m;
  m2m.rels = {c, o, l};
  m2m.equalities = {{db.Attr("nation"), db.Attr("priority")},
                    {db.Attr("priority"), db.Attr("qty")}};
  FdbResult fdb2 = engine.EvaluateFlat(m2m);
  RdbResult rdb2 = engine.ExecuteRdb(m2m);
  std::cout << "many-to-many join on nation = priority = qty:\n"
            << "  flat:       " << rdb2.NumTuples() << " tuples = "
            << rdb2.NumDataElements() << " data elements\n"
            << "  factorised: " << fdb2.NumSingletons() << " singletons ("
            << static_cast<double>(rdb2.NumDataElements()) /
                   static_cast<double>(fdb2.NumSingletons())
            << "x smaller)\n\n";
  std::cout << "One-to-many joins gain a constant factor; many-to-many "
               "joins gain orders of magnitude (cf. Fig. 7 vs the TPC-H "
               "remark in §5).\n";
  return 0;
}
