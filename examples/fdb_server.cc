// fdb_server — the serve path end to end: a long-lived concurrent SQL
// server over one frozen database (serve/query_server.h), speaking the
// newline-delimited text protocol of serve/protocol.h.
//
//   $ ./build/examples/fdb_server [--pipe | --port N] [--workers N]
//                                 [--cache N] [--deadline SECS]
//                                 [--max-queue N] [--enum-threads N]
//                                 [--max-memory-bytes N]
//                                 [--max-result-bytes N]
//                                 [--max-query-bytes N]
//                                 [csv files...]
//
// The --max-*-bytes knobs are the per-query resource budgets of
// serve/query_server.h (0 = unlimited); violations answer RESOURCE.
//
// Each CSV file is loaded as a relation named after the file stem; without
// files the sql_repl demo database is preloaded. Two front ends:
//   --pipe      read requests from stdin, write framed responses to stdout
//               (the default; used by the ctest smoke test)
//   --port N    listen on 127.0.0.1:N, one thread per connection, all
//               connections multiplex onto the shared worker pool
// Requests are one SQL statement per line; responses are framed as
// OK <n-lines>/ERR/TIMEOUT/BUSY/RESOURCE (see serve/protocol.h). Commands:
//   STATS       Prometheus-style metrics exposition (counters + latency
//               histograms), framed as a regular OK body so pipelining
//               clients stay in sync
//   \stats      one-line legacy counter summary (unframed)
//   \q          quit (pipe mode) / close the connection (socket mode)
// EXPLAIN ANALYZE <query> is plain SQL: the server answers with the
// query's span tree instead of its rows.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/database.h"
#include "serve/query_server.h"

using namespace fdb;

namespace {

void LoadDemo(Database* db) {
  RelId orders = db->CreateRelation("orders", {"oid", "item:str"});
  RelId stock = db->CreateRelation("stock", {"sitem:str", "warehouse:str"});
  db->Insert(orders, {int64_t{1}, "Milk"});
  db->Insert(orders, {int64_t{1}, "Cheese"});
  db->Insert(orders, {int64_t{2}, "Melon"});
  db->Insert(stock, {"Milk", "North"});
  db->Insert(stock, {"Milk", "South"});
  db->Insert(stock, {"Cheese", "South"});
  db->Insert(stock, {"Melon", "North"});
}

std::string StatsLine(const QueryServer& server) {
  ServerStats s = server.stats();
  std::ostringstream os;
  os << "STATS received=" << s.received << " executed=" << s.executed
     << " coalesced=" << s.coalesced << " errors=" << s.errors
     << " timeouts=" << s.timeouts << " rejected=" << s.rejected
     << " cancelled=" << s.cancelled
     << " resource_rejected=" << s.resource_rejected
     << " submit_expired=" << s.submit_expired
     << " kernels_built=" << s.kernels_built
     << " plan_hits=" << s.plan_cache.hits
     << " plan_misses=" << s.plan_cache.misses
     << " plan_evictions=" << s.plan_cache.evictions
     << " plan_invalidations=" << s.plan_cache.invalidations
     << " plan_entries=" << s.plan_cache.size << "\n";
  return os.str();
}

/// Serves one request line; returns false when the session should end.
bool HandleLine(QueryServer& server, const std::string& line,
                std::string* out) {
  if (line == "\\q" || line == "quit" || line == "exit") return false;
  if (line.empty()) {
    // One framed response per request line — even an empty one, so a
    // pipelining client never desyncs.
    *out = FrameResponse(
        ServeResponse{ServeStatus::kError, "empty request", false, false});
    return true;
  }
  if (line == "\\stats") {
    *out = StatsLine(server);
    return true;
  }
  if (IsStatsRequest(line)) {
    *out = FrameResponse(ServeResponse{ServeStatus::kOk,
                                       server.MetricsExposition(), false,
                                       false});
    return true;
  }
  *out = FrameResponse(server.Query(line));
  return true;
}

void PipeLoop(QueryServer& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string out;
    if (!HandleLine(server, line, &out)) break;
    std::cout << out << std::flush;
  }
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

void ConnectionLoop(QueryServer& server, int fd) {
  std::string pending;
  char buf[4096];
  for (;;) {
    size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pending.erase(0, nl + 1);
      std::string out;
      if (!HandleLine(server, line, &out) || !WriteAll(fd, out)) {
        close(fd);
        return;
      }
    }
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) {
      close(fd);
      return;
    }
    pending.append(buf, static_cast<size_t>(n));
  }
}

int SocketLoop(QueryServer& server, int port) {
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 64) < 0) {
    std::cerr << "bind/listen: " << std::strerror(errno) << "\n";
    close(listener);
    return 1;
  }
  std::cerr << "fdb_server listening on 127.0.0.1:" << port << "\n";
  for (;;) {
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    std::thread(&ConnectionLoop, std::ref(server), fd).detach();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool pipe_mode = true;
  int port = 0;
  ServeOptions opts;
  std::vector<std::string> csv_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pipe") {
      pipe_mode = true;
    } else if (arg == "--port") {
      pipe_mode = false;
      port = std::stoi(next("--port"));
    } else if (arg == "--workers") {
      opts.num_workers = std::stoi(next("--workers"));
    } else if (arg == "--cache") {
      opts.plan_cache_capacity =
          static_cast<size_t>(std::stoul(next("--cache")));
    } else if (arg == "--deadline") {
      opts.default_deadline_seconds = std::stod(next("--deadline"));
    } else if (arg == "--max-queue") {
      opts.max_queue = static_cast<size_t>(std::stoul(next("--max-queue")));
    } else if (arg == "--enum-threads") {
      opts.engine.enumerate.threads = std::stoi(next("--enum-threads"));
    } else if (arg == "--max-memory-bytes") {
      opts.max_memory_bytes =
          static_cast<size_t>(std::stoull(next("--max-memory-bytes")));
    } else if (arg == "--max-result-bytes") {
      opts.max_result_bytes =
          static_cast<size_t>(std::stoull(next("--max-result-bytes")));
    } else if (arg == "--max-query-bytes") {
      opts.max_query_bytes =
          static_cast<size_t>(std::stoull(next("--max-query-bytes")));
    } else {
      csv_files.push_back(arg);
    }
  }

  Database db;
  if (csv_files.empty()) {
    LoadDemo(&db);
    std::cerr << "demo database loaded: orders(oid, item), "
                 "stock(sitem, warehouse)\n";
  } else {
    for (const std::string& path : csv_files) {
      std::string name = std::filesystem::path(path).stem().string();
      db.LoadCsv(path, name);
      std::cerr << "loaded " << name << " from " << path << "\n";
    }
  }

  QueryServer server(&db, opts);
  if (pipe_mode) {
    PipeLoop(server);
    return 0;
  }
  return SocketLoop(server, port);
}
