// Quickstart: create a database, run a join query, inspect the factorised
// result and stream its tuples.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "api/database.h"
#include "api/engine.h"
#include "core/enumerate.h"
#include "core/print.h"

int main() {
  using namespace fdb;

  // 1. Declare relations; ":str" marks dictionary-encoded string columns.
  Database db;
  RelId orders = db.CreateRelation("Orders", {"oid", "item:str"});
  RelId stock = db.CreateRelation("Stock", {"sitem:str", "warehouse:str"});

  db.Insert(orders, {int64_t{1}, "Milk"});
  db.Insert(orders, {int64_t{1}, "Cheese"});
  db.Insert(orders, {int64_t{2}, "Milk"});
  db.Insert(stock, {"Milk", "North"});
  db.Insert(stock, {"Milk", "South"});
  db.Insert(stock, {"Cheese", "South"});

  // 2. Run an SPJ query. FDB finds an optimal factorisation tree for the
  //    result and computes it directly in factorised form.
  Engine engine(&db);
  FdbResult res = engine.Execute(
      "SELECT * FROM Orders, Stock WHERE item = sitem");

  // 3. Inspect the factorised result.
  PrintOptions opts;
  opts.catalog = &db.catalog();
  opts.dict = &db.dict();
  std::cout << "factorised result:\n  " << ToExpressionString(res.rep, opts)
            << "\n\n";
  std::cout << "singletons: " << res.NumSingletons()
            << "   flat tuples: " << res.FlatTuples()
            << "   s(T) of the result: " << res.plan.result_s << "\n\n";
  std::cout << "f-tree of the result:\n"
            << res.rep.tree().ToString(&db.catalog()) << "\n";

  // 4. Stream the tuples (constant-delay enumeration).
  AttrId oid = db.Attr("oid"), item = db.Attr("item"), wh = db.Attr("warehouse");
  TupleEnumerator en(res.rep);
  std::cout << "tuples:\n";
  while (en.Next()) {
    std::cout << "  oid=" << en.ValueOf(oid)
              << " item=" << db.dict().Decode(en.ValueOf(item))
              << " warehouse=" << db.dict().Decode(en.ValueOf(wh)) << "\n";
  }
  return 0;
}
