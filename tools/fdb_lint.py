#!/usr/bin/env python3
"""fdb_lint: project-invariant checks the compiler cannot express.

Rules (each reported as path:line: [rule] message):

  raw-threading      No std::mutex / std::shared_mutex / std::thread /
                     std::condition_variable outside src/common/. Everything
                     else goes through the annotated wrappers in
                     common/mutex.h or the pool in common/thread_pool.h, so
                     clang Thread Safety Analysis sees every lock.
                     (std::thread::hardware_concurrency is a query, not a
                     thread, and is allowed.)

  guarded-mutex      A file declaring a Mutex/SharedMutex member must
                     annotate at least one member GUARDED_BY(that mutex) —
                     an unreferenced mutex guards nothing and silently
                     drops out of Thread Safety Analysis.

  validated-ops      Every operator translation unit (src/core/ops_*.cc)
                     must invoke an FDB_VALIDATE_* macro (core/validate.h)
                     so FDB_VALIDATE builds deep-check operator results.

  include-guard      Headers carry the path-derived guard FDB_<PATH>_H_
                     (src/ stripped), e.g. src/core/frep.h uses
                     FDB_CORE_FREP_H_.

  raw-timing         No std::chrono::steady_clock / high_resolution_clock
                     outside src/common/ and src/bench_util/. Timing goes
                     through Timer / MonotonicClock / MonotonicDeadline
                     (common/timer.h) or QueryTrace spans (common/trace.h),
                     so every measurement shares one clock source and shows
                     up in the observability surfaces.

  no-abort-on-input  Modules that parse untrusted bytes (src/sql/,
                     src/core/serialize.cc, src/storage/csv.cc,
                     src/serve/protocol.cc) must not contain abort-path
                     constructs (FDB_ASSERT, FDB_DCHECK, assert(, abort()).
                     Malformed input must throw FdbError — the fuzz
                     harnesses in fuzz/ enforce the same contract at
                     runtime; this rule enforces it statically.

  fault-point        FDB_FAULT_POINT site names must be snake_case string
                     literals and unique — the fault registry
                     (common/fault.h) keys on them, so a reused name arms
                     two sites at once. Within-file duplicates are caught
                     per file; the tree walk also rejects the same name in
                     two different files.

  bad-alloc-catch    No `catch (std::bad_alloc)` outside src/common/.
                     Allocation failure is translated exactly once, by
                     TranslateBadAlloc (common/exec_context.h), into
                     FdbResourceExhausted so every out-of-memory surfaces
                     as RESOURCE; an ad-hoc catch would swallow the
                     resource-governance contract.

Exit status: 0 when clean, 1 when any rule fires, 2 on usage errors.
--self-test seeds one violation per rule through the checkers and fails if
any rule does NOT fire (the armed-probe pattern: prove the lint is live).
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Helpers


def strip_comments(text):
    """Removes // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            while i < n and text[i] != '\n':
                i += 1
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            j = text.find('*/', i + 2)
            j = n if j < 0 else j + 2
            out.append('\n' * text.count('\n', i, j))
            i = j
        elif c in '"\'':
            # Skip string/char literals so quoted code is not matched.
            quote, i = c, i + 1
            out.append(quote)
            while i < n and text[i] != quote:
                i += 2 if text[i] == '\\' else 1
            i += 1
            out.append(quote)
        else:
            out.append(c)
            i += 1
    return ''.join(out)


def strip_only_comments(text):
    """Removes // and /* */ comments but KEEPS string-literal contents
    (strip_comments blanks them), for rules that inspect literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            while i < n and text[i] != '\n':
                i += 1
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            j = text.find('*/', i + 2)
            j = n if j < 0 else j + 2
            out.append('\n' * text.count('\n', i, j))
            i = j
        elif c in '"\'':
            quote, i = c, i + 1
            out.append(quote)
            start = i
            while i < n and text[i] != quote:
                i += 2 if text[i] == '\\' else 1
            out.append(text[start:min(i, n)])
            i += 1
            out.append(quote)
        else:
            out.append(c)
            i += 1
    return ''.join(out)


def findings_for(lines_re, text, make_msg):
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        m = lines_re.search(line)
        if m:
            out.append((lineno, make_msg(m)))
    return out


# --------------------------------------------------------------------------
# Rules. Each checker takes (relpath: str, text: str) and returns a list of
# (lineno, message); scoping (which files a rule applies to) lives in the
# checker itself so --self-test can exercise it with synthetic paths.

RAW_THREADING_RE = re.compile(
    r'std::(mutex|shared_mutex|condition_variable(_any)?|thread)\b'
    r'(?!::hardware_concurrency)')


def check_raw_threading(relpath, text):
    if not relpath.startswith('src/') or relpath.startswith('src/common/'):
        return []
    return findings_for(
        RAW_THREADING_RE, strip_comments(text),
        lambda m: '[raw-threading] raw std::%s outside src/common/ — use '
                  'the annotated wrappers in common/mutex.h or '
                  'common/thread_pool.h' % m.group(1))


MUTEX_MEMBER_RE = re.compile(
    r'^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+(\w+)\s*;')


def check_guarded_mutex(relpath, text):
    if not relpath.startswith(('src/', 'fuzz/')):
        return []
    if relpath == 'src/common/mutex.h':  # defines the wrappers themselves
        return []
    stripped = strip_comments(text)
    out = []
    for lineno, line in enumerate(stripped.splitlines(), 1):
        m = MUTEX_MEMBER_RE.match(line)
        if m and ('GUARDED_BY(%s)' % m.group(1)) not in stripped:
            out.append((lineno,
                        '[guarded-mutex] mutex member %s has no '
                        'GUARDED_BY(%s) annotation on any member — Thread '
                        'Safety Analysis cannot see what it protects'
                        % (m.group(1), m.group(1))))
    return out


VALIDATED_OPS_RE = re.compile(r'\bFDB_VALIDATE_\w+\s*\(')


def check_validated_ops(relpath, text):
    if not re.fullmatch(r'src/core/ops_\w+\.cc', relpath):
        return []
    if VALIDATED_OPS_RE.search(strip_comments(text)):
        return []
    return [(1, '[validated-ops] operator translation unit never invokes an '
                'FDB_VALIDATE_* macro (core/validate.h)')]


def expected_guard(relpath):
    p = relpath[len('src/'):] if relpath.startswith('src/') else relpath
    return 'FDB_' + re.sub(r'[^A-Za-z0-9]', '_', p).upper() + '_'


def check_include_guard(relpath, text):
    if not relpath.endswith('.h'):
        return []
    if not relpath.startswith(('src/', 'fuzz/')):
        return []
    guard = expected_guard(relpath)
    stripped = strip_comments(text)
    if re.search(r'^\s*#ifndef\s+%s\s*$' % re.escape(guard), stripped, re.M) \
            and re.search(r'^\s*#define\s+%s\s*$' % re.escape(guard),
                          stripped, re.M):
        return []
    return [(1, '[include-guard] header must use the path-derived guard '
                + guard)]


RAW_TIMING_RE = re.compile(
    r'std::chrono::(steady_clock|high_resolution_clock)\b')


def check_raw_timing(relpath, text):
    if not relpath.startswith(('src/', 'fuzz/')):
        return []
    if relpath.startswith(('src/common/', 'src/bench_util/')):
        return []
    return findings_for(
        RAW_TIMING_RE, strip_comments(text),
        lambda m: '[raw-timing] raw std::chrono::%s outside src/common/ — '
                  'use Timer / MonotonicClock / MonotonicDeadline '
                  '(common/timer.h) or QueryTrace (common/trace.h)'
                  % m.group(1))


INPUT_PARSING_FILES = re.compile(
    r'src/sql/[^/]+\.(h|cc)|src/core/serialize\.cc|src/storage/csv\.cc'
    r'|src/serve/protocol\.cc')

ABORT_PATH_RE = re.compile(
    r'\b(FDB_ASSERT|FDB_DCHECK)\b|(?<![\w.])(std::)?abort\s*\('
    r'|(?<![\w.])assert\s*\(')


def check_no_abort_on_input(relpath, text):
    if not INPUT_PARSING_FILES.fullmatch(relpath):
        return []
    return findings_for(
        ABORT_PATH_RE, strip_comments(text),
        lambda m: '[no-abort-on-input] abort-path construct in an '
                  'untrusted-input module — malformed input must throw '
                  'FdbError, never kill the process')


FAULT_POINT_RE = re.compile(r'FDB_FAULT_POINT\(\s*"([^"]*)"\s*\)')
SNAKE_CASE_RE = re.compile(r'[a-z][a-z0-9_]*')


def fault_point_sites(text):
    """Yields (lineno, name) for each literal FDB_FAULT_POINT call site.

    Scans comment-stripped text with string literals intact (the macro
    definition in common/fault.h takes a bare parameter, not a literal, so
    it never matches)."""
    for lineno, line in enumerate(strip_only_comments(text).splitlines(), 1):
        for m in FAULT_POINT_RE.finditer(line):
            yield lineno, m.group(1)


def check_fault_points(relpath, text):
    if not relpath.startswith(('src/', 'fuzz/')):
        return []
    out = []
    seen = {}
    for lineno, name in fault_point_sites(text):
        if not SNAKE_CASE_RE.fullmatch(name):
            out.append((lineno,
                        '[fault-point] site name "%s" is not snake_case '
                        '(lower-case letters, digits, underscores)' % name))
        elif name in seen:
            out.append((lineno,
                        '[fault-point] site name "%s" reused (first at '
                        'line %d) — the registry keys on names, so both '
                        'sites would arm together' % (name, seen[name])))
        else:
            seen[name] = lineno
    return out


BAD_ALLOC_CATCH_RE = re.compile(r'catch\s*\(\s*(?:const\s+)?std::bad_alloc\b')


def check_bad_alloc_catch(relpath, text):
    if not relpath.startswith(('src/', 'fuzz/')):
        return []
    if relpath.startswith('src/common/'):
        return []
    return findings_for(
        BAD_ALLOC_CATCH_RE, strip_comments(text),
        lambda m: '[bad-alloc-catch] raw catch of std::bad_alloc outside '
                  'src/common/ — wrap the allocating region in '
                  'TranslateBadAlloc (common/exec_context.h) so the '
                  'failure surfaces as RESOURCE')


CHECKERS = [
    check_raw_threading,
    check_guarded_mutex,
    check_validated_ops,
    check_include_guard,
    check_raw_timing,
    check_no_abort_on_input,
    check_fault_points,
    check_bad_alloc_catch,
]

# --------------------------------------------------------------------------
# Driver


def lint_tree(root):
    findings = []
    nfiles = 0
    fault_sites = {}  # name -> first (relpath, lineno); cross-file check
    for sub in ('src', 'fuzz'):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob('*')):
            if path.suffix not in ('.h', '.cc'):
                continue
            relpath = path.relative_to(root).as_posix()
            text = path.read_text(encoding='utf-8', errors='replace')
            nfiles += 1
            for checker in CHECKERS:
                for lineno, msg in checker(relpath, text):
                    findings.append('%s:%d: %s' % (relpath, lineno, msg))
            for lineno, name in fault_point_sites(text):
                first = fault_sites.setdefault(name, (relpath, lineno))
                if first[0] != relpath:
                    findings.append(
                        '%s:%d: [fault-point] site name "%s" already used '
                        'at %s:%d — names are registry keys and must be '
                        'globally unique' % (relpath, lineno, name,
                                             first[0], first[1]))
    return findings, nfiles


# One deliberate violation per rule; --self-test fails unless every rule
# fires on its seed (and stays quiet on the clean twin).
SELF_TEST_CASES = [
    (check_raw_threading, 'src/core/x.cc',
     'static std::mutex mu;\n', 'std::thread::hardware_concurrency();\n'),
    (check_guarded_mutex, 'src/serve/x.h',
     'class C {\n  Mutex mu_;\n  int n_;\n};\n',
     'class C {\n  Mutex mu_;\n  int n_ GUARDED_BY(mu_);\n};\n'),
    (check_validated_ops, 'src/core/ops_x.cc',
     'void Op() {}\n', 'void Op() { FDB_VALIDATE_REP(rep); }\n'),
    (check_include_guard, 'src/core/x.h',
     '#ifndef WRONG_H\n#define WRONG_H\n#endif\n',
     '#ifndef FDB_CORE_X_H_\n#define FDB_CORE_X_H_\n#endif\n'),
    (check_raw_timing, 'src/serve/x.cc',
     'auto t0 = std::chrono::steady_clock::now();\n',
     'auto deadline = MonotonicDeadline(0.5);\n'),
    (check_no_abort_on_input, 'src/sql/x.cc',
     'void f() { FDB_ASSERT(ok); }\n',
     'void f() { FDB_CHECK_MSG(ok, "bad input"); }\n'),
    (check_fault_points, 'src/core/x.cc',
     'void f() {\n  FDB_FAULT_POINT("dup_site");\n'
     '  FDB_FAULT_POINT("dup_site");\n  FDB_FAULT_POINT("BadName");\n}\n',
     'void f() { FDB_FAULT_POINT("good_site"); }\n'),
    (check_bad_alloc_catch, 'src/core/x.cc',
     'try { f(); } catch (const std::bad_alloc&) { g(); }\n',
     'TranslateBadAlloc([&] { f(); }, "f");\n'),
]


def self_test():
    failures = []
    for checker, relpath, bad, good in SELF_TEST_CASES:
        name = checker.__name__
        if not checker(relpath, bad):
            failures.append('%s did NOT fire on its seeded violation' % name)
        if checker(relpath, good):
            failures.append('%s fired on its clean twin' % name)
    for msg in failures:
        print('fdb_lint --self-test: %s' % msg, file=sys.stderr)
    if not failures:
        print('fdb_lint --self-test: OK (%d rules armed)' % len(CHECKERS))
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument('--root', default='.', help='repository root')
    ap.add_argument('--self-test', action='store_true',
                    help='verify every rule fires on a seeded violation')
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    root = Path(args.root)
    if not (root / 'src').is_dir():
        print('fdb_lint: %s does not look like the repo root (no src/)'
              % root, file=sys.stderr)
        return 2
    findings, nfiles = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print('fdb_lint: %d finding(s) in %d files'
              % (len(findings), nfiles), file=sys.stderr)
        return 1
    print('fdb_lint: OK (%d files, %d rules)' % (nfiles, len(CHECKERS)))
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
